// llm4vv-serve: the persistent validation service (docs/SERVING.md).
//
// Server mode (default): bind a loopback TCP socket, accept line-delimited
// JSON validation jobs from many tenants, run them through the same
// compile -> execute -> judge pipeline the batch CLI uses (misses coalesce
// in the model client's adaptive batcher), and stream verdicts back.
// Admission control sheds work per tenant (token-bucket rate, in-flight
// quota) and the weighted fair scheduler divides service between tenants.
// SIGTERM / SIGINT / a client "shutdown" op starts a graceful drain: stop
// accepting, finish every accepted job, flush, export telemetry, exit 0.
//
//   llm4vv-serve --port 7733 --workers 2 \
//       --tenants "gold:0:8:0:3,free:50:8:4:1" \
//       --metrics-dump --trace-out serve_trace.json
//
//   --host <a> --port <p>    bind address (default 127.0.0.1:0 = ephemeral)
//   --port-file <path>       write the bound port (CI discovers ephemeral
//                            ports through this)
//   --workers <n>            dispatcher workers (default 2)
//   --job-batch <n>          jobs per scheduler pop (default 4)
//   --max-queued <n>         scheduler backlog bound (default 1024)
//   --concurrency <n>        simulated model concurrency cap (default 4)
//   --batch-max <n> --batch-window-us <t>   adaptive batcher knobs
//   --no-judge-cache         disable the judge memo cache (every job pays
//                            a model call; keeps load tests honest)
//   --judge-seed <s>         judge sampling seed
//   --rate/--burst/--quota/--weight        default-tenant admission knobs
//   --tenants "name:rate:burst:quota:weight,..."  per-tenant overrides
//   --trace-out/--trace-jsonl/--metrics-dump      shared obs flags
//
// Load-generator mode (--load-gen): the matching serve::Client driven as a
// closed- or open-loop workload, reporting a flat JSON summary on stdout
// (jobs_per_s, p50/p90/p99 latency, per-tenant completion spread) that CI
// gates with jq.
//
//   llm4vv-serve --load-gen --port-file /tmp/port \
//       --gen-tenants "gold,free" --clients 2 --jobs 8 --shutdown
//
//   --gen-mode closed|open   closed: submit, wait, repeat (default);
//                            open: paced sender + concurrent reader
//   --gen-tenants "a,b"      one tenant name per comma (default "bench")
//   --clients <n>            connections per tenant (default 1)
//   --jobs <n>               jobs per connection (default 8)
//   --open-rate <r>          open-loop pace per connection, jobs/s
//   --unique                 make every payload distinct (defeats the
//                            server-side judge cache)
//   --timeout-ms <t>         per-response wait bound (default 30000)
//   --shutdown               after the run, send the shutdown op and wait
//                            for the drain; exit 3 unless it closes clean
#include <csignal>
#include <cstdio>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/llm4vv.hpp"
#include "examples/obs_flags.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "support/cli.hpp"
#include "support/jsonl.hpp"
#include "support/stopwatch.hpp"
#include "support/strings.hpp"

namespace {

using namespace llm4vv;

// Self-pipe for SIGTERM/SIGINT: the handler only writes a byte; a watcher
// thread turns it into Server::request_drain() (which takes locks and so
// must not run in the handler itself).
int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 1;
  (void)!write(g_signal_pipe[1], &byte, 1);
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string piece = text.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!piece.empty()) out.push_back(piece);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// "name:rate:burst:quota:weight" with trailing fields optional.
bool parse_tenant_spec(const std::string& spec, std::string& name,
                       serve::TenantConfig& config) {
  const auto parts = support::split(spec, ':');
  if (parts.empty() || parts[0].empty()) return false;
  name = parts[0];
  try {
    if (parts.size() > 1 && !parts[1].empty()) {
      config.rate_per_sec = std::stod(parts[1]);
    }
    if (parts.size() > 2 && !parts[2].empty()) {
      config.burst = std::stod(parts[2]);
    }
    if (parts.size() > 3 && !parts[3].empty()) {
      config.max_in_flight = static_cast<std::size_t>(std::stoul(parts[3]));
    }
    if (parts.size() > 4 && !parts[4].empty()) {
      config.weight = static_cast<std::uint32_t>(std::stoul(parts[4]));
    }
  } catch (const std::exception&) {
    return false;
  }
  return parts.size() <= 5;
}

/// A small deterministic pool of valid generated tests to submit as jobs.
std::vector<frontend::SourceFile> make_job_pool(std::size_t count) {
  corpus::GeneratorConfig gen;
  gen.flavor = frontend::Flavor::kOpenACC;
  gen.count = count;
  gen.seed = 91;
  std::vector<frontend::SourceFile> files;
  for (const auto& test_case : corpus::generate_suite(gen).cases) {
    files.push_back(test_case.file);
  }
  return files;
}

std::uint64_t percentile(std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<std::size_t>(rank + 0.5)];
}

std::uint16_t resolve_port(const support::CliArgs& args) {
  const std::string port_file = args.get("port-file", "");
  if (!port_file.empty() && !args.has("port")) {
    std::ifstream in(port_file);
    int port = 0;
    if (in >> port && port > 0 && port < 65536) {
      return static_cast<std::uint16_t>(port);
    }
    std::fprintf(stderr, "llm4vv-serve: cannot read port from %s\n",
                 port_file.c_str());
    return 0;
  }
  return static_cast<std::uint16_t>(args.get_int("port", 0));
}

// --- load generator ---------------------------------------------------------

struct TenantLoadResult {
  std::string tenant;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  ///< verdict responses
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;     ///< error terminals + transport failures
  std::vector<std::uint64_t> latencies_us;  ///< terminal responses only
};

void merge_into(TenantLoadResult& into, const TenantLoadResult& from) {
  into.submitted += from.submitted;
  into.completed += from.completed;
  into.shed += from.shed;
  into.errors += from.errors;
  into.latencies_us.insert(into.latencies_us.end(), from.latencies_us.begin(),
                           from.latencies_us.end());
}

frontend::SourceFile job_payload(const std::vector<frontend::SourceFile>& pool,
                                 std::uint64_t index, bool unique) {
  frontend::SourceFile file = pool[index % pool.size()];
  if (unique) {
    file.content += "\n// load-gen job " + std::to_string(index) + "\n";
  }
  return file;
}

TenantLoadResult run_closed_loop(const std::string& host, std::uint16_t port,
                                 const std::string& tenant,
                                 const std::vector<frontend::SourceFile>& pool,
                                 std::size_t jobs, bool unique,
                                 std::uint64_t id_base, int timeout_ms) {
  TenantLoadResult result;
  result.tenant = tenant;
  serve::Client client;
  if (!client.connect(host, port, tenant)) {
    std::fprintf(stderr, "load-gen: connect failed: %s\n",
                 client.last_error().c_str());
    result.errors += jobs;
    return result;
  }
  for (std::size_t j = 0; j < jobs; ++j) {
    const std::uint64_t id = id_base + j;
    const auto file = job_payload(pool, id, unique);
    const std::uint64_t sent_us = support::now_us();
    ++result.submitted;
    const auto response = client.submit_and_wait(id, file, timeout_ms);
    if (!response.has_value()) {
      ++result.errors;
      break;  // transport failure or timeout: this connection is done
    }
    result.latencies_us.push_back(support::now_us() - sent_us);
    switch (response->type) {
      case serve::ResponseType::kVerdict: ++result.completed; break;
      case serve::ResponseType::kShed: ++result.shed; break;
      default: ++result.errors; break;
    }
  }
  return result;
}

TenantLoadResult run_open_loop(const std::string& host, std::uint16_t port,
                               const std::string& tenant,
                               const std::vector<frontend::SourceFile>& pool,
                               std::size_t jobs, double rate_per_sec,
                               bool unique, std::uint64_t id_base,
                               int timeout_ms) {
  TenantLoadResult result;
  result.tenant = tenant;
  serve::Client client;
  if (!client.connect(host, port, tenant)) {
    std::fprintf(stderr, "load-gen: connect failed: %s\n",
                 client.last_error().c_str());
    result.errors += jobs;
    return result;
  }
  // One paced sender, one reader — the two-thread split serve::Client
  // supports. Send times are shared through a plain mutex-guarded map.
  std::mutex sent_mutex;
  std::vector<std::uint64_t> sent_us(jobs, 0);
  std::atomic<bool> send_failed{false};
  const std::uint64_t interval_us =
      rate_per_sec > 0.0
          ? static_cast<std::uint64_t>(1'000'000.0 / rate_per_sec)
          : 0;
  std::thread sender([&] {
    const std::uint64_t start_us = support::now_us();
    for (std::size_t j = 0; j < jobs; ++j) {
      const std::uint64_t due_us = start_us + j * interval_us;
      while (support::now_us() < due_us) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      const auto file = job_payload(pool, id_base + j, unique);
      {
        std::lock_guard<std::mutex> lock(sent_mutex);
        sent_us[j] = support::now_us();
      }
      if (!client.send_submit(id_base + j, file)) {
        send_failed.store(true);
        return;
      }
    }
  });
  std::size_t terminals = 0;
  while (terminals < jobs && !send_failed.load()) {
    const auto response = client.next_response(timeout_ms);
    if (!response.has_value()) break;  // timeout, EOF, or transport error
    if (!response->terminal() || !response->has_id) continue;
    const std::uint64_t id = response->id;
    if (id < id_base || id >= id_base + jobs) continue;
    ++terminals;
    std::uint64_t send_time;
    {
      std::lock_guard<std::mutex> lock(sent_mutex);
      send_time = sent_us[id - id_base];
    }
    result.latencies_us.push_back(support::now_us() - send_time);
    switch (response->type) {
      case serve::ResponseType::kVerdict: ++result.completed; break;
      case serve::ResponseType::kShed: ++result.shed; break;
      default: ++result.errors; break;
    }
  }
  sender.join();
  result.submitted = jobs;
  // Jobs that never got a terminal response (drain shed on a closed
  // connection, timeout) count as errors from the load-gen's viewpoint.
  result.errors += jobs - terminals;
  return result;
}

int run_load_gen(const support::CliArgs& args) {
  const std::string host = args.get("host", "127.0.0.1");
  const std::uint16_t port = resolve_port(args);
  if (port == 0) {
    std::fprintf(stderr, "load-gen: need --port or --port-file\n");
    return 2;
  }
  const std::string mode = args.get("gen-mode", "closed");
  const auto tenants = split_csv(args.get("gen-tenants", "bench"));
  const std::size_t clients =
      static_cast<std::size_t>(args.get_int("clients", 1));
  const std::size_t jobs = static_cast<std::size_t>(args.get_int("jobs", 8));
  const double open_rate = args.get_double("open-rate", 50.0);
  const bool unique = args.has("unique");
  const int timeout_ms = static_cast<int>(args.get_int("timeout-ms", 30000));
  const auto pool = make_job_pool(16);

  std::vector<TenantLoadResult> tenant_results;
  for (const auto& tenant : tenants) {
    TenantLoadResult merged;
    merged.tenant = tenant;
    tenant_results.push_back(merged);
  }
  std::mutex results_mutex;
  std::vector<std::thread> threads;
  support::Stopwatch wall;
  std::uint64_t id_base = 1;
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    for (std::size_t c = 0; c < clients; ++c) {
      const std::uint64_t base = id_base;
      id_base += jobs;
      threads.emplace_back([&, t, base] {
        const auto result =
            mode == "open"
                ? run_open_loop(host, port, tenants[t], pool, jobs, open_rate,
                                unique, base, timeout_ms)
                : run_closed_loop(host, port, tenants[t], pool, jobs, unique,
                                  base, timeout_ms);
        std::lock_guard<std::mutex> lock(results_mutex);
        merge_into(tenant_results[t], result);
      });
    }
  }
  for (auto& thread : threads) thread.join();
  const double wall_s = wall.seconds();

  TenantLoadResult totals;
  std::uint64_t tenant_min_completed = ~0ULL;
  std::uint64_t tenant_max_completed = 0;
  for (const auto& result : tenant_results) {
    merge_into(totals, result);
    tenant_min_completed = std::min(tenant_min_completed, result.completed);
    tenant_max_completed = std::max(tenant_max_completed, result.completed);
  }
  if (tenant_results.empty()) tenant_min_completed = 0;
  std::sort(totals.latencies_us.begin(), totals.latencies_us.end());

  bool clean_drain = true;
  if (args.has("shutdown")) {
    clean_drain = false;
    serve::Client control;
    if (control.connect(host, port) && control.send_shutdown()) {
      // Expect draining (already consumed as our first frame or not), then
      // bye, then EOF. Clean = we saw the bye or a clean close in time.
      for (;;) {
        const auto response = control.next_response(timeout_ms);
        if (!response.has_value()) {
          clean_drain = control.last_error() == "eof";
          break;
        }
        if (response->type == serve::ResponseType::kBye) {
          clean_drain = true;
          break;
        }
      }
    }
  }

  const std::string summary =
      support::JsonObject()
          .field("mode", mode)
          .field("tenants", static_cast<std::int64_t>(tenants.size()))
          .field("clients", static_cast<std::int64_t>(clients))
          .field("submitted", static_cast<std::int64_t>(totals.submitted))
          .field("completed", static_cast<std::int64_t>(totals.completed))
          .field("shed", static_cast<std::int64_t>(totals.shed))
          .field("errors", static_cast<std::int64_t>(totals.errors))
          .field("wall_s", wall_s)
          .field("jobs_per_s",
                 wall_s > 0.0
                     ? static_cast<double>(totals.completed + totals.shed) /
                           wall_s
                     : 0.0)
          .field("p50_us", static_cast<std::int64_t>(
                               percentile(totals.latencies_us, 0.50)))
          .field("p90_us", static_cast<std::int64_t>(
                               percentile(totals.latencies_us, 0.90)))
          .field("p99_us", static_cast<std::int64_t>(
                               percentile(totals.latencies_us, 0.99)))
          .field("tenant_min_completed",
                 static_cast<std::int64_t>(tenant_min_completed))
          .field("tenant_max_completed",
                 static_cast<std::int64_t>(tenant_max_completed))
          .field("clean_drain", clean_drain)
          .str();
  std::printf("%s\n", summary.c_str());
  return clean_drain ? 0 : 3;
}

// --- server -----------------------------------------------------------------

int run_server(const support::CliArgs& args,
               const examples::ObsFlags& obs_flags) {
  serve::ServerConfig config;
  config.host = args.get("host", "127.0.0.1");
  config.port = static_cast<std::uint16_t>(args.get_int("port", 0));
  config.workers = static_cast<std::size_t>(args.get_int("workers", 2));
  config.job_batch = static_cast<std::size_t>(args.get_int("job-batch", 4));
  config.max_queued =
      static_cast<std::size_t>(args.get_int("max-queued", 1024));
  config.judge_seed =
      static_cast<std::uint64_t>(args.get_int("judge-seed", 0));
  config.default_tenant.rate_per_sec = args.get_double("rate", 0.0);
  config.default_tenant.burst = args.get_double("burst", 8.0);
  config.default_tenant.max_in_flight =
      static_cast<std::size_t>(args.get_int("quota", 0));
  config.default_tenant.weight =
      static_cast<std::uint32_t>(args.get_int("weight", 1));
  for (const auto& spec : split_csv(args.get("tenants", ""))) {
    std::string name;
    serve::TenantConfig tenant = config.default_tenant;
    if (!parse_tenant_spec(spec, name, tenant)) {
      std::fprintf(stderr, "llm4vv-serve: bad --tenants entry '%s'\n",
                   spec.c_str());
      return 2;
    }
    config.tenants.emplace_back(name, tenant);
  }
  auto registry = std::make_shared<obs::Registry>();
  config.registry = registry;
  config.trace = obs_flags.tracer();

  llm::BatcherConfig batcher;
  batcher.max_batch = static_cast<std::size_t>(args.get_int("batch-max", 4));
  batcher.window_us =
      static_cast<std::uint64_t>(args.get_int("batch-window-us", 0));
  auto client = core::make_simulated_client(
      static_cast<std::size_t>(args.get_int("concurrency", 4)), batcher);
  if (obs_flags.wants_trace()) client->set_tracer(obs_flags.tracer());
  client->register_metrics(*registry, "serve.llm.client");
  judge::JudgeCacheConfig judge_cache;
  judge_cache.enabled = !args.has("no-judge-cache");
  auto judge = std::make_shared<const judge::Llmj>(
      client, llm::PromptStyle::kAgentDirect, judge_cache);

  serve::Server server(toolchain::CompilerDriver(toolchain::nvc_persona()),
                       toolchain::Executor(), judge, config);
  server.start();
  std::fprintf(stderr, "llm4vv-serve: listening on %s:%u (%zu workers)\n",
               config.host.c_str(), server.port(), config.workers);
  const std::string port_file = args.get("port-file", "");
  if (!port_file.empty()) {
    std::ofstream out(port_file, std::ios::trunc);
    out << server.port() << "\n";
  }

  // Signal watcher: turn SIGTERM/SIGINT bytes into a graceful drain.
  std::atomic<bool> watcher_exit{false};
  std::thread watcher([&] {
    char buf[16];
    while (read(g_signal_pipe[0], buf, sizeof buf) > 0) {
      if (watcher_exit.load()) return;
      std::fprintf(stderr, "llm4vv-serve: signal received, draining\n");
      server.request_drain();
    }
  });

  server.wait();  // blocks until a drain (signal or shutdown op) completes
  watcher_exit.store(true);
  on_signal(0);  // wake the watcher so it can exit
  watcher.join();

  const auto stats = server.stats();
  const auto totals = server.tenants().totals();
  std::fprintf(stderr,
               "llm4vv-serve: drained. %llu connections, %llu lines in, "
               "%llu responses out; jobs: %llu submitted, %llu accepted, "
               "%llu shed, %llu ok, %llu failed, %llu in flight\n",
               static_cast<unsigned long long>(stats.connections_accepted),
               static_cast<unsigned long long>(stats.lines_in),
               static_cast<unsigned long long>(stats.responses_out),
               static_cast<unsigned long long>(totals.submitted),
               static_cast<unsigned long long>(totals.accepted),
               static_cast<unsigned long long>(totals.shed_total()),
               static_cast<unsigned long long>(totals.completed_ok),
               static_cast<unsigned long long>(totals.completed_error),
               static_cast<unsigned long long>(totals.in_flight));
  if (!obs_flags.finish(registry.get())) return 1;
  return totals.in_flight == 0 ? 0 : 4;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  const support::CliArgs args(argc, argv);
  if (args.has("load-gen")) return run_load_gen(args);

  if (pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "llm4vv-serve: pipe() failed\n");
    return 1;
  }
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  const auto obs_flags = examples::ObsFlags::parse(args);
  try {
    return run_server(args, obs_flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "llm4vv-serve: fatal: %s\n", e.what());
    return 1;
  }
}
