// Negative-probing tour: applies each of the paper's five mutation classes
// to one generated test and shows how every layer of the system reacts —
// the diff-like mutated region, the compiler persona's diagnostics, the
// execution outcome, and the agent judge's verdict.
//
// Build & run:  ./build/examples/negative_probing_tour
#include <cstdio>

#include "core/llm4vv.hpp"
#include "support/strings.hpp"

namespace {

using namespace llm4vv;

/// Prints the first lines where the two sources differ.
void show_difference(const std::string& before, const std::string& after) {
  const auto a = support::split_lines(before);
  const auto b = support::split_lines(after);
  const std::size_t n = std::max(a.size(), b.size());
  int shown = 0;
  for (std::size_t i = 0; i < n && shown < 4; ++i) {
    const std::string old_line = i < a.size() ? a[i] : "<eof>";
    const std::string new_line = i < b.size() ? b[i] : "<eof>";
    if (old_line == new_line) continue;
    std::printf("    line %3zu  - %s\n", i + 1, old_line.c_str());
    std::printf("             + %s\n", new_line.c_str());
    ++shown;
  }
  if (shown == 0) std::printf("    (content replaced entirely)\n");
}

}  // namespace

int main() {
  using namespace llm4vv;

  const auto base = corpus::generate_one("saxpy_offload",
                                         frontend::Flavor::kOpenACC,
                                         frontend::Language::kC, 42);
  std::printf("base test: %s (%zu bytes) -- a valid saxpy offload test\n\n",
              base.file.name.c_str(), base.file.content.size());

  toolchain::CompilerConfig persona = toolchain::nvc_persona();
  persona.strictness_reject_rate = 0.0;  // keep the tour deterministic
  const toolchain::CompilerDriver driver(persona);
  const toolchain::Executor executor;
  auto client = core::make_simulated_client(1);
  const judge::Llmj agent_judge(client, llm::PromptStyle::kAgentDirect);

  support::Rng rng(99);
  for (int id = 0; id <= 5; ++id) {
    const auto issue = static_cast<probing::IssueType>(id);
    std::printf("== issue %d: %s ==\n", id,
                probing::issue_row_label(issue, base.file.flavor).c_str());
    const auto mutated = probing::apply_mutation(
        base.file.content, base.file.language, issue, {}, rng);
    if (!mutated) {
      std::printf("    (mutation not applicable to this file)\n\n");
      continue;
    }
    show_difference(base.file.content, *mutated);

    frontend::SourceFile file = base.file;
    file.content = *mutated;
    const auto compiled = driver.compile(file);
    if (!compiled.success) {
      const auto lines = support::split_lines(compiled.stderr_text);
      std::printf("  compile: FAILED (rc=%d) %s\n", compiled.return_code,
                  lines.empty() ? "" : lines.front().c_str());
    } else {
      std::printf("  compile: ok\n");
    }
    const auto ran = executor.run(compiled.module);
    if (ran.ran) {
      std::printf("  execute: rc=%d%s%s\n", ran.return_code,
                  ran.trap != vm::TrapKind::kNone ? " trap=" : "",
                  ran.trap != vm::TrapKind::kNone
                      ? vm::trap_kind_name(ran.trap)
                      : "");
    } else {
      std::printf("  execute: skipped (no binary)\n");
    }
    const auto decision = agent_judge.evaluate(file, &compiled, &ran);
    std::printf("  LLMJ 1:  %s\n\n", verdict_name(decision.verdict));
  }
  return 0;
}
