// Judge playground: one file, all three judge configurations, with the
// full prompt/completion transcripts — the quickest way to see what the
// LLM-as-a-Judge layer actually does.
//
// Build & run:  ./build/examples/judge_playground
#include <cstdio>

#include "core/llm4vv.hpp"
#include "support/strings.hpp"

int main() {
  using namespace llm4vv;

  // A valid OpenMP target test, then a mutated (invalid) twin.
  const auto valid = corpus::generate_one("sum_reduction",
                                          frontend::Flavor::kOpenMP,
                                          frontend::Language::kC, 5);
  support::Rng rng(17);
  const auto mutated_content = probing::apply_mutation(
      valid.file.content, valid.file.language,
      probing::IssueType::kUndeclaredVariable, {}, rng);
  frontend::SourceFile invalid = valid.file;
  invalid.content = mutated_content.value_or(valid.file.content);

  const toolchain::CompilerDriver driver(toolchain::clang_persona());
  const toolchain::Executor executor;
  // Keep a transcript ring so we can print the conversations afterwards.
  auto model = std::make_shared<const llm::SimulatedCoderModel>();
  auto client = std::make_shared<llm::ModelClient>(model, 1,
                                                   /*transcripts=*/16);

  for (const frontend::SourceFile* file : {&valid.file,
                                           const_cast<const frontend::SourceFile*>(&invalid)}) {
    const bool is_valid = file == &valid.file;
    std::printf("=== %s file: %s ===\n",
                is_valid ? "VALID" : "MUTATED (undeclared variable)",
                file->name.c_str());
    const auto compiled = driver.compile(*file);
    const auto ran = executor.run(compiled.module);
    std::printf("tools: compiler rc=%d, program rc=%d\n",
                compiled.return_code, ran.ran ? ran.return_code : -1);
    for (const auto style :
         {llm::PromptStyle::kDirectAnalysis, llm::PromptStyle::kAgentDirect,
          llm::PromptStyle::kAgentIndirect}) {
      const judge::Llmj llmj(client, style);
      const auto decision =
          style == llm::PromptStyle::kDirectAnalysis
              ? llmj.evaluate(*file)
              : llmj.evaluate(*file, &compiled, &ran);
      std::printf("  %-16s -> %-9s (%zu prompt + %zu completion tokens, "
                  "%.1f s simulated)\n",
                  llmj.name(), judge::verdict_name(decision.verdict),
                  decision.completion.prompt_tokens,
                  decision.completion.completion_tokens,
                  decision.completion.latency_seconds);
    }
    std::printf("\n");
  }

  // Show one full conversation: the last agent-indirect exchange.
  const auto transcripts = client->transcripts();
  if (!transcripts.empty()) {
    const auto& last = transcripts.back();
    std::printf("--- last prompt (first 18 lines) ---\n");
    const auto lines = support::split_lines(last.prompt);
    for (std::size_t i = 0; i < lines.size() && i < 18; ++i) {
      std::printf("| %s\n", lines[i].c_str());
    }
    std::printf("--- completion ---\n%s\n", last.completion.text.c_str());
  }
  return 0;
}
