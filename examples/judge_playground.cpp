// Judge playground: one file, all three judge configurations, with the
// full prompt/completion transcripts — the quickest way to see what the
// LLM-as-a-Judge layer actually does.
//
// Build & run:  ./build/examples/judge_playground
//
// Persistent caching (the PR 3 artifact store) is exercisable from here:
//   --cache-file <path>   back the judges with a content-addressed store
//                         loaded from <path> (warm hits skip the simulated
//                         model calls entirely)
//   --cache-save          persist the judges' memo caches back to the file
//                         on exit (atomic write-temp-then-rename)
// Run twice with both flags: the first run computes and saves, the second
// reports every verdict as a persisted cache hit.
//
// The model client's adaptive batcher (the PR 4 async submission API) is
// drivable from here too:
//   --batch-max <N>        flush as soon as N requests are pending (0 = no
//                          cap, the default)
//   --batch-window-us <T>  let a pending request wait up to T microseconds
//                          for the batch to fill (0 = flush immediately,
//                          the paper-mode default)
// With a nonzero window the three judges' submissions for each file
// coalesce into one batched forward pass — watch the batcher summary at
// the bottom report fuller flushes and cheaper simulated passes.
#include <cstdio>

#include "core/llm4vv.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"

int main(int argc, char** argv) {
  using namespace llm4vv;

  const support::CliArgs args(argc, argv);
  const std::string cache_file = args.get("cache-file", "");
  const bool cache_save = args.has("cache-save");
  llm::BatcherConfig batcher;
  batcher.max_batch =
      static_cast<std::size_t>(args.get_int("batch-max", 0));
  batcher.window_us =
      static_cast<std::uint64_t>(args.get_int("batch-window-us", 0));

  // A valid OpenMP target test, then a mutated (invalid) twin.
  const auto valid = corpus::generate_one("sum_reduction",
                                          frontend::Flavor::kOpenMP,
                                          frontend::Language::kC, 5);
  support::Rng rng(17);
  const auto mutated_content = probing::apply_mutation(
      valid.file.content, valid.file.language,
      probing::IssueType::kUndeclaredVariable, {}, rng);
  frontend::SourceFile invalid = valid.file;
  invalid.content = mutated_content.value_or(valid.file.content);

  const toolchain::CompilerDriver driver(toolchain::clang_persona());
  const toolchain::Executor executor;
  // Keep a transcript ring so we can print the conversations afterwards.
  auto model = std::make_shared<const llm::SimulatedCoderModel>();
  auto client = std::make_shared<llm::ModelClient>(model, 3,
                                                   /*transcripts=*/16,
                                                   batcher);

  // One store shared by all three judges; records are keyed by prompt
  // style, so they never cross-serve. The fingerprint pins the model —
  // swap the model and the old file cold-starts instead of lying.
  std::shared_ptr<cache::ArtifactStore> store;
  if (!cache_file.empty()) {
    cache::ArtifactStoreConfig store_config;
    store_config.path = cache_file;
    store_config.fingerprint =
        cache::StoreFingerprint{"judge-playground", client->model_name(), 0};
    store = std::make_shared<cache::ArtifactStore>(store_config);
    const auto& report = store->load_report();
    if (report.cold_start) {
      std::printf("cache: %s cold-started (%s)\n\n", cache_file.c_str(),
                  report.cold_start_reason.c_str());
    } else {
      std::printf("cache: %s loaded %zu records (%zu corrupt lines "
                  "skipped)\n\n",
                  cache_file.c_str(), report.loaded, report.corrupt_lines);
    }
  }

  judge::JudgeCacheConfig judge_cache;
  judge_cache.store = store;
  std::vector<std::shared_ptr<const judge::Llmj>> judges;
  for (const auto style :
       {llm::PromptStyle::kDirectAnalysis, llm::PromptStyle::kAgentDirect,
        llm::PromptStyle::kAgentIndirect}) {
    judges.push_back(
        std::make_shared<const judge::Llmj>(client, style, judge_cache));
  }

  for (const frontend::SourceFile* file : {&valid.file,
                                           const_cast<const frontend::SourceFile*>(&invalid)}) {
    const bool is_valid = file == &valid.file;
    std::printf("=== %s file: %s ===\n",
                is_valid ? "VALID" : "MUTATED (undeclared variable)",
                file->name.c_str());
    const auto compiled = driver.compile(*file);
    const auto ran = executor.run(compiled.module);
    std::printf("tools: compiler rc=%d, program rc=%d\n",
                compiled.return_code, ran.ran ? ran.return_code : -1);
    // Submit all three judges asynchronously before draining: with a
    // nonzero --batch-window-us their misses coalesce into one batched
    // forward pass (with the default window of 0 each is its own
    // immediate flush, exactly like the old blocking loop).
    std::vector<judge::JudgeFuture> futures;
    for (const auto& llmj : judges) {
      const auto request =
          llmj->style() == llm::PromptStyle::kDirectAnalysis
              ? judge::JudgeRequest{file}
              : judge::JudgeRequest{file, &compiled, &ran};
      futures.push_back(llmj->evaluate_async(request));
    }
    for (std::size_t j = 0; j < judges.size(); ++j) {
      const auto decision = futures[j].get();
      std::printf("  %-16s -> %-9s (%zu prompt + %zu completion tokens, "
                  "%.1f s simulated%s)\n",
                  judges[j]->name(), judge::verdict_name(decision.verdict),
                  decision.completion.prompt_tokens,
                  decision.completion.completion_tokens,
                  decision.completion.latency_seconds,
                  decision.persisted ? ", persisted cache hit"
                  : decision.cached ? ", cache hit"
                                    : "");
    }
    std::printf("\n");
  }

  // Show one full conversation: the last agent-indirect exchange. (On a
  // fully warm cache no model call happened, so there may be none.)
  const auto transcripts = client->transcripts();
  if (!transcripts.empty()) {
    const auto& last = transcripts.back();
    std::printf("--- last prompt (first 18 lines) ---\n");
    const auto lines = support::split_lines(last.prompt);
    for (std::size_t i = 0; i < lines.size() && i < 18; ++i) {
      std::printf("| %s\n", lines[i].c_str());
    }
    std::printf("--- completion ---\n%s\n", last.completion.text.c_str());
  } else {
    std::printf("--- no model calls: every verdict came from the "
                "persistent cache ---\n");
  }

  // Adaptive-batcher summary: how the submissions above were actually
  // flushed into forward passes.
  {
    const auto stats = client->stats();
    std::printf("\nbatcher (max_batch=%zu, window=%llu us): "
                "%llu passes (%llu immediate, %llu full, %llu window), "
                "%llu batched prompts, peak queue depth %zu\n",
                batcher.max_batch,
                static_cast<unsigned long long>(batcher.window_us),
                static_cast<unsigned long long>(stats.formed_batches),
                static_cast<unsigned long long>(stats.flush_immediate),
                static_cast<unsigned long long>(stats.flush_full),
                static_cast<unsigned long long>(stats.flush_window),
                static_cast<unsigned long long>(stats.batched_prompts),
                stats.pending_high_water);
    std::printf("occupancy histogram:");
    for (std::size_t b = 0; b < llm::ClientStats::kOccupancyBuckets; ++b) {
      if (stats.occupancy_hist[b] == 0) continue;
      std::printf(" [%s]=%llu",
                  llm::ClientStats::occupancy_bucket_label(b),
                  static_cast<unsigned long long>(stats.occupancy_hist[b]));
    }
    std::printf("\n");
  }

  if (store != nullptr && cache_save) {
    std::size_t persisted = 0;
    for (const auto& llmj : judges) persisted += llmj->persist_cache();
    if (store->save()) {
      std::printf("\ncache: persisted %zu records to %s\n", persisted,
                  cache_file.c_str());
    } else {
      std::printf("\ncache: SAVE FAILED: %s\n", store->last_error().c_str());
      return 1;
    }
  }
  return 0;
}
