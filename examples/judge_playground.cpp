// Judge playground: one file, all three judge configurations, with the
// full prompt/completion transcripts — the quickest way to see what the
// LLM-as-a-Judge layer actually does.
//
// Build & run:  ./build/examples/judge_playground
//
// Persistent caching (the PR 3 artifact store) is exercisable from here:
//   --cache-file <path>   back the judges with a content-addressed store
//                         loaded from <path> (warm hits skip the simulated
//                         model calls entirely)
//   --cache-save          persist the judges' memo caches back to the file
//                         on exit (atomic write-temp-then-rename)
// Run twice with both flags: the first run computes and saves, the second
// reports every verdict as a persisted cache hit.
//
// The model client's adaptive batcher (the PR 4 async submission API) is
// drivable from here too:
//   --batch-max <N>        flush as soon as N requests are pending (0 = no
//                          cap, the default)
//   --batch-window-us <T>  let a pending request wait up to T microseconds
//                          for the batch to fill (0 = flush immediately,
//                          the paper-mode default)
// With a nonzero window the three judges' submissions for each file
// coalesce into one batched forward pass — watch the batcher summary on
// stderr report fuller flushes and cheaper simulated passes.
//
// The resilience layer (PR 6) is drivable from here as well. Fault
// injection (seeded, deterministic — same flags, same faults):
//   --fault-transient <p>  per-(prompt, attempt) transient failure rate
//   --fault-permanent <p>  per-prompt permanent failure rate
//   --fault-slow <p>       slow-trickle rate (latency x --fault-slow-factor)
//   --fault-slow-factor <f>  latency multiplier for slow faults (default 8)
//   --fault-seed <s>       reseed the fault plan
// And the client's answer to it:
//   --retry-attempts <n>   total forward-pass attempts per request (1 = no
//                          retries, the paper-mode default)
//   --retry-backoff-us <t> base exponential backoff between attempts
//   --retry-deadline-us <t> per-request wall-clock deadline (0 = none)
//   --breaker              enable the circuit breaker
//   --max-pending <n>      bound the batcher's pending queue (0 = unbounded)
//   --overflow-block       block submitters at the bound instead of
//                          shedding (needs --batch-window-us > 0)
// Try:  judge_playground --fault-transient 0.5 --retry-attempts 4
// and watch judges ride through faults (completions are byte-identical to
// a fault-free run); drop --retry-attempts and the same faults surface as
// judge errors in the summary instead of crashing the playground.
//
// Observability (the PR 8 obs/ subsystem, docs/OBSERVABILITY.md):
//   --trace-out <path>     export a Chrome trace-event JSON of the run
//                          (judge spans plus the client's flush / retry /
//                          backoff spans). `-` writes the JSON to stdout
//                          and moves the human report to stderr, so
//                          `--trace-out=- | tools/check_trace.py -` pipes
//                          clean JSON.
//   --trace-jsonl <path>   same spans as a JSONL log (one object per line)
//   --metrics-dump         dump the metrics registry (client, judges, and
//                          store re-registered as probes) to stderr in
//                          Prometheus text format at exit
// Telemetry summaries (batcher, resilience, metrics) always go to stderr;
// stdout stays the demo's report — or pure trace JSON under --trace-out=-.
#include <cstdio>

#include "core/llm4vv.hpp"
#include "examples/obs_flags.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"

int main(int argc, char** argv) {
  using namespace llm4vv;

  const support::CliArgs args(argc, argv);
  const std::string cache_file = args.get("cache-file", "");
  const bool cache_save = args.has("cache-save");
  const auto obs_flags = examples::ObsFlags::parse(args);
  const bool metrics_dump = obs_flags.metrics_dump();
  // Human report: stdout normally, stderr when the trace JSON owns stdout.
  std::FILE* const report = obs_flags.report();
  llm::BatcherConfig batcher;
  batcher.max_batch =
      static_cast<std::size_t>(args.get_int("batch-max", 0));
  batcher.window_us =
      static_cast<std::uint64_t>(args.get_int("batch-window-us", 0));
  batcher.max_pending =
      static_cast<std::size_t>(args.get_int("max-pending", 0));
  batcher.overflow = args.has("overflow-block") ? llm::OverflowPolicy::kBlock
                                                : llm::OverflowPolicy::kShed;

  llm::FaultPlanConfig fault_config;
  fault_config.transient_rate = args.get_double("fault-transient", 0.0);
  fault_config.permanent_rate = args.get_double("fault-permanent", 0.0);
  fault_config.slow_rate = args.get_double("fault-slow", 0.0);
  fault_config.slow_latency_factor =
      args.get_double("fault-slow-factor", fault_config.slow_latency_factor);
  fault_config.seed = static_cast<std::uint64_t>(args.get_int(
      "fault-seed", static_cast<std::int64_t>(fault_config.seed)));
  const bool faults_on = fault_config.transient_rate > 0.0 ||
                         fault_config.permanent_rate > 0.0 ||
                         fault_config.slow_rate > 0.0;

  llm::RetryPolicy retry;
  retry.max_attempts =
      static_cast<std::uint32_t>(args.get_int("retry-attempts", 1));
  retry.base_backoff_us = static_cast<std::uint64_t>(
      args.get_int("retry-backoff-us",
                   static_cast<std::int64_t>(retry.base_backoff_us)));
  retry.deadline_us =
      static_cast<std::uint64_t>(args.get_int("retry-deadline-us", 0));

  llm::CircuitBreakerConfig breaker;
  breaker.enabled = args.has("breaker");

  // A valid OpenMP target test, then a mutated (invalid) twin.
  const auto valid = corpus::generate_one("sum_reduction",
                                          frontend::Flavor::kOpenMP,
                                          frontend::Language::kC, 5);
  support::Rng rng(17);
  const auto mutated_content = probing::apply_mutation(
      valid.file.content, valid.file.language,
      probing::IssueType::kUndeclaredVariable, {}, rng);
  frontend::SourceFile invalid = valid.file;
  invalid.content = mutated_content.value_or(valid.file.content);

  const toolchain::CompilerDriver driver(toolchain::clang_persona());
  const toolchain::Executor executor;
  // Keep a transcript ring so we can print the conversations afterwards.
  llm::CoderModelConfig model_config;
  std::shared_ptr<const llm::FaultPlan> fault_plan;
  if (faults_on) {
    fault_plan = std::make_shared<const llm::FaultPlan>(fault_config);
    model_config.faults = fault_plan;
    std::fprintf(report,
                 "faults: transient %.0f%%, permanent %.0f%%, slow %.0f%% "
                 "(x%.1f latency), seed 0x%llx; retries: %u attempt(s)%s%s\n\n",
                 fault_config.transient_rate * 100,
                 fault_config.permanent_rate * 100,
                 fault_config.slow_rate * 100,
                 fault_config.slow_latency_factor,
                 static_cast<unsigned long long>(fault_config.seed),
                 retry.max_attempts,
                 retry.deadline_us > 0 ? ", deadline set" : "",
                 breaker.enabled ? ", breaker on" : "");
  }
  auto model = std::make_shared<const llm::SimulatedCoderModel>(model_config);
  auto client = std::make_shared<llm::ModelClient>(model, 3,
                                                   /*transcripts=*/16,
                                                   batcher, retry, breaker);

  const std::shared_ptr<obs::Tracer>& tracer = obs_flags.tracer();
  if (tracer != nullptr) client->set_tracer(tracer);
  obs::Registry registry;
  if (metrics_dump) client->register_metrics(registry, "llm.client");

  // One store shared by all three judges; records are keyed by prompt
  // style, so they never cross-serve. The fingerprint pins the model —
  // swap the model and the old file cold-starts instead of lying.
  std::shared_ptr<cache::ArtifactStore> store;
  if (!cache_file.empty()) {
    cache::ArtifactStoreConfig store_config;
    store_config.path = cache_file;
    store_config.fingerprint =
        cache::StoreFingerprint{"judge-playground", client->model_name(), 0};
    store = std::make_shared<cache::ArtifactStore>(store_config);
    const auto& load = store->load_report();
    if (load.cold_start) {
      std::fprintf(report, "cache: %s cold-started (%s)\n\n",
                   cache_file.c_str(), load.cold_start_reason.c_str());
    } else {
      std::fprintf(report,
                   "cache: %s loaded %zu records (%zu corrupt lines "
                   "skipped)\n\n",
                   cache_file.c_str(), load.loaded, load.corrupt_lines);
    }
    if (metrics_dump) store->register_metrics(registry, "cache.store");
  }

  judge::JudgeCacheConfig judge_cache;
  judge_cache.store = store;
  std::vector<std::shared_ptr<const judge::Llmj>> judges;
  for (const auto style :
       {llm::PromptStyle::kDirectAnalysis, llm::PromptStyle::kAgentDirect,
        llm::PromptStyle::kAgentIndirect}) {
    judges.push_back(
        std::make_shared<const judge::Llmj>(client, style, judge_cache));
  }
  if (metrics_dump) {
    for (const auto& llmj : judges) {
      llmj->register_metrics(registry,
                             std::string("judge.") + llmj->name());
    }
  }

  std::uint64_t file_no = 0;
  for (const frontend::SourceFile* file : {&valid.file,
                                           const_cast<const frontend::SourceFile*>(&invalid)}) {
    ++file_no;
    const bool is_valid = file == &valid.file;
    std::fprintf(report, "=== %s file: %s ===\n",
                 is_valid ? "VALID" : "MUTATED (undeclared variable)",
                 file->name.c_str());
    const auto compiled = driver.compile(*file);
    const auto ran = executor.run(compiled.module);
    std::fprintf(report, "tools: compiler rc=%d, program rc=%d\n",
                 compiled.return_code, ran.ran ? ran.return_code : -1);
    // Submit all three judges asynchronously before draining: with a
    // nonzero --batch-window-us their misses coalesce into one batched
    // forward pass (with the default window of 0 each is its own
    // immediate flush, exactly like the old blocking loop).
    std::vector<judge::JudgeFuture> futures;
    for (const auto& llmj : judges) {
      const auto request =
          llmj->style() == llm::PromptStyle::kDirectAnalysis
              ? judge::JudgeRequest{file}
              : judge::JudgeRequest{file, &compiled, &ran};
      futures.push_back(llmj->evaluate_async(request));
    }
    for (std::size_t j = 0; j < judges.size(); ++j) {
      obs::ObsSpan span(tracer.get(), obs::SpanKind::kJudge, file_no);
      try {
        const auto decision = futures[j].get();
        span.set_arg(static_cast<std::int64_t>(decision.verdict));
        if (!decision.cached) {
          span.set_gpu_seconds(decision.completion.latency_seconds);
          span.set_flow(decision.completion.trace_flow);
        }
        span.end();
        std::fprintf(report,
                     "  %-16s -> %-9s (%zu prompt + %zu completion tokens, "
                     "%.1f s simulated%s%s)\n",
                     judges[j]->name(), judge::verdict_name(decision.verdict),
                     decision.completion.prompt_tokens,
                     decision.completion.completion_tokens,
                     decision.completion.latency_seconds,
                     decision.persisted ? ", persisted cache hit"
                     : decision.cached ? ", cache hit"
                                       : "",
                     decision.completion.attempts > 1 ? ", retried" : "");
      } catch (const llm::ModelError& e) {
        // Graceful degradation, exactly like the pipeline's judge stage:
        // a failed judge is a recorded outcome, not a crash.
        span.set_arg(-1);
        span.end();
        std::fprintf(report,
                     "  %-16s -> JUDGE ERROR (%s after %u attempt(s): %s)\n",
                     judges[j]->name(), llm::failure_kind_name(e.kind()),
                     e.attempts(), e.what());
      }
    }
    std::fprintf(report, "\n");
  }

  // Show one full conversation: the last agent-indirect exchange. (On a
  // fully warm cache no model call happened, so there may be none.)
  const auto transcripts = client->transcripts();
  if (!transcripts.empty()) {
    const auto& last = transcripts.back();
    std::fprintf(report, "--- last prompt (first 18 lines) ---\n");
    const auto lines = support::split_lines(last.prompt);
    for (std::size_t i = 0; i < lines.size() && i < 18; ++i) {
      std::fprintf(report, "| %s\n", lines[i].c_str());
    }
    std::fprintf(report, "--- completion ---\n%s\n",
                 last.completion.text.c_str());
  } else {
    std::fprintf(report,
                 "--- no model calls: every verdict came from the "
                 "persistent cache ---\n");
  }

  // Adaptive-batcher summary: how the submissions above were actually
  // flushed into forward passes. Telemetry goes to stderr so stdout stays
  // pipeable (the demo report, or pure trace JSON under --trace-out=-).
  {
    const auto stats = client->stats();
    std::fprintf(stderr,
                 "\nbatcher (max_batch=%zu, window=%llu us): "
                 "%llu passes (%llu immediate, %llu full, %llu window), "
                 "%llu batched prompts, peak queue depth %zu\n",
                 batcher.max_batch,
                 static_cast<unsigned long long>(batcher.window_us),
                 static_cast<unsigned long long>(stats.formed_batches),
                 static_cast<unsigned long long>(stats.flush_immediate),
                 static_cast<unsigned long long>(stats.flush_full),
                 static_cast<unsigned long long>(stats.flush_window),
                 static_cast<unsigned long long>(stats.batched_prompts),
                 stats.pending_high_water);
    std::fprintf(stderr, "occupancy histogram:");
    for (std::size_t b = 0; b < llm::ClientStats::kOccupancyBuckets; ++b) {
      if (stats.occupancy_hist[b] == 0) continue;
      std::fprintf(stderr, " [%s]=%llu",
                   llm::ClientStats::occupancy_bucket_label(b),
                   static_cast<unsigned long long>(stats.occupancy_hist[b]));
    }
    std::fprintf(stderr, "\n");

    // Resilience summary: only interesting when faults / retries /
    // backpressure / the breaker were actually in play.
    if (faults_on || retry.max_attempts > 1 || breaker.enabled ||
        batcher.max_pending > 0) {
      std::fprintf(stderr,
                   "resilience: %llu served, %llu failed "
                   "(%llu timeouts, %llu shed), %llu retries, "
                   "%llu batch splits, %llu breaker opens "
                   "(%llu fast rejections)\n",
                   static_cast<unsigned long long>(stats.requests),
                   static_cast<unsigned long long>(stats.failed_requests),
                   static_cast<unsigned long long>(stats.timeouts),
                   static_cast<unsigned long long>(stats.pending_shed),
                   static_cast<unsigned long long>(stats.retries),
                   static_cast<unsigned long long>(stats.batch_splits),
                   static_cast<unsigned long long>(stats.breaker_opens),
                   static_cast<unsigned long long>(stats.breaker_rejected));
      if (fault_plan != nullptr) {
        const auto fault_stats = fault_plan->stats();
        std::fprintf(stderr,
                     "fault plan drew: %llu transient, %llu permanent, "
                     "%llu slow\n",
                     static_cast<unsigned long long>(fault_stats.transient),
                     static_cast<unsigned long long>(fault_stats.permanent),
                     static_cast<unsigned long long>(fault_stats.slow));
      }
      std::fprintf(stderr, "retry latency histogram:");
      bool any = false;
      for (std::size_t b = 0; b < llm::ClientStats::kRetryLatencyBuckets;
           ++b) {
        if (stats.retry_latency_hist[b] == 0) continue;
        any = true;
        std::fprintf(
            stderr, " [%s]=%llu",
            llm::ClientStats::retry_latency_bucket_label(b),
            static_cast<unsigned long long>(stats.retry_latency_hist[b]));
      }
      std::fprintf(stderr, any ? "\n" : " (no retried requests)\n");
    }
  }

  if (store != nullptr && cache_save) {
    std::size_t persisted = 0;
    for (const auto& llmj : judges) persisted += llmj->persist_cache();
    if (store->save()) {
      std::fprintf(report, "\ncache: persisted %zu records to %s\n",
                   persisted, cache_file.c_str());
    } else {
      std::fprintf(report, "\ncache: SAVE FAILED: %s\n",
                   store->last_error().c_str());
      return 1;
    }
  }

  if (!obs_flags.finish(&registry)) return 1;
  return 0;
}
