#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "support/cli.hpp"

/// Shared observability flags for the demo / server binaries
/// (docs/OBSERVABILITY.md). Every binary that wires the obs/ subsystem
/// takes the same three flags with the same semantics:
///
///   --trace-out <path>    export a Chrome trace-event JSON at exit; `-`
///                         writes the JSON to stdout and moves the human
///                         report to stderr (report())
///   --trace-jsonl <path>  export the same spans as a JSONL log
///   --metrics-dump        dump the metrics registry to stderr in
///                         Prometheus text format at exit
///
/// Parse once, hand tracer() to whatever produces spans, and call
/// finish(&registry) last. Header-only so the examples (which build as
/// standalone binaries, not against each other) can all include it.
namespace llm4vv::examples {

class ObsFlags {
 public:
  static ObsFlags parse(const support::CliArgs& args) {
    ObsFlags flags;
    flags.trace_out_ = args.get("trace-out", "");
    flags.trace_jsonl_ = args.get("trace-jsonl", "");
    flags.metrics_dump_ = args.has("metrics-dump");
    if (!flags.trace_out_.empty() || !flags.trace_jsonl_.empty()) {
      flags.tracer_ = std::make_shared<obs::Tracer>();
    }
    return flags;
  }

  bool wants_trace() const noexcept { return tracer_ != nullptr; }
  bool metrics_dump() const noexcept { return metrics_dump_; }
  bool trace_to_stdout() const noexcept { return trace_out_ == "-"; }

  /// Where the human-readable report goes: stdout normally, stderr when
  /// the trace JSON owns stdout (so `--trace-out=- | check_trace.py -`
  /// pipes clean JSON).
  std::FILE* report() const noexcept {
    return trace_to_stdout() ? stderr : stdout;
  }

  /// Null when no trace flag was given — safe to pass to span producers.
  const std::shared_ptr<obs::Tracer>& tracer() const noexcept {
    return tracer_;
  }

  /// Run the exports: metrics dump first (stderr), then the Chrome trace,
  /// then the JSONL log. Returns false when an output file cannot be
  /// opened (the caller should exit nonzero).
  bool finish(const obs::Registry* registry) const {
    if (metrics_dump_ && registry != nullptr) {
      std::fprintf(stderr, "\n--- metrics registry ---\n%s",
                   registry->render_text().c_str());
    }
    if (tracer_ == nullptr) return true;
    const auto events = tracer_->collect();
    if (!trace_out_.empty()) {
      if (trace_to_stdout()) {
        obs::write_chrome_trace(std::cout, events, tracer_->dropped());
      } else {
        std::ofstream out(trace_out_, std::ios::trunc);
        if (!out.is_open()) {
          std::fprintf(stderr, "trace: cannot open %s\n", trace_out_.c_str());
          return false;
        }
        obs::write_chrome_trace(out, events, tracer_->dropped());
        std::fprintf(stderr, "trace: wrote %zu spans to %s\n", events.size(),
                     trace_out_.c_str());
      }
    }
    if (!trace_jsonl_.empty()) {
      std::ofstream out(trace_jsonl_, std::ios::trunc);
      if (!out.is_open()) {
        std::fprintf(stderr, "trace: cannot open %s\n", trace_jsonl_.c_str());
        return false;
      }
      obs::write_span_jsonl(out, events);
      std::fprintf(stderr, "trace: wrote %zu spans to %s\n", events.size(),
                   trace_jsonl_.c_str());
    }
    return true;
  }

 private:
  std::string trace_out_;
  std::string trace_jsonl_;
  bool metrics_dump_ = false;
  std::shared_ptr<obs::Tracer> tracer_;
};

}  // namespace llm4vv::examples
