// Testsuite builder: the paper's end goal, assembled from this library.
//
// "Our reason for exploring this usage of an LLMJ is to help automate the
//  creation of functional validation and verification test suites" — the
// pipeline exists to filter raw LLM-generated candidate tests into a suite
// a compiler team can trust. This example runs that workflow:
//
//   candidate stream (50% defective, like raw LLM output)
//     -> filter-early validation pipeline (compile / execute / agent LLMJ)
//     -> accepted testsuite + precision/recall accounting vs ground truth
//
// Build & run:  ./build/examples/testsuite_builder
#include <cstdio>

#include "core/llm4vv.hpp"
#include "probing/candidates.hpp"

int main() {
  using namespace llm4vv;

  probing::CandidateConfig config;
  config.flavor = frontend::Flavor::kOpenACC;
  config.count = 400;
  config.defect_rate = 0.5;
  const auto candidates = probing::generate_candidates(config);

  std::size_t truly_valid = 0;
  for (const auto& c : candidates) {
    if (c.truly_valid) ++truly_valid;
  }
  std::printf("candidate stream: %zu files, %zu truly valid (%.0f%%)\n",
              candidates.size(), truly_valid,
              100.0 * static_cast<double>(truly_valid) /
                  static_cast<double>(candidates.size()));

  auto client = core::make_simulated_client(4);
  auto llmj = std::make_shared<const judge::Llmj>(
      client, llm::PromptStyle::kAgentDirect);
  pipeline::PipelineConfig pipe_config;
  pipe_config.mode = pipeline::PipelineMode::kFilterEarly;
  pipe_config.compile_workers = 2;
  pipe_config.execute_workers = 2;
  pipe_config.judge_workers = 4;
  const pipeline::ValidationPipeline pipe(
      toolchain::CompilerDriver(toolchain::nvc_persona()),
      toolchain::Executor(), llmj, pipe_config);

  std::vector<frontend::SourceFile> files;
  for (const auto& c : candidates) files.push_back(c.file);
  const auto result = pipe.run(files);

  // Assemble the accepted suite and score it against the hidden truth.
  std::size_t accepted = 0;
  std::size_t accepted_valid = 0;   // true positives
  std::size_t rejected_valid = 0;   // false rejections
  std::size_t accepted_invalid = 0; // escapes
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const bool pass = result.records[i].pipeline_says_valid;
    if (pass) {
      ++accepted;
      if (candidates[i].truly_valid) ++accepted_valid;
      else ++accepted_invalid;
    } else if (candidates[i].truly_valid) {
      ++rejected_valid;
    }
  }

  const double precision =
      accepted == 0 ? 0.0
                    : static_cast<double>(accepted_valid) /
                          static_cast<double>(accepted);
  const double recall = truly_valid == 0
                            ? 0.0
                            : static_cast<double>(accepted_valid) /
                                  static_cast<double>(truly_valid);
  std::printf("\naccepted suite: %zu tests\n", accepted);
  std::printf("  precision (accepted tests that are really valid): %.1f%%\n",
              precision * 100.0);
  std::printf("  recall    (valid candidates that survived):       %.1f%%\n",
              recall * 100.0);
  std::printf("  escapes   (defective tests in the final suite):   %zu\n",
              accepted_invalid);
  std::printf(
      "  cost: %zu of %zu files reached the LLM stage "
      "(%.1f simulated GPU seconds)\n",
      result.judge_stage.processed, candidates.size(),
      result.judge_gpu_seconds);

  std::printf(
      "\nRaw candidate streams are ~50%% junk; the filtered suite is "
      "~%.0f%% trustworthy. The residual escapes are dominated by the "
      "trailing-block defect class — exactly the weakness the paper's "
      "Tables IV/VII identify.\n",
      precision * 100.0);
  return 0;
}
