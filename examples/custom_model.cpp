// Extension point demo: plugging a custom LanguageModel behind the same
// interface the simulated deepseek-coder judge uses. Two toy models — a
// pass-everything baseline and a compiler-parroting heuristic — are run
// through the identical negative-probing harness and scored with the
// paper's metrics, showing how the library doubles as a *benchmark for
// judges* (its negative-probing suites score any model you can wrap).
//
// Build & run:  ./build/examples/custom_model
#include <cstdio>

#include "core/llm4vv.hpp"
#include "llm/tokenizer.hpp"
#include "support/strings.hpp"

namespace {

using namespace llm4vv;

/// Baseline: declares every test valid (what "no judge at all" buys you).
class AlwaysValidModel final : public llm::LanguageModel {
 public:
  std::string name() const override { return "always-valid-baseline"; }

  llm::Completion generate(const std::string& prompt,
                           const llm::GenerationParams&) const override {
    llm::Completion completion;
    completion.text = "Everything is fine.\nFINAL JUDGEMENT: valid\n";
    completion.prompt_tokens =
        llm::default_tokenizer().count_tokens(prompt);
    completion.completion_tokens = 10;
    return completion;
  }
};

/// Heuristic: parrots the tool outputs quoted in the agent prompt —
/// invalid iff either return code is non-zero. No code understanding.
class ToolParrotModel final : public llm::LanguageModel {
 public:
  std::string name() const override { return "tool-parrot"; }

  llm::Completion generate(const std::string& prompt,
                           const llm::GenerationParams&) const override {
    const bool compiler_failed =
        support::contains(prompt, "Compiler return code: ") &&
        !support::contains(prompt, "Compiler return code: 0");
    const bool run_failed = support::contains(prompt, "\nReturn code: ") &&
                            !support::contains(prompt, "\nReturn code: 0");
    llm::Completion completion;
    completion.text =
        std::string("The tools speak for themselves.\nFINAL JUDGEMENT: ") +
        (compiler_failed || run_failed ? "invalid" : "valid") + "\n";
    completion.prompt_tokens =
        llm::default_tokenizer().count_tokens(prompt);
    completion.completion_tokens = 12;
    return completion;
  }
};

metrics::EvalReport score(std::shared_ptr<const llm::LanguageModel> model) {
  // A small Part Two-style harness around the custom model.
  corpus::GeneratorConfig gen;
  gen.flavor = frontend::Flavor::kOpenACC;
  gen.count = 260;
  gen.seed = 555;
  const auto suite = corpus::generate_suite(gen);
  probing::ProbingConfig probe;
  probe.issue_counts = {30, 30, 30, 30, 30, 90};
  probe.seed = 5;
  const auto probed = probing::probe_suite(suite, probe);

  auto client = std::make_shared<llm::ModelClient>(std::move(model), 2);
  auto judge = std::make_shared<const judge::Llmj>(
      client, llm::PromptStyle::kAgentDirect);
  pipeline::PipelineConfig config;
  config.mode = pipeline::PipelineMode::kRecordAll;
  config.compile_workers = 2;
  config.execute_workers = 2;
  config.judge_workers = 2;
  const pipeline::ValidationPipeline pipe(
      toolchain::CompilerDriver(toolchain::nvc_persona()),
      toolchain::Executor(), judge, config);

  std::vector<frontend::SourceFile> files;
  for (const auto& pf : probed.files) files.push_back(pf.file);
  const auto result = pipe.run(files);

  std::vector<metrics::JudgmentRecord> judgments;
  for (std::size_t i = 0; i < probed.files.size(); ++i) {
    judgments.push_back(metrics::JudgmentRecord{
        probed.files[i].issue, result.records[i].judge_says_valid});
  }
  return metrics::evaluate(judgments);
}

}  // namespace

int main() {
  using namespace llm4vv;
  struct Entry {
    const char* label;
    std::shared_ptr<const llm::LanguageModel> model;
  };
  const Entry entries[] = {
      {"always-valid baseline", std::make_shared<AlwaysValidModel>()},
      {"tool-parrot heuristic", std::make_shared<ToolParrotModel>()},
      {"simulated deepseek-coder-33b",
       std::make_shared<llm::SimulatedCoderModel>()},
  };
  std::printf("%-30s %10s %8s\n", "judge model", "accuracy", "bias");
  for (const auto& entry : entries) {
    const auto report = score(entry.model);
    std::printf("%-30s %9.2f%% %+8.3f\n", entry.label,
                report.overall_accuracy * 100.0, report.bias);
  }
  std::printf(
      "\nThe baseline shows the floor (accuracy == valid share), the "
      "parrot shows what tool outputs alone buy, and the simulated coder "
      "model adds code-level perception on top.\n");
  return 0;
}
