// Quickstart: the whole system in ~60 lines.
//
// 1. Generate a small suite of valid OpenACC V&V tests.
// 2. Turn it into a negative-probing benchmark (known-invalid mutants +
//    untouched files).
// 3. Run the compile -> execute -> LLM-judge validation pipeline.
// 4. Score the pipeline with the paper's metrics.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/llm4vv.hpp"

int main() {
  using namespace llm4vv;

  // 1. A suite of valid tests (deterministic: same seed, same files).
  corpus::GeneratorConfig gen;
  gen.flavor = frontend::Flavor::kOpenACC;
  gen.count = 120;
  gen.seed = 2026;
  const corpus::Suite suite = corpus::generate_suite(gen);
  std::printf("generated %zu valid tests (first: %s)\n", suite.size(),
              suite.cases.front().file.name.c_str());

  // 2. Negative probing: 10 files per error class, 50 untouched.
  probing::ProbingConfig probe;
  probe.issue_counts = {10, 10, 10, 10, 10, 50};
  probe.seed = 7;
  const probing::ProbedSuite probed = probing::probe_suite(suite, probe);

  // 3. The validation pipeline with an agent-based judge (LLMJ 1).
  auto client = core::make_simulated_client(/*max_concurrency=*/2);
  auto judge = std::make_shared<const judge::Llmj>(
      client, llm::PromptStyle::kAgentDirect);
  pipeline::PipelineConfig config;
  config.mode = pipeline::PipelineMode::kFilterEarly;
  config.compile_workers = 2;
  config.execute_workers = 2;
  config.judge_workers = 2;
  const pipeline::ValidationPipeline pipe(
      toolchain::CompilerDriver(toolchain::nvc_persona()),
      toolchain::Executor(), judge, config);

  std::vector<frontend::SourceFile> files;
  for (const auto& pf : probed.files) files.push_back(pf.file);
  const pipeline::PipelineResult result = pipe.run(files);

  std::printf(
      "pipeline: %zu compiled-ok, %zu ran-ok, %zu judged "
      "(%.1f simulated GPU seconds; early filtering skipped %zu files)\n",
      result.compile_stage.processed - result.compile_stage.rejected,
      result.execute_stage.processed - result.execute_stage.rejected,
      result.judge_stage.processed, result.judge_gpu_seconds,
      files.size() - result.judge_stage.processed);

  // 4. Score the pipeline verdicts against ground truth.
  std::vector<metrics::JudgmentRecord> judgments;
  for (std::size_t i = 0; i < probed.files.size(); ++i) {
    judgments.push_back(metrics::JudgmentRecord{
        probed.files[i].issue, result.records[i].pipeline_says_valid});
  }
  const metrics::EvalReport report = metrics::evaluate(judgments);
  for (int id = 0; id < 6; ++id) {
    std::printf("  %-50s accuracy %5.1f%% (n=%zu)\n",
                probing::issue_row_label(
                    static_cast<probing::IssueType>(id), gen.flavor)
                    .c_str(),
                report.per_issue[static_cast<std::size_t>(id)].accuracy() *
                    100.0,
                report.per_issue[static_cast<std::size_t>(id)].count);
  }
  std::printf("overall accuracy %.2f%%, bias %+0.3f\n",
              report.overall_accuracy * 100.0, report.bias);
  return 0;
}
