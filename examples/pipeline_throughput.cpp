// Pipeline economics demo: what early filtering saves, and how stage
// parallelism scales — the two design claims of the paper's Section III-C,
// measured on one batch.
//
// Build & run:  ./build/examples/pipeline_throughput
#include <cstdio>

#include "core/llm4vv.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace llm4vv;

std::vector<frontend::SourceFile> make_batch() {
  corpus::GeneratorConfig gen;
  gen.flavor = frontend::Flavor::kOpenACC;
  gen.count = 300;
  gen.seed = 11;
  const auto suite = corpus::generate_suite(gen);
  probing::ProbingConfig probe;
  // A realistic LLM-generated candidate batch: high invalidity.
  probe.issue_counts = {40, 40, 40, 40, 40, 40};
  probe.seed = 3;
  std::vector<frontend::SourceFile> files;
  for (const auto& pf : probing::probe_suite(suite, probe).files) {
    files.push_back(pf.file);
  }
  return files;
}

}  // namespace

int main() {
  using namespace llm4vv;
  const auto files = make_batch();
  std::printf("batch: %zu candidate tests (5/6 invalid, like raw "
              "LLM-generated code)\n\n", files.size());

  std::printf("%-12s %-8s %10s %12s %14s %12s %10s\n", "mode", "workers",
              "wall (s)", "judged", "sim GPU (s)", "files/s", "cache h/m");
  for (const auto mode : {pipeline::PipelineMode::kRecordAll,
                          pipeline::PipelineMode::kFilterEarly}) {
    for (const std::size_t workers : {1u, 2u, 4u}) {
      auto client = core::make_simulated_client(workers);
      auto judge = std::make_shared<const judge::Llmj>(
          client, llm::PromptStyle::kAgentDirect);
      pipeline::PipelineConfig config;
      config.mode = mode;
      config.compile_workers = workers;
      config.execute_workers = workers;
      config.judge_workers = workers;
      const pipeline::ValidationPipeline pipe(
          toolchain::CompilerDriver(toolchain::nvc_persona()),
          toolchain::Executor(), judge, config);
      support::Stopwatch timer;
      const auto result = pipe.run(files);
      const double wall = timer.seconds();
      char cache_cell[32];
      std::snprintf(cache_cell, sizeof cache_cell, "%llu/%llu",
                    static_cast<unsigned long long>(result.judge_cache_hits),
                    static_cast<unsigned long long>(
                        result.judge_cache_misses));
      std::printf("%-12s %-8zu %10.3f %12zu %14.1f %12.0f %10s\n",
                  mode == pipeline::PipelineMode::kRecordAll ? "record-all"
                                                             : "filter",
                  workers, wall, result.judge_stage.processed,
                  result.judge_gpu_seconds,
                  static_cast<double>(files.size()) / wall, cache_cell);
    }
  }
  std::printf(
      "\nTakeaways: filtering cuts the LLM stage's simulated GPU time "
      "roughly in proportion to the invalid share caught by the cheap "
      "stages, worker scaling raises files/sec until the LLM stage's "
      "concurrency cap binds, and duplicate candidates (common in probed "
      "batches) are served from the judge's memo cache for free.\n");
  return 0;
}
