// Pipeline economics demo: what early filtering saves, and how stage
// parallelism scales — the two design claims of the paper's Section III-C,
// measured on one batch.
//
// Build & run:  ./build/examples/pipeline_throughput
//
// Observability (the PR 8 obs/ subsystem, docs/OBSERVABILITY.md):
//   --trace-out <path>   after the sweep, run one traced record-all pass
//                        (2 workers per stage, fresh client) and export a
//                        Chrome trace-event JSON: per-file compile /
//                        queue-wait / execute / judge spans plus the
//                        client's flush spans with flow arrows into the
//                        judge spans they served. `-` writes to stdout
//                        (the sweep table moves to stderr).
//   --trace-files <n>    corpus size of the traced pass (default 120)
//   --metrics-dump       attach a metrics registry to the traced pass and
//                        dump it to stderr in Prometheus text format
#include <cstdio>

#include "core/llm4vv.hpp"
#include "examples/obs_flags.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "support/cli.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace llm4vv;

std::vector<frontend::SourceFile> make_batch(std::size_t count) {
  corpus::GeneratorConfig gen;
  gen.flavor = frontend::Flavor::kOpenACC;
  gen.count = count;
  gen.seed = 11;
  const auto suite = corpus::generate_suite(gen);
  probing::ProbingConfig probe;
  // A realistic LLM-generated candidate batch: high invalidity. The same
  // 2/15-per-issue share as the original 300-file demo (6 x 40 of 300), so
  // the sweep numbers are unchanged and smaller traced batches keep the
  // invalid mix.
  probe.issue_counts.fill(count * 2 / 15);
  probe.seed = 3;
  std::vector<frontend::SourceFile> files;
  for (const auto& pf : probing::probe_suite(suite, probe).files) {
    files.push_back(pf.file);
  }
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace llm4vv;
  const support::CliArgs args(argc, argv);
  const auto obs_flags = examples::ObsFlags::parse(args);
  std::FILE* const report = obs_flags.report();

  const auto files = make_batch(300);
  std::fprintf(report,
               "batch: %zu candidate tests (5/6 invalid, like raw "
               "LLM-generated code)\n\n", files.size());

  std::fprintf(report, "%-12s %-8s %10s %12s %14s %12s %10s\n", "mode",
               "workers", "wall (s)", "judged", "sim GPU (s)", "files/s",
               "cache h/m");
  for (const auto mode : {pipeline::PipelineMode::kRecordAll,
                          pipeline::PipelineMode::kFilterEarly}) {
    for (const std::size_t workers : {1u, 2u, 4u}) {
      auto client = core::make_simulated_client(workers);
      auto judge = std::make_shared<const judge::Llmj>(
          client, llm::PromptStyle::kAgentDirect);
      pipeline::PipelineConfig config;
      config.mode = mode;
      config.compile_workers = workers;
      config.execute_workers = workers;
      config.judge_workers = workers;
      const pipeline::ValidationPipeline pipe(
          toolchain::CompilerDriver(toolchain::nvc_persona()),
          toolchain::Executor(), judge, config);
      support::Stopwatch timer;
      const auto result = pipe.run(files);
      const double wall = timer.seconds();
      char cache_cell[32];
      std::snprintf(cache_cell, sizeof cache_cell, "%llu/%llu",
                    static_cast<unsigned long long>(result.judge_cache_hits),
                    static_cast<unsigned long long>(
                        result.judge_cache_misses));
      std::fprintf(report, "%-12s %-8zu %10.3f %12zu %14.1f %12.0f %10s\n",
                   mode == pipeline::PipelineMode::kRecordAll ? "record-all"
                                                              : "filter",
                   workers, wall, result.judge_stage.processed,
                   result.judge_gpu_seconds,
                   static_cast<double>(files.size()) / wall, cache_cell);
    }
  }
  std::fprintf(report,
      "\nTakeaways: filtering cuts the LLM stage's simulated GPU time "
      "roughly in proportion to the invalid share caught by the cheap "
      "stages, worker scaling raises files/sec until the LLM stage's "
      "concurrency cap binds, and duplicate candidates (common in probed "
      "batches) are served from the judge's memo cache for free.\n");

  // Dedicated traced pass: additive, so the sweep above stays untouched.
  // Everything runs through PipelineConfig::trace/registry — the same
  // wiring bench/perf_obs.cpp gates and tools/check_trace.py validates.
  if (obs_flags.wants_trace() || obs_flags.metrics_dump()) {
    const std::size_t traced_count =
        static_cast<std::size_t>(args.get_int("trace-files", 120));
    const auto traced_files = make_batch(traced_count);
    auto client = core::make_simulated_client(2);
    auto judge = std::make_shared<const judge::Llmj>(
        client, llm::PromptStyle::kAgentDirect);
    pipeline::PipelineConfig config;
    config.mode = pipeline::PipelineMode::kRecordAll;
    config.compile_workers = 2;
    config.execute_workers = 2;
    config.judge_workers = 2;
    auto registry = std::make_shared<obs::Registry>();
    config.registry = registry;
    if (obs_flags.wants_trace()) {
      config.trace = obs_flags.tracer();
      client->set_tracer(obs_flags.tracer());
    }
    const pipeline::ValidationPipeline pipe(
        toolchain::CompilerDriver(toolchain::nvc_persona()),
        toolchain::Executor(), judge, config);
    const auto result = pipe.run(traced_files);
    std::fprintf(stderr,
                 "\ntraced pass: %zu files, %zu judged, %zu errors, "
                 "%.1f sim GPU s, %zu metric samples\n",
                 traced_files.size(), result.judge_stage.processed,
                 result.judge_errors, result.judge_gpu_seconds,
                 result.metrics.size());
    if (!obs_flags.finish(registry.get())) return 1;
  }
  return 0;
}
