#include "metrics/metrics.hpp"

#include <cmath>

namespace llm4vv::metrics {

EvalReport evaluate(std::span<const JudgmentRecord> records) {
  EvalReport report;
  long bias_total = 0;
  for (const auto& record : records) {
    const auto id = static_cast<std::size_t>(record.issue);
    const bool truth_valid = record.issue == probing::IssueType::kNoIssue;
    const bool correct = record.says_valid == truth_valid;
    auto& row = report.per_issue[id];
    ++row.count;
    ++report.total_count;
    if (correct) {
      ++row.correct;
    } else {
      ++row.incorrect;
      ++report.total_mistakes;
      // Mistake on an invalid file = permissiveness (+1); mistake on a
      // valid file = restrictiveness (-1).
      bias_total += truth_valid ? -1 : +1;
    }
  }
  report.overall_accuracy =
      report.total_count == 0
          ? 0.0
          : static_cast<double>(report.total_count - report.total_mistakes) /
                static_cast<double>(report.total_count);
  report.bias = report.total_mistakes == 0
                    ? 0.0
                    : static_cast<double>(bias_total) /
                          static_cast<double>(report.total_mistakes);
  return report;
}

std::array<double, 6> radar_axes(const EvalReport& report) {
  std::array<double, 6> axes{};
  for (std::size_t i = 0; i < 6; ++i) {
    axes[i] = report.per_issue[i].accuracy();
  }
  return axes;
}

std::array<std::string, 6> radar_axis_labels(frontend::Flavor flavor) {
  const std::string model = frontend::flavor_name(flavor);
  return {
      model + " misuse",   // issue 0
      "Syntax",            // issue 1
      "Undeclared var",    // issue 2
      "Non-" + model,      // issue 3
      "Test logic",        // issue 4
      "Valid tests",       // issue 5
  };
}

std::string render_radar(const std::vector<std::array<double, 6>>& series,
                         const std::vector<std::string>& series_names,
                         const std::array<std::string, 6>& axis_labels) {
  constexpr int kRows = 27;
  constexpr int kCols = 61;
  constexpr double kRadiusRows = 11.0;  // terminal cells are ~2:1
  constexpr double kRadiusCols = 24.0;
  const double pi = std::acos(-1.0);

  std::vector<std::string> grid(kRows, std::string(kCols, ' '));
  const int cy = kRows / 2;
  const int cx = kCols / 2;

  const auto place = [&](double axis_fraction, std::size_t axis, char mark) {
    const double angle = -pi / 2.0 + static_cast<double>(axis) * pi / 3.0;
    const int r =
        cy + static_cast<int>(std::round(std::sin(angle) * kRadiusRows *
                                         axis_fraction));
    const int c =
        cx + static_cast<int>(std::round(std::cos(angle) * kRadiusCols *
                                         axis_fraction));
    if (r >= 0 && r < kRows && c >= 0 && c < kCols) {
      grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = mark;
    }
  };

  // Axis spokes with tick dots at 50% and 100%.
  for (std::size_t axis = 0; axis < 6; ++axis) {
    for (int step = 1; step <= 10; ++step) {
      place(step / 10.0, axis, step == 10 ? '+' : '.');
    }
  }
  grid[static_cast<std::size_t>(cy)][static_cast<std::size_t>(cx)] = 'o';

  // Series markers (later series overwrite earlier on exact collisions,
  // which the legend calls out).
  for (std::size_t s = 0; s < series.size(); ++s) {
    const char mark = static_cast<char>('1' + s);
    for (std::size_t axis = 0; axis < 6; ++axis) {
      place(series[s][axis], axis, mark);
    }
  }

  std::string out;
  for (const auto& row : grid) {
    out += row;
    out += '\n';
  }
  out += "axes (clockwise from top):";
  for (std::size_t axis = 0; axis < 6; ++axis) {
    out += (axis == 0 ? " " : " | ") + axis_labels[axis];
  }
  out += "\nlegend:";
  for (std::size_t s = 0; s < series.size(); ++s) {
    out += " [" + std::string(1, static_cast<char>('1' + s)) + "] " +
           (s < series_names.size() ? series_names[s] : "series");
    out += "  values:";
    for (std::size_t axis = 0; axis < 6; ++axis) {
      out += " " + std::to_string(static_cast<int>(
                       std::lround(series[s][axis] * 100))) + "%";
    }
    out += ";";
  }
  out += "\n('+' marks 100% on each spoke, 'o' the origin)\n";
  return out;
}

}  // namespace llm4vv::metrics
