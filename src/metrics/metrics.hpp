#pragma once

#include <array>
#include <span>
#include <vector>

#include "probing/mutation.hpp"

namespace llm4vv::metrics {

/// One scored judgment: what the file really was vs what the method said.
struct JudgmentRecord {
  probing::IssueType issue = probing::IssueType::kNoIssue;
  bool says_valid = false;  ///< the judge's / pipeline's verdict
};

/// Per-issue accuracy row (Section IV "data points recorded").
struct IssueStats {
  std::size_t count = 0;
  std::size_t correct = 0;
  std::size_t incorrect = 0;
  /// correct / count; 0 when the row is empty.
  double accuracy() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(count);
  }
};

/// The paper's full metric set for one method under negative probing.
struct EvalReport {
  std::array<IssueStats, 6> per_issue;  ///< indexed by issue id 0-5
  std::size_t total_count = 0;
  std::size_t total_mistakes = 0;
  /// Overall evaluation accuracy (Section IV).
  double overall_accuracy = 0.0;
  /// Bias in [-1, 1]: +1 per passed-invalid mistake, -1 per failed-valid
  /// mistake, divided by total mistakes (Section IV). 0 when mistake-free.
  double bias = 0.0;
};

/// Score a set of judgments against the paper's system-of-verification
/// (issues 0-4 invalid, issue 5 valid).
EvalReport evaluate(std::span<const JudgmentRecord> records);

/// Radar-figure categories (Figures 3-6 plot per-category accuracy).
/// We map the paper's axes to the issue taxonomy: directive misuse (0),
/// syntax (1), undeclared variables (2), non-model code (3), test logic
/// (4), and valid-test recognition (5).
std::array<double, 6> radar_axes(const EvalReport& report);

/// Axis labels for the radar renderer, flavor-aware.
std::array<std::string, 6> radar_axis_labels(frontend::Flavor flavor);

/// Render an ASCII radar chart of up to three series on the six axes.
/// Marker characters identify each series ('1', '2', '3', ...).
std::string render_radar(const std::vector<std::array<double, 6>>& series,
                         const std::vector<std::string>& series_names,
                         const std::array<std::string, 6>& axis_labels);

}  // namespace llm4vv::metrics
