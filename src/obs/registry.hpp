#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/cells.hpp"
#include "support/thread_annotations.hpp"

/// obs::Registry — the unified metrics registry (docs/OBSERVABILITY.md).
///
/// Two kinds of metric coexist:
///
///  * Owned handles (Counter/Gauge/Histogram): get-or-create by name, backed
///    by sharded atomic cells from obs/cells.hpp. Handles are trivially
///    copyable pointers, valid for the registry's lifetime, and null-safe —
///    a default-constructed handle makes every operation a single branch,
///    which is how instrumented hot paths cost nothing when no registry is
///    attached.
///
///  * Probes: scrape-time callbacks registered against a name (and optional
///    bucket label). The pre-existing stats structs (ClientStats,
///    JudgeCacheStats, ArtifactStoreStats, queue accessors) re-register
///    into the registry as probes over their own snapshot methods, so the
///    registry value and the legacy field are the same number by
///    construction — the structs stay authoritative and no public API or
///    bench JSON field changes. tests/obs_consistency_test.cpp asserts the
///    equality stays exact.
///
/// Scrapes (`snapshot()`, `render_text()`) aggregate cells and run probes
/// under the registration mutex; probe callbacks must not call back into
/// the registry. Naming convention: lowercase dotted paths
/// ("pipeline.judge.errors", "llm.client.requests"); the text renderer
/// sanitizes to Prometheus charset and prefixes "llm4vv_".
namespace llm4vv::obs {

/// One scraped value. Histograms expand to one sample per bucket
/// (label "le:<edge>" / "le:+Inf") plus "<name>.count" and "<name>.sum".
struct MetricSample {
  std::string name;
  std::string label;  // empty for scalar samples
  double value = 0.0;
};

using MetricsSnapshot = std::vector<MetricSample>;

/// Lookup helper: first sample matching name (and label); nullptr if none.
const MetricSample* find_sample(const MetricsSnapshot& snapshot,
                                const std::string& name,
                                const std::string& label = "");

class Registry;

/// Monotonic counter handle. Copyable, null-safe (default = inert).
class Counter {
 public:
  Counter() = default;

  void inc(std::uint64_t n = 1) const noexcept {
    if (cells_ != nullptr) cells_->add(n);
  }
  explicit operator bool() const noexcept { return cells_ != nullptr; }

 private:
  friend class Registry;
  explicit Counter(CounterCells* cells) noexcept : cells_(cells) {}
  CounterCells* cells_ = nullptr;
};

/// Last-writer-wins gauge handle. Copyable, null-safe.
class Gauge {
 public:
  Gauge() = default;

  void set(std::int64_t v) const noexcept {
    if (cell_ != nullptr) cell_->set(v);
  }
  void add(std::int64_t n) const noexcept {
    if (cell_ != nullptr) cell_->add(n);
  }
  explicit operator bool() const noexcept { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Gauge(GaugeCell* cell) noexcept : cell_(cell) {}
  GaugeCell* cell_ = nullptr;
};

/// Fixed-edge integer histogram handle. Copyable, null-safe.
class Histogram {
 public:
  Histogram() = default;

  void observe(std::uint64_t v) const noexcept {
    if (cells_ != nullptr) cells_->observe(v);
  }
  explicit operator bool() const noexcept { return cells_ != nullptr; }

 private:
  friend class Registry;
  explicit Histogram(HistogramCells* cells) noexcept : cells_(cells) {}
  HistogramCells* cells_ = nullptr;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create by name. Handles stay valid for the registry lifetime;
  /// re-requesting a name returns a handle over the same cells (cheap
  /// enough per pipeline run, not per item — cache the handle in hot code).
  Counter counter(const std::string& name) EXCLUDES(mutex_);
  Gauge gauge(const std::string& name) EXCLUDES(mutex_);
  /// `upper_edges` must be sorted ascending; an implicit +Inf overflow
  /// bucket is appended. Re-requesting an existing histogram ignores the
  /// edges argument and returns the original.
  Histogram histogram(const std::string& name,
                      std::vector<std::uint64_t> upper_edges) EXCLUDES(mutex_);

  /// Scrape-time callback metric. Re-registering the same (name, label)
  /// replaces the previous probe. The callback outlives registration —
  /// unregister (or destroy the registry) before the captured object dies.
  void register_probe(const std::string& name,
                      std::function<double()> fn) EXCLUDES(mutex_);
  void register_probe(const std::string& name, const std::string& label,
                      std::function<double()> fn) EXCLUDES(mutex_);

  /// Drop every probe whose name starts with `prefix` (run-scoped objects,
  /// e.g. the pipeline's per-run queues, unregister on teardown). Owned
  /// counter/gauge/histogram metrics are deliberately permanent — handles
  /// to them may still be live.
  void unregister_prefix(const std::string& prefix) EXCLUDES(mutex_);

  /// Aggregate everything: cells summed, probes invoked. Sorted by name
  /// (stable, so histogram buckets keep registration order).
  MetricsSnapshot snapshot() const EXCLUDES(mutex_);

  /// Prometheus-style text exposition of snapshot().
  std::string render_text() const EXCLUDES(mutex_);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct OwnedMetric {
    std::string name;
    Kind kind;
    std::unique_ptr<CounterCells> counter;
    std::unique_ptr<GaugeCell> gauge;
    std::unique_ptr<HistogramCells> histogram;
  };
  struct Probe {
    std::string name;
    std::string label;
    std::function<double()> fn;
  };

  OwnedMetric* find_owned_locked(const std::string& name) REQUIRES(mutex_);

  mutable support::Mutex mutex_;
  std::vector<std::unique_ptr<OwnedMetric>> owned_ GUARDED_BY(mutex_);
  std::vector<Probe> probes_ GUARDED_BY(mutex_);
};

}  // namespace llm4vv::obs
