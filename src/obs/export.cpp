#include "obs/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <set>
#include <string>

#include "support/jsonl.hpp"

namespace llm4vv::obs {
namespace {

/// args{} key for the kind-specific integer payload.
const char* arg_key(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::kRun: return "files";
    case SpanKind::kCompile:
    case SpanKind::kExecute: return "accepted";
    case SpanKind::kQueueWait: return "queue";
    case SpanKind::kJudge: return "verdict";
    case SpanKind::kFlush: return "batch_size";
    case SpanKind::kRetry:
    case SpanKind::kBackoff: return "attempt";
  }
  return "arg";
}

std::string u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string i64(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

}  // namespace

void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events,
                        std::uint64_t dropped_events) {
  // Rebase timestamps to the earliest span so traces open at t=0.
  std::uint64_t epoch = 0;
  bool first_event = true;
  std::set<std::uint32_t> tids;
  std::set<std::uint64_t> flow_origins;
  for (const TraceEvent& event : events) {
    if (first_event || event.start_us < epoch) epoch = event.start_us;
    first_event = false;
    tids.insert(event.tid);
    if (event.kind == SpanKind::kFlush && event.flow_id != 0)
      flow_origins.insert(event.flow_id);
  }

  out << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& body) {
    if (!first) out << ",";
    first = false;
    out << "\n" << body;
  };

  emit("{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
       "\"args\":{\"name\":\"llm4vv\"}}");
  for (std::uint32_t tid : tids) {
    emit("{\"ph\":\"M\",\"pid\":1,\"tid\":" + u64(tid) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"worker-" +
         u64(tid) + "\"}}");
  }

  for (const TraceEvent& event : events) {
    const std::uint64_t ts = event.start_us - epoch;
    const std::uint64_t dur =
        event.end_us >= event.start_us ? event.end_us - event.start_us : 0;
    std::string body = "{\"ph\":\"X\",\"pid\":1,\"tid\":" + u64(event.tid) +
                       ",\"ts\":" + u64(ts) + ",\"dur\":" + u64(dur) +
                       ",\"name\":\"" + span_name(event.kind) +
                       "\",\"cat\":\"" + span_category(event.kind) +
                       "\",\"args\":{\"trace_id\":" + u64(event.trace_id) +
                       ",\"span_id\":" + u64(event.span_id) +
                       ",\"parent_id\":" + u64(event.parent_id) + ",\"" +
                       arg_key(event.kind) + "\":" + i64(event.arg);
    if (event.gpu_seconds != 0.0) {
      body += ",\"gpu_s\":" + support::format_double_roundtrip(
                                  event.gpu_seconds);
    }
    body += "}}";
    emit(body);

    if (event.kind == SpanKind::kFlush && event.flow_id != 0) {
      // Flow origin, bound inside the flush slice at its start.
      emit("{\"ph\":\"s\",\"pid\":1,\"tid\":" + u64(event.tid) +
           ",\"ts\":" + u64(ts) + ",\"id\":" + u64(event.flow_id) +
           ",\"name\":\"batch\",\"cat\":\"flow\"}");
    } else if (event.flow_id != 0 && flow_origins.count(event.flow_id) != 0) {
      // Flow target, bound to the enclosing slice at its end (the flow id
      // is only emitted when its origin flush span made it into the trace
      // — a cache-replayed completion may reference a flush from an
      // earlier, uncollected run).
      emit("{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":" + u64(event.tid) +
           ",\"ts\":" + u64(ts + dur) + ",\"id\":" + u64(event.flow_id) +
           ",\"name\":\"batch\",\"cat\":\"flow\"}");
    }
  }

  out << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
      << "\"dropped_events\":" << dropped_events << "}}\n";
}

void write_span_jsonl(std::ostream& out,
                      const std::vector<TraceEvent>& events) {
  std::uint64_t epoch = 0;
  bool first = true;
  for (const TraceEvent& event : events) {
    if (first || event.start_us < epoch) epoch = event.start_us;
    first = false;
  }
  for (const TraceEvent& event : events) {
    const std::uint64_t dur =
        event.end_us >= event.start_us ? event.end_us - event.start_us : 0;
    support::JsonObject line;
    line.field("kind", std::string(span_name(event.kind)))
        .field("cat", std::string(span_category(event.kind)))
        .field("trace_id", static_cast<std::int64_t>(event.trace_id))
        .field("span", static_cast<std::int64_t>(event.span_id))
        .field("parent", static_cast<std::int64_t>(event.parent_id))
        .field("flow", static_cast<std::int64_t>(event.flow_id))
        .field("start_us", static_cast<std::int64_t>(event.start_us - epoch))
        .field("dur_us", static_cast<std::int64_t>(dur))
        .field("gpu_s", event.gpu_seconds)
        .field("arg", event.arg)
        .field("tid", static_cast<std::int64_t>(event.tid));
    out << line.str() << "\n";
  }
}

}  // namespace llm4vv::obs
