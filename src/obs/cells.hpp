#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

/// The atomic storage cells behind the obs::Registry metric handles.
///
/// This header is the one sanctioned home of raw std::atomic members under
/// src/obs/ (tools/lint_concurrency.sh rule 3 rejects them anywhere else in
/// the subsystem): every hot-path increment in the telemetry layer funnels
/// through these cell types so the sharding and memory-order policy live in
/// exactly one place.
///
/// Counters are sharded across kCellShards cache-line-padded atomics and
/// summed on scrape; writers pick a shard from a per-thread index assigned
/// round-robin at first touch, so concurrent increments from the pipeline's
/// worker pools do not contend on one line. All increments are relaxed:
/// metric reads are scrape-time aggregates with no ordering obligations to
/// the data they count.
namespace llm4vv::obs {

/// Shard count for counter/histogram cells. Power of two (the shard pick
/// is a mask); 16 covers the repo's worker-pool sizes with headroom.
inline constexpr std::size_t kCellShards = 16;

/// Cache-line size for padding. Hardcoded rather than
/// std::hardware_destructive_interference_size, which GCC warns is an
/// ABI-unstable value in headers.
inline constexpr std::size_t kCellLineBytes = 64;

/// Per-thread shard index: assigned round-robin on first use so worker
/// pools spread across shards deterministically regardless of how the
/// platform hashes thread ids.
inline std::size_t this_thread_shard() noexcept {
  static std::atomic<std::size_t> next_shard{0};
  static thread_local const std::size_t shard =
      next_shard.fetch_add(1, std::memory_order_relaxed) & (kCellShards - 1);
  return shard;
}

/// One padded counter lane. Aggregate through CounterCells, not directly.
struct alignas(kCellLineBytes) CounterCell {
  std::atomic<std::uint64_t> value{0};

  void add(std::uint64_t n) noexcept {
    value.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t load() const noexcept {
    return value.load(std::memory_order_relaxed);
  }
};

/// Sharded monotonic counter: relaxed per-thread-lane adds, summed on
/// scrape. The sum is not a linearizable point-in-time snapshot, which is
/// fine for metrics — once writers quiesce (pipeline workers joined) the
/// total is exact.
struct CounterCells {
  CounterCell shard[kCellShards];

  void add(std::uint64_t n) noexcept { shard[this_thread_shard()].add(n); }
  std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const CounterCell& cell : shard) sum += cell.load();
    return sum;
  }
};

/// Single-lane signed gauge (set/add). Gauges are last-writer-wins and
/// cannot shard meaningfully, so one padded cell is the whole story.
struct alignas(kCellLineBytes) GaugeCell {
  std::atomic<std::int64_t> value{0};

  void set(std::int64_t v) noexcept {
    value.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) noexcept {
    value.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t load() const noexcept {
    return value.load(std::memory_order_relaxed);
  }
};

/// Sharded histogram over fixed integer bucket edges: per-shard bucket
/// lanes plus sum lanes, all summed on scrape. Values are integers (the
/// registry records microseconds and sizes); the bucket for value v is the
/// first edge with v <= edge, else the overflow bucket.
struct HistogramCells {
  explicit HistogramCells(std::vector<std::uint64_t> upper_edges)
      : edges(std::move(upper_edges)),
        buckets(kCellShards * (edges.size() + 1)) {}

  std::vector<std::uint64_t> edges;
  std::vector<CounterCell> buckets;  // shard-major: [shard][bucket]
  CounterCell sum[kCellShards];

  std::size_t bucket_index(std::uint64_t v) const noexcept {
    std::size_t i = 0;
    while (i < edges.size() && v > edges[i]) ++i;
    return i;
  }

  void observe(std::uint64_t v) noexcept {
    const std::size_t shard = this_thread_shard();
    buckets[shard * (edges.size() + 1) + bucket_index(v)].add(1);
    sum[shard].add(v);
  }

  std::uint64_t bucket_total(std::size_t bucket) const noexcept {
    std::uint64_t total = 0;
    for (std::size_t shard = 0; shard < kCellShards; ++shard)
      total += buckets[shard * (edges.size() + 1) + bucket].load();
    return total;
  }
  std::uint64_t count_total() const noexcept {
    std::uint64_t total = 0;
    for (std::size_t bucket = 0; bucket <= edges.size(); ++bucket)
      total += bucket_total(bucket);
    return total;
  }
  std::uint64_t sum_total() const noexcept {
    std::uint64_t total = 0;
    for (const CounterCell& cell : sum) total += cell.load();
    return total;
  }
};

/// Unique-id allocator (span ids, tracer generations). Lives here so the
/// tracer header stays free of raw atomics under lint rule 3.
class IdCell {
 public:
  std::uint64_t allocate() noexcept {
    return next_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> next_{1};
};

}  // namespace llm4vv::obs
