#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/cells.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_annotations.hpp"

/// obs::Tracer — per-request span tracing (docs/OBSERVABILITY.md).
///
/// The pipeline threads a per-file trace id (corpus index + 1) through the
/// full lifecycle; each stage records one span: compile → queue wait →
/// execute → judge (submit to verdict), and the model client records
/// client.flush (one span per formed batch), client.retry, and
/// client.backoff. Spans carry wall time (microseconds on the
/// support::now_us() clock), sim-GPU seconds where the stage consumed any,
/// and a kind-specific integer arg (verdict, batch size, attempt).
///
/// Flow linkage: a flush span publishes its own span id as `flow_id`
/// (flow origin); the completions it fulfills carry that id back to the
/// judge spans that awaited them (flow target). The Chrome exporter turns
/// each pair into ph:"s"/"f" flow events, so Perfetto draws an arrow from
/// every batch flush to the files it served.
///
/// Storage is a bounded per-thread ring buffer (drop-oldest, dropped count
/// kept), each ring under its own mutex so recording threads never contend
/// with each other — only with a concurrent collect(), which happens after
/// the run. Tracing is off by default everywhere: call sites hold a
/// `Tracer*` that is null unless the user attached one, so the disabled
/// cost is a single branch per would-be span.
namespace llm4vv::obs {

/// Span taxonomy. Fixed enum (not free-form strings) keeps TraceEvent
/// POD-sized and the export names consistent across exporters.
enum class SpanKind : std::uint8_t {
  kRun = 0,       // whole pipeline run           arg: total files
  kCompile,       // compile stage, per file      arg: 1 accepted / 0 rejected
  kQueueWait,     // inter-stage queue residency  arg: 1 execute / 2 judge
  kExecute,       // execute stage, per file      arg: 1 accepted / 0 rejected
  kJudge,         // judge submit → verdict       arg: verdict enum / -1 error
  kFlush,         // one formed batcher flush     arg: batch size
  kRetry,         // one judge retry attempt      arg: attempt ordinal
  kBackoff,       // backoff sleep before retry   arg: attempt ordinal
};

inline constexpr std::size_t kSpanKindCount = 8;

const char* span_name(SpanKind kind) noexcept;
const char* span_category(SpanKind kind) noexcept;  // "pipeline" | "client"

/// One recorded span. POD; timestamps are support::now_us() values.
struct TraceEvent {
  std::uint64_t trace_id = 0;   // per-file id (corpus index + 1); 0 = process
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  // enclosing span id, 0 = root
  std::uint64_t flow_id = 0;    // kFlush: flow origin; others: flow target
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;
  double gpu_seconds = 0.0;     // simulated GPU time attributed to the span
  std::int64_t arg = 0;         // kind-specific, see SpanKind
  SpanKind kind = SpanKind::kRun;
  std::uint32_t tid = 0;        // recording thread (ring ordinal, from 1)
};

class Tracer {
 public:
  /// `ring_capacity` bounds the events kept per recording thread; on
  /// overflow the oldest events are overwritten and counted in dropped().
  explicit Tracer(std::size_t ring_capacity = 1 << 16);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Allocate a process-unique span/flow id (relaxed atomic counter).
  std::uint64_t next_id() noexcept { return ids_.allocate(); }

  /// Record a finished span. `event.tid` is assigned here from the calling
  /// thread's ring; everything else is the caller's.
  void record(TraceEvent event);

  /// Snapshot of every ring, globally sorted by (start_us, span_id). Safe
  /// to call while recorders are live (per-ring locks), though the usual
  /// call point is after the traced workload quiesced.
  std::vector<TraceEvent> collect() const EXCLUDES(mutex_);

  /// Events lost to ring overflow, across all threads.
  std::uint64_t dropped() const EXCLUDES(mutex_);

  std::size_t ring_capacity() const noexcept { return capacity_; }

 private:
  struct Ring {
    explicit Ring(std::uint32_t ring_tid) : tid(ring_tid) {}
    support::Mutex mutex;
    std::vector<TraceEvent> events GUARDED_BY(mutex);  // ring storage
    std::size_t next GUARDED_BY(mutex) = 0;  // overwrite cursor once full
    std::uint64_t dropped GUARDED_BY(mutex) = 0;
    const std::uint32_t tid;
  };

  Ring& this_thread_ring() EXCLUDES(mutex_);

  const std::size_t capacity_;
  const std::uint64_t tracer_gen_;  // process-unique, guards stale TLS
  IdCell ids_;
  mutable support::Mutex mutex_;
  std::vector<std::unique_ptr<Ring>> rings_ GUARDED_BY(mutex_);
};

/// RAII span: stamps start on construction, records into the tracer on
/// end()/destruction. Null-tracer and default-constructed spans are inert
/// (every member is one branch). Move-only.
class ObsSpan {
 public:
  ObsSpan() = default;
  ObsSpan(Tracer* tracer, SpanKind kind, std::uint64_t trace_id,
          std::uint64_t parent_id = 0) {
    if (tracer == nullptr) return;
    tracer_ = tracer;
    event_.kind = kind;
    event_.trace_id = trace_id;
    event_.parent_id = parent_id;
    event_.span_id = tracer->next_id();
    event_.start_us = support::now_us();
  }
  ~ObsSpan() { end(); }

  ObsSpan(ObsSpan&& other) noexcept
      : tracer_(other.tracer_), event_(other.event_) {
    other.tracer_ = nullptr;
  }
  ObsSpan& operator=(ObsSpan&& other) noexcept {
    if (this != &other) {
      end();
      tracer_ = other.tracer_;
      event_ = other.event_;
      other.tracer_ = nullptr;
    }
    return *this;
  }
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

  /// Close and record the span now (idempotent; destructor otherwise).
  void end() noexcept {
    if (tracer_ == nullptr) return;
    event_.end_us = support::now_us();
    tracer_->record(event_);
    tracer_ = nullptr;
  }

  void set_gpu_seconds(double seconds) noexcept {
    if (tracer_ != nullptr) event_.gpu_seconds = seconds;
  }
  void set_arg(std::int64_t arg) noexcept {
    if (tracer_ != nullptr) event_.arg = arg;
  }
  void set_flow(std::uint64_t flow_id) noexcept {
    if (tracer_ != nullptr) event_.flow_id = flow_id;
  }
  /// Backdate the start (spans whose waiting began before the handle
  /// existed, e.g. queue residency measured from the enqueue timestamp).
  void set_start_us(std::uint64_t start_us) noexcept {
    if (tracer_ != nullptr) event_.start_us = start_us;
  }

  std::uint64_t id() const noexcept { return event_.span_id; }
  explicit operator bool() const noexcept { return tracer_ != nullptr; }

 private:
  Tracer* tracer_ = nullptr;
  TraceEvent event_{};
};

}  // namespace llm4vv::obs
