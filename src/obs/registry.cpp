#include "obs/registry.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace llm4vv::obs {
namespace {

std::string inf_label() { return "le:+Inf"; }

std::string edge_label(std::uint64_t edge) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "le:%" PRIu64, edge);
  return buf;
}

/// Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; dotted registry
/// names map dots (and anything else) to underscores under a llm4vv_
/// prefix.
std::string sanitize(const std::string& name) {
  std::string out = "llm4vv_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Render a double that is almost always an exact integer count without
/// trailing noise; fall back to %g for real fractions (gpu seconds).
std::string render_value(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%" PRId64,
                  static_cast<std::int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
  }
  return buf;
}

}  // namespace

const MetricSample* find_sample(const MetricsSnapshot& snapshot,
                                const std::string& name,
                                const std::string& label) {
  for (const MetricSample& sample : snapshot) {
    if (sample.name == name && sample.label == label) return &sample;
  }
  return nullptr;
}

Registry::OwnedMetric* Registry::find_owned_locked(const std::string& name) {
  for (const auto& metric : owned_) {
    if (metric->name == name) return metric.get();
  }
  return nullptr;
}

Counter Registry::counter(const std::string& name) {
  support::MutexLock lock(mutex_);
  if (OwnedMetric* existing = find_owned_locked(name)) {
    return existing->kind == Kind::kCounter ? Counter(existing->counter.get())
                                            : Counter();
  }
  auto metric = std::make_unique<OwnedMetric>();
  metric->name = name;
  metric->kind = Kind::kCounter;
  metric->counter = std::make_unique<CounterCells>();
  Counter handle(metric->counter.get());
  owned_.push_back(std::move(metric));
  return handle;
}

Gauge Registry::gauge(const std::string& name) {
  support::MutexLock lock(mutex_);
  if (OwnedMetric* existing = find_owned_locked(name)) {
    return existing->kind == Kind::kGauge ? Gauge(existing->gauge.get())
                                          : Gauge();
  }
  auto metric = std::make_unique<OwnedMetric>();
  metric->name = name;
  metric->kind = Kind::kGauge;
  metric->gauge = std::make_unique<GaugeCell>();
  Gauge handle(metric->gauge.get());
  owned_.push_back(std::move(metric));
  return handle;
}

Histogram Registry::histogram(const std::string& name,
                              std::vector<std::uint64_t> upper_edges) {
  support::MutexLock lock(mutex_);
  if (OwnedMetric* existing = find_owned_locked(name)) {
    return existing->kind == Kind::kHistogram
               ? Histogram(existing->histogram.get())
               : Histogram();
  }
  auto metric = std::make_unique<OwnedMetric>();
  metric->name = name;
  metric->kind = Kind::kHistogram;
  metric->histogram = std::make_unique<HistogramCells>(std::move(upper_edges));
  Histogram handle(metric->histogram.get());
  owned_.push_back(std::move(metric));
  return handle;
}

void Registry::register_probe(const std::string& name,
                              std::function<double()> fn) {
  register_probe(name, "", std::move(fn));
}

void Registry::register_probe(const std::string& name,
                              const std::string& label,
                              std::function<double()> fn) {
  support::MutexLock lock(mutex_);
  for (Probe& probe : probes_) {
    if (probe.name == name && probe.label == label) {
      probe.fn = std::move(fn);
      return;
    }
  }
  probes_.push_back(Probe{name, label, std::move(fn)});
}

void Registry::unregister_prefix(const std::string& prefix) {
  support::MutexLock lock(mutex_);
  probes_.erase(std::remove_if(probes_.begin(), probes_.end(),
                               [&](const Probe& probe) {
                                 return probe.name.rfind(prefix, 0) == 0;
                               }),
                probes_.end());
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot out;
  {
    support::MutexLock lock(mutex_);
    for (const auto& metric : owned_) {
      switch (metric->kind) {
        case Kind::kCounter:
          out.push_back({metric->name, "",
                         static_cast<double>(metric->counter->total())});
          break;
        case Kind::kGauge:
          out.push_back({metric->name, "",
                         static_cast<double>(metric->gauge->load())});
          break;
        case Kind::kHistogram: {
          const HistogramCells& h = *metric->histogram;
          for (std::size_t i = 0; i < h.edges.size(); ++i) {
            out.push_back({metric->name, edge_label(h.edges[i]),
                           static_cast<double>(h.bucket_total(i))});
          }
          out.push_back({metric->name, inf_label(),
                         static_cast<double>(h.bucket_total(h.edges.size()))});
          out.push_back({metric->name + ".count", "",
                         static_cast<double>(h.count_total())});
          out.push_back({metric->name + ".sum", "",
                         static_cast<double>(h.sum_total())});
          break;
        }
      }
    }
    // Probes run under the lock: callbacks must not re-enter the registry
    // (documented in the header), and scrapes are rare cold-path events.
    for (const Probe& probe : probes_) {
      out.push_back({probe.name, probe.label, probe.fn()});
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const MetricSample& a, const MetricSample& b) {
                     return a.name < b.name;
                   });
  return out;
}

std::string Registry::render_text() const {
  const MetricsSnapshot samples = snapshot();
  std::string out;
  std::string last_name;
  for (const MetricSample& sample : samples) {
    const std::string metric = sanitize(sample.name);
    if (sample.name != last_name) {
      // Histogram buckets carry "le:<edge>" labels; everything else renders
      // untyped. Kind metadata is deliberately not threaded through the
      // snapshot — the dump is for humans and scrape scripts, not a full
      // Prometheus exposition.
      out += "# TYPE " + metric +
             (sample.label.empty() ? " untyped\n" : " histogram\n");
      last_name = sample.name;
    }
    out += metric;
    if (!sample.label.empty()) {
      const std::string& label = sample.label;
      const std::size_t colon = label.find(':');
      const std::string key =
          colon == std::string::npos ? "bucket" : label.substr(0, colon);
      const std::string value =
          colon == std::string::npos ? label : label.substr(colon + 1);
      out += "{" + key + "=\"" + value + "\"}";
    }
    out += " " + render_value(sample.value) + "\n";
  }
  return out;
}

}  // namespace llm4vv::obs
