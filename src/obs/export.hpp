#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/trace.hpp"

/// Trace exporters (docs/OBSERVABILITY.md): Chrome trace-event JSON for
/// Perfetto / chrome://tracing, and a JSONL span log built on
/// support/jsonl for grep/jq post-processing. Both take the sorted event
/// vector from Tracer::collect().
namespace llm4vv::obs {

/// Chrome trace-event JSON (the {"traceEvents":[...]} object form).
///
/// Every span becomes a ph:"X" complete event (pid 1, tid = recording
/// thread ordinal, ts/dur in microseconds rebased to the earliest span).
/// Flush spans additionally emit a ph:"s" flow-start at their own start,
/// and every span carrying a flow target id emits a ph:"f" (bp:"e") bound
/// to the span's end — Perfetto draws batch-to-request arrows from these.
/// Thread-name metadata events label the recording threads; dropped ring
/// events are reported under otherData.
void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events,
                        std::uint64_t dropped_events = 0);

/// One JSON object per span: kind/cat/trace_id/span/parent/flow/start_us/
/// dur_us/gpu_s/arg/tid. Lines parse with support::parse_json_object_line.
void write_span_jsonl(std::ostream& out,
                      const std::vector<TraceEvent>& events);

}  // namespace llm4vv::obs
