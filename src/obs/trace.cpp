#include "obs/trace.hpp"

#include <algorithm>

namespace llm4vv::obs {
namespace {

/// Process-unique tracer generation numbers. A thread's cached ring slot
/// stores the generation it registered under; a destroyed (or different)
/// tracer can never match, so the cache can never alias a dead ring even
/// if a new Tracer lands at the same address.
IdCell& tracer_generations() {
  static IdCell cell;
  return cell;
}

struct ThreadRingSlot {
  std::uint64_t tracer_gen = 0;
  void* ring = nullptr;
};

thread_local ThreadRingSlot t_ring_slot;

}  // namespace

const char* span_name(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::kRun: return "pipeline.run";
    case SpanKind::kCompile: return "compile";
    case SpanKind::kQueueWait: return "queue.wait";
    case SpanKind::kExecute: return "execute";
    case SpanKind::kJudge: return "judge";
    case SpanKind::kFlush: return "client.flush";
    case SpanKind::kRetry: return "client.retry";
    case SpanKind::kBackoff: return "client.backoff";
  }
  return "unknown";
}

const char* span_category(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::kFlush:
    case SpanKind::kRetry:
    case SpanKind::kBackoff:
      return "client";
    default:
      return "pipeline";
  }
}

Tracer::Tracer(std::size_t ring_capacity)
    : capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      tracer_gen_(tracer_generations().allocate()) {}

Tracer::~Tracer() = default;

Tracer::Ring& Tracer::this_thread_ring() {
  if (t_ring_slot.tracer_gen == tracer_gen_) {
    return *static_cast<Ring*>(t_ring_slot.ring);
  }
  support::MutexLock lock(mutex_);
  auto ring = std::make_unique<Ring>(static_cast<std::uint32_t>(
      rings_.size() + 1));
  Ring& ref = *ring;
  rings_.push_back(std::move(ring));
  t_ring_slot = ThreadRingSlot{tracer_gen_, &ref};
  return ref;
}

void Tracer::record(TraceEvent event) {
  Ring& ring = this_thread_ring();
  event.tid = ring.tid;
  support::MutexLock lock(ring.mutex);
  if (ring.events.size() < capacity_) {
    ring.events.push_back(event);
    return;
  }
  // Full: overwrite the oldest slot, advance the cursor.
  ring.events[ring.next] = event;
  ring.next = (ring.next + 1) % capacity_;
  ++ring.dropped;
}

std::vector<TraceEvent> Tracer::collect() const {
  std::vector<TraceEvent> out;
  {
    support::MutexLock lock(mutex_);
    for (const auto& ring : rings_) {
      support::MutexLock ring_lock(ring->mutex);
      // Chronological ring order: [next, end) is oldest once wrapped.
      for (std::size_t i = ring->next; i < ring->events.size(); ++i)
        out.push_back(ring->events[i]);
      for (std::size_t i = 0; i < ring->next; ++i)
        out.push_back(ring->events[i]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.span_id < b.span_id;
            });
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = 0;
  support::MutexLock lock(mutex_);
  for (const auto& ring : rings_) {
    support::MutexLock ring_lock(ring->mutex);
    total += ring->dropped;
  }
  return total;
}

}  // namespace llm4vv::obs
