#pragma once

#include <cstdint>
#include <string>

#include "vm/memory.hpp"
#include "vm/value.hpp"

namespace llm4vv::vm {

/// Services the runtime library needs from the interpreter. The Machine in
/// interp.cpp implements this; keeping the builtins behind an interface
/// lets tests drive them with a mock host.
class RuntimeHost {
 public:
  virtual ~RuntimeHost() = default;

  /// VM memory (for malloc/free/calloc).
  virtual Memory& memory() = 0;

  /// True inside an offloaded compute region (acc_on_device & friends).
  virtual bool device_mode() const = 0;

  /// Module string table access (printf formats, string arguments).
  virtual const std::string& string_at(std::uint64_t index) const = 0;

  /// Captured standard streams.
  virtual void write_stdout(const std::string& text) = 0;
  virtual void write_stderr(const std::string& text) = 0;

  /// exit()/abort(): unwinds the machine with the given return code.
  [[noreturn]] virtual void exit_now(int code) = 0;

  /// Value-stack access for argument passing.
  virtual Value pop() = 0;
  virtual void push(Value value) = 0;

  /// Deterministic PRNG state for rand()/srand().
  virtual std::uint64_t& rand_state() = 0;
};

/// Invoke builtin `builtin_index` (index into
/// frontend::builtin_functions()) with `argc` arguments on the host's value
/// stack. Returns the builtin's result value.
Value call_builtin(RuntimeHost& host, std::int32_t builtin_index,
                   std::int32_t argc);

/// printf-style formatting against VM values (exposed for unit tests).
std::string format_printf(RuntimeHost& host, const std::string& format,
                          const std::vector<Value>& args);

}  // namespace llm4vv::vm
