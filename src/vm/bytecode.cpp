#include "vm/bytecode.hpp"

#include <cstdio>

namespace llm4vv::vm {

const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kPushConst: return "push_const";
    case Op::kLoadSlot: return "load_slot";
    case Op::kStoreSlot: return "store_slot";
    case Op::kLoadGlobal: return "load_global";
    case Op::kStoreGlobal: return "store_global";
    case Op::kAddrSlot: return "addr_slot";
    case Op::kAddrGlobal: return "addr_global";
    case Op::kLoadInd: return "load_ind";
    case Op::kStoreInd: return "store_ind";
    case Op::kStoreIndKeep: return "store_ind_keep";
    case Op::kIndexAddr: return "index_addr";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kMod: return "mod";
    case Op::kNeg: return "neg";
    case Op::kNot: return "not";
    case Op::kBitNot: return "bit_not";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kLt: return "lt";
    case Op::kLe: return "le";
    case Op::kGt: return "gt";
    case Op::kGe: return "ge";
    case Op::kBitAnd: return "bit_and";
    case Op::kBitOr: return "bit_or";
    case Op::kBitXor: return "bit_xor";
    case Op::kShl: return "shl";
    case Op::kShr: return "shr";
    case Op::kCastInt: return "cast_int";
    case Op::kCastFloat: return "cast_float";
    case Op::kJump: return "jump";
    case Op::kJumpIfFalse: return "jump_if_false";
    case Op::kJumpIfTrue: return "jump_if_true";
    case Op::kCall: return "call";
    case Op::kCallBuiltin: return "call_builtin";
    case Op::kRet: return "ret";
    case Op::kPop: return "pop";
    case Op::kDup: return "dup";
    case Op::kSwap: return "swap";
    case Op::kAllocArray: return "alloc_array";
    case Op::kAllocGlobalArray: return "alloc_global_array";
    case Op::kDevEnter: return "dev_enter";
    case Op::kDevExit: return "dev_exit";
    case Op::kDevAction: return "dev_action";
  }
  return "?";
}

std::string disassemble(const Module& module, const Chunk& chunk) {
  std::string out = chunk.name + " (params=" +
                    std::to_string(chunk.param_count) +
                    ", slots=" + std::to_string(chunk.slot_count) + ")\n";
  char buf[128];
  for (std::size_t i = 0; i < chunk.code.size(); ++i) {
    const Instr& instr = chunk.code[i];
    std::snprintf(buf, sizeof(buf), "  %4zu  %-18s a=%-6d b=%-4d ; line %d",
                  i, op_name(instr.op), instr.a, instr.b, instr.line);
    out += buf;
    if (instr.op == Op::kPushConst &&
        static_cast<std::size_t>(instr.a) < module.consts.size()) {
      out += "  (" + to_string(module.consts[
                         static_cast<std::size_t>(instr.a)]) + ")";
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace llm4vv::vm
