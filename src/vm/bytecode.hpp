#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "vm/value.hpp"

namespace llm4vv::vm {

/// Bytecode operations. The machine is a conventional value-stack VM with
/// per-call frames; device data movement is encoded as region ops whose
/// clause programs live in Module::regions.
enum class Op : std::uint8_t {
  kNop,
  kPushConst,    ///< a: index into Module::consts
  kLoadSlot,     ///< a: frame slot
  kStoreSlot,    ///< a: frame slot (pops)
  kLoadGlobal,   ///< a: global slot
  kStoreGlobal,  ///< a: global slot (pops)
  kAddrSlot,     ///< a: frame slot; pushes the slot's address
  kAddrGlobal,   ///< a: global slot; pushes the slot's address
  kLoadInd,      ///< pops address; pushes memory[address]
  kStoreInd,     ///< pops value, pops address; memory[address] = value
  kStoreIndKeep, ///< like kStoreInd but re-pushes the stored value
  kIndexAddr,    ///< pops index, pops base pointer; pushes base + index
  // Arithmetic (numeric-tag polymorphic; pointer arithmetic on kAdd/kSub).
  kAdd, kSub, kMul, kDiv, kMod,
  kNeg, kNot, kBitNot,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kBitAnd, kBitOr, kBitXor, kShl, kShr,
  kCastInt,      ///< numeric cast to integer
  kCastFloat,    ///< numeric cast to float
  kJump,         ///< a: absolute target
  kJumpIfFalse,  ///< a: absolute target (pops condition)
  kJumpIfTrue,   ///< a: absolute target (pops condition)
  kCall,         ///< a: function index, b: argc
  kCallBuiltin,  ///< a: builtin index,  b: argc
  kRet,          ///< pops the return value, unwinds the frame
  kPop,
  kDup,
  kSwap,         ///< swaps the two topmost stack values
  kAllocArray,   ///< a: frame slot, b: element-count (0 = pop count);
                 ///< allocates and stores the base pointer into the slot
  kAllocGlobalArray,  ///< a: global slot, b: element count
  kDevEnter,     ///< a: region index — enter a structured data/compute region
  kDevExit,      ///< a: region index — leave it (processes copy-backs)
  kDevAction,    ///< a: region index — unstructured enter/exit data or update
};

/// Number of opcodes — the size of the interpreter's dispatch tables (the
/// threaded cores index handler arrays by the raw opcode value).
inline constexpr std::size_t kOpCount =
    static_cast<std::size_t>(Op::kDevAction) + 1;

/// One instruction. `line` drives runtime error positions.
struct Instr {
  Op op = Op::kNop;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t line = 0;
};

/// Data-movement actions compiled from directive clauses.
enum class ClauseAction : std::uint8_t {
  kCopyin,       ///< allocate mirror + host->device copy (or ++refcount)
  kCopyout,      ///< allocate mirror; device->host copy on release
  kCopy,         ///< copyin + copyout
  kCreate,       ///< allocate uninitialized mirror
  kPresent,      ///< trap when not already mapped
  kDelete,       ///< drop mapping without copy-back
  kExitCopyout,  ///< `exit data copyout(...)`: device->host copy, then drop
  kUpdateHost,   ///< device->host copy (mapping unchanged)
  kUpdateDevice, ///< host->device copy (mapping unchanged)
  kNoOp,         ///< attach/detach & friends: no observable effect here
};

/// One compiled clause operation. The referenced variable is a slot holding
/// the array base pointer (whole-allocation mapping; array sections map
/// their full allocation — see DESIGN.md §5).
struct ClauseOp {
  ClauseAction action = ClauseAction::kNoOp;
  bool is_global = false;
  std::int32_t slot = 0;
  std::string var_name;  ///< for runtime error messages
};

/// Compiled form of one directive region.
struct Region {
  bool device_mode = false;  ///< true for offloaded compute constructs
  std::vector<ClauseOp> enter_ops;
  std::vector<ClauseOp> exit_ops;
  std::string directive;  ///< rendered name for error messages
  int line = 0;
};

/// One compiled function.
struct Chunk {
  std::string name;
  std::int32_t param_count = 0;
  std::int32_t slot_count = 0;   ///< params + locals
  std::vector<Instr> code;
};

/// A fully lowered program, ready for the interpreter.
struct Module {
  std::vector<Chunk> chunks;
  std::vector<Value> consts;
  std::vector<std::string> strings;
  std::vector<Region> regions;
  std::int32_t global_slot_count = 0;
  std::int32_t main_chunk = -1;
  /// Chunk executed before main to initialize globals (-1 when absent).
  std::int32_t init_chunk = -1;
};

/// Human-readable disassembly of one chunk (used by tests and debugging).
std::string disassemble(const Module& module, const Chunk& chunk);

/// Opcode mnemonic.
const char* op_name(Op op) noexcept;

}  // namespace llm4vv::vm
