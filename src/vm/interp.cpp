#include "vm/interp.hpp"

#include <cmath>
#include <cstdio>
#include <initializer_list>
#include <vector>

#include "frontend/builtins.hpp"
#include "vm/runtime.hpp"

// The token-threaded core needs GNU computed goto (`&&label`). It is
// available on GCC and Clang regardless of -std=c++NN; configuring with
// -DLLM4VV_VM_DISPATCH=table removes it, so an explicit
// DispatchMode::kThreaded request degrades to the portable
// function-pointer-table core (the CI matrix builds that leg so it stays
// green). The *default* execute core is the table core in every build —
// see default_dispatch_mode().
#if !defined(LLM4VV_VM_DISPATCH_TABLE) && \
    (defined(__GNUC__) || defined(__clang__))
#define LLM4VV_VM_COMPUTED_GOTO 1
#endif

namespace llm4vv::vm {

namespace {

/// Thrown by the exit() builtin to unwind the whole machine.
struct ExitSignal {
  int code;
};

/// One pre-decoded instruction: a handler index (the raw opcode value —
/// static_asserted against the inc-file order below) plus the packed
/// operands, flat in one cache-friendly stream per chunk.
struct DecodedInstr {
  std::uint32_t handler = 0;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t line = 0;
};

/// Handler index of the end-of-chunk sentinel appended to every decoded
/// chunk. Executing it reproduces the reference loop's per-fetch bounds
/// check ("fell off the end of a chunk") without paying a compare on every
/// dispatch.
constexpr std::uint32_t kChunkEndHandler =
    static_cast<std::uint32_t>(kOpCount);

struct DecodedChunk {
  std::vector<DecodedInstr> code;  ///< original instructions + 2 sentinels
};

struct DecodedProgram {
  std::vector<DecodedChunk> chunks;
};

/// The inc file must list every opcode in exact Op-enum order, because the
/// decoded handler index is the raw opcode value.
constexpr Op kIncOrder[] = {
#define VM_OP(NAME, ...) Op::NAME,
#include "vm/interp_ops.inc"
#undef VM_OP
};
static_assert(sizeof(kIncOrder) / sizeof(kIncOrder[0]) == kOpCount,
              "interp_ops.inc must define every opcode exactly once");
static_assert(
    [] {
      for (std::size_t i = 0; i < kOpCount; ++i) {
        if (static_cast<std::size_t>(kIncOrder[i]) != i) return false;
      }
      return true;
    }(),
    "interp_ops.inc bodies must appear in Op-enum order");

constexpr bool is_jump(Op op) noexcept {
  return op == Op::kJump || op == Op::kJumpIfFalse || op == Op::kJumpIfTrue;
}

/// Maximum component count of a superinstruction (pairs and triples only;
/// the decoded operand slots of the components stay in the stream, so this
/// bounds pattern length, not stream layout).
constexpr std::size_t kMaxFusionLength = 3;

/// One entry of the superinstruction pattern table, built from the VM_FUSE
/// list in interp_ops.inc. The decoded handler index of a fused site is
/// kOpCount + 1 + (index into this table) — right after the opcode handlers
/// and the end-of-chunk sentinel.
struct FusionPattern {
  const char* name;
  std::uint32_t length;
  Op ops[kMaxFusionLength];
};

constexpr FusionPattern make_fusion_pattern(const char* name,
                                            std::initializer_list<Op> ops) {
  FusionPattern p{name, 0, {Op::kNop, Op::kNop, Op::kNop}};
  for (Op op : ops) p.ops[p.length++] = op;
  return p;
}

constexpr FusionPattern kFusionPatterns[] = {
#define VM_FUSE(NAME, ...) make_fusion_pattern(#NAME, {__VA_ARGS__}),
#include "vm/interp_ops.inc"
#undef VM_FUSE
};
constexpr std::size_t kFusionPatternCount =
    sizeof(kFusionPatterns) / sizeof(kFusionPatterns[0]);
constexpr std::uint32_t kFusedHandlerBase = kChunkEndHandler + 1;

static_assert(
    [] {
      for (const FusionPattern& p : kFusionPatterns) {
        if (p.length < 2 || p.length > kMaxFusionLength) return false;
        for (std::uint32_t i = 0; i < p.length; ++i) {
          const Op op = p.ops[i];
          // Frame re-sync / unwind / halt ops must stay fetch boundaries,
          // and a branch may only be the final component (the fused handler
          // pre-advances s.pc, so only the last slot may overwrite it).
          if (op == Op::kCall || op == Op::kCallBuiltin || op == Op::kRet ||
              op == Op::kDevEnter || op == Op::kDevExit ||
              op == Op::kDevAction) {
            return false;
          }
          if (is_jump(op) && i + 1 != p.length) return false;
        }
      }
      return true;
    }(),
    "VM_FUSE patterns must be branch-terminated straight-line pairs/triples");

static_assert(
    [] {
      for (std::size_t i = 1; i < kFusionPatternCount; ++i) {
        if (kFusionPatterns[i].length > kFusionPatterns[i - 1].length) {
          return false;
        }
      }
      return true;
    }(),
    "VM_FUSE patterns are matched first-hit: longer patterns must come first");

/// Decode-time fusion telemetry, surfaced through ExecResult.
struct FusionStats {
  std::uint64_t fused_instructions = 0;  ///< superinstruction sites rewritten
  std::uint32_t fusion_patterns = 0;     ///< distinct patterns among them
};

/// Decode-time superinstruction fusion over one chunk's decoded stream
/// (`out[0, size)`, sentinels not yet appended). Greedy first-hit scan over
/// the pattern table (longer patterns first, static_asserted above). Two
/// invariants keep a fused stream byte-identical to the unfused one:
///
///   - No fusion across jump targets: a pattern is refused when any
///     INTERIOR component (everything but the head) is a branch target.
///     Component slots keep their original handlers regardless — only the
///     head's handler index is rewritten — so decoded indices stay 1:1
///     with bytecode indices and every jump target stays valid.
///   - Heads may be targets: jumping to the head executes the whole fused
///     sequence, which is identical to executing its components.
///
/// Matching runs over decoded handler indices (== raw opcode values at this
/// point), so out-of-range opcodes that decoded to kNop can never alias a
/// pattern component.
void fuse_chunk(std::vector<DecodedInstr>& out, std::int32_t size,
                FusionStats& stats, bool* patterns_seen) {
  if (size < 2) return;
  std::vector<bool> is_target(static_cast<std::size_t>(size), false);
  for (std::int32_t i = 0; i < size; ++i) {
    const DecodedInstr& d = out[static_cast<std::size_t>(i)];
    if (is_jump(static_cast<Op>(d.handler)) && d.a >= 0 && d.a < size) {
      is_target[static_cast<std::size_t>(d.a)] = true;
    }
  }
  std::int32_t i = 0;
  while (i < size) {
    std::int32_t matched = 0;
    for (std::size_t p = 0; p < kFusionPatternCount; ++p) {
      const FusionPattern& pattern = kFusionPatterns[p];
      const std::int32_t len = static_cast<std::int32_t>(pattern.length);
      if (i + len > size) continue;
      bool ok = true;
      for (std::int32_t k = 0; k < len && ok; ++k) {
        if (out[static_cast<std::size_t>(i + k)].handler !=
            static_cast<std::uint32_t>(pattern.ops[k])) {
          ok = false;
        }
        if (k > 0 && is_target[static_cast<std::size_t>(i + k)]) ok = false;
      }
      if (!ok) continue;
      out[static_cast<std::size_t>(i)].handler =
          kFusedHandlerBase + static_cast<std::uint32_t>(p);
      ++stats.fused_instructions;
      if (!patterns_seen[p]) {
        patterns_seen[p] = true;
        ++stats.fusion_patterns;
      }
      matched = len;
      break;
    }
    i += matched != 0 ? matched : 1;
  }
}

/// Lower a module's bytecode into the flat handler-index streams the fast
/// cores execute. Wild jump targets are rebased onto end-of-chunk
/// sentinels so they trap exactly like the reference loop's fetch bounds
/// check, line rendering included: a target of exactly `size` renders at
/// the last instruction's line there (ip - 1 lands in range), while a
/// target beyond `size` renders with no line (ip - 1 lands out of range) —
/// so each chunk gets TWO sentinels, one per line behaviour. A negative
/// target — undefined behaviour in the reference — becomes the same
/// defined no-line trap. Out-of-range opcodes match no case in the
/// reference switch and are skipped there; they decode to the same no-op.
/// With `fuse`, the fusion pass above then rewrites superinstruction heads.
DecodedProgram decode(const Module& module, bool fuse, FusionStats* stats) {
  DecodedProgram program;
  FusionStats local_stats;
  bool patterns_seen[kFusionPatternCount] = {};
  program.chunks.resize(module.chunks.size());
  for (std::size_t c = 0; c < module.chunks.size(); ++c) {
    const std::vector<Instr>& code = module.chunks[c].code;
    std::vector<DecodedInstr>& out = program.chunks[c].code;
    const std::int32_t size = static_cast<std::int32_t>(code.size());
    out.reserve(code.size() + 2);
    for (const Instr& instr : code) {
      DecodedInstr d;
      std::uint32_t handler = static_cast<std::uint32_t>(instr.op);
      if (handler >= kOpCount) {
        handler = static_cast<std::uint32_t>(Op::kNop);
      }
      d.handler = handler;
      d.a = instr.a;
      d.b = instr.b;
      d.line = instr.line;
      if (is_jump(instr.op) && (d.a < 0 || d.a > size)) d.a = size + 1;
      out.push_back(d);
    }
    if (fuse) fuse_chunk(out, size, local_stats, patterns_seen);
    // Sentinel at index `size`: sequential fall-off and jump-to-size land
    // here; the reference renders those at the last instruction's line.
    DecodedInstr end;
    end.handler = kChunkEndHandler;
    end.line = code.empty() ? 0 : code.back().line;
    out.push_back(end);
    // Sentinel at `size + 1`: rebased wild jumps land here; the reference
    // renders those with no line (frame.ip - 1 is out of range).
    DecodedInstr wild;
    wild.handler = kChunkEndHandler;
    wild.line = 0;
    out.push_back(wild);
  }
  if (stats != nullptr) *stats = local_stats;
  return program;
}

}  // namespace

/// Interpreter state shared with the runtime library (see runtime.hpp).
///
/// Three dispatch cores share this machine: the reference `switch` loop
/// (the behavioural pin), and two cores over the pre-decoded stream — a
/// portable function-pointer table and a token-threaded computed-goto loop.
/// The fast cores expand the same interp_ops.inc bodies, so they cannot
/// drift from each other; drift from the reference is caught by the
/// differential suite in tests/vm_dispatch_test.cpp.
class Machine final : public RuntimeHost {
 public:
  Machine(const Module& module, const ExecLimits& limits)
      : module_(module), limits_(limits), memory_(limits.max_cells) {}

  ExecResult run(DispatchMode mode, bool fuse) {
    FusionStats fusion_stats;
    if (mode != DispatchMode::kReference) {
      decoded_storage_ = decode(module_, fuse, &fusion_stats);
      decoded_ = &decoded_storage_;
    }
    ExecResult result;
    try {
      if (module_.init_chunk >= 0) {
        call_chunk(module_.init_chunk, 0);
        run_loop(mode);
      }
      if (module_.main_chunk < 0) {
        throw Trap{TrapKind::kInternal, "module has no main chunk"};
      }
      stack_.clear();
      call_chunk(module_.main_chunk, 0);
      run_loop(mode);
      const Value ret = pop();
      result.return_code = static_cast<int>(ret.as_int() & 0xff);
    } catch (const ExitSignal& signal) {
      result.return_code = signal.code & 0xff;
    } catch (const Trap& trap) {
      result.trap = trap.kind;
      result.stderr_text += render_trap(trap);
      result.return_code = trap_return_code(trap.kind);
    }
    result.stdout_text = std::move(stdout_);
    result.stderr_text = stderr_ + result.stderr_text;
    result.steps = steps_;
    result.fused_instructions = fusion_stats.fused_instructions;
    result.fusion_patterns = fusion_stats.fusion_patterns;
    return result;
  }

  // -- services used by the runtime library --------------------------------

  Memory& memory() override { return memory_; }
  bool device_mode() const override { return device_depth_ > 0; }

  const std::string& string_at(std::uint64_t index) const override {
    if (index >= module_.strings.size()) {
      throw Trap{TrapKind::kInternal, "bad string index"};
    }
    return module_.strings[index];
  }

  void write_stdout(const std::string& text) override {
    if (stdout_.size() + text.size() > limits_.max_output) {
      stdout_.append(text, 0, limits_.max_output - stdout_.size());
      throw Trap{TrapKind::kOutputLimit, "stdout budget exhausted"};
    }
    stdout_ += text;
  }

  void write_stderr(const std::string& text) override {
    // Same budget as stdout: a runaway generated test spamming fprintf must
    // not grow stderr_ without bound.
    if (stderr_.size() + text.size() > limits_.max_output) {
      stderr_.append(text, 0, limits_.max_output - stderr_.size());
      throw Trap{TrapKind::kOutputLimit, "stderr budget exhausted"};
    }
    stderr_ += text;
  }

  [[noreturn]] void exit_now(int code) override { throw ExitSignal{code}; }

  Value pop() override {
    if (stack_.empty()) {
      throw Trap{TrapKind::kInternal, "value stack underflow"};
    }
    Value v = stack_.back();
    stack_.pop_back();
    return v;
  }

  void push(Value v) override { stack_.push_back(v); }

  std::uint64_t& rand_state() override { return rand_state_; }

 private:
  struct Frame {
    std::int32_t chunk = 0;
    std::int32_t ip = 0;
    std::vector<Value> slots;
  };

  /// Per-loop cached execution state of the fast cores: the live frame,
  /// its decoded code stream, the instruction pointer, and register-
  /// friendly copies of the step budget. Re-synced after anything that
  /// changes the frame stack (call/ret). Unlike the reference loop, the
  /// fast cores do not write frame->ip per instruction — the kCall body
  /// saves the return address, and trap positions come from
  /// Machine::fast_ins_ (published per fetch) instead.
  struct ExecState {
    Frame* frame = nullptr;
    const DecodedInstr* code = nullptr;  ///< chunk base (jump targets)
    const DecodedInstr* pc = nullptr;    ///< next instruction to fetch
    const Value* consts = nullptr;
    std::uint64_t steps = 0;
    std::uint64_t max_steps = 0;
    bool halted = false;

    void sync(Machine& m) {
      frame = &m.frames_.back();
      code = m.decoded_->chunks[static_cast<std::size_t>(frame->chunk)]
                 .code.data();
      pc = code + frame->ip;
    }

    void enter(Machine& m) {
      consts = m.module_.consts.data();
      steps = m.steps_;
      max_steps = m.limits_.max_steps;
      sync(m);
    }
  };

  /// Publishes the fast cores' local step counter back into the machine on
  /// every exit path — including a trap unwinding to run()'s catch, which
  /// reads steps_ for the result.
  struct StepsSync {
    Machine& m;
    ExecState& s;
    ~StepsSync() { m.steps_ = s.steps; }
  };

  using Handler = void (*)(Machine&, ExecState&, const DecodedInstr*);

  void call_chunk(std::int32_t chunk_index, std::int32_t argc) {
    if (frames_.size() >= limits_.max_frames) {
      throw Trap{TrapKind::kStackOverflow, "call depth limit exceeded"};
    }
    const Chunk& chunk = module_.chunks[static_cast<std::size_t>(chunk_index)];
    Frame frame;
    frame.chunk = chunk_index;
    frame.slots.resize(static_cast<std::size_t>(chunk.slot_count));
    // Arguments were pushed left-to-right; pop right-to-left.
    for (std::int32_t i = argc - 1; i >= 0; --i) {
      if (i < chunk.param_count) {
        frame.slots[static_cast<std::size_t>(i)] = pop();
      } else {
        pop();  // excess argument (variadic user call): dropped
      }
    }
    frames_.push_back(std::move(frame));
  }

  int trap_return_code(TrapKind kind) const {
    switch (kind) {
      case TrapKind::kNotPresent: return 1;    // OpenACC runtime FATAL ERROR
      case TrapKind::kStepLimit:
      case TrapKind::kOutputLimit: return 124; // timeout-style
      case TrapKind::kBadAlloc: return 134;    // abort-style
      default: return 139;                     // SIGSEGV-style
    }
  }

  std::string render_trap(const Trap& trap) const {
    const int line = current_line();
    std::string out = "runtime error";
    if (line > 0) out += " at line " + std::to_string(line);
    out += ": " + trap.message + " [" + trap_kind_name(trap.kind) + "]\n";
    return out;
  }

  int current_line() const {
    // Fast cores publish the executing instruction instead of writing
    // frame->ip back on every fetch; its decoded line is the reference
    // loop's code[frame.ip - 1].line.
    if (fast_ins_ != nullptr) return fast_ins_->line;
    if (frames_.empty()) return 0;
    const Frame& frame = frames_.back();
    const auto& code =
        module_.chunks[static_cast<std::size_t>(frame.chunk)].code;
    const std::size_t ip = static_cast<std::size_t>(
        frame.ip > 0 ? frame.ip - 1 : 0);
    if (ip < code.size()) return code[ip].line;
    return 0;
  }

  // -- arithmetic helpers ---------------------------------------------------

  static bool both_int(const Value& a, const Value& b) {
    return a.tag == ValueTag::kInt && b.tag == ValueTag::kInt;
  }

  Value add(const Value& a, const Value& b) {
    if (a.tag == ValueTag::kPointer) {
      return Value::from_pointer(a.ptr + static_cast<std::uint64_t>(b.as_int()));
    }
    if (b.tag == ValueTag::kPointer) {
      return Value::from_pointer(b.ptr + static_cast<std::uint64_t>(a.as_int()));
    }
    if (both_int(a, b)) return Value::from_int(a.i + b.i);
    return Value::from_float(a.as_float() + b.as_float());
  }

  Value sub(const Value& a, const Value& b) {
    if (a.tag == ValueTag::kPointer && b.tag == ValueTag::kPointer) {
      return Value::from_int(static_cast<std::int64_t>(a.ptr - b.ptr));
    }
    if (a.tag == ValueTag::kPointer) {
      return Value::from_pointer(a.ptr - static_cast<std::uint64_t>(b.as_int()));
    }
    if (both_int(a, b)) return Value::from_int(a.i - b.i);
    return Value::from_float(a.as_float() - b.as_float());
  }

  Value mul(const Value& a, const Value& b) {
    if (both_int(a, b)) return Value::from_int(a.i * b.i);
    return Value::from_float(a.as_float() * b.as_float());
  }

  Value div(const Value& a, const Value& b) {
    if (both_int(a, b)) {
      if (b.i == 0) throw Trap{TrapKind::kDivByZero, "integer division by zero"};
      return Value::from_int(a.i / b.i);
    }
    return Value::from_float(a.as_float() / b.as_float());
  }

  Value mod(const Value& a, const Value& b) {
    if (b.as_int() == 0) {
      throw Trap{TrapKind::kDivByZero, "integer remainder by zero"};
    }
    return Value::from_int(a.as_int() % b.as_int());
  }

  Value compare(Op op, const Value& a, const Value& b) {
    bool result = false;
    if (both_int(a, b)) {
      switch (op) {
        case Op::kEq: result = a.i == b.i; break;
        case Op::kNe: result = a.i != b.i; break;
        case Op::kLt: result = a.i < b.i; break;
        case Op::kLe: result = a.i <= b.i; break;
        case Op::kGt: result = a.i > b.i; break;
        default: result = a.i >= b.i; break;
      }
    } else if (a.tag == ValueTag::kPointer || b.tag == ValueTag::kPointer) {
      const auto pa = a.tag == ValueTag::kPointer
                          ? a.ptr
                          : static_cast<std::uint64_t>(a.as_int());
      const auto pb = b.tag == ValueTag::kPointer
                          ? b.ptr
                          : static_cast<std::uint64_t>(b.as_int());
      switch (op) {
        case Op::kEq: result = pa == pb; break;
        case Op::kNe: result = pa != pb; break;
        case Op::kLt: result = pa < pb; break;
        case Op::kLe: result = pa <= pb; break;
        case Op::kGt: result = pa > pb; break;
        default: result = pa >= pb; break;
      }
    } else {
      const double fa = a.as_float();
      const double fb = b.as_float();
      switch (op) {
        case Op::kEq: result = fa == fb; break;
        case Op::kNe: result = fa != fb; break;
        case Op::kLt: result = fa < fb; break;
        case Op::kLe: result = fa <= fb; break;
        case Op::kGt: result = fa > fb; break;
        default: result = fa >= fb; break;
      }
    }
    return Value::from_int(result ? 1 : 0);
  }

  // -- device regions -------------------------------------------------------

  void process_clause_ops(const std::vector<ClauseOp>& ops) {
    for (const auto& op : ops) {
      const Value base_val = op.is_global
                                 ? globals_[static_cast<std::size_t>(op.slot)]
                                 : frames_.back()
                                       .slots[static_cast<std::size_t>(op.slot)];
      const std::uint64_t base =
          base_val.tag == ValueTag::kPointer
              ? base_val.ptr
              : static_cast<std::uint64_t>(base_val.as_int());
      switch (op.action) {
        case ClauseAction::kCopyin:
          memory_.map_to_device(base, /*copy_to_device=*/true, op.var_name);
          break;
        case ClauseAction::kCreate:
        case ClauseAction::kCopyout:
          memory_.map_to_device(base, /*copy_to_device=*/false, op.var_name);
          break;
        case ClauseAction::kCopy:
          memory_.map_to_device(base, /*copy_to_device=*/true, op.var_name);
          break;
        case ClauseAction::kPresent:
          if (!memory_.is_present(base)) {
            throw Trap{TrapKind::kNotPresent,
                       "data in PRESENT clause was not found on device: " +
                           op.var_name};
          }
          break;
        case ClauseAction::kDelete:
          memory_.unmap_from_device(base, /*copy_back=*/false,
                                    /*force=*/false, op.var_name);
          break;
        case ClauseAction::kExitCopyout:
          memory_.unmap_from_device(base, /*copy_back=*/true,
                                    /*force=*/false, op.var_name);
          break;
        case ClauseAction::kUpdateHost:
          memory_.copy_mirror(base, /*to_host=*/true, op.var_name);
          break;
        case ClauseAction::kUpdateDevice:
          memory_.copy_mirror(base, /*to_host=*/false, op.var_name);
          break;
        case ClauseAction::kNoOp:
          break;
      }
    }
  }

  // -- dispatch cores -------------------------------------------------------

  void run_loop(DispatchMode mode) {
    switch (mode) {
      case DispatchMode::kReference:
        run_loop_reference();
        return;
      case DispatchMode::kTable:
        run_loop_table();
        break;
      case DispatchMode::kThreaded:
#if defined(LLM4VV_VM_COMPUTED_GOTO)
        run_loop_threaded();
#else
        run_loop_table();
#endif
        break;
    }
    // Normal completion: stop trap rendering from reading a stale
    // instruction (a later trap outside any loop — e.g. an exhausted frame
    // budget on the main call — must render like the reference). A trap
    // unwinding past this keeps fast_ins_, which IS the trap position.
    fast_ins_ = nullptr;
  }

  /// Sentinel handler: the decoded stream's end-of-chunk marker. The fetch
  /// already charged a step; undo it so the trap is byte-identical to the
  /// reference loop's bounds check (which fires before step accounting).
  [[noreturn]] static void handler_chunk_end(Machine& m, ExecState& s,
                                             const DecodedInstr*) {
    (void)m;
    --s.steps;
    throw Trap{TrapKind::kInternal, "fell off the end of a chunk"};
  }

  /// Slow path of the fetch's step-budget check. A sentinel fetch must
  /// trap as end-of-chunk, not budget exhaustion — the reference loop
  /// checks bounds before charging the step.
  [[noreturn]] void step_trap(ExecState& s, const DecodedInstr* ins) {
    if (ins->handler == kChunkEndHandler) handler_chunk_end(*this, s, ins);
    throw Trap{TrapKind::kStepLimit, "instruction budget exhausted"};
  }

  // Handler definitions, one static function per opcode, expanded from the
  // single-source bodies in interp_ops.inc.
#define VM_RET_EMPTY()  \
  {                     \
    s.halted = true;    \
    return;             \
  }
#define VM_OP(NAME, ...)                                \
  static void handler_##NAME(Machine& m, ExecState& s,  \
                             const DecodedInstr* ins) { \
    (void)m;                                            \
    (void)s;                                            \
    (void)ins;                                          \
    __VA_ARGS__                                         \
  }
#include "vm/interp_ops.inc"
#undef VM_OP
#undef VM_RET_EMPTY

  /// Compile-time dispatch from a component opcode to its VM_OP handler —
  /// how a superinstruction reuses the exact single-source bodies above, so
  /// a fused sequence cannot drift from its unfused components. Resolves to
  /// one direct (inlinable) call.
  template <Op C>
  static void run_component(Machine& m, ExecState& s,
                            const DecodedInstr* ins) {
#define VM_OP(NAME, ...) \
  if constexpr (C == Op::NAME) return handler_##NAME(m, s, ins);
#include "vm/interp_ops.inc"
#undef VM_OP
  }

  /// Runs components 2..N of a fused sequence: each one publishes its
  /// position (so a trap unwinding from the body renders the component's
  /// line, not the head's), then replays the loop head's step charge —
  /// `++steps` with a budget check BEFORE the body, so a budget landing
  /// mid-sequence traps at exactly the component the reference loop would
  /// have been fetching, with the same final count.
  template <Op C, Op... Rest>
  static void run_fused_tail(Machine& m, ExecState& s,
                             const DecodedInstr* cur) {
    ++cur;
    m.fast_ins_ = cur;
    if (++s.steps > s.max_steps) [[unlikely]] {
      throw Trap{TrapKind::kStepLimit, "instruction budget exhausted"};
    }
    run_component<C>(m, s, cur);
    if constexpr (sizeof...(Rest) > 0) run_fused_tail<Rest...>(m, s, cur);
  }

  /// Superinstruction handler: one per VM_FUSE pattern, instantiated over
  /// the pattern's component opcodes. The loop head already fetched the
  /// head component and charged its step; s.pc is pre-advanced past the
  /// sequence so fall-through resumes after it (only a final-component
  /// branch may overwrite it — static_asserted at the pattern table).
  /// Trap-position accounting is eager: each component stores its position
  /// to fast_ins_ before running (a predictable store, measurably cheaper
  /// here than a try/catch keeping the position live across every call),
  /// and normal completion clears it so the loop catches fall back to the
  /// fetched instruction for non-fused traps.
  template <Op Head, Op... Rest>
#if defined(__GNUC__) || defined(__clang__)
  // Inline the component bodies into the superinstruction: with plain
  // calls the fused handler pays call setup per component and wins nothing
  // over the (well-predicted) dispatch loop; flattened, the compiler
  // combines the components' stack-pointer and pc bookkeeping into
  // straight-line code, which is where the fusion throughput comes from.
  __attribute__((flatten))
#endif
  static void handler_fused(Machine& m, ExecState& s,
                            const DecodedInstr* ins) {
    s.pc = ins + 1 + sizeof...(Rest);
    m.fast_ins_ = ins;
    run_component<Head>(m, s, ins);
    run_fused_tail<Rest...>(m, s, ins);
    m.fast_ins_ = nullptr;
  }

  static constexpr Handler kHandlers[] = {
#define VM_OP(NAME, ...) &Machine::handler_##NAME,
#include "vm/interp_ops.inc"
#undef VM_OP
      &Machine::handler_chunk_end,
#define VM_FUSE(NAME, ...) &Machine::handler_fused<__VA_ARGS__>,
#include "vm/interp_ops.inc"
#undef VM_FUSE
  };
  static_assert(sizeof(kHandlers) / sizeof(kHandlers[0]) ==
                    kOpCount + 1 + kFusionPatternCount,
                "one handler per opcode, the end-of-chunk sentinel, and one "
                "per superinstruction pattern");

  /// Portable fast core: pre-decoded stream + function-pointer table.
  void run_loop_table() {
    ExecState s;
    s.enter(*this);
    StepsSync sync_guard{*this, s};
    const DecodedInstr* ins = nullptr;
    try {
      for (;;) {
        ins = s.pc++;
        if (++s.steps > s.max_steps) [[unlikely]] step_trap(s, ins);
        kHandlers[ins->handler](*this, s, ins);
        if (s.halted) return;
      }
    } catch (...) {
      // Publish the trapping instruction for line rendering only on the
      // unwind path, keeping the fetch free of per-instruction stores. A
      // superinstruction that trapped mid-sequence already published the
      // precise component; fast_ins_ is null during normal execution.
      if (fast_ins_ == nullptr) fast_ins_ = ins;
      throw;
    }
  }

  /// Token-threaded core: every handler call site ends in its own indirect
  /// jump through the label table, so the branch predictor learns
  /// per-opcode successor patterns instead of sharing one mispredicting
  /// dispatch site. GCC's cross-jumping pass would merge those replicated
  /// indirect jumps back into a single dispatch site — exactly the
  /// pessimization token threading exists to avoid — so it is disabled
  /// for this function.
#if defined(__GNUC__) && !defined(__clang__)
  __attribute__((optimize("no-crossjumping")))
#endif
  void run_loop_threaded() {
#if defined(LLM4VV_VM_COMPUTED_GOTO)
    static const void* const kLabels[] = {
#define VM_OP(NAME, ...) &&label_##NAME,
#include "vm/interp_ops.inc"
#undef VM_OP
        &&label_chunk_end,
#define VM_FUSE(NAME, ...) &&label_fused_##NAME,
#include "vm/interp_ops.inc"
#undef VM_FUSE
    };
    static_assert(sizeof(kLabels) / sizeof(kLabels[0]) ==
                      kOpCount + 1 + kFusionPatternCount,
                  "one label per opcode, the end-of-chunk sentinel, and one "
                  "per superinstruction pattern");

    Machine& m = *this;
    ExecState s;
    s.enter(m);
    StepsSync sync_guard{m, s};
    const DecodedInstr* ins = nullptr;

#define VM_DISPATCH()                                  \
  do {                                                 \
    ins = s.pc++;                                      \
    if (++s.steps > s.max_steps) [[unlikely]] {        \
      m.step_trap(s, ins);                             \
    }                                                  \
    goto* kLabels[ins->handler];                       \
  } while (0)

    try {
      VM_DISPATCH();

      // Call-threaded: each label calls the shared outlined handler and
      // re-dispatches from its own site. Inlining all ~50 bodies into this
      // one function measurably loses to the outlined handlers' codegen
      // (register pressure), so the labels deliberately call.
#define VM_OP(NAME, ...)     \
  label_##NAME:              \
  handler_##NAME(m, s, ins); \
  if (s.halted) return;      \
  VM_DISPATCH();
// Superinstruction labels: fused sequences never halt (kRet is not a legal
// component), so they skip the halt check and re-dispatch directly.
#define VM_FUSE(NAME, ...)               \
  label_fused_##NAME:                    \
  handler_fused<__VA_ARGS__>(m, s, ins); \
  VM_DISPATCH();
#include "vm/interp_ops.inc"
#undef VM_OP
#undef VM_FUSE

    label_chunk_end:
      handler_chunk_end(m, s, ins);
    } catch (...) {
      // Publish the trapping instruction for line rendering only on the
      // unwind path, keeping the fetch free of per-instruction stores. A
      // superinstruction that trapped mid-sequence already published the
      // precise component; fast_ins_ is null during normal execution.
      if (m.fast_ins_ == nullptr) m.fast_ins_ = ins;
      throw;
    }
#undef VM_DISPATCH
#else
    run_loop_table();
#endif
  }

  /// The original per-instruction switch decode loop, kept verbatim as the
  /// behavioural reference for differential testing.
  void run_loop_reference() {
    while (!frames_.empty()) {
      Frame& frame = frames_.back();
      const Chunk& chunk =
          module_.chunks[static_cast<std::size_t>(frame.chunk)];
      if (frame.ip >= static_cast<std::int32_t>(chunk.code.size())) {
        throw Trap{TrapKind::kInternal, "fell off the end of a chunk"};
      }
      const Instr instr = chunk.code[static_cast<std::size_t>(frame.ip++)];
      if (++steps_ > limits_.max_steps) {
        throw Trap{TrapKind::kStepLimit, "instruction budget exhausted"};
      }
      switch (instr.op) {
        case Op::kNop:
          break;
        case Op::kPushConst:
          push(module_.consts[static_cast<std::size_t>(instr.a)]);
          break;
        case Op::kLoadSlot:
          push(frame.slots[static_cast<std::size_t>(instr.a)]);
          break;
        case Op::kStoreSlot:
          frame.slots[static_cast<std::size_t>(instr.a)] = pop();
          break;
        case Op::kLoadGlobal:
          push(globals_[static_cast<std::size_t>(instr.a)]);
          break;
        case Op::kStoreGlobal:
          globals_[static_cast<std::size_t>(instr.a)] = pop();
          break;
        case Op::kAddrSlot:
        case Op::kAddrGlobal:
          // Address-of scalars is outside the subset; lowering never emits
          // these (kept for bytecode completeness).
          push(Value::from_pointer(0));
          break;
        case Op::kLoadInd: {
          const Value addr = pop();
          push(memory_.load(pointer_of(addr), device_mode()));
          break;
        }
        case Op::kStoreInd: {
          const Value value = pop();
          const Value addr = pop();
          memory_.store(pointer_of(addr), value, device_mode());
          break;
        }
        case Op::kStoreIndKeep: {
          const Value value = pop();
          const Value addr = pop();
          memory_.store(pointer_of(addr), value, device_mode());
          push(value);
          break;
        }
        case Op::kIndexAddr: {
          const Value index = pop();
          const Value base = pop();
          const std::uint64_t p = pointer_of(base);
          if (p == 0) {
            throw Trap{TrapKind::kNullDeref,
                       "indexing a null or uninitialized pointer"};
          }
          push(Value::from_pointer(
              p + static_cast<std::uint64_t>(index.as_int())));
          break;
        }
        case Op::kAdd: { const Value b = pop(), a = pop(); push(add(a, b)); break; }
        case Op::kSub: { const Value b = pop(), a = pop(); push(sub(a, b)); break; }
        case Op::kMul: { const Value b = pop(), a = pop(); push(mul(a, b)); break; }
        case Op::kDiv: { const Value b = pop(), a = pop(); push(div(a, b)); break; }
        case Op::kMod: { const Value b = pop(), a = pop(); push(mod(a, b)); break; }
        case Op::kNeg: {
          const Value a = pop();
          if (a.tag == ValueTag::kInt) push(Value::from_int(-a.i));
          else push(Value::from_float(-a.as_float()));
          break;
        }
        case Op::kNot:
          push(Value::from_int(pop().truthy() ? 0 : 1));
          break;
        case Op::kBitNot:
          push(Value::from_int(~pop().as_int()));
          break;
        case Op::kEq: case Op::kNe: case Op::kLt:
        case Op::kLe: case Op::kGt: case Op::kGe: {
          const Value b = pop(), a = pop();
          push(compare(instr.op, a, b));
          break;
        }
        case Op::kBitAnd: { const Value b = pop(), a = pop(); push(Value::from_int(a.as_int() & b.as_int())); break; }
        case Op::kBitOr: { const Value b = pop(), a = pop(); push(Value::from_int(a.as_int() | b.as_int())); break; }
        case Op::kBitXor: { const Value b = pop(), a = pop(); push(Value::from_int(a.as_int() ^ b.as_int())); break; }
        case Op::kShl: { const Value b = pop(), a = pop(); push(Value::from_int(a.as_int() << (b.as_int() & 63))); break; }
        case Op::kShr: { const Value b = pop(), a = pop(); push(Value::from_int(a.as_int() >> (b.as_int() & 63))); break; }
        case Op::kCastInt:
          push(Value::from_int(pop().as_int()));
          break;
        case Op::kCastFloat:
          push(Value::from_float(pop().as_float()));
          break;
        case Op::kJump:
          frame.ip = instr.a;
          break;
        case Op::kJumpIfFalse: {
          if (!pop().truthy()) frame.ip = instr.a;
          break;
        }
        case Op::kJumpIfTrue: {
          if (pop().truthy()) frame.ip = instr.a;
          break;
        }
        case Op::kCall:
          call_chunk(instr.a, instr.b);
          break;
        case Op::kCallBuiltin:
          push(call_builtin(*this, instr.a, instr.b));
          break;
        case Op::kRet: {
          const Value result = pop();
          frames_.pop_back();
          if (frames_.empty()) {
            push(result);
            return;
          }
          push(result);
          break;
        }
        case Op::kPop:
          pop();
          break;
        case Op::kDup: {
          const Value v = pop();
          push(v);
          push(v);
          break;
        }
        case Op::kSwap: {
          const Value b = pop(), a = pop();
          push(b);
          push(a);
          break;
        }
        case Op::kAllocArray: {
          const std::uint64_t count =
              instr.b > 0 ? static_cast<std::uint64_t>(instr.b)
                          : static_cast<std::uint64_t>(pop().as_int());
          const std::uint64_t base = memory_.allocate(count, /*heap=*/false);
          frame.slots[static_cast<std::size_t>(instr.a)] =
              Value::from_pointer(base);
          break;
        }
        case Op::kAllocGlobalArray: {
          const std::uint64_t count =
              instr.b > 0 ? static_cast<std::uint64_t>(instr.b)
                          : static_cast<std::uint64_t>(pop().as_int());
          const std::uint64_t base = memory_.allocate(count, /*heap=*/false);
          // Globals zero-initialize.
          for (std::uint64_t i = 0; i < count; ++i) {
            memory_.store(base + i, Value::from_int(0), false);
          }
          globals_[static_cast<std::size_t>(instr.a)] =
              Value::from_pointer(base);
          break;
        }
        case Op::kDevEnter: {
          const Region& region =
              module_.regions[static_cast<std::size_t>(instr.a)];
          process_clause_ops(region.enter_ops);
          if (region.device_mode) ++device_depth_;
          break;
        }
        case Op::kDevExit: {
          const Region& region =
              module_.regions[static_cast<std::size_t>(instr.a)];
          if (region.device_mode) --device_depth_;
          process_clause_ops(region.exit_ops);
          break;
        }
        case Op::kDevAction: {
          const Region& region =
              module_.regions[static_cast<std::size_t>(instr.a)];
          process_clause_ops(region.enter_ops);
          break;
        }
      }
    }
  }

  static std::uint64_t pointer_of(const Value& v) {
    switch (v.tag) {
      case ValueTag::kPointer: return v.ptr;
      case ValueTag::kInt: return static_cast<std::uint64_t>(v.i);
      case ValueTag::kUninit:
        throw Trap{TrapKind::kNullDeref,
                   "dereference of an uninitialized pointer"};
      default:
        throw Trap{TrapKind::kOutOfBounds, "dereference of a non-pointer"};
    }
  }

  const Module& module_;
  const ExecLimits& limits_;
  Memory memory_;
  std::vector<Frame> frames_;
  std::vector<Value> stack_;
  std::vector<Value> globals_ =
      std::vector<Value>(static_cast<std::size_t>(module_.global_slot_count));
  std::string stdout_;
  std::string stderr_;
  std::uint64_t steps_ = 0;
  int device_depth_ = 0;
  std::uint64_t rand_state_ = 0x5eed5eed5eed5eedULL;
  /// Decoded streams of the fast cores (unused in reference mode).
  DecodedProgram decoded_storage_;
  const DecodedProgram* decoded_ = nullptr;
  /// Instruction a fast core is currently executing; consulted by
  /// current_line() so trap messages render the reference-identical
  /// position without the loops writing frame->ip back on every fetch.
  const DecodedInstr* fast_ins_ = nullptr;
};

bool threaded_dispatch_is_computed_goto() noexcept {
#if defined(LLM4VV_VM_COMPUTED_GOTO)
  return true;
#else
  return false;
#endif
}

DispatchMode default_dispatch_mode() noexcept {
  return DispatchMode::kTable;
}

const char* dispatch_mode_name(DispatchMode mode) noexcept {
  switch (mode) {
    case DispatchMode::kReference: return "reference";
    case DispatchMode::kTable: return "table";
    case DispatchMode::kThreaded:
      return threaded_dispatch_is_computed_goto() ? "computed-goto" : "table";
  }
  return "?";
}

bool default_fusion_enabled() noexcept {
#if defined(LLM4VV_VM_FUSION_OFF)
  return false;
#else
  return true;
#endif
}

std::size_t fusion_pattern_count() noexcept { return kFusionPatternCount; }

const char* fusion_pattern_name(std::size_t pattern) noexcept {
  return pattern < kFusionPatternCount ? kFusionPatterns[pattern].name : "?";
}

std::size_t fusion_pattern_length(std::size_t pattern) noexcept {
  return pattern < kFusionPatternCount ? kFusionPatterns[pattern].length : 0;
}

Op fusion_pattern_component(std::size_t pattern, std::size_t index) noexcept {
  if (pattern >= kFusionPatternCount ||
      index >= kFusionPatterns[pattern].length) {
    return Op::kNop;
  }
  return kFusionPatterns[pattern].ops[index];
}

ExecResult execute(const Module& module, const ExecLimits& limits) {
  return execute(module, limits, default_dispatch_mode());
}

ExecResult execute(const Module& module, const ExecLimits& limits,
                   DispatchMode mode) {
  return execute(module, limits, mode, default_fusion_enabled());
}

ExecResult execute(const Module& module, const ExecLimits& limits,
                   DispatchMode mode, bool fuse) {
  Machine machine(module, limits);
  return machine.run(mode, fuse);
}

ExecResult execute_reference(const Module& module, const ExecLimits& limits) {
  return execute(module, limits, DispatchMode::kReference);
}

}  // namespace llm4vv::vm
