#pragma once

#include <cstdint>
#include <string>

#include "vm/bytecode.hpp"
#include "vm/memory.hpp"

namespace llm4vv::vm {

/// Execution budgets — the analogue of ulimits/timeouts on a real cluster.
struct ExecLimits {
  std::uint64_t max_steps = 50'000'000;   ///< instruction budget
  std::size_t max_output = 1u << 16;      ///< stdout bytes
  std::size_t max_frames = 512;           ///< call depth
  std::uint64_t max_cells = 1u << 22;     ///< memory cells
};

/// Result of running a Module.
struct ExecResult {
  int return_code = 0;
  std::string stdout_text;
  std::string stderr_text;
  TrapKind trap = TrapKind::kNone;
  std::uint64_t steps = 0;
  /// Superinstruction sites the decode-time fusion pass rewrote (0 when
  /// fusion was off or the reference core ran — it never decodes).
  std::uint64_t fused_instructions = 0;
  /// Distinct fusion patterns among those sites.
  std::uint32_t fusion_patterns = 0;

  bool trapped() const noexcept { return trap != TrapKind::kNone; }
  bool ok() const noexcept { return !trapped() && return_code == 0; }
};

/// How the interpreter decodes and dispatches bytecode.
///
///  - kReference: the original per-instruction `switch` decode loop, kept
///    verbatim as the behavioural pin for differential testing (the same
///    role the tokenizer's `encode_reference` plays). Every other core
///    must match it byte-for-byte: outputs, traps, return codes, and step
///    accounting.
///  - kTable: a pre-decode pass lowers the module into flat per-chunk
///    streams of handler indices + packed operands, executed by a portable
///    function-pointer-table loop. Available in every build, and the
///    fastest core measured on GCC 12/x86 (the pre-decode + cached
///    frame/pc state is where the win is; see docs/BENCHMARKS.md).
///  - kThreaded: the same pre-decoded stream executed by a token-threaded
///    computed-goto core (each handler call site ends in its own indirect
///    jump, so the branch predictor learns per-opcode successor
///    patterns). Falls back to the table core when the compiler has no
///    computed goto or the build pinned `-DLLM4VV_VM_DISPATCH=table`;
///    dispatch_mode_name() reports the core actually running.
enum class DispatchMode { kReference, kTable, kThreaded };

/// True when this build's kThreaded core is real computed goto (GNU-style
/// `&&label`), false when it silently degrades to the table core.
bool threaded_dispatch_is_computed_goto() noexcept;

/// The dispatch core execute() uses when no mode is passed: kTable — the
/// fastest core in practice (modern indirect-branch predictors erase most
/// of computed goto's classic edge, and the outlined handlers compile
/// tighter than one giant label soup; both fast cores beat the reference
/// switch, the table core by >= 1.5x, gated in CI). kThreaded stays fully
/// supported and differential-tested for builds where it wins.
DispatchMode default_dispatch_mode() noexcept;

/// Resolved human-readable core name: "reference", "table", or
/// "computed-goto" (kThreaded reports "table" when it degraded).
const char* dispatch_mode_name(DispatchMode mode) noexcept;

/// Whether the fast cores fuse superinstructions by default: true unless the
/// build pinned -DLLM4VV_VM_FUSION=OFF (the CI matrix builds that leg). The
/// reference core never fuses — it does not even decode. An explicit
/// `fuse` argument to execute() overrides this either way, which is what the
/// differential suite uses to run the full 3-modes x fusion-on/off matrix.
bool default_fusion_enabled() noexcept;

/// Introspection over the superinstruction pattern table (the VM_FUSE list
/// in interp_ops.inc), for tests and telemetry labels: how many patterns the
/// decoder knows, each one's name (e.g. "LoadSlotPushConstMul"), component
/// count (2 or 3), and component opcodes.
std::size_t fusion_pattern_count() noexcept;
const char* fusion_pattern_name(std::size_t pattern) noexcept;
std::size_t fusion_pattern_length(std::size_t pattern) noexcept;
Op fusion_pattern_component(std::size_t pattern, std::size_t index) noexcept;

/// Execute a lowered module: run the global-init chunk, then `main`.
/// Traps are converted into non-zero return codes with a runtime-style
/// stderr line (segfault-like traps -> 139; device-mapping failures -> 1,
/// like the OpenACC runtime's FATAL ERROR path; budget exhaustion -> 124,
/// like `timeout(1)`).
ExecResult execute(const Module& module, const ExecLimits& limits = {});

/// Same, with an explicit dispatch core. All cores are semantically
/// identical; tests/vm_dispatch_test.cpp enforces byte equivalence. Fusion
/// follows default_fusion_enabled().
ExecResult execute(const Module& module, const ExecLimits& limits,
                   DispatchMode mode);

/// Same, with superinstruction fusion explicitly on or off (ignored by the
/// reference core, which never decodes). Every combination is semantically
/// identical — byte-for-byte outputs, traps, return codes, and step counts.
ExecResult execute(const Module& module, const ExecLimits& limits,
                   DispatchMode mode, bool fuse);

/// The pinned switch interpreter (== execute(..., DispatchMode::kReference));
/// differential tests diff the fast cores against this.
ExecResult execute_reference(const Module& module,
                             const ExecLimits& limits = {});

}  // namespace llm4vv::vm
