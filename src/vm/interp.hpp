#pragma once

#include <cstdint>
#include <string>

#include "vm/bytecode.hpp"
#include "vm/memory.hpp"

namespace llm4vv::vm {

/// Execution budgets — the analogue of ulimits/timeouts on a real cluster.
struct ExecLimits {
  std::uint64_t max_steps = 50'000'000;   ///< instruction budget
  std::size_t max_output = 1u << 16;      ///< stdout bytes
  std::size_t max_frames = 512;           ///< call depth
  std::uint64_t max_cells = 1u << 22;     ///< memory cells
};

/// Result of running a Module.
struct ExecResult {
  int return_code = 0;
  std::string stdout_text;
  std::string stderr_text;
  TrapKind trap = TrapKind::kNone;
  std::uint64_t steps = 0;

  bool trapped() const noexcept { return trap != TrapKind::kNone; }
  bool ok() const noexcept { return !trapped() && return_code == 0; }
};

/// Execute a lowered module: run the global-init chunk, then `main`.
/// Traps are converted into non-zero return codes with a runtime-style
/// stderr line (segfault-like traps -> 139; device-mapping failures -> 1,
/// like the OpenACC runtime's FATAL ERROR path; budget exhaustion -> 124,
/// like `timeout(1)`).
ExecResult execute(const Module& module, const ExecLimits& limits = {});

}  // namespace llm4vv::vm
