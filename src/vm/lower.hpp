#pragma once

#include "frontend/ast.hpp"
#include "frontend/source.hpp"
#include "vm/bytecode.hpp"

namespace llm4vv::vm {

/// Lowering configuration.
struct LowerOptions {
  frontend::Flavor flavor = frontend::Flavor::kOpenACC;
};

/// Lower a sema-checked Program to a bytecode Module. Directive constructs
/// become device regions per the mapping in DESIGN.md §5:
///
///  - OpenACC parallel/kernels/serial (with or without `loop`) and OpenMP
///    `target ...` compute constructs open a *device-mode* region whose
///    data clauses compile to enter/exit ClauseOps;
///  - `data` / `target data` open a host-mode region with the same clause
///    machinery;
///  - `enter data`/`exit data`/`update`/`target update` become one-shot
///    kDevAction ops;
///  - host-side constructs (omp parallel/for/simd/task/... and bare acc
///    `loop`) simply execute their body — the interpreter is sequential by
///    construction, which preserves every *correctness-observable* effect
///    of these constructs except data races (which the corpus does not
///    exercise);
///  - synchronization/no-op directives (wait, barrier, routine, declare...)
///    lower to nothing.
///
/// Precondition: `analyze()` ran without errors; lowering trusts symbol ids.
Module lower(const frontend::Program& program, const LowerOptions& options);

}  // namespace llm4vv::vm
