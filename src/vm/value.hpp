#pragma once

#include <cstdint>
#include <string>

namespace llm4vv::vm {

/// Runtime value tag. The VM is dynamically typed at the cell level: the
/// front-end's static types select opcodes and formatting, but each memory
/// cell carries its own tag so the interpreter can trap on wild reads
/// (e.g. using uninitialized device memory).
enum class ValueTag : std::uint8_t {
  kUninit,   ///< never written; reading is defined but poisoned (0xDEAD...)
  kInt,      ///< 64-bit signed integer (int/long/char/bool)
  kFloat,    ///< binary64 (float/double)
  kPointer,  ///< address into the VM's memory (0 = null)
  kString,   ///< index into the module's string table (printf formats)
};

/// One VM cell. 16 bytes; value semantics.
struct Value {
  ValueTag tag = ValueTag::kUninit;
  union {
    std::int64_t i;
    double f;
    std::uint64_t ptr;
  };

  Value() : i(0) {}

  static Value from_int(std::int64_t v) {
    Value val;
    val.tag = ValueTag::kInt;
    val.i = v;
    return val;
  }
  static Value from_float(double v) {
    Value val;
    val.tag = ValueTag::kFloat;
    val.f = v;
    return val;
  }
  static Value from_pointer(std::uint64_t address) {
    Value val;
    val.tag = ValueTag::kPointer;
    val.ptr = address;
    return val;
  }
  static Value from_string(std::uint64_t string_index) {
    Value val;
    val.tag = ValueTag::kString;
    val.ptr = string_index;
    return val;
  }

  bool is_numeric() const noexcept {
    return tag == ValueTag::kInt || tag == ValueTag::kFloat;
  }

  /// Numeric coercion to double (uninit reads as a poison pattern).
  double as_float() const noexcept {
    switch (tag) {
      case ValueTag::kFloat: return f;
      case ValueTag::kInt: return static_cast<double>(i);
      case ValueTag::kPointer: return static_cast<double>(ptr);
      default: return -6.2774385622041925e66;  // poison
    }
  }

  /// Numeric coercion to int64.
  std::int64_t as_int() const noexcept {
    switch (tag) {
      case ValueTag::kInt: return i;
      case ValueTag::kFloat: return static_cast<std::int64_t>(f);
      case ValueTag::kPointer: return static_cast<std::int64_t>(ptr);
      default: return static_cast<std::int64_t>(0xDEADBEEFCAFEBABEULL);
    }
  }

  /// Truthiness for conditions.
  bool truthy() const noexcept {
    switch (tag) {
      case ValueTag::kInt: return i != 0;
      case ValueTag::kFloat: return f != 0.0;
      case ValueTag::kPointer: return ptr != 0;
      case ValueTag::kString: return true;
      default: return true;  // poison is truthy; using it goes loudly wrong
    }
  }
};

/// Debug rendering, e.g. "int:42", "ptr:0x10".
std::string to_string(const Value& value);

}  // namespace llm4vv::vm
