#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "vm/value.hpp"

namespace llm4vv::vm {

/// Why execution stopped abnormally. The executor maps these to process-like
/// return codes and nvc/libomptarget-style stderr messages.
enum class TrapKind {
  kNone,
  kNullDeref,       ///< dereference of a null or uninitialized pointer
  kOutOfBounds,     ///< access outside any live allocation
  kUseAfterFree,    ///< access to a freed allocation
  kNotPresent,      ///< device access to an unmapped heap allocation
  kDivByZero,
  kStackOverflow,
  kStepLimit,       ///< execution budget exhausted (timeout analogue)
  kOutputLimit,     ///< stdout budget exhausted
  kBadAlloc,        ///< absurd allocation size
  kInternal,        ///< lowering/VM invariant violation (a bug on our side)
};

/// Render a trap kind as a short name ("null-deref", ...).
const char* trap_kind_name(TrapKind kind) noexcept;

/// Signals a trap; caught by the interpreter's top loop.
struct Trap {
  TrapKind kind;
  std::string message;
};

/// One allocation (global block, array, or malloc'd block).
struct Allocation {
  std::uint64_t base = 0;   ///< first cell address
  std::uint64_t size = 0;   ///< cell count
  bool alive = true;
  bool heap = false;        ///< produced by malloc (affects device rules)
  /// Device mapping state (OpenACC-style structured reference counting).
  int present_count = 0;
  std::uint64_t device_base = 0;  ///< mirror cells (0 = none)
};

/// Flat cell memory with an allocation table and a host/device mirror
/// model.
///
/// Addresses are 1-based indices into one cell array (0 is the null
/// address). Every load/store resolves its allocation and traps on
/// out-of-bounds, freed, or null access — the VM equivalent of a segfault.
///
/// The device model implements what the reproduction needs from OpenACC /
/// OpenMP-offload runtimes: `map_*` mirrors an allocation into device
/// cells with reference counting; in *device mode* (inside an offloaded
/// compute region) accesses to mapped allocations are redirected to the
/// mirror, accesses to unmapped heap allocations trap like a GPU illegal
/// address, and accesses to unmapped stack/global data fall through
/// (modelling implicit firstprivate/shared of statically-sized data).
class Memory {
 public:
  explicit Memory(std::uint64_t max_cells = 1u << 22);

  /// Allocate `size` cells; returns the base address. Never returns 0.
  std::uint64_t allocate(std::uint64_t size, bool heap);

  /// Free a heap allocation (free(0) is a no-op, matching C).
  void free_allocation(std::uint64_t base);

  /// Read/write one cell with full checking. `device_mode` selects the
  /// device-side view.
  Value load(std::uint64_t address, bool device_mode);
  void store(std::uint64_t address, Value value, bool device_mode);

  /// Device mapping ops; `copy_to_device` seeds the mirror from host cells.
  /// Re-mapping an already-present allocation only bumps the refcount.
  void map_to_device(std::uint64_t base, bool copy_to_device,
                     const std::string& var_name);
  /// True when the allocation containing `base` is currently mapped.
  bool is_present(std::uint64_t base);
  /// Unmap (refcounted); `copy_back` writes the mirror to host cells when
  /// the final reference drops. With `force`, drops all references.
  void unmap_from_device(std::uint64_t base, bool copy_back, bool force,
                         const std::string& var_name);
  /// `update host/device` directive support: copy without remapping.
  void copy_mirror(std::uint64_t base, bool to_host,
                   const std::string& var_name);

  /// Number of live (not freed) allocations.
  std::size_t live_allocations() const noexcept;

  /// Total cells currently allocated (live allocations only).
  std::uint64_t cells_in_use() const noexcept;

 private:
  Allocation& find_allocation(std::uint64_t address,
                              const char* what);
  Allocation* try_find(std::uint64_t address);

  std::vector<Value> cells_;
  std::vector<Allocation> allocs_;  ///< sorted by base (append-only bases)
  std::uint64_t next_base_ = 1;
  std::uint64_t max_cells_;
};

}  // namespace llm4vv::vm
