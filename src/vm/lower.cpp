#include "vm/lower.hpp"

#include <map>
#include <stdexcept>

#include "directive/ir.hpp"
#include "directive/spec.hpp"
#include "frontend/builtins.hpp"

namespace llm4vv::vm {

namespace {

using frontend::BaseType;
using frontend::Declarator;
using frontend::Expr;
using frontend::ExprKind;
using frontend::FunctionDecl;
using frontend::Program;
using frontend::Stmt;
using frontend::StmtKind;
using frontend::Symbol;
using frontend::SymbolKind;

/// Where a resolved variable lives.
struct Slot {
  bool is_global = false;
  std::int32_t index = -1;
};

class Lowerer {
 public:
  Lowerer(const Program& program, const LowerOptions& options)
      : program_(program), options_(options) {}

  Module run() {
    // Chunk i corresponds to function i; the init chunk goes last.
    module_.chunks.resize(program_.functions.size());

    assign_global_slots();
    build_builtin_index();

    for (std::size_t i = 0; i < program_.functions.size(); ++i) {
      lower_function(program_.functions[i], module_.chunks[i]);
    }
    lower_init_chunk();

    module_.main_chunk = program_.main_index;
    return std::move(module_);
  }

 private:
  // -- tables ---------------------------------------------------------------

  void assign_global_slots() {
    for (const auto& decl : program_.globals) {
      globals_[decl.symbol_id] = module_.global_slot_count++;
    }
  }

  void build_builtin_index() {
    std::int32_t index = 0;
    for (const auto& b : frontend::builtin_functions()) {
      builtin_index_[b.name] = index++;
    }
  }

  // -- constants ------------------------------------------------------------

  std::int32_t add_const(Value value) {
    module_.consts.push_back(value);
    return static_cast<std::int32_t>(module_.consts.size()) - 1;
  }

  std::int32_t add_string(const std::string& text) {
    module_.strings.push_back(text);
    return add_const(Value::from_string(module_.strings.size() - 1));
  }

  // -- emission -------------------------------------------------------------

  void emit(Op op, std::int32_t a = 0, std::int32_t b = 0) {
    code_->push_back(Instr{op, a, b, current_line_});
  }

  std::int32_t here() const {
    return static_cast<std::int32_t>(code_->size());
  }

  /// Emits a jump with a to-be-patched target; returns the instr index.
  std::int32_t emit_jump(Op op) {
    emit(op, -1);
    return here() - 1;
  }

  void patch_jump(std::int32_t at) {
    (*code_)[static_cast<std::size_t>(at)].a = here();
  }

  // -- slot resolution ------------------------------------------------------

  Slot resolve(int symbol_id) const {
    const auto global = globals_.find(symbol_id);
    if (global != globals_.end()) return Slot{true, global->second};
    const auto local = locals_.find(symbol_id);
    if (local != locals_.end()) return Slot{false, local->second};
    return Slot{};
  }

  std::int32_t new_local(int symbol_id) {
    const std::int32_t slot = slot_count_++;
    locals_[symbol_id] = slot;
    return slot;
  }

  const Symbol& symbol(int id) const {
    return program_.symbols[static_cast<std::size_t>(id)];
  }

  // -- functions ------------------------------------------------------------

  void lower_function(const FunctionDecl& fn, Chunk& chunk) {
    chunk.name = fn.name;
    chunk.param_count = static_cast<std::int32_t>(fn.params.size());
    code_ = &chunk.code;
    locals_.clear();
    slot_count_ = 0;
    for (const auto& param : fn.params) new_local(param.symbol_id);
    lower_stmt(fn.body.get());
    // Falling off the end: `main` implicitly returns 0 (C11 5.1.2.2.3);
    // any other value-returning function yields an *indeterminate* value,
    // which we model with a recognizable nonzero poison so truncation
    // mutations become observable at the execute stage, exactly as missing
    // returns misbehave under real compilers.
    const bool poison =
        fn.name != "main" && fn.return_type.base != BaseType::kVoid;
    emit(Op::kPushConst, add_const(Value::from_int(poison ? 173 : 0)));
    emit(Op::kRet);
    chunk.slot_count = slot_count_;
  }

  void lower_init_chunk() {
    Chunk init;
    init.name = "<global-init>";
    code_ = &init.code;
    locals_.clear();
    slot_count_ = 0;
    for (const auto& decl : program_.globals) {
      lower_global_decl(decl);
    }
    emit(Op::kPushConst, add_const(Value::from_int(0)));
    emit(Op::kRet);
    init.slot_count = slot_count_;
    module_.chunks.push_back(std::move(init));
    module_.init_chunk =
        static_cast<std::int32_t>(module_.chunks.size()) - 1;
  }

  void lower_global_decl(const Declarator& decl) {
    const Slot slot = resolve(decl.symbol_id);
    current_line_ = decl.line;
    if (decl.type.is_array) {
      if (decl.type.array_extent > 0) {
        emit(Op::kAllocGlobalArray, slot.index,
             static_cast<std::int32_t>(decl.type.array_extent));
      } else if (decl.array_extent) {
        lower_expr(decl.array_extent.get());
        emit(Op::kAllocGlobalArray, slot.index, 0);
      }
      return;
    }
    if (decl.init) {
      lower_expr(decl.init.get());
      emit(Op::kStoreGlobal, slot.index);
    } else {
      // Globals zero-initialize in C (unlike locals).
      emit(Op::kPushConst, add_const(default_value(decl.type)));
      emit(Op::kStoreGlobal, slot.index);
    }
  }

  static Value default_value(const frontend::Type& type) {
    if (type.is_pointer()) return Value::from_pointer(0);
    if (type.is_float()) return Value::from_float(0.0);
    return Value::from_int(0);
  }

  // -- statements -----------------------------------------------------------

  void lower_stmt(const Stmt* stmt) {
    if (stmt == nullptr) return;
    current_line_ = stmt->line;
    switch (stmt->kind) {
      case StmtKind::kDecl:
        for (const auto& decl : stmt->decls) lower_local_decl(decl);
        break;
      case StmtKind::kExpr:
        lower_expr_statement(stmt->expr.get());
        break;
      case StmtKind::kCompound:
        for (const auto& child : stmt->body) lower_stmt(child.get());
        break;
      case StmtKind::kIf: {
        lower_expr(stmt->expr.get());
        const std::int32_t to_else = emit_jump(Op::kJumpIfFalse);
        lower_stmt(stmt->then_branch.get());
        if (stmt->else_branch) {
          const std::int32_t to_end = emit_jump(Op::kJump);
          patch_jump(to_else);
          lower_stmt(stmt->else_branch.get());
          patch_jump(to_end);
        } else {
          patch_jump(to_else);
        }
        break;
      }
      case StmtKind::kWhile: {
        const std::int32_t top = here();
        lower_expr(stmt->expr.get());
        const std::int32_t out = emit_jump(Op::kJumpIfFalse);
        push_loop(top);
        lower_stmt(stmt->then_branch.get());
        emit(Op::kJump, top);
        patch_jump(out);
        pop_loop(top);
        break;
      }
      case StmtKind::kDoWhile: {
        const std::int32_t top = here();
        // `continue` in a do-while targets the condition; a second pass
        // patches continue jumps to `cond_at`.
        push_loop(-1);
        lower_stmt(stmt->then_branch.get());
        const std::int32_t cond_at = here();
        lower_expr(stmt->expr.get());
        emit(Op::kJumpIfTrue, top);
        pop_loop(cond_at);
        break;
      }
      case StmtKind::kFor: {
        lower_stmt(stmt->init_stmt.get());
        const std::int32_t top = here();
        std::int32_t out = -1;
        if (stmt->expr) {
          lower_expr(stmt->expr.get());
          out = emit_jump(Op::kJumpIfFalse);
        }
        push_loop(-1);
        lower_stmt(stmt->then_branch.get());
        const std::int32_t step_at = here();
        if (stmt->step_expr) lower_expr_statement(stmt->step_expr.get());
        emit(Op::kJump, top);
        if (out >= 0) patch_jump(out);
        pop_loop(step_at);
        break;
      }
      case StmtKind::kReturn:
        if (stmt->expr) {
          lower_expr(stmt->expr.get());
        } else {
          emit(Op::kPushConst, add_const(Value::from_int(0)));
        }
        emit(Op::kRet);
        break;
      case StmtKind::kBreak:
        loop_stack_.back().break_jumps.push_back(emit_jump(Op::kJump));
        break;
      case StmtKind::kContinue:
        loop_stack_.back().continue_jumps.push_back(emit_jump(Op::kJump));
        break;
      case StmtKind::kPragma:
        lower_pragma(stmt);
        break;
      case StmtKind::kEmpty:
        break;
    }
  }

  struct LoopContext {
    std::int32_t continue_target = -1;  ///< -1: patch at pop time
    std::vector<std::int32_t> break_jumps;
    std::vector<std::int32_t> continue_jumps;
  };

  void push_loop(std::int32_t continue_target) {
    LoopContext ctx;
    ctx.continue_target = continue_target;
    loop_stack_.push_back(std::move(ctx));
  }

  void pop_loop(std::int32_t continue_target) {
    LoopContext ctx = std::move(loop_stack_.back());
    loop_stack_.pop_back();
    const std::int32_t target =
        ctx.continue_target >= 0 ? ctx.continue_target : continue_target;
    for (const std::int32_t at : ctx.break_jumps) patch_jump(at);
    for (const std::int32_t at : ctx.continue_jumps) {
      (*code_)[static_cast<std::size_t>(at)].a = target;
    }
  }

  void lower_local_decl(const Declarator& decl) {
    const std::int32_t slot = new_local(decl.symbol_id);
    current_line_ = decl.line;
    if (decl.type.is_array) {
      if (decl.type.array_extent > 0) {
        emit(Op::kAllocArray, slot,
             static_cast<std::int32_t>(decl.type.array_extent));
      } else if (decl.array_extent) {
        lower_expr(decl.array_extent.get());
        emit(Op::kAllocArray, slot, 0);
      }
      return;
    }
    if (decl.init) {
      lower_expr(decl.init.get());
      emit(Op::kStoreSlot, slot);
    }
    // Uninitialized locals keep the kUninit tag: reading one yields the
    // poison pattern, the observable analogue of C's indeterminate values.
  }

  // -- expressions ----------------------------------------------------------

  /// Lower an expression in statement position (result discarded). Avoids
  /// the Dup/keep dance needed for assignment-as-value.
  void lower_expr_statement(const Expr* expr) {
    if (expr == nullptr) return;
    if (expr->kind == ExprKind::kAssign) {
      lower_assignment(expr, /*keep_value=*/false);
      return;
    }
    if (expr->kind == ExprKind::kPostfix ||
        (expr->kind == ExprKind::kUnary &&
         (expr->text == "++" || expr->text == "--"))) {
      lower_incdec(expr, /*keep_value=*/false);
      return;
    }
    lower_expr(expr);
    emit(Op::kPop);
  }

  void lower_expr(const Expr* expr) {
    current_line_ = expr->line;
    switch (expr->kind) {
      case ExprKind::kIntLit:
      case ExprKind::kCharLit:
        emit(Op::kPushConst, add_const(Value::from_int(expr->int_value)));
        break;
      case ExprKind::kFloatLit:
        emit(Op::kPushConst, add_const(Value::from_float(expr->float_value)));
        break;
      case ExprKind::kStringLit:
        emit(Op::kPushConst, add_string(expr->text));
        break;
      case ExprKind::kIdent:
        lower_ident_load(expr);
        break;
      case ExprKind::kUnary:
        lower_unary(expr);
        break;
      case ExprKind::kPostfix:
        lower_incdec(expr, /*keep_value=*/true);
        break;
      case ExprKind::kBinary:
        lower_binary(expr);
        break;
      case ExprKind::kAssign:
        lower_assignment(expr, /*keep_value=*/true);
        break;
      case ExprKind::kTernary: {
        lower_expr(expr->lhs.get());
        const std::int32_t to_else = emit_jump(Op::kJumpIfFalse);
        lower_expr(expr->rhs.get());
        const std::int32_t to_end = emit_jump(Op::kJump);
        patch_jump(to_else);
        lower_expr(expr->third.get());
        patch_jump(to_end);
        break;
      }
      case ExprKind::kCall:
        lower_call(expr);
        break;
      case ExprKind::kIndex:
        lower_address(expr);
        emit(Op::kLoadInd);
        break;
      case ExprKind::kCast:
        lower_expr(expr->lhs.get());
        if (expr->cast_type.is_pointer()) {
          // Pointer casts are representation-free in the cell model.
        } else if (expr->cast_type.is_float()) {
          emit(Op::kCastFloat);
        } else {
          emit(Op::kCastInt);
        }
        break;
      case ExprKind::kSizeof:
        // Every scalar is one cell; malloc sizes are in cells.
        emit(Op::kPushConst, add_const(Value::from_int(1)));
        break;
    }
  }

  void lower_ident_load(const Expr* expr) {
    const Symbol& sym = symbol(expr->symbol_id);
    if (sym.kind == SymbolKind::kBuiltin) {
      const auto* constant = frontend::find_builtin_constant(expr->text);
      emit(Op::kPushConst,
           add_const(Value::from_int(constant ? constant->value : 0)));
      return;
    }
    if (sym.kind == SymbolKind::kFunction) {
      emit(Op::kPushConst, add_const(Value::from_int(0)));
      return;
    }
    const Slot slot = resolve(expr->symbol_id);
    emit(slot.is_global ? Op::kLoadGlobal : Op::kLoadSlot, slot.index);
  }

  void lower_unary(const Expr* expr) {
    const std::string& op = expr->text;
    if (op == "++" || op == "--") {
      lower_incdec(expr, /*keep_value=*/true);
      return;
    }
    if (op == "*") {
      lower_expr(expr->lhs.get());
      emit(Op::kLoadInd);
      return;
    }
    if (op == "&") {
      // Address-of is supported for array elements and arrays; address-of
      // scalars is outside the subset (see lower_address).
      lower_address(expr->lhs.get());
      return;
    }
    lower_expr(expr->lhs.get());
    if (op == "-") emit(Op::kNeg);
    else if (op == "!") emit(Op::kNot);
    else if (op == "~") emit(Op::kBitNot);
  }

  void lower_binary(const Expr* expr) {
    const std::string& op = expr->text;
    if (op == "&&" || op == "||") {
      // Short-circuit, producing 0/1.
      lower_expr(expr->lhs.get());
      const std::int32_t short_jump =
          emit_jump(op == "&&" ? Op::kJumpIfFalse : Op::kJumpIfTrue);
      lower_expr(expr->rhs.get());
      emit(Op::kPushConst, add_const(Value::from_int(0)));
      emit(Op::kNe);  // normalize rhs to 0/1
      const std::int32_t to_end = emit_jump(Op::kJump);
      patch_jump(short_jump);
      emit(Op::kPushConst,
           add_const(Value::from_int(op == "&&" ? 0 : 1)));
      patch_jump(to_end);
      return;
    }
    lower_expr(expr->lhs.get());
    lower_expr(expr->rhs.get());
    if (op == "+") emit(Op::kAdd);
    else if (op == "-") emit(Op::kSub);
    else if (op == "*") emit(Op::kMul);
    else if (op == "/") emit(Op::kDiv);
    else if (op == "%") emit(Op::kMod);
    else if (op == "==") emit(Op::kEq);
    else if (op == "!=") emit(Op::kNe);
    else if (op == "<") emit(Op::kLt);
    else if (op == "<=") emit(Op::kLe);
    else if (op == ">") emit(Op::kGt);
    else if (op == ">=") emit(Op::kGe);
    else if (op == "&") emit(Op::kBitAnd);
    else if (op == "|") emit(Op::kBitOr);
    else if (op == "^") emit(Op::kBitXor);
    else if (op == "<<") emit(Op::kShl);
    else if (op == ">>") emit(Op::kShr);
    else emit(Op::kNop);
  }

  /// Lowers lvalue expressions to an *address* on the stack. Identifiers
  /// naming arrays/pointers load the base pointer; Index computes
  /// base + index; unary* loads the pointer operand.
  void lower_address(const Expr* expr) {
    current_line_ = expr->line;
    switch (expr->kind) {
      case ExprKind::kIdent: {
        lower_ident_load(expr);  // arrays/pointers: slot holds the pointer
        return;
      }
      case ExprKind::kIndex:
        lower_address_of_index(expr);
        return;
      case ExprKind::kUnary:
        if (expr->text == "*") {
          lower_expr(expr->lhs.get());
          return;
        }
        break;
      default:
        break;
    }
    // Unsupported lvalue shape (e.g. &scalar): produce a null address,
    // which traps loudly at run time rather than corrupting memory.
    emit(Op::kPushConst, add_const(Value::from_pointer(0)));
  }

  void lower_address_of_index(const Expr* expr) {
    lower_expr(expr->lhs.get());  // base pointer value
    lower_expr(expr->rhs.get());  // index
    emit(Op::kIndexAddr);
  }

  /// True when `expr` is an identifier naming a scalar (non-array,
  /// non-pointer... pointers are scalars too for slot purposes) variable.
  bool is_slot_lvalue(const Expr* expr, Slot& out) const {
    if (expr->kind != ExprKind::kIdent) return false;
    const Symbol& sym = symbol(expr->symbol_id);
    if (sym.kind != SymbolKind::kLocal && sym.kind != SymbolKind::kParam &&
        sym.kind != SymbolKind::kGlobal) {
      return false;
    }
    if (sym.type.is_array) return false;  // arrays are not assignable
    out = resolve(expr->symbol_id);
    return true;
  }

  void lower_assignment(const Expr* expr, bool keep_value) {
    const std::string& op = expr->text;
    Slot slot;
    if (is_slot_lvalue(expr->lhs.get(), slot)) {
      if (op == "=") {
        lower_expr(expr->rhs.get());
      } else {
        emit(slot.is_global ? Op::kLoadGlobal : Op::kLoadSlot, slot.index);
        lower_expr(expr->rhs.get());
        emit_compound_op(op);
      }
      if (keep_value) emit(Op::kDup);
      emit(slot.is_global ? Op::kStoreGlobal : Op::kStoreSlot, slot.index);
      return;
    }
    // Indirect lvalue: a[i] or *p.
    lower_address(expr->lhs.get());
    if (op == "=") {
      lower_expr(expr->rhs.get());
    } else {
      emit(Op::kDup);
      emit(Op::kLoadInd);
      lower_expr(expr->rhs.get());
      emit_compound_op(op);
    }
    emit(keep_value ? Op::kStoreIndKeep : Op::kStoreInd);
  }

  void emit_compound_op(const std::string& op) {
    if (op == "+=") emit(Op::kAdd);
    else if (op == "-=") emit(Op::kSub);
    else if (op == "*=") emit(Op::kMul);
    else if (op == "/=") emit(Op::kDiv);
    else emit(Op::kNop);
  }

  void lower_incdec(const Expr* expr, bool keep_value) {
    const bool is_post = expr->kind == ExprKind::kPostfix;
    const bool is_inc = expr->text == "++";
    Slot slot;
    if (is_slot_lvalue(expr->lhs.get(), slot)) {
      const Op load = slot.is_global ? Op::kLoadGlobal : Op::kLoadSlot;
      const Op store = slot.is_global ? Op::kStoreGlobal : Op::kStoreSlot;
      emit(load, slot.index);
      if (keep_value && is_post) emit(Op::kDup);  // old value stays below
      emit(Op::kPushConst, add_const(Value::from_int(1)));
      emit(is_inc ? Op::kAdd : Op::kSub);
      if (keep_value && !is_post) emit(Op::kDup);
      emit(store, slot.index);
      return;
    }
    // Indirect target.
    lower_address(expr->lhs.get());
    if (keep_value && is_post) {
      // [addr] -> [old, addr] so the old value survives the store.
      emit(Op::kDup);
      emit(Op::kLoadInd);
      emit(Op::kSwap);
    }
    emit(Op::kDup);
    emit(Op::kLoadInd);
    emit(Op::kPushConst, add_const(Value::from_int(1)));
    emit(is_inc ? Op::kAdd : Op::kSub);
    if (keep_value && !is_post) {
      emit(Op::kStoreIndKeep);
    } else {
      emit(Op::kStoreInd);
    }
  }

  void lower_call(const Expr* expr) {
    const Symbol& sym = symbol(expr->symbol_id);
    for (const auto& arg : expr->args) lower_expr(arg.get());
    if (sym.kind == SymbolKind::kBuiltin) {
      emit(Op::kCallBuiltin, builtin_index_.at(expr->text),
           static_cast<std::int32_t>(expr->args.size()));
      return;
    }
    emit(Op::kCall, sym.function_index,
         static_cast<std::int32_t>(expr->args.size()));
  }

  // -- pragmas --------------------------------------------------------------

  void lower_pragma(const Stmt* stmt) {
    const directive::DirectiveIR dir =
        directive::parse_directive(stmt->pragma_text);
    if (!dir.parse_ok) {
      lower_stmt(stmt->then_branch.get());
      return;
    }
    const auto& registry = directive::registry_for(dir.flavor);
    std::size_t consumed = 0;
    const directive::DirectiveSpec* spec =
        registry.match(dir.name_words, consumed);
    if (spec == nullptr) {
      lower_stmt(stmt->then_branch.get());
      return;
    }
    const std::string name = directive::directive_name(dir);

    const RegionKind kind = classify_region(dir, *spec, consumed);
    switch (kind) {
      case RegionKind::kCompute:
      case RegionKind::kData: {
        const std::int32_t region =
            build_region(dir, consumed, kind == RegionKind::kCompute,
                         /*unstructured=*/false, name, stmt->line);
        emit(Op::kDevEnter, region);
        lower_stmt(stmt->then_branch.get());
        emit(Op::kDevExit, region);
        break;
      }
      case RegionKind::kAction: {
        const std::int32_t region =
            build_region(dir, consumed, /*device_mode=*/false,
                         /*unstructured=*/true, name, stmt->line);
        emit(Op::kDevAction, region);
        lower_stmt(stmt->then_branch.get());
        break;
      }
      case RegionKind::kHost:
        lower_stmt(stmt->then_branch.get());
        break;
    }
  }

  enum class RegionKind { kCompute, kData, kAction, kHost };

  RegionKind classify_region(const directive::DirectiveIR& dir,
                             const directive::DirectiveSpec& spec,
                             std::size_t consumed) const {
    const auto& words = spec.name_words;
    const std::string& head = words.front();
    (void)consumed;
    if (dir.flavor == frontend::Flavor::kOpenACC) {
      if (head == "parallel" || head == "kernels" || head == "serial") {
        return RegionKind::kCompute;
      }
      if (head == "data") return RegionKind::kData;
      if (head == "enter" || head == "exit" || head == "update") {
        return RegionKind::kAction;
      }
      return RegionKind::kHost;
    }
    // OpenMP.
    if (head == "target") {
      if (words.size() >= 2 && words[1] == "data") return RegionKind::kData;
      if (words.size() >= 2 &&
          (words[1] == "enter" || words[1] == "exit" ||
           words[1] == "update")) {
        return RegionKind::kAction;
      }
      return RegionKind::kCompute;
    }
    return RegionKind::kHost;
  }

  std::int32_t build_region(const directive::DirectiveIR& dir,
                            std::size_t consumed, bool device_mode,
                            bool unstructured, const std::string& name,
                            int line) {
    Region region;
    region.device_mode = device_mode;
    region.directive = name;
    region.line = line;

    const bool is_exit_data =
        (dir.flavor == frontend::Flavor::kOpenACC &&
         !dir.name_words.empty() && dir.name_words.front() == "exit") ||
        (dir.flavor == frontend::Flavor::kOpenMP &&
         dir.name_words.size() >= 2 && dir.name_words[1] == "exit");
    const bool is_update =
        (!dir.name_words.empty() && dir.name_words.front() == "update") ||
        (dir.name_words.size() >= 2 && dir.name_words[1] == "update");

    // Words beyond the matched composite name are bare clauses (gang etc.)
    // with no data behaviour; only parenthesized clauses matter here.
    (void)consumed;
    for (const auto& clause : dir.clauses) {
      add_clause_ops(region, clause, dir.flavor, is_exit_data, is_update,
                     unstructured);
    }
    module_.regions.push_back(std::move(region));
    return static_cast<std::int32_t>(module_.regions.size()) - 1;
  }

  void add_clause_ops(Region& region, const directive::ClauseIR& clause,
                      frontend::Flavor flavor, bool is_exit_data,
                      bool is_update, bool unstructured) {
    (void)flavor;
    const std::string& cname = clause.name;

    /// Emits (enter, exit) actions for every variable of the clause.
    const auto emit_pair = [&](ClauseAction enter, ClauseAction exit) {
      for (const auto& var : directive::clause_variables(clause)) {
        ClauseOp op = make_clause_op(var);
        if (op.action == ClauseAction::kNoOp && op.slot < 0) continue;
        if (op.var_name.empty()) continue;
        if (enter != ClauseAction::kNoOp) {
          ClauseOp e = op;
          e.action = enter;
          region.enter_ops.push_back(std::move(e));
        }
        if (exit != ClauseAction::kNoOp && !unstructured) {
          ClauseOp x = op;
          x.action = exit;
          region.exit_ops.push_back(std::move(x));
        }
      }
    };

    if (cname == "copy" || cname == "pcopy") {
      emit_pair(ClauseAction::kCopyin, ClauseAction::kExitCopyout);
    } else if (cname == "copyin" || cname == "pcopyin") {
      emit_pair(ClauseAction::kCopyin, ClauseAction::kDelete);
    } else if (cname == "copyout" || cname == "pcopyout") {
      if (is_exit_data) {
        emit_pair(ClauseAction::kExitCopyout, ClauseAction::kNoOp);
      } else {
        emit_pair(ClauseAction::kCreate, ClauseAction::kExitCopyout);
      }
    } else if (cname == "create" || cname == "pcreate") {
      emit_pair(ClauseAction::kCreate, ClauseAction::kDelete);
    } else if (cname == "present") {
      emit_pair(ClauseAction::kPresent, ClauseAction::kNoOp);
    } else if (cname == "deviceptr" || cname == "use_device" ||
               cname == "use_device_ptr") {
      emit_pair(ClauseAction::kPresent, ClauseAction::kNoOp);
    } else if (cname == "delete") {
      emit_pair(ClauseAction::kDelete, ClauseAction::kNoOp);
    } else if (cname == "self" || cname == "host") {
      if (is_update) emit_pair(ClauseAction::kUpdateHost, ClauseAction::kNoOp);
    } else if (cname == "device") {
      if (is_update) {
        emit_pair(ClauseAction::kUpdateDevice, ClauseAction::kNoOp);
      }
    } else if (cname == "to" || cname == "from") {
      // `target update to(...)/from(...)`.
      emit_pair(cname == "to" ? ClauseAction::kUpdateDevice
                              : ClauseAction::kUpdateHost,
                ClauseAction::kNoOp);
    } else if (cname == "map") {
      add_map_clause(region, clause, unstructured, is_exit_data);
    }
    // All other clauses (reduction, private, num_gangs, ...) need no data
    // movement in the sequential device model.
  }

  void add_map_clause(Region& region, const directive::ClauseIR& clause,
                      bool unstructured, bool is_exit_data) {
    // map([always,][maptype:] list) — default tofrom.
    std::string map_type = "tofrom";
    const auto colon = clause.argument.find(':');
    if (colon != std::string::npos) {
      std::string head = clause.argument.substr(0, colon);
      if (head.find_first_of("[]()") == std::string::npos) {
        // strip "always," modifier
        const auto comma = head.find(',');
        if (comma != std::string::npos) head = head.substr(comma + 1);
        // trim
        while (!head.empty() && head.front() == ' ') head.erase(0, 1);
        while (!head.empty() && head.back() == ' ') head.pop_back();
        map_type = head;
      }
    }
    const auto emit_vars = [&](ClauseAction enter, ClauseAction exit) {
      for (const auto& var : directive::clause_variables(clause)) {
        ClauseOp op = make_clause_op(var);
        if (op.var_name.empty()) continue;
        if (enter != ClauseAction::kNoOp) {
          ClauseOp e = op;
          e.action = enter;
          region.enter_ops.push_back(std::move(e));
        }
        if (exit != ClauseAction::kNoOp && !unstructured) {
          ClauseOp x = op;
          x.action = exit;
          region.exit_ops.push_back(std::move(x));
        }
      }
    };
    if (map_type == "to") {
      emit_vars(ClauseAction::kCopyin, ClauseAction::kDelete);
    } else if (map_type == "from") {
      if (is_exit_data) {
        emit_vars(ClauseAction::kExitCopyout, ClauseAction::kNoOp);
      } else {
        emit_vars(ClauseAction::kCreate, ClauseAction::kExitCopyout);
      }
    } else if (map_type == "alloc") {
      emit_vars(ClauseAction::kCreate, ClauseAction::kDelete);
    } else if (map_type == "release" || map_type == "delete") {
      emit_vars(ClauseAction::kDelete, ClauseAction::kNoOp);
    } else {  // tofrom
      if (is_exit_data) {
        emit_vars(ClauseAction::kExitCopyout, ClauseAction::kNoOp);
      } else {
        emit_vars(ClauseAction::kCopyin, ClauseAction::kExitCopyout);
      }
    }
  }

  /// Resolve a clause variable name to a ClauseOp. Scalars become no-ops
  /// (they travel as firstprivate copies in the sequential device model).
  ClauseOp make_clause_op(const std::string& var) {
    ClauseOp op;
    // Find the symbol by name (program-wide; mirrors validate_program).
    for (std::size_t id = 0; id < program_.symbols.size(); ++id) {
      const Symbol& sym = program_.symbols[id];
      if (sym.name != var) continue;
      if (sym.kind == SymbolKind::kBuiltin ||
          sym.kind == SymbolKind::kFunction) {
        continue;
      }
      if (!sym.type.is_array && !sym.type.is_pointer()) {
        return op;  // scalar: no data movement op
      }
      const Slot slot = resolve(static_cast<int>(id));
      if (slot.index < 0) continue;  // out-of-scope local of another function
      op.is_global = slot.is_global;
      op.slot = slot.index;
      op.var_name = var;
      return op;
    }
    return op;
  }

  const Program& program_;
  const LowerOptions& options_;
  Module module_;
  std::map<int, std::int32_t> globals_;
  std::map<int, std::int32_t> locals_;
  std::map<std::string, std::int32_t> builtin_index_;
  std::vector<Instr>* code_ = nullptr;
  std::int32_t slot_count_ = 0;
  std::vector<LoopContext> loop_stack_;
  std::int32_t current_line_ = 0;
};

}  // namespace

Module lower(const frontend::Program& program, const LowerOptions& options) {
  Lowerer lowerer(program, options);
  return lowerer.run();
}

}  // namespace llm4vv::vm
