#include "vm/runtime.hpp"

#include <cmath>
#include <cstdio>
#include <vector>

#include "frontend/builtins.hpp"
#include "support/rng.hpp"

namespace llm4vv::vm {

namespace {

/// Renders one %-spec with snprintf after normalizing length modifiers to
/// the VM's 64-bit model.
std::string format_one(RuntimeHost& host, const std::string& spec,
                       char conversion, const Value& value) {
  char buf[128];
  // spec is like "%-8.3" (without length modifier or conversion).
  switch (conversion) {
    case 'd': case 'i': case 'u': {
      const std::string fmt = spec + "lld";
      std::snprintf(buf, sizeof(buf), fmt.c_str(),
                    static_cast<long long>(value.as_int()));
      return buf;
    }
    case 'x': case 'X': case 'o': {
      const std::string fmt = spec + (conversion == 'o' ? "llo" : "llx");
      std::snprintf(buf, sizeof(buf), fmt.c_str(),
                    static_cast<unsigned long long>(value.as_int()));
      return buf;
    }
    case 'f': case 'F': case 'e': case 'E': case 'g': case 'G': {
      const std::string fmt = spec + conversion;
      std::snprintf(buf, sizeof(buf), fmt.c_str(), value.as_float());
      return buf;
    }
    case 'c': {
      const std::string fmt = spec + 'c';
      std::snprintf(buf, sizeof(buf), fmt.c_str(),
                    static_cast<int>(value.as_int() & 0xff));
      return buf;
    }
    case 's': {
      if (value.tag == ValueTag::kString) {
        return host.string_at(value.ptr);
      }
      return "(non-string)";
    }
    case 'p': {
      std::snprintf(buf, sizeof(buf), "0x%llx",
                    static_cast<unsigned long long>(value.as_int()));
      return buf;
    }
    default:
      return std::string("%") + conversion;
  }
}

}  // namespace

std::string format_printf(RuntimeHost& host, const std::string& format,
                          const std::vector<Value>& args) {
  std::string out;
  std::size_t next_arg = 0;
  for (std::size_t i = 0; i < format.size(); ++i) {
    const char c = format[i];
    if (c != '%') {
      out.push_back(c);
      continue;
    }
    if (i + 1 < format.size() && format[i + 1] == '%') {
      out.push_back('%');
      ++i;
      continue;
    }
    // Collect flags / width / precision.
    std::string spec = "%";
    ++i;
    while (i < format.size() &&
           (format[i] == '-' || format[i] == '+' || format[i] == ' ' ||
            format[i] == '#' || format[i] == '0')) {
      spec.push_back(format[i++]);
    }
    while (i < format.size() && std::isdigit(
               static_cast<unsigned char>(format[i]))) {
      spec.push_back(format[i++]);
    }
    if (i < format.size() && format[i] == '.') {
      spec.push_back(format[i++]);
      while (i < format.size() && std::isdigit(
                 static_cast<unsigned char>(format[i]))) {
        spec.push_back(format[i++]);
      }
    }
    // Skip length modifiers (the VM is uniformly 64-bit).
    while (i < format.size() &&
           (format[i] == 'l' || format[i] == 'h' || format[i] == 'z' ||
            format[i] == 'j' || format[i] == 't')) {
      ++i;
    }
    if (i >= format.size()) break;
    const char conversion = format[i];
    const Value value =
        next_arg < args.size() ? args[next_arg++] : Value::from_int(0);
    out += format_one(host, spec, conversion, value);
  }
  return out;
}

Value call_builtin(RuntimeHost& host, std::int32_t builtin_index,
                   std::int32_t argc) {
  const auto builtins = frontend::builtin_functions();
  if (builtin_index < 0 ||
      static_cast<std::size_t>(builtin_index) >= builtins.size()) {
    throw Trap{TrapKind::kInternal, "bad builtin index"};
  }
  const std::string_view name = builtins[static_cast<std::size_t>(
      builtin_index)].name;

  std::vector<Value> args(static_cast<std::size_t>(argc));
  for (std::int32_t i = argc - 1; i >= 0; --i) {
    args[static_cast<std::size_t>(i)] = host.pop();
  }

  const auto f1 = [&](double (*fn)(double)) {
    return Value::from_float(fn(args.empty() ? 0.0 : args[0].as_float()));
  };

  if (name == "printf") {
    if (args.empty() || args[0].tag != ValueTag::kString) {
      throw Trap{TrapKind::kOutOfBounds, "printf format is not a string"};
    }
    const std::string text = format_printf(
        host, host.string_at(args[0].ptr),
        std::vector<Value>(args.begin() + 1, args.end()));
    host.write_stdout(text);
    return Value::from_int(static_cast<std::int64_t>(text.size()));
  }
  if (name == "f90_print") {
    std::string text;
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (i) text.push_back(' ');
      const Value& v = args[i];
      if (v.tag == ValueTag::kString) {
        text += host.string_at(v.ptr);
      } else if (v.tag == ValueTag::kFloat) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%g", v.f);
        text += buf;
      } else {
        text += std::to_string(v.as_int());
      }
    }
    text.push_back('\n');
    host.write_stdout(text);
    return Value::from_int(0);
  }
  if (name == "fprintf") {
    // The stream argument is dropped; output goes to stderr, which is what
    // the corpus uses fprintf for.
    if (args.size() < 2 || args[1].tag != ValueTag::kString) {
      return Value::from_int(0);
    }
    const std::string text = format_printf(
        host, host.string_at(args[1].ptr),
        std::vector<Value>(args.begin() + 2, args.end()));
    host.write_stderr(text);
    return Value::from_int(static_cast<std::int64_t>(text.size()));
  }
  if (name == "puts") {
    if (!args.empty() && args[0].tag == ValueTag::kString) {
      host.write_stdout(host.string_at(args[0].ptr) + "\n");
    }
    return Value::from_int(0);
  }
  if (name == "malloc") {
    const auto cells = static_cast<std::uint64_t>(args[0].as_int());
    return Value::from_pointer(host.memory().allocate(cells, /*heap=*/true));
  }
  if (name == "calloc") {
    const auto count = static_cast<std::uint64_t>(args[0].as_int());
    const auto size = static_cast<std::uint64_t>(args[1].as_int());
    const std::uint64_t cells = count * (size == 0 ? 1 : size);
    const std::uint64_t base = host.memory().allocate(cells, /*heap=*/true);
    for (std::uint64_t i = 0; i < cells; ++i) {
      host.memory().store(base + i, Value::from_int(0), false);
    }
    return Value::from_pointer(base);
  }
  if (name == "free") {
    const Value& p = args[0];
    host.memory().free_allocation(
        p.tag == ValueTag::kPointer ? p.ptr
                                    : static_cast<std::uint64_t>(p.as_int()));
    return Value::from_int(0);
  }
  if (name == "exit") host.exit_now(static_cast<int>(args[0].as_int()));
  if (name == "abort") host.exit_now(134);
  if (name == "abs" || name == "labs") {
    return Value::from_int(std::llabs(args[0].as_int()));
  }
  if (name == "rand") {
    return Value::from_int(static_cast<std::int64_t>(
        support::splitmix64(host.rand_state()) & 0x7fffffff));
  }
  if (name == "srand") {
    host.rand_state() = static_cast<std::uint64_t>(args[0].as_int());
    return Value::from_int(0);
  }
  if (name == "fabs" || name == "fabsf") return f1(std::fabs);
  if (name == "sqrt") return f1(std::sqrt);
  if (name == "sin") return f1(std::sin);
  if (name == "cos") return f1(std::cos);
  if (name == "exp") return f1(std::exp);
  if (name == "log") return f1(std::log);
  if (name == "floor") return f1(std::floor);
  if (name == "ceil") return f1(std::ceil);
  if (name == "pow") {
    return Value::from_float(
        std::pow(args[0].as_float(), args[1].as_float()));
  }
  // Simulated OpenACC runtime: one non-host device, device number 0.
  if (name == "acc_get_num_devices") return Value::from_int(1);
  if (name == "acc_get_device_num") return Value::from_int(0);
  if (name == "acc_set_device_num") return Value::from_int(0);
  if (name == "acc_init" || name == "acc_shutdown") return Value::from_int(0);
  if (name == "acc_on_device") {
    return Value::from_int(host.device_mode() ? 1 : 0);
  }
  // Simulated OpenMP runtime: sequential execution model.
  if (name == "omp_get_num_threads") return Value::from_int(1);
  if (name == "omp_get_thread_num") return Value::from_int(0);
  if (name == "omp_get_max_threads") return Value::from_int(4);
  if (name == "omp_get_num_devices") return Value::from_int(1);
  if (name == "omp_is_initial_device") {
    return Value::from_int(host.device_mode() ? 0 : 1);
  }
  if (name == "omp_get_num_teams") return Value::from_int(1);

  throw Trap{TrapKind::kInternal,
             "builtin '" + std::string(name) + "' has no implementation"};
}

}  // namespace llm4vv::vm
