#include "vm/memory.hpp"

#include <algorithm>

namespace llm4vv::vm {

const char* trap_kind_name(TrapKind kind) noexcept {
  switch (kind) {
    case TrapKind::kNone: return "none";
    case TrapKind::kNullDeref: return "null-deref";
    case TrapKind::kOutOfBounds: return "out-of-bounds";
    case TrapKind::kUseAfterFree: return "use-after-free";
    case TrapKind::kNotPresent: return "not-present";
    case TrapKind::kDivByZero: return "div-by-zero";
    case TrapKind::kStackOverflow: return "stack-overflow";
    case TrapKind::kStepLimit: return "step-limit";
    case TrapKind::kOutputLimit: return "output-limit";
    case TrapKind::kBadAlloc: return "bad-alloc";
    case TrapKind::kInternal: return "internal";
  }
  return "?";
}

std::string to_string(const Value& value) {
  switch (value.tag) {
    case ValueTag::kUninit: return "uninit";
    case ValueTag::kInt: return "int:" + std::to_string(value.i);
    case ValueTag::kFloat: return "float:" + std::to_string(value.f);
    case ValueTag::kPointer: return "ptr:" + std::to_string(value.ptr);
    case ValueTag::kString: return "str#" + std::to_string(value.ptr);
  }
  return "?";
}

Memory::Memory(std::uint64_t max_cells) : max_cells_(max_cells) {
  cells_.reserve(4096);
  cells_.emplace_back();  // address 0 is the null cell, never accessed
}

std::uint64_t Memory::allocate(std::uint64_t size, bool heap) {
  if (size == 0) size = 1;
  if (size > max_cells_ || cells_.size() + size > max_cells_) {
    throw Trap{TrapKind::kBadAlloc,
               "allocation of " + std::to_string(size) +
                   " cells exceeds the memory budget"};
  }
  Allocation alloc;
  alloc.base = cells_.size();
  alloc.size = size;
  alloc.heap = heap;
  cells_.resize(cells_.size() + size);
  allocs_.push_back(alloc);
  return alloc.base;
}

Allocation* Memory::try_find(std::uint64_t address) {
  // Allocations have ascending bases; binary search the last base <= addr.
  if (allocs_.empty()) return nullptr;
  auto it = std::upper_bound(
      allocs_.begin(), allocs_.end(), address,
      [](std::uint64_t a, const Allocation& alloc) { return a < alloc.base; });
  if (it == allocs_.begin()) return nullptr;
  --it;
  if (address >= it->base + it->size) return nullptr;
  return &*it;
}

Allocation& Memory::find_allocation(std::uint64_t address, const char* what) {
  if (address == 0) {
    throw Trap{TrapKind::kNullDeref,
               std::string("null pointer dereference during ") + what};
  }
  Allocation* alloc = try_find(address);
  if (alloc == nullptr) {
    throw Trap{TrapKind::kOutOfBounds,
               std::string("wild address ") + std::to_string(address) +
                   " during " + what};
  }
  if (!alloc->alive) {
    throw Trap{TrapKind::kUseAfterFree,
               std::string("access to freed memory during ") + what};
  }
  return *alloc;
}

void Memory::free_allocation(std::uint64_t base) {
  if (base == 0) return;  // free(NULL)
  Allocation& alloc = find_allocation(base, "free");
  if (base != alloc.base) {
    throw Trap{TrapKind::kOutOfBounds,
               "free() of a pointer not returned by malloc"};
  }
  if (!alloc.heap) {
    throw Trap{TrapKind::kOutOfBounds, "free() of non-heap memory"};
  }
  alloc.alive = false;
}

Value Memory::load(std::uint64_t address, bool device_mode) {
  Allocation& alloc = find_allocation(address, "load");
  if (device_mode) {
    if (alloc.present_count > 0) {
      return cells_[alloc.device_base + (address - alloc.base)];
    }
    if (alloc.heap) {
      throw Trap{TrapKind::kNotPresent,
                 "illegal device address: heap data not present on device"};
    }
    // Statically-sized host data: implicit map, direct access.
  }
  return cells_[address];
}

void Memory::store(std::uint64_t address, Value value, bool device_mode) {
  Allocation& alloc = find_allocation(address, "store");
  if (device_mode) {
    if (alloc.present_count > 0) {
      cells_[alloc.device_base + (address - alloc.base)] = value;
      return;
    }
    if (alloc.heap) {
      throw Trap{TrapKind::kNotPresent,
                 "illegal device address: heap data not present on device"};
    }
  }
  cells_[address] = value;
}

void Memory::map_to_device(std::uint64_t base, bool copy_to_device,
                           const std::string& var_name) {
  Allocation& alloc = find_allocation(base, "device mapping");
  if (alloc.present_count > 0) {
    ++alloc.present_count;  // already present: no copy (OpenACC semantics)
    return;
  }
  // Allocate the mirror *after* looking up the allocation: allocate() may
  // grow the cell vector, but alloc indexes stay valid because we re-find.
  const std::uint64_t alloc_base = alloc.base;
  const std::uint64_t size = alloc.size;
  const std::uint64_t mirror = allocate(size, /*heap=*/false);
  Allocation& again = find_allocation(alloc_base, "device mapping");
  again.device_base = mirror;
  again.present_count = 1;
  if (copy_to_device) {
    for (std::uint64_t i = 0; i < size; ++i) {
      cells_[mirror + i] = cells_[alloc_base + i];
    }
  }
  (void)var_name;
}

bool Memory::is_present(std::uint64_t base) {
  Allocation& alloc = find_allocation(base, "present check");
  return alloc.present_count > 0;
}

void Memory::unmap_from_device(std::uint64_t base, bool copy_back, bool force,
                               const std::string& var_name) {
  Allocation& alloc = find_allocation(base, "device unmapping");
  if (alloc.present_count == 0) {
    throw Trap{TrapKind::kNotPresent,
               "data not present on device in unmap: " + var_name};
  }
  if (force) {
    alloc.present_count = 1;
  }
  --alloc.present_count;
  if (alloc.present_count == 0) {
    if (copy_back) {
      for (std::uint64_t i = 0; i < alloc.size; ++i) {
        cells_[alloc.base + i] = cells_[alloc.device_base + i];
      }
    }
    // Mirror cells are leaked by design (arena-style); the allocation
    // table entry is reused if the block is mapped again.
    Allocation* mirror = try_find(alloc.device_base);
    if (mirror != nullptr) mirror->alive = false;
    alloc.device_base = 0;
  }
}

void Memory::copy_mirror(std::uint64_t base, bool to_host,
                         const std::string& var_name) {
  Allocation& alloc = find_allocation(base, "update directive");
  if (alloc.present_count == 0) {
    throw Trap{TrapKind::kNotPresent,
               "update of data not present on device: " + var_name};
  }
  for (std::uint64_t i = 0; i < alloc.size; ++i) {
    if (to_host) {
      cells_[alloc.base + i] = cells_[alloc.device_base + i];
    } else {
      cells_[alloc.device_base + i] = cells_[alloc.base + i];
    }
  }
}

std::size_t Memory::live_allocations() const noexcept {
  std::size_t n = 0;
  for (const auto& alloc : allocs_) {
    if (alloc.alive) ++n;
  }
  return n;
}

std::uint64_t Memory::cells_in_use() const noexcept {
  std::uint64_t n = 0;
  for (const auto& alloc : allocs_) {
    if (alloc.alive) n += alloc.size;
  }
  return n;
}

}  // namespace llm4vv::vm
