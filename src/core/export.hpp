#pragma once

#include <string>

#include "core/experiments.hpp"

namespace llm4vv::core {

/// Serialize a Part Two run to CSV: one row per file with its issue label,
/// ground truth, per-stage outcomes, and all four method verdicts — the
/// artifact you need to re-analyze an experiment offline (confusion slices,
/// per-template breakdowns) without re-running the judges.
std::string export_part_two_csv(const PartTwoOutcome& outcome);

/// The same records as JSON Lines (one object per file), for tooling that
/// prefers jq/pandas over CSV.
std::string export_part_two_jsonl(const PartTwoOutcome& outcome);

/// Serialize a Part One run (issue label, ground truth, judge verdict).
std::string export_part_one_csv(const PartOneOutcome& outcome);

}  // namespace llm4vv::core
