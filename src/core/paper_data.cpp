#include "core/paper_data.hpp"

namespace llm4vv::core {

namespace {

using frontend::Flavor;

// Table I: LLMJ Negative Probing Results for OpenACC.
const PaperIssueTable kTable1 = {{
    {203, 0.15}, {125, 0.12}, {108, 0.15}, {117, 0.80}, {114, 0.12},
    {668, 0.88},
}};

// Table II: LLMJ Negative Probing Results for OpenMP.
const PaperIssueTable kTable2 = {{
    {59, 0.47}, {39, 0.74}, {33, 0.64}, {51, 0.04}, {33, 0.33}, {216, 0.39},
}};

// Table III: LLMJ Overall Negative Probing Results.
const PaperOverall kTable3Acc = {1335, 579, 0.5663, 0.717};
const PaperOverall kTable3Omp = {431, 256, 0.4060, -0.031};

// Table IV: Validation Pipeline Results for OpenACC (Pipelines 1 and 2).
const PaperIssueTable kTable4P1 = {{
    {272, 0.92}, {146, 1.00}, {151, 1.00}, {146, 1.00}, {176, 0.22},
    {891, 0.79},
}};
const PaperIssueTable kTable4P2 = {{
    {272, 0.92}, {146, 1.00}, {151, 1.00}, {146, 1.00}, {176, 0.30},
    {891, 0.70},
}};

// Table V: Validation Pipeline Results for OpenMP.
const PaperIssueTable kTable5P1 = {{
    {49, 0.96}, {28, 1.00}, {26, 1.00}, {20, 0.70}, {25, 0.92}, {148, 0.92},
}};
const PaperIssueTable kTable5P2 = {{
    {49, 0.94}, {28, 1.00}, {26, 1.00}, {20, 0.85}, {25, 0.92}, {148, 0.93},
}};

// Table VI: Overall Validation Pipeline Results.
const PaperOverall kTable6AccP1 = {1782, 347, 0.8053, -0.078};
const PaperOverall kTable6AccP2 = {1782, 408, 0.7710, -0.294};
const PaperOverall kTable6OmpP1 = {296, 22, 0.9257, -0.091};
const PaperOverall kTable6OmpP2 = {296, 18, 0.9392, -0.111};

// Table VII: Agent-Based LLMJ Results for OpenACC (LLMJ 1 and LLMJ 2).
const PaperIssueTable kTable7L1 = {{
    {272, 0.67}, {146, 0.76}, {151, 0.85}, {146, 0.97}, {176, 0.15},
    {891, 0.92},
}};
const PaperIssueTable kTable7L2 = {{
    {272, 0.82}, {146, 0.55}, {151, 0.83}, {146, 1.00}, {176, 0.27},
    {891, 0.79},
}};

// Table VIII: Agent-Based LLMJ Results for OpenMP.
const PaperIssueTable kTable8L1 = {{
    {49, 0.47}, {28, 0.57}, {26, 0.69}, {20, 0.65}, {25, 0.72}, {148, 0.93},
}};
const PaperIssueTable kTable8L2 = {{
    {49, 0.45}, {28, 0.46}, {26, 0.58}, {20, 0.85}, {25, 0.48}, {148, 0.96},
}};

// Table IX: Overall Agent-Based LLMJ Results.
const PaperOverall kTable9AccL1 = {1782, 374, 0.7901, 0.615};
const PaperOverall kTable9AccL2 = {1782, 457, 0.7435, 0.168};
const PaperOverall kTable9OmpL1 = {296, 71, 0.7601, 0.690};
const PaperOverall kTable9OmpL2 = {296, 75, 0.7466, 0.840};

}  // namespace

const PaperIssueTable& table1_llmj_acc() { return kTable1; }
const PaperIssueTable& table2_llmj_omp() { return kTable2; }

const PaperOverall& table3_overall(Flavor flavor) {
  return flavor == Flavor::kOpenACC ? kTable3Acc : kTable3Omp;
}

const PaperIssueTable& table4_pipeline_acc(int pipeline) {
  return pipeline == 1 ? kTable4P1 : kTable4P2;
}

const PaperIssueTable& table5_pipeline_omp(int pipeline) {
  return pipeline == 1 ? kTable5P1 : kTable5P2;
}

const PaperOverall& table6_overall(Flavor flavor, int pipeline) {
  if (flavor == Flavor::kOpenACC) {
    return pipeline == 1 ? kTable6AccP1 : kTable6AccP2;
  }
  return pipeline == 1 ? kTable6OmpP1 : kTable6OmpP2;
}

const PaperIssueTable& table7_agent_acc(int llmj) {
  return llmj == 1 ? kTable7L1 : kTable7L2;
}

const PaperIssueTable& table8_agent_omp(int llmj) {
  return llmj == 1 ? kTable8L1 : kTable8L2;
}

const PaperOverall& table9_overall(Flavor flavor, int llmj) {
  if (flavor == Flavor::kOpenACC) {
    return llmj == 1 ? kTable9AccL1 : kTable9AccL2;
  }
  return llmj == 1 ? kTable9OmpL1 : kTable9OmpL2;
}

}  // namespace llm4vv::core
