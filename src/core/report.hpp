#pragma once

#include <string>

#include "core/paper_data.hpp"
#include "metrics/metrics.hpp"

namespace llm4vv::core {

/// Render a per-issue table in the paper's layout with paper-reference and
/// measured columns side by side (one measured method).
std::string render_issue_table(const std::string& title,
                               frontend::Flavor flavor,
                               const PaperIssueTable& paper,
                               const metrics::EvalReport& measured);

/// Render a per-issue table comparing two measured methods against their
/// paper references (the two-pipeline / two-LLMJ table shape).
std::string render_issue_table2(const std::string& title,
                                frontend::Flavor flavor,
                                const std::string& name_a,
                                const PaperIssueTable& paper_a,
                                const metrics::EvalReport& measured_a,
                                const std::string& name_b,
                                const PaperIssueTable& paper_b,
                                const metrics::EvalReport& measured_b);

/// Render an overall-metrics table (Tables III/VI/IX shape) for one or two
/// methods.
std::string render_overall_table(const std::string& title,
                                 const std::string& name,
                                 const PaperOverall& paper,
                                 const metrics::EvalReport& measured);

std::string render_overall_table2(const std::string& title,
                                  const std::string& name_a,
                                  const PaperOverall& paper_a,
                                  const metrics::EvalReport& measured_a,
                                  const std::string& name_b,
                                  const PaperOverall& paper_b,
                                  const metrics::EvalReport& measured_b);

}  // namespace llm4vv::core
