#pragma once

#include <cstdint>
#include <memory>

#include "llm/client.hpp"
#include "metrics/metrics.hpp"
#include "pipeline/validation_pipeline.hpp"
#include "probing/prober.hpp"

namespace llm4vv::core {

/// Shared experiment options. Defaults reproduce the paper's setup; seeds
/// can be changed to re-roll every stochastic component.
struct ExperimentOptions {
  std::uint64_t corpus_seed = 0xC0FFEE11ULL;
  std::uint64_t probe_seed_offset = 0;  ///< mixed into the probing seed
  std::uint64_t judge_seed = 0;         ///< mixed into the model draw
  /// Worker counts for Part Two's pipeline run.
  std::size_t compile_workers = 2;
  std::size_t execute_workers = 2;
  std::size_t judge_workers = 2;
};

/// Part One (Tables I-III): the *non-agent* LLMJ judges every probed file
/// from the direct-analysis prompt alone.
struct PartOneOutcome {
  probing::ProbedSuite suite;
  std::vector<metrics::JudgmentRecord> judgments;
  metrics::EvalReport report;
  llm::ClientStats llm_stats;
};

PartOneOutcome run_part_one(frontend::Flavor flavor,
                            const ExperimentOptions& options = {});

/// Part Two (Tables IV-IX): every file is compiled, executed, and judged by
/// both agent-based LLMJs with nothing filtered (the paper's record-all
/// protocol); pipeline verdicts are derived retroactively.
struct PartTwoOutcome {
  probing::ProbedSuite suite;
  /// Judgments per method, aligned with suite.files.
  std::vector<metrics::JudgmentRecord> llmj1, llmj2, pipeline1, pipeline2;
  metrics::EvalReport llmj1_report, llmj2_report;
  metrics::EvalReport pipeline1_report, pipeline2_report;
  /// Stage statistics from the LLMJ-1 pipeline pass.
  pipeline::PipelineResult pipeline_run1, pipeline_run2;
  llm::ClientStats llm_stats;
};

PartTwoOutcome run_part_two(frontend::Flavor flavor,
                            const ExperimentOptions& options = {});

/// The corpus/probing configurations the two experiments use (exposed so
/// benches and tests can build matching suites directly).
probing::ProbedSuite build_part_one_suite(frontend::Flavor flavor,
                                          const ExperimentOptions& options);
probing::ProbedSuite build_part_two_suite(frontend::Flavor flavor,
                                          const ExperimentOptions& options);

/// Fresh simulated-judge client (one A100-node replica per judge worker).
/// The default batcher config is paper mode — window_us = 0, no coalescing
/// across callers, sequential pricing bit-exact with the paper's
/// one-call-per-file accounting; pass an explicit BatcherConfig to enable
/// adaptive cross-worker batching (see llm::BatcherConfig).
std::shared_ptr<llm::ModelClient> make_simulated_client(
    std::size_t max_concurrency = 4, llm::BatcherConfig batcher = {});

}  // namespace llm4vv::core
