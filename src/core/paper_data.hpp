#pragma once

#include <array>

#include "frontend/source.hpp"

namespace llm4vv::core {

/// Reference numbers transcribed from the paper, used by the bench binaries
/// to print paper-vs-measured tables and by the calibration tests to pin
/// the reproduction.
struct PaperIssueRow {
  int count;            ///< "Total Count" column
  double accuracy;      ///< fraction, e.g. 0.15 for "15%"
};

/// Per-issue reference block: rows indexed by issue id 0-5.
using PaperIssueTable = std::array<PaperIssueRow, 6>;

/// Overall-metrics reference block (Tables III / VI / IX).
struct PaperOverall {
  int total_count;
  int total_mistakes;
  double overall_accuracy;  ///< fraction
  double bias;
};

// Part One: non-agent LLMJ under negative probing.
const PaperIssueTable& table1_llmj_acc();     ///< Table I
const PaperIssueTable& table2_llmj_omp();     ///< Table II
const PaperOverall& table3_overall(frontend::Flavor flavor);  ///< Table III

// Part Two: validation pipeline.
const PaperIssueTable& table4_pipeline_acc(int pipeline);  ///< Table IV, 1|2
const PaperIssueTable& table5_pipeline_omp(int pipeline);  ///< Table V, 1|2
const PaperOverall& table6_overall(frontend::Flavor flavor,
                                   int pipeline);          ///< Table VI

// Part Two: agent-based LLMJs.
const PaperIssueTable& table7_agent_acc(int llmj);  ///< Table VII, 1|2
const PaperIssueTable& table8_agent_omp(int llmj);  ///< Table VIII, 1|2
const PaperOverall& table9_overall(frontend::Flavor flavor,
                                   int llmj);       ///< Table IX

}  // namespace llm4vv::core
