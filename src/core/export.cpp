#include "core/export.hpp"

#include "support/csv.hpp"
#include "support/jsonl.hpp"

namespace llm4vv::core {

std::string export_part_two_csv(const PartTwoOutcome& outcome) {
  support::CsvWriter csv({"file", "language", "issue_id", "issue",
                          "truth_valid", "compiled", "compile_rc",
                          "executed", "exec_rc", "llmj1_valid",
                          "llmj2_valid", "pipeline1_valid",
                          "pipeline2_valid"});
  for (std::size_t i = 0; i < outcome.suite.files.size(); ++i) {
    const auto& probed = outcome.suite.files[i];
    const auto& r1 = outcome.pipeline_run1.records[i];
    const auto& r2 = outcome.pipeline_run2.records[i];
    csv.add_row({
        probed.file.name,
        frontend::language_name(probed.file.language),
        std::to_string(static_cast<int>(probed.issue)),
        probing::issue_name(probed.issue),
        probed.ground_truth_valid() ? "1" : "0",
        r1.compiled ? "1" : "0",
        std::to_string(r1.compile_rc),
        r1.executed ? "1" : "0",
        std::to_string(r1.exec_rc),
        r1.judge_says_valid ? "1" : "0",
        r2.judge_says_valid ? "1" : "0",
        r1.pipeline_says_valid ? "1" : "0",
        r2.pipeline_says_valid ? "1" : "0",
    });
  }
  return csv.str();
}

std::string export_part_two_jsonl(const PartTwoOutcome& outcome) {
  std::string out;
  for (std::size_t i = 0; i < outcome.suite.files.size(); ++i) {
    const auto& probed = outcome.suite.files[i];
    const auto& r1 = outcome.pipeline_run1.records[i];
    const auto& r2 = outcome.pipeline_run2.records[i];
    support::JsonObject obj;
    obj.field("file", probed.file.name)
        .field("language",
               std::string(frontend::language_name(probed.file.language)))
        .field("issue_id",
               static_cast<std::int64_t>(static_cast<int>(probed.issue)))
        .field("issue", std::string(probing::issue_name(probed.issue)))
        .field("truth_valid", probed.ground_truth_valid())
        .field("compiled", r1.compiled)
        .field("compile_rc", static_cast<std::int64_t>(r1.compile_rc))
        .field("executed", r1.executed)
        .field("exec_rc", static_cast<std::int64_t>(r1.exec_rc))
        .field("llmj1_valid", r1.judge_says_valid)
        .field("llmj2_valid", r2.judge_says_valid)
        .field("pipeline1_valid", r1.pipeline_says_valid)
        .field("pipeline2_valid", r2.pipeline_says_valid)
        .field("judge_gpu_seconds",
               r1.judge_gpu_seconds + r2.judge_gpu_seconds);
    out += obj.str();
    out.push_back('\n');
  }
  return out;
}

std::string export_part_one_csv(const PartOneOutcome& outcome) {
  support::CsvWriter csv(
      {"file", "language", "issue_id", "issue", "truth_valid",
       "judge_valid"});
  for (std::size_t i = 0; i < outcome.suite.files.size(); ++i) {
    const auto& probed = outcome.suite.files[i];
    csv.add_row({
        probed.file.name,
        frontend::language_name(probed.file.language),
        std::to_string(static_cast<int>(probed.issue)),
        probing::issue_name(probed.issue),
        probed.ground_truth_valid() ? "1" : "0",
        outcome.judgments[i].says_valid ? "1" : "0",
    });
  }
  return csv.str();
}

}  // namespace llm4vv::core
