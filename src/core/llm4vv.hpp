#pragma once

/// Umbrella header for the LLM4VV reproduction library.
///
/// Layering (each header can also be included individually):
///   support   - RNG, queues, thread pool, tables, CSV/JSONL, CLI
///   cache     - persistent content-addressed artifact store + clients
///   frontend  - C/C++/Fortran-lite lexer, parser, AST, sema, diagnostics
///   directive - OpenACC/OpenMP directive parsing, spec tables, validation
///   vm        - bytecode, lowering, interpreter, host/device memory model
///   corpus    - V&V test-suite generator + plain-code generator
///   toolchain - compiler personas (nvc/clang) and the executor
///   probing   - the paper's five mutation classes and the suite prober
///   llm       - tokenizer, LanguageModel interface, simulated judge model
///   judge     - prompt builders (Listings 1-4), verdict parsing, LLMJ
///   pipeline  - the staged compile/execute/judge validation pipeline
///   metrics   - accuracy/bias metrics and radar figures
///   core      - canonical experiments, paper reference data, reports

#include "cache/artifact_store.hpp"
#include "cache/compile_cache.hpp"
#include "core/experiments.hpp"
#include "core/export.hpp"
#include "core/paper_data.hpp"
#include "core/report.hpp"
#include "corpus/generator.hpp"
#include "judge/judge.hpp"
#include "llm/client.hpp"
#include "llm/coder_model.hpp"
#include "llm/faults.hpp"
#include "metrics/metrics.hpp"
#include "pipeline/validation_pipeline.hpp"
#include "probing/prober.hpp"
#include "toolchain/compiler.hpp"
#include "toolchain/executor.hpp"
