#include "core/experiments.hpp"

#include "corpus/generator.hpp"
#include "judge/judge.hpp"
#include "llm/coder_model.hpp"
#include "support/thread_pool.hpp"

namespace llm4vv::core {

namespace {

using frontend::Flavor;

corpus::GeneratorConfig corpus_config(Flavor flavor, std::size_t count,
                                      std::uint64_t seed, bool part_one) {
  corpus::GeneratorConfig config;
  config.flavor = flavor;
  config.count = count;
  config.seed = seed;
  config.max_version = 45;  // OpenMP capped at 4.5, as in the paper
  if (part_one) {
    // Part One: the OpenACC suite contained C, C++ and a small set of
    // Fortran files; the OpenMP suite "only C files, due to time
    // constraints".
    config.cpp_share = flavor == Flavor::kOpenACC ? 0.30 : 0.0;
    config.fortran_share = flavor == Flavor::kOpenACC ? 0.08 : 0.0;
  } else {
    // Part Two: "using C and C++ files from the manually-written
    // testsuites for both".
    config.cpp_share = 0.35;
    config.fortran_share = 0.0;
  }
  return config;
}

std::size_t config_total(const probing::ProbingConfig& config) {
  std::size_t total = 0;
  for (const auto count : config.issue_counts) total += count;
  return total;
}

}  // namespace

std::shared_ptr<llm::ModelClient> make_simulated_client(
    std::size_t max_concurrency, llm::BatcherConfig batcher) {
  auto model = std::make_shared<const llm::SimulatedCoderModel>();
  return std::make_shared<llm::ModelClient>(model, max_concurrency,
                                            /*transcript_capacity=*/0,
                                            batcher);
}

probing::ProbedSuite build_part_one_suite(Flavor flavor,
                                          const ExperimentOptions& options) {
  auto probe_config = flavor == Flavor::kOpenACC
                          ? probing::part_one_acc_config()
                          : probing::part_one_omp_config();
  probe_config.seed += options.probe_seed_offset;
  const auto suite = corpus::generate_suite(corpus_config(
      flavor, config_total(probe_config) + 64, options.corpus_seed,
      /*part_one=*/true));
  return probing::probe_suite(suite, probe_config);
}

probing::ProbedSuite build_part_two_suite(Flavor flavor,
                                          const ExperimentOptions& options) {
  auto probe_config = flavor == Flavor::kOpenACC
                          ? probing::part_two_acc_config()
                          : probing::part_two_omp_config();
  probe_config.seed += options.probe_seed_offset;
  const auto suite = corpus::generate_suite(corpus_config(
      flavor, config_total(probe_config) + 64, options.corpus_seed,
      /*part_one=*/false));
  return probing::probe_suite(suite, probe_config);
}

PartOneOutcome run_part_one(Flavor flavor,
                            const ExperimentOptions& options) {
  PartOneOutcome outcome;
  outcome.suite = build_part_one_suite(flavor, options);

  auto client = make_simulated_client(options.judge_workers);
  // Cache off for the same reason as run_part_two: the paper queried the
  // model once per file, and llm_stats must keep that accounting.
  judge::JudgeCacheConfig cache;
  cache.enabled = false;
  const judge::Llmj direct_judge(client, llm::PromptStyle::kDirectAnalysis,
                                 cache);

  outcome.judgments.resize(outcome.suite.files.size());
  {
    // Judge files in parallel; verdicts are per-file deterministic, so the
    // schedule does not affect results.
    support::ThreadPool pool(options.judge_workers);
    for (std::size_t i = 0; i < outcome.suite.files.size(); ++i) {
      pool.post([&, i] {
        const auto& probed = outcome.suite.files[i];
        const auto decision = direct_judge.evaluate(
            probed.file, nullptr, nullptr, options.judge_seed);
        outcome.judgments[i] =
            metrics::JudgmentRecord{probed.issue, decision.says_valid};
      });
    }
    pool.wait_idle();
  }
  outcome.report = metrics::evaluate(outcome.judgments);
  outcome.llm_stats = client->stats();
  return outcome;
}

PartTwoOutcome run_part_two(Flavor flavor,
                            const ExperimentOptions& options) {
  PartTwoOutcome outcome;
  outcome.suite = build_part_two_suite(flavor, options);

  std::vector<frontend::SourceFile> files;
  files.reserve(outcome.suite.files.size());
  for (const auto& probed : outcome.suite.files) {
    files.push_back(probed.file);
  }

  auto client = make_simulated_client(options.judge_workers);
  const auto persona = flavor == Flavor::kOpenACC ? toolchain::nvc_persona()
                                                  : toolchain::clang_persona();

  pipeline::PipelineConfig pipe_config;
  pipe_config.mode = pipeline::PipelineMode::kRecordAll;
  pipe_config.compile_workers = options.compile_workers;
  pipe_config.execute_workers = options.execute_workers;
  pipe_config.judge_workers = options.judge_workers;
  pipe_config.judge_seed = options.judge_seed;
  // Paper mode, pinned on both knobs: judge_batch_size = 1 keeps the judge
  // stage on the sequential per-item path, and the client above runs with
  // the default batcher (window_us = 0), so every call is its own
  // immediate flush. Together they preserve the paper's one-completion-
  // per-file accounting — llm_stats and the simulated GPU totals stay
  // seed-exact (batched passes amortize prefill and would price the same
  // completions cheaper; a nonzero window would let calls coalesce).
  pipe_config.judge_batch_size = 1;

  const auto run_with = [&](llm::PromptStyle style) {
    // The paper's measurement runs query the model for every file; disable
    // the judge's memoization cache so llm_stats keeps the paper's
    // one-request-per-file accounting even when probing left duplicates.
    judge::JudgeCacheConfig cache;
    cache.enabled = false;
    auto judge = std::make_shared<const judge::Llmj>(client, style, cache);
    const pipeline::ValidationPipeline pipe(
        toolchain::CompilerDriver(persona), toolchain::Executor(), judge,
        pipe_config);
    return pipe.run(files);
  };

  outcome.pipeline_run1 = run_with(llm::PromptStyle::kAgentDirect);
  outcome.pipeline_run2 = run_with(llm::PromptStyle::kAgentIndirect);

  const std::size_t n = outcome.suite.files.size();
  outcome.llmj1.resize(n);
  outcome.llmj2.resize(n);
  outcome.pipeline1.resize(n);
  outcome.pipeline2.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto issue = outcome.suite.files[i].issue;
    const auto& r1 = outcome.pipeline_run1.records[i];
    const auto& r2 = outcome.pipeline_run2.records[i];
    outcome.llmj1[i] = metrics::JudgmentRecord{issue, r1.judge_says_valid};
    outcome.llmj2[i] = metrics::JudgmentRecord{issue, r2.judge_says_valid};
    outcome.pipeline1[i] =
        metrics::JudgmentRecord{issue, r1.pipeline_says_valid};
    outcome.pipeline2[i] =
        metrics::JudgmentRecord{issue, r2.pipeline_says_valid};
  }
  outcome.llmj1_report = metrics::evaluate(outcome.llmj1);
  outcome.llmj2_report = metrics::evaluate(outcome.llmj2);
  outcome.pipeline1_report = metrics::evaluate(outcome.pipeline1);
  outcome.pipeline2_report = metrics::evaluate(outcome.pipeline2);
  outcome.llm_stats = client->stats();
  return outcome;
}

}  // namespace llm4vv::core
