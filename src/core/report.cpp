#include "core/report.hpp"

#include "support/strings.hpp"
#include "support/table.hpp"

namespace llm4vv::core {

namespace {

using support::format_fixed;
using support::format_percent;

}  // namespace

std::string render_issue_table(const std::string& title,
                               frontend::Flavor flavor,
                               const PaperIssueTable& paper,
                               const metrics::EvalReport& measured) {
  support::TextTable table({"Issue Type", "Count", "Correct", "Incorrect",
                            "Paper Acc", "Measured Acc"});
  for (std::size_t id = 0; id < 6; ++id) {
    const auto& row = measured.per_issue[id];
    table.add_row({
        probing::issue_row_label(static_cast<probing::IssueType>(id),
                                 flavor),
        std::to_string(row.count),
        std::to_string(row.correct),
        std::to_string(row.incorrect),
        format_percent(paper[id].accuracy),
        format_percent(row.accuracy()),
    });
  }
  return support::banner(title) + table.render();
}

std::string render_issue_table2(const std::string& title,
                                frontend::Flavor flavor,
                                const std::string& name_a,
                                const PaperIssueTable& paper_a,
                                const metrics::EvalReport& measured_a,
                                const std::string& name_b,
                                const PaperIssueTable& paper_b,
                                const metrics::EvalReport& measured_b) {
  support::TextTable table({"Issue Type", "Count",
                            name_a + " Paper", name_a + " Measured",
                            name_b + " Paper", name_b + " Measured"});
  for (std::size_t id = 0; id < 6; ++id) {
    table.add_row({
        probing::issue_row_label(static_cast<probing::IssueType>(id),
                                 flavor),
        std::to_string(measured_a.per_issue[id].count),
        format_percent(paper_a[id].accuracy),
        format_percent(measured_a.per_issue[id].accuracy()),
        format_percent(paper_b[id].accuracy),
        format_percent(measured_b.per_issue[id].accuracy()),
    });
  }
  return support::banner(title) + table.render();
}

std::string render_overall_table(const std::string& title,
                                 const std::string& name,
                                 const PaperOverall& paper,
                                 const metrics::EvalReport& measured) {
  support::TextTable table({"Datapoint", "Paper", "Measured"});
  table.add_row({"Total Count", std::to_string(paper.total_count),
                 std::to_string(measured.total_count)});
  table.add_row({"Total " + name + " Mistakes",
                 std::to_string(paper.total_mistakes),
                 std::to_string(measured.total_mistakes)});
  table.add_row({"Overall " + name + " Accuracy",
                 format_fixed(paper.overall_accuracy * 100.0, 2) + "%",
                 format_fixed(measured.overall_accuracy * 100.0, 2) + "%"});
  table.add_row({name + " Bias", format_fixed(paper.bias, 3),
                 format_fixed(measured.bias, 3)});
  return support::banner(title) + table.render();
}

std::string render_overall_table2(const std::string& title,
                                  const std::string& name_a,
                                  const PaperOverall& paper_a,
                                  const metrics::EvalReport& measured_a,
                                  const std::string& name_b,
                                  const PaperOverall& paper_b,
                                  const metrics::EvalReport& measured_b) {
  support::TextTable table({"Datapoint", "Paper", "Measured"});
  table.add_row({"Total Count", std::to_string(paper_a.total_count),
                 std::to_string(measured_a.total_count)});
  table.add_row({"Total " + name_a + " Mistakes",
                 std::to_string(paper_a.total_mistakes),
                 std::to_string(measured_a.total_mistakes)});
  table.add_row({"Total " + name_b + " Mistakes",
                 std::to_string(paper_b.total_mistakes),
                 std::to_string(measured_b.total_mistakes)});
  table.add_row({"Overall " + name_a + " Accuracy",
                 format_fixed(paper_a.overall_accuracy * 100.0, 2) + "%",
                 format_fixed(measured_a.overall_accuracy * 100.0, 2) +
                     "%"});
  table.add_row({"Overall " + name_b + " Accuracy",
                 format_fixed(paper_b.overall_accuracy * 100.0, 2) + "%",
                 format_fixed(measured_b.overall_accuracy * 100.0, 2) +
                     "%"});
  table.add_row({name_a + " Bias", format_fixed(paper_a.bias, 3),
                 format_fixed(measured_a.bias, 3)});
  table.add_row({name_b + " Bias", format_fixed(paper_b.bias, 3),
                 format_fixed(measured_b.bias, 3)});
  return support::banner(title) + table.render();
}

}  // namespace llm4vv::core
