#include "support/cli.hpp"

#include <stdexcept>

#include "support/strings.hpp"

namespace llm4vv::support {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "true";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("CliArgs: flag --" + name +
                                " expects an integer, got '" + it->second +
                                "'");
  }
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("CliArgs: flag --" + name +
                                " expects a number, got '" + it->second +
                                "'");
  }
}

}  // namespace llm4vv::support
