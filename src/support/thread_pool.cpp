#include "support/thread_pool.hpp"

#include <stdexcept>

namespace llm4vv::support {

ThreadPool::ThreadPool(std::size_t workers) : tasks_(4096) {
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  tasks_.close();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::post(std::function<void()> task) {
  {
    MutexLock lock(idle_mutex_);
    ++in_flight_;
  }
  if (!tasks_.push(std::move(task))) {
    {
      MutexLock lock(idle_mutex_);
      --in_flight_;
    }
    idle_cv_.notify_all();
    throw std::runtime_error("ThreadPool::post: pool is shutting down");
  }
}

void ThreadPool::wait_idle() {
  UniqueLock lock(idle_mutex_);
  while (in_flight_ != 0) idle_cv_.wait(lock);
}

void ThreadPool::worker_loop() {
  for (;;) {
    auto task = tasks_.pop();
    if (!task) return;  // closed and drained
    (*task)();
    {
      MutexLock lock(idle_mutex_);
      --in_flight_;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace llm4vv::support
