#include "support/rng.hpp"

#include <string_view>

namespace llm4vv::support {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  std::uint64_t s = h;
  return splitmix64(s);
}

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: bound == 0");
  // Lemire-style rejection to stay unbiased.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::next_in: lo > hi");
  const auto width =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (width == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_below(width));
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::fork() noexcept { return Rng(next_u64()); }

}  // namespace llm4vv::support
