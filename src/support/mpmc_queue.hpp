#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "support/thread_annotations.hpp"

namespace llm4vv::support {

/// Bounded multi-producer/multi-consumer blocking queue, lock-striped
/// across N shards.
///
/// This is the channel that connects validation-pipeline stages (Figure 2
/// of the paper): producers block when the queue is full (back-pressure
/// keeps a fast compile stage from flooding the slow LLM stage) and
/// consumers block when it is empty. `close()` wakes everyone and drains
/// remaining items; after the queue is closed and empty, `pop()` returns
/// std::nullopt so worker loops terminate cleanly (CP.mess: communicate by
/// message passing, not by shared mutable state).
///
/// Sharding (PR 5): with `shards > 1` the buffer is striped across that
/// many independently locked sub-queues, so many workers no longer
/// serialize on a single mutex. Each thread hashes its id to a *home*
/// shard and pushes/pops there first (affinity keeps a steady worker on
/// one uncontended lock and preserves FIFO order within its shard);
/// when the home shard is empty (pop) or full (push) the operation walks
/// the sibling shards — *work stealing* — before blocking on the
/// queue-wide gate. Pops start that walk at the last shard a steal found
/// non-empty (a relaxed shared hint), so a skewed producer keeps getting
/// robbed directly instead of through a linear re-scan. Cross-shard ordering is not defined; `shards == 1`
/// (the default) is the original single-mutex queue with strict FIFO
/// order. Blocking uses a queue-wide gate (atomic size + waiter-counted
/// condition variables), touched only when a thread actually has to
/// sleep or a sleeper exists to wake.
///
/// Capacity note: the bound is split evenly, each shard holding up to
/// ceil(capacity / shards) items, so the effective bound can round up to
/// at most `capacity + shards - 1`; `capacity()` returns the requested
/// value.
template <typename T>
class MpmcQueue {
 public:
  /// Create a queue holding at most ~`capacity` items striped over
  /// `shards` sub-queues (capacity must be > 0; shards == 0 is promoted
  /// to 1).
  explicit MpmcQueue(std::size_t capacity = 256, std::size_t shards = 1)
      : capacity_(capacity),
        shard_count_(shards == 0 ? 1 : shards),
        shard_capacity_((capacity + shard_count_ - 1) / shard_count_),
        shards_(shard_count_) {
    if (capacity == 0) {
      throw std::invalid_argument("MpmcQueue: capacity must be > 0");
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Block until there is space, then enqueue. Returns false (and drops the
  /// item) if the queue was closed.
  bool push(T item) {
    const std::size_t home = home_shard();
    for (;;) {
      if (closed_.load(std::memory_order_acquire)) return false;
      for (std::size_t i = 0; i < shard_count_; ++i) {
        Shard& shard = shards_[(home + i) % shard_count_];
        UniqueLock lock(shard.mutex);
        // Re-checked under the lock: close() sweeps every shard mutex
        // after setting the flag, so a push that enqueued before the
        // sweep is drained and one that arrives after it fails — exactly
        // the single-mutex queue's close/push linearization.
        if (closed_.load(std::memory_order_acquire)) return false;
        if (shard.items.size() >= shard_capacity_) continue;
        shard.items.push_back(std::move(item));
        // The count must move while the shard lock is held: a consumer
        // can otherwise pop this item and decrement before our increment
        // lands, wrapping size_ to SIZE_MAX.
        size_.fetch_add(1);
        lock.unlock();
        wake_consumers(1);
        return true;
      }
      wait_for_space();
    }
  }

  /// Blocking bulk enqueue: moves the elements of `items` into the queue,
  /// waiting for space as needed, taking one shard lock per shard visited
  /// per burst instead of one per element. Returns the number of items
  /// enqueued; anything less than `items.size()` means the queue was
  /// closed mid-push and the tail `[returned, size)` was left untouched in
  /// `items` (elements before that point are moved-from). With a single
  /// shard the items land in order; with several they stripe across
  /// shards.
  std::size_t push_all(std::vector<T>& items) {
    const std::size_t home = home_shard();
    std::size_t pushed = 0;
    bool closed_seen = false;
    while (pushed < items.size() && !closed_seen) {
      if (closed_.load(std::memory_order_acquire)) break;
      std::size_t burst = 0;
      for (std::size_t i = 0; i < shard_count_ && pushed < items.size();
           ++i) {
        Shard& shard = shards_[(home + i) % shard_count_];
        MutexLock lock(shard.mutex);
        if (closed_.load(std::memory_order_acquire)) {
          closed_seen = true;  // see push(): close/push linearization
          break;
        }
        std::size_t shard_burst = 0;
        while (pushed < items.size() &&
               shard.items.size() < shard_capacity_) {
          shard.items.push_back(std::move(items[pushed]));
          ++pushed;
          ++shard_burst;
        }
        // Counted under the shard lock; see push().
        if (shard_burst > 0) size_.fetch_add(shard_burst);
        burst += shard_burst;
      }
      if (burst > 0) {
        wake_consumers(burst);
        continue;
      }
      if (!closed_seen) wait_for_space();
    }
    return pushed;
  }

  /// Non-blocking enqueue; returns false when full or closed.
  bool try_push(T item) {
    if (closed_.load(std::memory_order_acquire)) return false;
    const std::size_t home = home_shard();
    for (std::size_t i = 0; i < shard_count_; ++i) {
      Shard& shard = shards_[(home + i) % shard_count_];
      UniqueLock lock(shard.mutex);
      if (closed_.load(std::memory_order_acquire)) return false;
      if (shard.items.size() >= shard_capacity_) continue;
      shard.items.push_back(std::move(item));
      size_.fetch_add(1);  // under the shard lock; see push()
      lock.unlock();
      wake_consumers(1);
      return true;
    }
    return false;
  }

  /// Block until an item is available or the queue is closed-and-drained.
  /// Returns std::nullopt only in the latter case.
  std::optional<T> pop() {
    const std::size_t home = home_shard();
    for (;;) {
      const std::size_t hint = steal_hint_.load(std::memory_order_relaxed);
      for (std::size_t step = 0; step <= shard_count_; ++step) {
        const std::size_t index = scan_shard(home, hint, step);
        if (step != 0 && index == home) continue;  // already visited
        Shard& shard = shards_[index];
        UniqueLock lock(shard.mutex);
        if (shard.items.empty()) continue;
        T item = std::move(shard.items.front());
        shard.items.pop_front();
        size_.fetch_sub(1);  // under the shard lock; see push()
        lock.unlock();
        if (index != home) record_steal(index);
        wake_producers(1);
        return item;
      }
      if (!wait_for_items()) return std::nullopt;
    }
  }

  /// Blocking bulk dequeue: waits until at least one item is available (or
  /// the queue is closed-and-drained), then appends up to `max` items to
  /// `out`, sweeping sibling shards (home first, one lock each) until the
  /// burst is full or every shard was visited. The sweep matters: striped
  /// producers spread a batch across shards, and a single-shard burst
  /// would fragment downstream batching (the judge stage's submission
  /// groups) on multi-core hosts. Returns the number of items appended;
  /// 0 signals end-of-stream, exactly like a nullopt from pop().
  std::size_t pop_up_to(std::size_t max, std::vector<T>& out) {
    if (max == 0) return 0;
    const std::size_t home = home_shard();
    for (;;) {
      const std::size_t hint = steal_hint_.load(std::memory_order_relaxed);
      std::size_t popped = 0;
      bool stole = false;
      for (std::size_t step = 0; step <= shard_count_ && popped < max;
           ++step) {
        const std::size_t index = scan_shard(home, hint, step);
        if (step != 0 && index == home) continue;  // already visited
        Shard& shard = shards_[index];
        MutexLock lock(shard.mutex);
        std::size_t from_shard = 0;
        while (popped < max && !shard.items.empty()) {
          out.push_back(std::move(shard.items.front()));
          shard.items.pop_front();
          ++popped;
          ++from_shard;
        }
        if (from_shard > 0) {
          size_.fetch_sub(from_shard);  // under the shard lock; see push()
          if (index != home) {
            stole = true;
            steal_hint_.store(index, std::memory_order_relaxed);
          }
        }
      }
      if (popped > 0) {
        if (stole) steals_.fetch_add(1, std::memory_order_relaxed);
        wake_producers(popped);
        return popped;
      }
      if (!wait_for_items()) return 0;
    }
  }

  /// Non-blocking dequeue; std::nullopt when currently empty.
  std::optional<T> try_pop() {
    const std::size_t home = home_shard();
    const std::size_t hint = steal_hint_.load(std::memory_order_relaxed);
    for (std::size_t step = 0; step <= shard_count_; ++step) {
      const std::size_t index = scan_shard(home, hint, step);
      if (step != 0 && index == home) continue;  // already visited
      Shard& shard = shards_[index];
      UniqueLock lock(shard.mutex);
      if (shard.items.empty()) continue;
      T item = std::move(shard.items.front());
      shard.items.pop_front();
      size_.fetch_sub(1);  // under the shard lock; see push()
      lock.unlock();
      if (index != home) record_steal(index);
      wake_producers(1);
      return item;
    }
    return std::nullopt;
  }

  /// Close the queue: producers start failing immediately, consumers drain
  /// the remaining items and then observe end-of-stream.
  void close() {
    closed_.store(true, std::memory_order_release);
    // Sweep every shard mutex after setting the flag: a push holding a
    // shard lock either enqueued before this sweep (its item and size_
    // update are then ordered before the sweep, so consumers drain it)
    // or re-checks the flag under the lock and fails. This restores the
    // single-mutex queue's guarantee that no push succeeds after close()
    // returns.
    for (Shard& shard : shards_) {
      MutexLock shard_lock(shard.mutex);
    }
    // Taking the gate lock before broadcasting pairs with the waiters'
    // predicate check, so nobody can sleep through the close.
    MutexLock lock(gate_mutex_);
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// True once close() has been called.
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Number of items currently buffered (a snapshot; for stats only).
  std::size_t size() const {
    return size_.load();
  }

  /// Requested maximum number of buffered items (per-shard rounding can
  /// raise the effective bound by up to shards - 1).
  std::size_t capacity() const noexcept { return capacity_; }

  /// Number of lock-striped sub-queues.
  std::size_t shard_count() const noexcept { return shard_count_; }

  /// Pop operations (pop / try_pop / pop_up_to bursts) that were served by
  /// a shard other than the calling thread's home shard — the
  /// work-stealing rate, surfaced in pipeline telemetry.
  std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

  /// Re-register the queue's live telemetry into an obs::Registry-shaped
  /// sink as scrape-time probes: "<prefix>.depth" (current size),
  /// "<prefix>.steals", "<prefix>.capacity", "<prefix>.shards". Duck-typed
  /// on the registry so this support-layer header needs no obs include;
  /// the queue must outlive the registration — callers with run-scoped
  /// queues (the pipeline) pair this with unregister_prefix(prefix).
  template <typename RegistryT>
  void register_metrics(RegistryT& registry, const std::string& prefix) const {
    registry.register_probe(prefix + ".depth", [this] {
      return static_cast<double>(size());
    });
    registry.register_probe(prefix + ".steals", [this] {
      return static_cast<double>(steals());
    });
    registry.register_probe(prefix + ".capacity", [this] {
      return static_cast<double>(capacity());
    });
    registry.register_probe(prefix + ".shards", [this] {
      return static_cast<double>(shard_count());
    });
  }

 private:
  struct Shard {
    mutable Mutex mutex;
    std::deque<T> items GUARDED_BY(mutex);
  };

  /// Pop-scan order: step 0 is the home shard; steps 1..shard_count_ walk
  /// the full shard ring starting at the steal hint — the last shard a
  /// steal found non-empty — so under a skewed load thieves go straight
  /// back to the hot shard instead of re-walking the empty shards between
  /// home and it. Callers skip the home index when a later step lands on
  /// it; the ring walk still visits every shard, which wait_for_items'
  /// "re-scan after wake" contract depends on (a partial scan could sleep
  /// with items present and never wake).
  std::size_t scan_shard(std::size_t home, std::size_t hint,
                         std::size_t step) const noexcept {
    return step == 0 ? home : (hint + step - 1) % shard_count_;
  }

  /// A steal found shard `index` non-empty: count it and remember the
  /// shard for the next scan. The hint is advisory (relaxed, racy by
  /// design) — a stale value costs a few extra probes, never correctness.
  void record_steal(std::size_t index) {
    steals_.fetch_add(1, std::memory_order_relaxed);
    steal_hint_.store(index, std::memory_order_relaxed);
  }

  std::size_t home_shard() const noexcept {
    if (shard_count_ == 1) return 0;
    // The thread's hash never changes; computing get_id()+hash per queue
    // operation is measurable on the hand-off hot path, so cache it.
    static const thread_local std::size_t thread_hash =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    return thread_hash % shard_count_;
  }

  std::size_t total_capacity() const noexcept {
    return shard_capacity_ * shard_count_;
  }

  /// Sleep until some shard may have space (or the queue closed). Callers
  /// re-scan after waking; the predicate only uses atomics, so it is safe
  /// under the gate lock.
  void wait_for_space() {
    UniqueLock gate(gate_mutex_);
    if (closed_.load(std::memory_order_acquire)) return;
    if (size_.load() < total_capacity()) return;
    push_waiters_.fetch_add(1);
    while (!(closed_.load(std::memory_order_acquire) ||
             size_.load() < total_capacity())) {
      not_full_.wait(gate);
    }
    push_waiters_.fetch_sub(1);
  }

  /// Sleep until items may be available. Returns false when the queue is
  /// closed and drained (end-of-stream); true means "re-scan".
  bool wait_for_items() {
    UniqueLock gate(gate_mutex_);
    for (;;) {
      if (size_.load() > 0) return true;
      if (closed_.load(std::memory_order_acquire)) {
        // A racing push that passed its closed-check may still hold a
        // shard lock with its item not yet counted. Sweep the shard
        // locks so any such enqueue is ordered before the final check;
        // afterwards no push can succeed (they all re-check the flag
        // under the lock), so size_ == 0 really is end-of-stream.
        gate.unlock();
        for (Shard& shard : shards_) {
          MutexLock shard_lock(shard.mutex);
        }
        return size_.load() > 0;
      }
      pop_waiters_.fetch_add(1);
      while (!(closed_.load(std::memory_order_acquire) ||
               size_.load() > 0)) {
        not_empty_.wait(gate);
      }
      pop_waiters_.fetch_sub(1);
    }
  }

  /// Wake sleeping consumers after publishing `n` items. The waiter count
  /// keeps the gate untouched on the uncontended fast path; acquiring the
  /// gate mutex (even empty) before notifying closes the race with a
  /// waiter that just failed its predicate check but has not yet slept.
  void wake_consumers(std::size_t n) {
    if (pop_waiters_.load() == 0) return;
    { MutexLock lock(gate_mutex_); }
    if (n == 1) {
      not_empty_.notify_one();
    } else {
      not_empty_.notify_all();
    }
  }

  void wake_producers(std::size_t n) {
    if (push_waiters_.load() == 0) return;
    { MutexLock lock(gate_mutex_); }
    if (n == 1) {
      not_full_.notify_one();
    } else {
      not_full_.notify_all();
    }
  }

  const std::size_t capacity_;
  const std::size_t shard_count_;
  const std::size_t shard_capacity_;
  std::vector<Shard> shards_;
  std::atomic<std::size_t> size_{0};
  std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::size_t> steal_hint_{0};
  std::atomic<int> pop_waiters_{0};
  std::atomic<int> push_waiters_{0};
  mutable Mutex gate_mutex_;
  CondVar not_empty_;
  CondVar not_full_;
};

}  // namespace llm4vv::support
