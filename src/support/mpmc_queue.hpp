#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

namespace llm4vv::support {

/// Bounded multi-producer/multi-consumer blocking queue.
///
/// This is the channel that connects validation-pipeline stages (Figure 2 of
/// the paper): producers block when the queue is full (back-pressure keeps a
/// fast compile stage from flooding the slow LLM stage) and consumers block
/// when it is empty. `close()` wakes everyone and drains remaining items;
/// after the queue is closed and empty, `pop()` returns std::nullopt so
/// worker loops terminate cleanly (CP.mess: communicate by message passing,
/// not by shared mutable state).
template <typename T>
class MpmcQueue {
 public:
  /// Create a queue holding at most `capacity` items (capacity must be > 0).
  explicit MpmcQueue(std::size_t capacity = 256) : capacity_(capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("MpmcQueue: capacity must be > 0");
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Block until there is space, then enqueue. Returns false (and drops the
  /// item) if the queue was closed.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking enqueue; returns false when full or closed.
  bool try_push(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Block until an item is available or the queue is closed-and-drained.
  /// Returns std::nullopt only in the latter case.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking dequeue; std::nullopt when currently empty.
  std::optional<T> try_pop() {
    std::unique_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Close the queue: producers start failing immediately, consumers drain
  /// the remaining items and then observe end-of-stream.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// True once close() has been called.
  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  /// Number of items currently buffered (a snapshot; for stats only).
  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  /// Maximum number of buffered items.
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace llm4vv::support
