#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace llm4vv::support {

/// Bounded multi-producer/multi-consumer blocking queue.
///
/// This is the channel that connects validation-pipeline stages (Figure 2 of
/// the paper): producers block when the queue is full (back-pressure keeps a
/// fast compile stage from flooding the slow LLM stage) and consumers block
/// when it is empty. `close()` wakes everyone and drains remaining items;
/// after the queue is closed and empty, `pop()` returns std::nullopt so
/// worker loops terminate cleanly (CP.mess: communicate by message passing,
/// not by shared mutable state).
template <typename T>
class MpmcQueue {
 public:
  /// Create a queue holding at most `capacity` items (capacity must be > 0).
  explicit MpmcQueue(std::size_t capacity = 256) : capacity_(capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("MpmcQueue: capacity must be > 0");
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Block until there is space, then enqueue. Returns false (and drops the
  /// item) if the queue was closed.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocking bulk enqueue: moves the elements of `items` into the queue in
  /// order, waiting for space as needed, taking the lock once per burst of
  /// free capacity instead of once per element. Returns the number of items
  /// enqueued; anything less than `items.size()` means the queue was closed
  /// mid-push and the tail `[returned, size)` was left untouched in `items`
  /// (elements before that point are moved-from).
  std::size_t push_all(std::vector<T>& items) {
    std::size_t pushed = 0;
    std::unique_lock lock(mutex_);
    while (pushed < items.size()) {
      not_full_.wait(lock,
                     [this] { return closed_ || items_.size() < capacity_; });
      if (closed_) break;
      std::size_t burst = 0;
      while (pushed < items.size() && items_.size() < capacity_) {
        items_.push_back(std::move(items[pushed]));
        ++pushed;
        ++burst;
      }
      // Notify with the mutex released so woken consumers don't pile up on
      // it; the burst must be published before the next wait, or consumers
      // would sleep while this producer sleeps.
      lock.unlock();
      if (burst == 1) {
        not_empty_.notify_one();
      } else if (burst > 1) {
        not_empty_.notify_all();
      }
      if (pushed == items.size()) return pushed;
      lock.lock();
    }
    return pushed;
  }

  /// Non-blocking enqueue; returns false when full or closed.
  bool try_push(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Block until an item is available or the queue is closed-and-drained.
  /// Returns std::nullopt only in the latter case.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Blocking bulk dequeue: waits until at least one item is available (or
  /// the queue is closed-and-drained), then appends up to `max` items to
  /// `out` under a single lock acquisition. Returns the number of items
  /// appended; 0 signals end-of-stream, exactly like a nullopt from pop().
  std::size_t pop_up_to(std::size_t max, std::vector<T>& out) {
    if (max == 0) return 0;
    std::size_t popped = 0;
    {
      std::unique_lock lock(mutex_);
      not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
      while (popped < max && !items_.empty()) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
        ++popped;
      }
    }
    if (popped == 1) {
      not_full_.notify_one();
    } else if (popped > 1) {
      not_full_.notify_all();
    }
    return popped;
  }

  /// Non-blocking dequeue; std::nullopt when currently empty.
  std::optional<T> try_pop() {
    std::unique_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Close the queue: producers start failing immediately, consumers drain
  /// the remaining items and then observe end-of-stream.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// True once close() has been called.
  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  /// Number of items currently buffered (a snapshot; for stats only).
  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  /// Maximum number of buffered items.
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace llm4vv::support
