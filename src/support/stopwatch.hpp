#pragma once

#include <chrono>
#include <cstdint>

namespace llm4vv::support {

/// Monotonic microsecond clock shared by every timing consumer in the
/// tree: Stopwatch below, the pipeline's stage/wall accounting, the
/// client's flush latency fields, and the obs::Tracer span timestamps all
/// read this one steady_clock tick, so traces and latency metrics line up
/// without cross-clock skew. The epoch is the platform's steady_clock
/// epoch (typically boot), not Unix time.
inline std::uint64_t now_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonic wall-clock stopwatch used by pipeline statistics and the
/// latency model of the simulated inference server. Expressed over
/// now_us() so stopwatch readings and trace timestamps share one clock.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_us_(now_us()) {}

  /// Reset the origin to now.
  void restart() noexcept { start_us_ = now_us(); }

  /// Seconds elapsed since construction or the last restart().
  double seconds() const noexcept {
    return static_cast<double>(now_us() - start_us_) * 1e-6;
  }

  /// Milliseconds elapsed.
  double millis() const noexcept { return seconds() * 1e3; }

  /// Microsecond timestamp of the origin (same clock as now_us()).
  std::uint64_t start_us() const noexcept { return start_us_; }

 private:
  std::uint64_t start_us_;
};

}  // namespace llm4vv::support
