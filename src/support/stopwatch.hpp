#pragma once

#include <chrono>

namespace llm4vv::support {

/// Monotonic wall-clock stopwatch used by pipeline statistics and the
/// latency model of the simulated inference server.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}

  /// Reset the origin to now.
  void restart() noexcept { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double millis() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace llm4vv::support
