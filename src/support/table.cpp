#include "support/table.hpp"

#include <algorithm>
#include <stdexcept>

namespace llm4vv::support {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("TextTable: header must be non-empty");
  }
  alignments_.assign(header_.size(), Align::kRight);
  alignments_.front() = Align::kLeft;
}

void TextTable::set_alignments(std::vector<Align> alignments) {
  if (alignments.size() != header_.size()) {
    throw std::invalid_argument("TextTable: alignment count mismatch");
  }
  alignments_ = std::move(alignments);
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(Row{std::move(row), false});
}

void TextTable::add_rule() { rows_.push_back(Row{{}, true}); }

std::size_t TextTable::row_count() const noexcept {
  std::size_t n = 0;
  for (const auto& row : rows_) {
    if (!row.rule) ++n;
  }
  return n;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    if (row.rule) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto rule_line = [&] {
    std::string line = "+";
    for (const auto w : widths) {
      line.append(w + 2, '-');
      line.push_back('+');
    }
    line.push_back('\n');
    return line;
  }();

  const auto render_cells = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t pad = widths[c] - cells[c].size();
      line.push_back(' ');
      if (alignments_[c] == Align::kRight) line.append(pad, ' ');
      line.append(cells[c]);
      if (alignments_[c] == Align::kLeft) line.append(pad, ' ');
      line.append(" |");
    }
    line.push_back('\n');
    return line;
  };

  std::string out = rule_line;
  out += render_cells(header_);
  out += rule_line;
  for (const auto& row : rows_) {
    out += row.rule ? rule_line : render_cells(row.cells);
  }
  out += rule_line;
  return out;
}

std::string banner(const std::string& title) {
  std::string out = "\n== " + title + " ==\n";
  return out;
}

}  // namespace llm4vv::support
