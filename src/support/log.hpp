#pragma once

#include <string>

namespace llm4vv::support {

/// Log severities, lowest to highest.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Set the global minimum severity (thread-safe; default kInfo).
void set_log_level(LogLevel level) noexcept;

/// Current global minimum severity.
LogLevel log_level() noexcept;

/// Emit one log line to stderr as "[LEVEL] message" when `level` passes the
/// global threshold. Serialized with an internal mutex so concurrent pipeline
/// workers do not interleave bytes.
void log(LogLevel level, const std::string& message);

/// Convenience wrappers.
void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

}  // namespace llm4vv::support
