#include "support/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace llm4vv::support {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

void log_debug(const std::string& message) { log(LogLevel::kDebug, message); }
void log_info(const std::string& message) { log(LogLevel::kInfo, message); }
void log_warn(const std::string& message) { log(LogLevel::kWarn, message); }
void log_error(const std::string& message) { log(LogLevel::kError, message); }

}  // namespace llm4vv::support
