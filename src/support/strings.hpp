#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace llm4vv::support {

/// Split `text` on a single-character separator. Empty fields are kept, so
/// `split("a,,b", ',')` yields {"a", "", "b"}.
std::vector<std::string> split(std::string_view text, char sep);

/// Split `text` into lines; accepts both "\n" and "\r\n" endings. A trailing
/// newline does not produce a final empty line.
std::vector<std::string> split_lines(std::string_view text);

/// Split on any run of ASCII whitespace; no empty fields are produced.
std::vector<std::string> split_whitespace(std::string_view text);

/// Strip leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text) noexcept;

/// Join the range with a separator: join({"a","b"}, ", ") == "a, b".
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix) noexcept;

/// True if `text` ends with `suffix`.
bool ends_with(std::string_view text, std::string_view suffix) noexcept;

/// True if `haystack` contains `needle`.
bool contains(std::string_view haystack, std::string_view needle) noexcept;

/// Case-insensitive containment test (ASCII only).
bool icontains(std::string_view haystack, std::string_view needle) noexcept;

/// ASCII lowercase copy.
std::string to_lower(std::string_view text);

/// Replace every occurrence of `from` with `to`. `from` must be non-empty.
std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to);

/// Indent every line of `text` by `spaces` spaces (including the first).
std::string indent(std::string_view text, int spaces);

/// Value of one hex digit (accepts both cases), or -1 when `c` is not a
/// hex digit. The single nibble decoder shared by the JSONL reader, the
/// artifact store's key parsing, and the module codec.
int hex_digit_value(char c) noexcept;

/// Format a double with fixed decimals, e.g. format_fixed(0.5666, 2) == "0.57".
std::string format_fixed(double value, int decimals);

/// Render a fraction as a percentage string the way the paper prints them:
/// format_percent(0.5663) == "57%" (rounded to the nearest integer).
std::string format_percent(double fraction);

}  // namespace llm4vv::support
