#include "support/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace llm4vv::support {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      std::size_t end = i;
      if (end > start && text[end - 1] == '\r') --end;
      out.emplace_back(text.substr(start, end - start));
      start = i + 1;
    }
  }
  if (start < text.size()) {
    std::size_t end = text.size();
    if (end > start && text[end - 1] == '\r') --end;
    out.emplace_back(text.substr(start, end - start));
  }
  return out;
}

std::vector<std::string> split_whitespace(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    const std::size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) noexcept {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool contains(std::string_view haystack, std::string_view needle) noexcept {
  return haystack.find(needle) != std::string_view::npos;
}

bool icontains(std::string_view haystack, std::string_view needle) noexcept {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  const auto lower = [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  };
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (std::size_t j = 0; j < needle.size(); ++j) {
      if (lower(haystack[i + j]) != lower(needle[j])) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to) {
  std::string out;
  if (from.empty()) return std::string(text);
  std::size_t pos = 0;
  for (;;) {
    const std::size_t hit = text.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(text.substr(pos));
      return out;
    }
    out.append(text.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

std::string indent(std::string_view text, int spaces) {
  const std::string pad(static_cast<std::size_t>(spaces > 0 ? spaces : 0),
                        ' ');
  std::string out;
  bool at_line_start = true;
  for (const char c : text) {
    if (at_line_start && c != '\n') out.append(pad);
    at_line_start = (c == '\n');
    out.push_back(c);
  }
  return out;
}

int hex_digit_value(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string format_percent(double fraction) {
  const long pct = std::lround(fraction * 100.0);
  return std::to_string(pct) + "%";
}

}  // namespace llm4vv::support
