#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "support/mpmc_queue.hpp"
#include "support/thread_annotations.hpp"

namespace llm4vv::support {

/// Fixed-size task thread-pool (CP.4: think in terms of tasks, not threads).
///
/// Pipeline stages and the parallel experiment runners submit closures and
/// either fire-and-forget (`post`) or wait on a future (`submit`). Workers
/// are joined in the destructor after the task queue drains, so a pool used
/// as a local object gives deterministic shutdown (RAII, C.31).
class ThreadPool {
 public:
  /// Spin up `workers` threads (0 is promoted to 1).
  explicit ThreadPool(std::size_t workers);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task with no result. Throws std::runtime_error if the pool is
  /// already shutting down.
  void post(std::function<void()> task);

  /// Enqueue a task and get a future for its result. Exceptions thrown by
  /// the task are delivered through the future.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto fut = task->get_future();
    post([task]() mutable { (*task)(); });
    return fut;
  }

  /// Number of worker threads.
  std::size_t worker_count() const noexcept { return workers_.size(); }

  /// Block until every task submitted so far has finished executing.
  void wait_idle();

 private:
  void worker_loop();

  MpmcQueue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  mutable Mutex idle_mutex_;
  CondVar idle_cv_;
  std::size_t in_flight_ GUARDED_BY(idle_mutex_) = 0;  // queued + executing
};

}  // namespace llm4vv::support
