#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace llm4vv::support {

/// Deterministic pseudo-random number generator used throughout LLM4VV.
///
/// Every stochastic component (corpus generation, negative probing, the
/// simulated judge) draws from an `Rng` seeded explicitly by the caller, so
/// every experiment in the paper reproduction is bit-for-bit reproducible.
///
/// The engine is xoshiro256** seeded through SplitMix64, which gives good
/// statistical quality at a few nanoseconds per draw and - unlike
/// std::mt19937 - has a tiny state that is cheap to fork per worker thread
/// (CP.3: forked streams instead of a shared, locked generator).
class Rng {
 public:
  /// Construct a generator from a 64-bit seed. Equal seeds yield equal
  /// streams on every platform.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit draw from the engine.
  std::uint64_t next_u64() noexcept;

  /// Uniform integer in [0, bound). `bound` must be non-zero; uses unbiased
  /// rejection sampling.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Bernoulli draw: true with probability `p` (clamped to [0, 1]).
  bool chance(double p) noexcept;

  /// Pick a uniformly random element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    if (items.empty()) throw std::invalid_argument("Rng::pick: empty span");
    return items[static_cast<std::size_t>(next_below(items.size()))];
  }

  /// Pick from a vector (convenience overload).
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return pick(std::span<const T>(items.data(), items.size()));
  }

  /// Fisher-Yates shuffle of a vector in place.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Fork an independent child stream. Children seeded from the same parent
  /// at the same fork index are identical; distinct fork draws give streams
  /// that do not correlate with the parent's subsequent output.
  Rng fork() noexcept;

 private:
  std::uint64_t state_[4];
};

/// Stateless SplitMix64 step; exposed for hashing/seeding helpers.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Mix one 64-bit word into a running hash (boost-style combine followed by
/// the SplitMix64 finalizer). The judge cache key, the compile cache key,
/// and the compiler-config fingerprint all build on this one definition —
/// persisted artifact keys depend on it, so changing it invalidates every
/// store file (by design: the records would no longer be found, a cold
/// start, never a wrong hit).
std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) noexcept;

/// 64-bit FNV-1a hash of a byte string; used to derive per-file judge seeds
/// so that a given (file, prompt-style) pair always gets the same verdict
/// within an experiment.
std::uint64_t fnv1a64(std::string_view bytes) noexcept;

}  // namespace llm4vv::support
