#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace llm4vv::support {

/// Tiny `--flag value` / `--flag=value` command-line parser shared by the
/// bench and example binaries. Unknown flags raise std::invalid_argument so
/// typos fail loudly; every binary also runs with no arguments (defaults).
class CliArgs {
 public:
  /// Parse argv. Flags take the forms `--name value`, `--name=value`, and
  /// bare `--name` (boolean true).
  CliArgs(int argc, const char* const* argv);

  /// True when the flag appeared at all.
  bool has(const std::string& name) const;

  /// String value of a flag, or `fallback` when absent.
  std::string get(const std::string& name, const std::string& fallback) const;

  /// Integer value of a flag, or `fallback` when absent.
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;

  /// Double value of a flag, or `fallback` when absent.
  double get_double(const std::string& name, double fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace llm4vv::support
