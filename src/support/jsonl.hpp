#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace llm4vv::support {

/// Incremental builder for one JSON object, emitted as a single line
/// (JSON Lines). Experiment runners use it to persist per-file records:
/// every value is escaped, keys are emitted in insertion order, and the
/// output is valid standalone JSON.
class JsonObject {
 public:
  /// Add a string field.
  JsonObject& field(const std::string& key, const std::string& value);

  /// String-literal values must land on the string overload — without this
  /// the `const char*` -> bool standard conversion outranks constructing a
  /// std::string, and field("k", "v") silently emits "k":true.
  JsonObject& field(const std::string& key, const char* value) {
    return field(key, std::string(value));
  }

  /// Add an integer field.
  JsonObject& field(const std::string& key, std::int64_t value);

  /// Add a boolean field.
  JsonObject& field(const std::string& key, bool value);

  /// Add a floating-point field (formatted with up to 6 significant digits;
  /// NaN/inf are emitted as null per strict JSON).
  JsonObject& field(const std::string& key, double value);

  /// Serialize as a single JSON object line (no trailing newline).
  std::string str() const;

 private:
  std::vector<std::string> parts_;
};

/// Escape a string for inclusion in JSON output (quotes not included).
std::string json_escape(const std::string& text);

/// %.17g rendering of a double: the single definition of the exact
/// round-trip rule used wherever a persisted double must survive a
/// save/parse cycle bit-identically (the judge's artifact-store codec
/// embeds latencies through this). Non-finite values render as "null".
std::string format_double_roundtrip(double value);

/// One parsed JSON scalar. The JSONL dialect this library writes (and the
/// artifact store persists) only ever puts scalars in object values, so the
/// reader models exactly that: strings, numbers, booleans, and null.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;

  bool is_string() const noexcept { return kind == Kind::kString; }
  bool is_number() const noexcept { return kind == Kind::kNumber; }
};

/// Parse one JSON object line (the complement of JsonObject::str). Returns
/// std::nullopt on any syntax error — a truncated tail line in a JSONL file
/// parses as "not an object" rather than throwing, which is what lets the
/// artifact store skip corrupt records and keep loading. Duplicate keys keep
/// the last value. Nested objects/arrays are rejected (the writer never
/// produces them).
std::optional<std::map<std::string, JsonValue>> parse_json_object_line(
    std::string_view line);

}  // namespace llm4vv::support
