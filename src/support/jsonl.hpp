#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace llm4vv::support {

/// Incremental builder for one JSON object, emitted as a single line
/// (JSON Lines). Experiment runners use it to persist per-file records:
/// every value is escaped, keys are emitted in insertion order, and the
/// output is valid standalone JSON.
class JsonObject {
 public:
  /// Add a string field.
  JsonObject& field(const std::string& key, const std::string& value);

  /// Add an integer field.
  JsonObject& field(const std::string& key, std::int64_t value);

  /// Add a boolean field.
  JsonObject& field(const std::string& key, bool value);

  /// Add a floating-point field (formatted with up to 6 significant digits;
  /// NaN/inf are emitted as null per strict JSON).
  JsonObject& field(const std::string& key, double value);

  /// Serialize as a single JSON object line (no trailing newline).
  std::string str() const;

 private:
  std::vector<std::string> parts_;
};

/// Escape a string for inclusion in JSON output (quotes not included).
std::string json_escape(const std::string& text);

}  // namespace llm4vv::support
