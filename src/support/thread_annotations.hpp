#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <utility>

/// Clang Thread Safety Analysis (TSA) macros plus annotated drop-in
/// wrappers for the standard synchronization primitives.
///
/// Why wrappers and not bare attributes on std::mutex members: TSA only
/// tracks *capability types* — a `guarded_by(mu)` annotation is rejected
/// (-Wthread-safety-attributes) unless `mu`'s type carries the
/// `capability` attribute, and libstdc++'s std::mutex / std::lock_guard /
/// std::unique_lock carry none. So the concurrency substrate declares its
/// locks as support::Mutex / support::SharedMutex and takes them through
/// support::MutexLock / support::UniqueLock / Reader-/WriterLock, which
/// are annotated capability and scoped-capability types forwarding
/// straight to the standard primitives (zero-overhead under -O: every
/// member is a one-line inline forward). Off Clang every macro expands to
/// nothing and the wrappers are plain std::mutex et al. in a coat.
///
/// Conventions (enforced by tools/lint_concurrency.sh and the CI
/// `-Wthread-safety -Werror=thread-safety` leg; see
/// docs/STATIC_ANALYSIS.md):
///  - every lock-protected member is declared GUARDED_BY(its mutex);
///  - helpers that expect the caller to hold a lock are _locked-suffixed
///    and annotated REQUIRES(mutex);
///  - condition-variable predicates that read guarded state are written
///    as explicit `while (!pred) cv.wait(lock);` loops in the locked
///    scope — TSA analyzes lambda bodies as separate functions with no
///    capability context, so a predicate lambda would warn spuriously;
///  - NO_THREAD_SAFETY_ANALYSIS is a last resort and must carry a comment
///    explaining why the analysis cannot see the invariant.
#if defined(__clang__) && defined(__has_attribute)
#define LLM4VV_THREAD_ANNOTATION_IMPL(x) __attribute__((x))
#else
#define LLM4VV_THREAD_ANNOTATION_IMPL(x)  // no-op off Clang
#endif

/// Type declares a capability (a lock).
#define CAPABILITY(x) LLM4VV_THREAD_ANNOTATION_IMPL(capability(x))
/// Type is an RAII object acquiring a capability for its lifetime.
#define SCOPED_CAPABILITY LLM4VV_THREAD_ANNOTATION_IMPL(scoped_lockable)
/// Member may only be read/written while holding the capability.
#define GUARDED_BY(x) LLM4VV_THREAD_ANNOTATION_IMPL(guarded_by(x))
/// Pointee (not the pointer) is protected by the capability.
#define PT_GUARDED_BY(x) LLM4VV_THREAD_ANNOTATION_IMPL(pt_guarded_by(x))
/// Function requires the capability held on entry (and does not release).
#define REQUIRES(...) \
  LLM4VV_THREAD_ANNOTATION_IMPL(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  LLM4VV_THREAD_ANNOTATION_IMPL(requires_shared_capability(__VA_ARGS__))
/// Function acquires the capability (held on exit, not on entry).
#define ACQUIRE(...) \
  LLM4VV_THREAD_ANNOTATION_IMPL(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  LLM4VV_THREAD_ANNOTATION_IMPL(acquire_shared_capability(__VA_ARGS__))
/// Function releases the capability (held on entry, not on exit).
#define RELEASE(...) \
  LLM4VV_THREAD_ANNOTATION_IMPL(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  LLM4VV_THREAD_ANNOTATION_IMPL(release_shared_capability(__VA_ARGS__))
/// Releases a capability held in either mode (scoped-lock destructors).
#define RELEASE_GENERIC(...) \
  LLM4VV_THREAD_ANNOTATION_IMPL(release_generic_capability(__VA_ARGS__))
/// Function tries to acquire; first argument is the success return value.
#define TRY_ACQUIRE(...) \
  LLM4VV_THREAD_ANNOTATION_IMPL(try_acquire_capability(__VA_ARGS__))
/// Function must NOT be called with the capability held (deadlock guard).
#define EXCLUDES(...) LLM4VV_THREAD_ANNOTATION_IMPL(locks_excluded(__VA_ARGS__))
/// Runtime assertion that the capability is held.
#define ASSERT_CAPABILITY(x) \
  LLM4VV_THREAD_ANNOTATION_IMPL(assert_capability(x))
/// Function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) LLM4VV_THREAD_ANNOTATION_IMPL(lock_returned(x))
/// Opt this function out of the analysis (comment why, always).
#define NO_THREAD_SAFETY_ANALYSIS \
  LLM4VV_THREAD_ANNOTATION_IMPL(no_thread_safety_analysis)

namespace llm4vv::support {

class CondVar;
class UniqueLock;

/// std::mutex with the TSA capability attribute. Lock it through
/// MutexLock / UniqueLock; the raw lock()/unlock() exist for completeness
/// and for code the analysis cannot express.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mutex_.lock(); }
  void unlock() RELEASE() { mutex_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class CondVar;
  friend class UniqueLock;
  std::mutex mutex_;
};

/// std::shared_mutex with the TSA capability attribute. Take it through
/// WriterLock (exclusive) or ReaderLock (shared).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() { mutex_.lock(); }
  void unlock() RELEASE() { mutex_.unlock(); }
  void lock_shared() ACQUIRE_SHARED() { mutex_.lock_shared(); }
  void unlock_shared() RELEASE_SHARED() { mutex_.unlock_shared(); }

 private:
  std::shared_mutex mutex_;
};

/// std::lock_guard equivalent: exclusive, held for the full scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// std::unique_lock equivalent: exclusive, re-lockable, and the handle
/// condition variables wait on. The destructor releases only if held
/// (std::unique_lock semantics; TSA tracks the scoped state through the
/// annotated lock()/unlock()).
class SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex) ACQUIRE(mutex) : lock_(mutex.mutex_) {}
  ~UniqueLock() RELEASE() = default;

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() ACQUIRE() { lock_.lock(); }
  void unlock() RELEASE() { lock_.unlock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Exclusive scope on a SharedMutex (std::unique_lock<std::shared_mutex>).
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mutex) ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~WriterLock() RELEASE() { mutex_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Shared scope on a SharedMutex (std::shared_lock). The destructor uses
/// the generic release form, which is how TSA spells "release whatever
/// mode this scope holds".
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mutex) ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();
  }
  ~ReaderLock() RELEASE_GENERIC() { mutex_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// std::condition_variable over support::Mutex / UniqueLock.
///
/// The predicate overloads are intentionally absent: a predicate lambda
/// reading GUARDED_BY members would be analyzed out of context and warn.
/// Write the loop out — `while (!pred) cv.wait(lock);` — in the locked
/// scope instead; predicates over atomics may of course keep any shape.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically release `lock`, sleep, and reacquire before returning —
  /// the capability is held on entry and on exit, which is exactly what
  /// the (empty) annotation set tells the analysis.
  void wait(UniqueLock& lock) { cv_.wait(lock.lock_); }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      UniqueLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(UniqueLock& lock,
                          const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.lock_, timeout);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace llm4vv::support
