#include "support/jsonl.hpp"

#include <cmath>
#include <cstdio>

namespace llm4vv::support {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

JsonObject& JsonObject::field(const std::string& key,
                              const std::string& value) {
  parts_.push_back("\"" + json_escape(key) + "\":\"" + json_escape(value) +
                   "\"");
  return *this;
}

JsonObject& JsonObject::field(const std::string& key, std::int64_t value) {
  parts_.push_back("\"" + json_escape(key) + "\":" + std::to_string(value));
  return *this;
}

JsonObject& JsonObject::field(const std::string& key, bool value) {
  parts_.push_back("\"" + json_escape(key) +
                   "\":" + (value ? "true" : "false"));
  return *this;
}

JsonObject& JsonObject::field(const std::string& key, double value) {
  if (!std::isfinite(value)) {
    parts_.push_back("\"" + json_escape(key) + "\":null");
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  parts_.push_back("\"" + json_escape(key) + "\":" + buf);
  return *this;
}

std::string JsonObject::str() const {
  std::string out = "{";
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (i) out.push_back(',');
    out += parts_[i];
  }
  out.push_back('}');
  return out;
}

}  // namespace llm4vv::support
