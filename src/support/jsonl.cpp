#include "support/jsonl.hpp"

#include "support/strings.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace llm4vv::support {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

JsonObject& JsonObject::field(const std::string& key,
                              const std::string& value) {
  parts_.push_back("\"" + json_escape(key) + "\":\"" + json_escape(value) +
                   "\"");
  return *this;
}

JsonObject& JsonObject::field(const std::string& key, std::int64_t value) {
  parts_.push_back("\"" + json_escape(key) + "\":" + std::to_string(value));
  return *this;
}

JsonObject& JsonObject::field(const std::string& key, bool value) {
  parts_.push_back("\"" + json_escape(key) +
                   "\":" + (value ? "true" : "false"));
  return *this;
}

JsonObject& JsonObject::field(const std::string& key, double value) {
  if (!std::isfinite(value)) {
    parts_.push_back("\"" + json_escape(key) + "\":null");
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  parts_.push_back("\"" + json_escape(key) + "\":" + buf);
  return *this;
}

std::string format_double_roundtrip(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string JsonObject::str() const {
  std::string out = "{";
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (i) out.push_back(',');
    out += parts_[i];
  }
  out.push_back('}');
  return out;
}

namespace {

/// Cursor over one line; all helpers return false on malformed input so the
/// caller can turn any defect into "skip this record".
struct Cursor {
  std::string_view text;
  std::size_t pos = 0;

  bool done() const noexcept { return pos >= text.size(); }
  char peek() const noexcept { return done() ? '\0' : text[pos]; }
  void skip_ws() noexcept {
    while (!done() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  }
  bool eat(char c) noexcept {
    skip_ws();
    if (peek() != c) return false;
    ++pos;
    return true;
  }
};

/// Parse a JSON string literal starting at the opening quote.
bool parse_string(Cursor& cur, std::string& out) {
  if (!cur.eat('"')) return false;
  out.clear();
  while (true) {
    if (cur.done()) return false;  // unterminated (truncated line)
    const char c = cur.text[cur.pos++];
    if (c == '"') return true;
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (cur.done()) return false;
    const char esc = cur.text[cur.pos++];
    switch (esc) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'u': {
        if (cur.pos + 4 > cur.text.size()) return false;
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          const int digit = hex_digit_value(cur.text[cur.pos++]);
          if (digit < 0) return false;
          code = code * 16 + static_cast<unsigned>(digit);
        }
        // The writer only emits \u for control characters; decode any BMP
        // codepoint to UTF-8 anyway so foreign files load too.
        if (code < 0x80) {
          out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out.push_back(static_cast<char>(0xC0 | (code >> 6)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out.push_back(static_cast<char>(0xE0 | (code >> 12)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
        break;
      }
      default: return false;
    }
  }
}

bool parse_value(Cursor& cur, JsonValue& out) {
  cur.skip_ws();
  const char c = cur.peek();
  if (c == '"') {
    out.kind = JsonValue::Kind::kString;
    return parse_string(cur, out.string);
  }
  if (c == 't') {
    if (cur.text.substr(cur.pos, 4) != "true") return false;
    cur.pos += 4;
    out.kind = JsonValue::Kind::kBool;
    out.boolean = true;
    return true;
  }
  if (c == 'f') {
    if (cur.text.substr(cur.pos, 5) != "false") return false;
    cur.pos += 5;
    out.kind = JsonValue::Kind::kBool;
    out.boolean = false;
    return true;
  }
  if (c == 'n') {
    if (cur.text.substr(cur.pos, 4) != "null") return false;
    cur.pos += 4;
    out.kind = JsonValue::Kind::kNull;
    return true;
  }
  if (c == '-' || (c >= '0' && c <= '9')) {
    const std::size_t start = cur.pos;
    while (!cur.done()) {
      const char d = cur.text[cur.pos];
      if ((d >= '0' && d <= '9') || d == '-' || d == '+' || d == '.' ||
          d == 'e' || d == 'E') {
        ++cur.pos;
      } else {
        break;
      }
    }
    // strtod needs NUL-terminated input; the token is short, copy it.
    const std::string token(cur.text.substr(start, cur.pos - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') return false;
    out.kind = JsonValue::Kind::kNumber;
    out.number = value;
    return true;
  }
  return false;
}

}  // namespace

std::optional<std::map<std::string, JsonValue>> parse_json_object_line(
    std::string_view line) {
  Cursor cur{line};
  if (!cur.eat('{')) return std::nullopt;
  std::map<std::string, JsonValue> object;
  cur.skip_ws();
  if (cur.peek() == '}') {
    ++cur.pos;
  } else {
    while (true) {
      std::string key;
      cur.skip_ws();
      if (!parse_string(cur, key)) return std::nullopt;
      if (!cur.eat(':')) return std::nullopt;
      JsonValue value;
      if (!parse_value(cur, value)) return std::nullopt;
      object[key] = std::move(value);
      if (cur.eat(',')) continue;
      if (cur.eat('}')) break;
      return std::nullopt;
    }
  }
  cur.skip_ws();
  if (!cur.done()) return std::nullopt;  // trailing garbage
  return object;
}

}  // namespace llm4vv::support
