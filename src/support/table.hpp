#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace llm4vv::support {

/// Column alignment for TextTable rendering.
enum class Align { kLeft, kRight };

/// Plain-text table renderer used by every bench binary to print the paper's
/// tables (Tables I-IX) side by side with measured values.
///
/// Usage:
///   TextTable t({"Issue", "Count", "Accuracy"});
///   t.add_row({"Removed bracket", "125", "12%"});
///   std::cout << t.render();
class TextTable {
 public:
  /// Create a table with the given header row.
  explicit TextTable(std::vector<std::string> header);

  /// Set per-column alignment (default: first column left, rest right).
  void set_alignments(std::vector<Align> alignments);

  /// Append a data row; must have the same number of cells as the header.
  void add_row(std::vector<std::string> row);

  /// Append a horizontal rule between row groups.
  void add_rule();

  /// Render with unicode-free ASCII box drawing.
  std::string render() const;

  /// Number of data rows added so far (rules excluded).
  std::size_t row_count() const noexcept;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule = false;
  };

  std::vector<std::string> header_;
  std::vector<Align> alignments_;
  std::vector<Row> rows_;
};

/// Render a one-line section banner, e.g. "== Table I: ... ==".
std::string banner(const std::string& title);

}  // namespace llm4vv::support
