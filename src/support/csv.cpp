#include "support/csv.hpp"

#include <stdexcept>

namespace llm4vv::support {

std::string csv_quote(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter::CsvWriter(std::vector<std::string> header)
    : width_(header.size()) {
  if (width_ == 0) throw std::invalid_argument("CsvWriter: empty header");
  rows_.push_back(std::move(header));
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  if (row.size() != width_) {
    throw std::invalid_argument("CsvWriter: row width mismatch");
  }
  rows_.push_back(row);
}

std::string CsvWriter::str() const {
  std::string out;
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out.push_back(',');
      out += csv_quote(row[c]);
    }
    out.push_back('\n');
  }
  return out;
}

std::vector<std::vector<std::string>> csv_parse(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_started = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_started = true;
        break;
      case ',':
        row.push_back(std::move(field));
        field.clear();
        row_started = true;
        break;
      case '\r':
        break;
      case '\n':
        if (row_started || !field.empty() || !row.empty()) {
          row.push_back(std::move(field));
          field.clear();
          rows.push_back(std::move(row));
          row.clear();
          row_started = false;
        }
        break;
      default:
        field.push_back(c);
        row_started = true;
        break;
    }
  }
  if (row_started || !field.empty() || !row.empty()) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace llm4vv::support
