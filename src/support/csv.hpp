#pragma once

#include <string>
#include <vector>

namespace llm4vv::support {

/// Minimal CSV writer with RFC-4180 quoting; experiment runners use it to
/// persist per-file records for offline inspection.
class CsvWriter {
 public:
  /// Start a document with the given header row.
  explicit CsvWriter(std::vector<std::string> header);

  /// Append a row (width-checked against the header).
  void add_row(const std::vector<std::string>& row);

  /// Serialize to a CSV string.
  std::string str() const;

  /// Number of data rows (header excluded).
  std::size_t row_count() const noexcept { return rows_.size() - 1; }

 private:
  std::size_t width_;
  std::vector<std::vector<std::string>> rows_;
};

/// Quote a single CSV field per RFC 4180 (quotes doubled; the field is
/// wrapped in quotes when it contains a comma, quote, or newline).
std::string csv_quote(const std::string& field);

/// Parse a CSV document produced by CsvWriter back into rows (used by tests
/// for a round-trip property).
std::vector<std::vector<std::string>> csv_parse(const std::string& text);

}  // namespace llm4vv::support
