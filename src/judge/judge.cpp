#include "judge/judge.hpp"

#include <stdexcept>
#include <string_view>

#include "support/rng.hpp"

namespace llm4vv::judge {

namespace {

/// Round up to the next power of two (minimum 1).
std::size_t pow2_at_least(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Mix one 64-bit word into a running hash (SplitMix64 finalizer step).
std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  std::uint64_t s = h;
  return support::splitmix64(s);
}

}  // namespace

Llmj::Llmj(std::shared_ptr<llm::ModelClient> client, llm::PromptStyle style,
           JudgeCacheConfig cache)
    : client_(std::move(client)), style_(style), cache_config_(cache) {
  if (client_ == nullptr) {
    throw std::invalid_argument("Llmj: client must not be null");
  }
  if (cache_config_.capacity == 0) cache_config_.enabled = false;
  if (cache_config_.enabled) {
    const std::size_t shard_count =
        pow2_at_least(cache_config_.shards == 0 ? 1 : cache_config_.shards);
    shard_mask_ = shard_count - 1;
    shard_capacity_ =
        (cache_config_.capacity + shard_count - 1) / shard_count;
    shards_.reserve(shard_count);
    for (std::size_t i = 0; i < shard_count; ++i) {
      shards_.push_back(std::make_unique<CacheShard>());
    }
  }
}

std::uint64_t Llmj::cache_key(std::uint64_t content_hash,
                              const frontend::SourceFile& file,
                              const toolchain::CompileResult* compile,
                              const toolchain::ExecutionRecord* exec,
                              std::uint64_t seed) const noexcept {
  // Everything the prompt and the deterministic model draw depend on:
  // file content + flavor select the prompt body and criteria block, the
  // compile/exec observables fill the agent tool-info block, and (style,
  // seed) select the protocol and the judgment draw.
  std::uint64_t h = content_hash;
  h = mix(h, static_cast<std::uint64_t>(file.flavor));
  h = mix(h, static_cast<std::uint64_t>(style_));
  h = mix(h, seed);
  if (compile != nullptr) {
    h = mix(h, 0xC0117117ULL);
    h = mix(h, static_cast<std::uint64_t>(compile->success));
    h = mix(h, static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(compile->return_code)));
    h = mix(h, support::fnv1a64(compile->stderr_text));
    h = mix(h, support::fnv1a64(compile->stdout_text));
  }
  if (exec != nullptr) {
    h = mix(h, 0xE8EC0DEULL);
    h = mix(h, static_cast<std::uint64_t>(exec->ran));
    h = mix(h, static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(exec->return_code)));
    h = mix(h, support::fnv1a64(exec->stderr_text));
    h = mix(h, support::fnv1a64(exec->stdout_text));
  }
  return h;
}

JudgeDecision Llmj::evaluate_uncached(const frontend::SourceFile& file,
                                      const toolchain::CompileResult* compile,
                                      const toolchain::ExecutionRecord* exec,
                                      std::uint64_t seed) const {
  JudgeDecision decision;
  decision.prompt = build_prompt(style_, file, compile, exec);

  llm::GenerationParams params;
  params.seed = seed;
  decision.completion = client_->complete(decision.prompt, params);
  decision.verdict = parse_verdict(decision.completion.text);
  decision.says_valid =
      verdict_says_valid(decision.verdict, /*fallback=*/false);
  return decision;
}

JudgeDecision Llmj::evaluate(const frontend::SourceFile& file,
                             const toolchain::CompileResult* compile,
                             const toolchain::ExecutionRecord* exec,
                             std::uint64_t seed) const {
  if (!cache_config_.enabled) {
    return evaluate_uncached(file, compile, exec, seed);
  }

  const std::uint64_t content_hash = support::fnv1a64(file.content);
  const std::uint64_t key = cache_key(content_hash, file, compile, exec, seed);
  CacheShard& shard = *shards_[key & shard_mask_];
  {
    std::lock_guard lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it != shard.entries.end() && it->second.content_hash == content_hash) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      JudgeDecision decision = it->second.decision;
      decision.cached = true;
      return decision;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);

  JudgeDecision decision = evaluate_uncached(file, compile, exec, seed);
  {
    std::lock_guard lock(shard.mutex);
    if (shard.entries.emplace(key, CacheEntry{content_hash, decision})
            .second) {
      shard.order.push_back(key);
      while (shard.entries.size() > shard_capacity_) {
        shard.entries.erase(shard.order.front());
        shard.order.pop_front();
        evictions_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  return decision;
}

JudgeCacheStats Llmj::cache_stats() const noexcept {
  JudgeCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  return stats;
}

void Llmj::clear_cache() const {
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    shard->entries.clear();
    shard->order.clear();
  }
}

}  // namespace llm4vv::judge
