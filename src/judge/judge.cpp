#include "judge/judge.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string_view>

#include "obs/registry.hpp"
#include "support/jsonl.hpp"
#include "support/rng.hpp"

namespace llm4vv::judge {

namespace {

constexpr const char* kStoreNamespace = "judge";

/// Round up to the next power of two (minimum 1).
std::size_t pow2_at_least(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

using support::hash_mix;

/// Parse a finished model call into the decision's verdict fields. Every
/// path — blocking, batched, asynchronous — goes through here, which is
/// what keeps their verdicts byte-for-byte identical by construction.
void finish_decision(JudgeDecision& decision, llm::Completion completion,
                     bool batched) {
  decision.completion = std::move(completion);
  decision.verdict = parse_verdict(decision.completion.text);
  decision.says_valid =
      verdict_says_valid(decision.verdict, /*fallback=*/false);
  decision.batched = batched;
}

// ---------------------------------------------------------------------------
// Artifact-store record codec. The persisted fields are exactly what a
// published cache entry holds, so a warm hit is byte-identical to the cold
// decision it snapshots — latency included (%.17g round-trips doubles
// exactly).
// ---------------------------------------------------------------------------

cache::ArtifactStore::Fields encode_decision(llm::PromptStyle style,
                                             const JudgeDecision& decision) {
  cache::ArtifactStore::Fields fields;
  fields["style"] = std::to_string(static_cast<int>(style));
  fields["verdict"] = std::to_string(static_cast<int>(decision.verdict));
  fields["says_valid"] = decision.says_valid ? "1" : "0";
  fields["prompt"] = decision.prompt;
  fields["text"] = decision.completion.text;
  fields["ptok"] = std::to_string(decision.completion.prompt_tokens);
  fields["ctok"] = std::to_string(decision.completion.completion_tokens);
  fields["latency"] = support::format_double_roundtrip(
      decision.completion.latency_seconds);
  return fields;
}

bool decode_decision(const cache::ArtifactStore::Fields& fields,
                     llm::PromptStyle style, JudgeDecision& out) {
  using cache::find_field;
  using cache::parse_int_field;
  const std::string* style_text = find_field(fields, "style");
  const std::string* verdict_text = find_field(fields, "verdict");
  const std::string* says_valid = find_field(fields, "says_valid");
  const std::string* prompt = find_field(fields, "prompt");
  const std::string* text = find_field(fields, "text");
  const std::string* ptok = find_field(fields, "ptok");
  const std::string* ctok = find_field(fields, "ctok");
  const std::string* latency = find_field(fields, "latency");
  if (style_text == nullptr || verdict_text == nullptr ||
      says_valid == nullptr || prompt == nullptr || text == nullptr ||
      ptok == nullptr || ctok == nullptr || latency == nullptr) {
    return false;
  }
  std::int64_t style_value = 0;
  std::int64_t verdict_value = 0;
  std::int64_t prompt_tokens = 0;
  std::int64_t completion_tokens = 0;
  if (!parse_int_field(*style_text, style_value) ||
      !parse_int_field(*verdict_text, verdict_value) ||
      !parse_int_field(*ptok, prompt_tokens) ||
      !parse_int_field(*ctok, completion_tokens)) {
    return false;
  }
  if (style_value != static_cast<std::int64_t>(style)) return false;
  if (verdict_value < 0 ||
      verdict_value > static_cast<std::int64_t>(Verdict::kUnparseable) ||
      prompt_tokens < 0 || completion_tokens < 0) {
    return false;
  }
  char* end = nullptr;
  const double latency_seconds = std::strtod(latency->c_str(), &end);
  if (end == latency->c_str() || *end != '\0') return false;

  out = JudgeDecision{};
  out.verdict = static_cast<Verdict>(verdict_value);
  out.says_valid = *says_valid == "1";
  out.prompt = *prompt;
  out.completion.text = *text;
  out.completion.prompt_tokens = static_cast<std::size_t>(prompt_tokens);
  out.completion.completion_tokens =
      static_cast<std::size_t>(completion_tokens);
  out.completion.latency_seconds = latency_seconds;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// JudgeFuture
// ---------------------------------------------------------------------------

/// Shared state behind a JudgeFuture. Resolution is idempotent and runs
/// under the state's own mutex; the kinds mirror the probe outcomes:
///  - kReady:    a cache hit, decision filled at submission time;
///  - kOwner:    this future owns the model submission (and, with the
///               cache enabled, the claimed in-flight key it must publish
///               or abandon);
///  - kFollower: an in-batch duplicate; copies its leader's decision;
///  - kPeerWait: a duplicate of work in flight on another caller; waits
///               for that owner's publication (taking the key over if it
///               was abandoned).
struct JudgeFuture::State {
  enum class Kind { kReady, kOwner, kFollower, kPeerWait };

  // A plain std::mutex, deliberately outside the thread-safety analysis:
  // most members are written unlocked during the submission phase (the
  // state is single-owner until the future is handed out) and only
  // `resolved`/`decision`/`error` transit the lock afterwards — a shape
  // GUARDED_BY cannot express without blanketing the constructor-side
  // writes in false positives. The atomic `resolved_flag` mirror keeps
  // ready() lock-free; TSan still checks every access.
  std::mutex mutex;
  bool resolved = false;
  /// Lock-free mirror of `resolved`, set after resolution completes, so
  /// ready() can answer without touching the mutex a concurrent resolve()
  /// holds across its blocking wait.
  std::atomic<bool> resolved_flag{false};
  JudgeDecision decision;
  std::exception_ptr error;

  Kind kind = Kind::kReady;
  const Llmj* judge = nullptr;
  std::uint64_t seed = 0;

  // kOwner / kPeerWait:
  std::uint64_t key = 0;
  std::uint64_t content_hash = 0;
  // kOwner:
  llm::CompletionFuture completion;
  bool publish_on_resolve = false;  ///< owns a claimed in-flight key
  bool batched = false;             ///< submitted via the batch API
  // kFollower:
  std::shared_ptr<State> leader;
  // kPeerWait (referents owned by the submitting caller):
  JudgeRequest request;

  ~State() {
    // A claimed key whose future was dropped unresolved must not strand
    // other callers waiting on it: abandon wakes them and lets the next
    // prober take ownership (a deterministic recompute, never a hang).
    if (!resolved && kind == Kind::kOwner && publish_on_resolve) {
      judge->abandon(key);
    }
  }

  /// Resolve once: fills `decision` or `error`.
  void resolve() {
    std::lock_guard lock(mutex);
    if (resolved) return;
    struct FlagGuard {
      State& state;
      ~FlagGuard() {
        if (state.resolved) {
          state.resolved_flag.store(true, std::memory_order_release);
        }
      }
    } flag_guard{*this};
    try {
      switch (kind) {
        case Kind::kReady:
          break;  // decision filled at submission time
        case Kind::kOwner: {
          llm::Completion value = completion.get();
          finish_decision(decision, std::move(value), batched);
          if (publish_on_resolve) {
            judge->publish(key, content_hash, decision);
            publish_on_resolve = false;
          }
          break;
        }
        case Kind::kFollower: {
          leader->resolve();
          std::lock_guard leader_lock(leader->mutex);
          if (leader->error != nullptr) {
            resolved = true;
            error = leader->error;
            return;
          }
          decision = leader->decision;
          decision.cached = true;
          decision.batched = false;  // a copy, not a submission
          judge->duplicate_misses_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        case Kind::kPeerWait:
          decision = judge->wait_for(key, content_hash, *request.file,
                                     request.compile, request.exec, seed);
          break;
      }
      resolved = true;
    } catch (...) {
      error = std::current_exception();
      resolved = true;
      if (kind == Kind::kOwner && publish_on_resolve) {
        judge->abandon(key);
        publish_on_resolve = false;
      }
    }
  }
};

bool JudgeFuture::ready() const {
  // Never touches state_->mutex: a concurrent get() holds it across its
  // blocking wait, and ready() must stay non-blocking. `kind` and the
  // submission-time fields are immutable once the future is handed out;
  // resolution is observed through the atomic mirror.
  if (state_ == nullptr) return false;
  if (state_->resolved_flag.load(std::memory_order_acquire)) return true;
  switch (state_->kind) {
    case State::Kind::kReady:
      return true;
    case State::Kind::kOwner:
      // get() still finalizes (parse + publish), but nothing blocks once
      // the underlying pass has flushed.
      return state_->completion.valid() && state_->completion.ready();
    case State::Kind::kFollower: {
      const State& leader = *state_->leader;
      return leader.resolved_flag.load(std::memory_order_acquire) ||
             (leader.completion.valid() && leader.completion.ready());
    }
    case State::Kind::kPeerWait:
      // True once the owning caller has published the key: get() then
      // copies the cached decision without waiting. (If the owner
      // abandons instead, this stays false and get() recomputes.)
      return state_->judge->published(state_->key, state_->content_hash);
  }
  return false;
}

bool JudgeFuture::waits_on_peer() const {
  return state_ != nullptr && state_->kind == State::Kind::kPeerWait;
}

JudgeDecision JudgeFuture::get() const {
  if (state_ == nullptr) {
    throw std::logic_error("JudgeFuture::get on an empty future");
  }
  state_->resolve();
  std::lock_guard lock(state_->mutex);
  if (state_->error != nullptr) std::rethrow_exception(state_->error);
  return state_->decision;
}

// ---------------------------------------------------------------------------
// Llmj
// ---------------------------------------------------------------------------

Llmj::Llmj(std::shared_ptr<llm::ModelClient> client, llm::PromptStyle style,
           JudgeCacheConfig cache)
    : client_(std::move(client)), style_(style), cache_config_(cache) {
  if (client_ == nullptr) {
    throw std::invalid_argument("Llmj: client must not be null");
  }
  if (cache_config_.capacity == 0) cache_config_.enabled = false;
  if (cache_config_.enabled) {
    const std::size_t shard_count =
        pow2_at_least(cache_config_.shards == 0 ? 1 : cache_config_.shards);
    shard_mask_ = shard_count - 1;
    shard_capacity_ =
        (cache_config_.capacity + shard_count - 1) / shard_count;
    shards_.reserve(shard_count);
    for (std::size_t i = 0; i < shard_count; ++i) {
      shards_.push_back(std::make_unique<CacheShard>());
    }
    if (cache_config_.store != nullptr) warm_load();
  }
}

void Llmj::warm_load() {
  // Constructor context: single-threaded, so the per-shard lock below is
  // uncontended — taken anyway to satisfy the GUARDED_BY discipline.
  cache_config_.store->for_each(
      kStoreNamespace,
      [this](std::uint64_t key, std::uint64_t content_hash,
             const cache::ArtifactStore::Fields& fields) {
        // Capacity check before the decode so an oversized store doesn't
        // pay decoding for entries this shard will discard anyway.
        CacheShard& shard = *shards_[key & shard_mask_];
        support::MutexLock lock(shard.mutex);
        if (shard.entries.size() >= shard_capacity_ ||
            shard.entries.count(key) != 0) {
          return;
        }
        JudgeDecision decision;
        // Records of other prompt styles (decode checks the style field)
        // and corrupt records degrade to a miss, never a wrong verdict.
        if (!decode_decision(fields, style_, decision)) return;
        shard.entries.emplace(
            key, CacheEntry{content_hash, std::move(decision), true});
        shard.order.push_back(key);
        ++warm_loaded_;
      });
}

std::uint64_t Llmj::cache_key(std::uint64_t content_hash,
                              const frontend::SourceFile& file,
                              const toolchain::CompileResult* compile,
                              const toolchain::ExecutionRecord* exec,
                              std::uint64_t seed) const noexcept {
  // Everything the prompt and the deterministic model draw depend on:
  // file content + flavor select the prompt body and criteria block, the
  // compile/exec observables fill the agent tool-info block, and (style,
  // seed) select the protocol and the judgment draw.
  std::uint64_t h = content_hash;
  h = hash_mix(h, static_cast<std::uint64_t>(file.flavor));
  h = hash_mix(h, static_cast<std::uint64_t>(style_));
  h = hash_mix(h, seed);
  if (compile != nullptr) {
    h = hash_mix(h, 0xC0117117ULL);
    h = hash_mix(h, static_cast<std::uint64_t>(compile->success));
    h = hash_mix(h, static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(compile->return_code)));
    h = hash_mix(h, support::fnv1a64(compile->stderr_text));
    h = hash_mix(h, support::fnv1a64(compile->stdout_text));
  }
  if (exec != nullptr) {
    h = hash_mix(h, 0xE8EC0DEULL);
    h = hash_mix(h, static_cast<std::uint64_t>(exec->ran));
    h = hash_mix(h, static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(exec->return_code)));
    h = hash_mix(h, support::fnv1a64(exec->stderr_text));
    h = hash_mix(h, support::fnv1a64(exec->stdout_text));
  }
  return h;
}

JudgeDecision Llmj::evaluate_uncached(const frontend::SourceFile& file,
                                      const toolchain::CompileResult* compile,
                                      const toolchain::ExecutionRecord* exec,
                                      std::uint64_t seed) const {
  JudgeDecision decision;
  decision.prompt = build_prompt(style_, file, compile, exec);

  llm::GenerationParams params;
  params.seed = seed;
  finish_decision(decision, client_->complete(decision.prompt, params),
                  /*batched=*/false);
  return decision;
}

Llmj::Probe Llmj::probe_or_claim(std::uint64_t key,
                                 std::uint64_t content_hash,
                                 JudgeDecision& out) const {
  CacheShard& shard = *shards_[key & shard_mask_];
  support::MutexLock lock(shard.mutex);
  const auto it = shard.entries.find(key);
  if (it != shard.entries.end() && it->second.content_hash == content_hash) {
    out = it->second.decision;
    out.cached = true;
    out.batched = false;  // a copy, not a submission
    out.persisted = it->second.persisted;
    if (it->second.persisted) {
      persisted_hits_.fetch_add(1, std::memory_order_relaxed);
    }
    return Probe::kHit;
  }
  if (shard.inflight.count(key) != 0) return Probe::kBusy;
  shard.inflight.insert(key);
  return Probe::kClaimed;
}

void Llmj::publish(std::uint64_t key, std::uint64_t content_hash,
                   const JudgeDecision& decision) const {
  CacheShard& shard = *shards_[key & shard_mask_];
  {
    support::MutexLock lock(shard.mutex);
    shard.inflight.erase(key);
    if (shard.entries.emplace(key, CacheEntry{content_hash, decision})
            .second) {
      shard.order.push_back(key);
      while (shard.entries.size() > shard_capacity_) {
        shard.entries.erase(shard.order.front());
        shard.order.pop_front();
        evictions_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  shard.done.notify_all();
}

bool Llmj::published(std::uint64_t key, std::uint64_t content_hash) const {
  CacheShard& shard = *shards_[key & shard_mask_];
  support::MutexLock lock(shard.mutex);
  const auto it = shard.entries.find(key);
  return it != shard.entries.end() && it->second.content_hash == content_hash;
}

void Llmj::abandon(std::uint64_t key) const {
  CacheShard& shard = *shards_[key & shard_mask_];
  {
    support::MutexLock lock(shard.mutex);
    shard.inflight.erase(key);
  }
  shard.done.notify_all();
}

JudgeDecision Llmj::wait_for(std::uint64_t key, std::uint64_t content_hash,
                             const frontend::SourceFile& file,
                             const toolchain::CompileResult* compile,
                             const toolchain::ExecutionRecord* exec,
                             std::uint64_t seed) const {
  CacheShard& shard = *shards_[key & shard_mask_];
  {
    support::UniqueLock lock(shard.mutex);
    while (!(shard.entries.count(key) != 0 ||
             shard.inflight.count(key) == 0)) {
      shard.done.wait(lock);
    }
    const auto it = shard.entries.find(key);
    if (it != shard.entries.end() &&
        it->second.content_hash == content_hash) {
      duplicate_misses_.fetch_add(1, std::memory_order_relaxed);
      JudgeDecision decision = it->second.decision;
      decision.cached = true;
      decision.batched = false;  // a copy, not a submission
      decision.persisted = it->second.persisted;
      return decision;
    }
    // The computing caller failed (or the entry belongs to a colliding
    // key): take over as the new owner of this key.
    shard.inflight.insert(key);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  JudgeDecision decision;
  try {
    decision = evaluate_uncached(file, compile, exec, seed);
    publish(key, content_hash, decision);
  } catch (...) {
    // abandon() after a part-way publish is a harmless no-op erase plus a
    // spare wakeup; what matters is that the key never stays in flight.
    abandon(key);
    throw;
  }
  return decision;
}

JudgeFuture Llmj::evaluate_async(const JudgeRequest& request,
                                 std::uint64_t seed) const {
  async_items_.fetch_add(1, std::memory_order_relaxed);
  auto state = std::make_shared<JudgeFuture::State>();
  state->judge = this;
  state->seed = seed;

  llm::GenerationParams params;
  params.seed = seed;

  if (!cache_config_.enabled) {
    state->kind = JudgeFuture::State::Kind::kOwner;
    state->decision.prompt =
        build_prompt(style_, *request.file, request.compile, request.exec);
    state->completion = client_->submit(state->decision.prompt, params);
    return JudgeFuture(std::move(state));
  }

  const std::uint64_t content_hash = support::fnv1a64(request.file->content);
  const std::uint64_t key =
      cache_key(content_hash, *request.file, request.compile, request.exec,
                seed);
  switch (probe_or_claim(key, content_hash, state->decision)) {
    case Probe::kHit:
      hits_.fetch_add(1, std::memory_order_relaxed);
      async_immediate_.fetch_add(1, std::memory_order_relaxed);
      state->kind = JudgeFuture::State::Kind::kReady;
      state->resolved = true;
      return JudgeFuture(std::move(state));
    case Probe::kBusy:
      state->kind = JudgeFuture::State::Kind::kPeerWait;
      state->key = key;
      state->content_hash = content_hash;
      state->request = request;
      return JudgeFuture(std::move(state));
    case Probe::kClaimed:
      break;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  state->kind = JudgeFuture::State::Kind::kOwner;
  state->key = key;
  state->content_hash = content_hash;
  state->publish_on_resolve = true;
  // From here on the state's destructor abandons the claim if this future
  // never resolves — a throw below (or a dropped future) can't strand
  // anyone waiting on the key.
  state->decision.prompt =
      build_prompt(style_, *request.file, request.compile, request.exec);
  state->completion = client_->submit(state->decision.prompt, params);
  return JudgeFuture(std::move(state));
}

std::vector<JudgeFuture> Llmj::evaluate_async_many(
    const std::vector<JudgeRequest>& batch, std::uint64_t seed) const {
  std::vector<JudgeFuture> futures;
  futures.reserve(batch.size());
  if (batch.empty()) return futures;
  async_items_.fetch_add(batch.size(), std::memory_order_relaxed);

  llm::GenerationParams params;
  params.seed = seed;

  std::vector<std::shared_ptr<JudgeFuture::State>> states;
  states.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    states.push_back(std::make_shared<JudgeFuture::State>());
    states.back()->judge = this;
    states.back()->seed = seed;
  }

  if (!cache_config_.enabled) {
    // Paper accounting: every item — duplicates included — is submitted,
    // as one batch-API group (the adaptive batcher decides the passes).
    std::vector<std::string> prompts;
    prompts.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      states[i]->kind = JudgeFuture::State::Kind::kOwner;
      states[i]->batched = true;
      states[i]->decision.prompt = build_prompt(
          style_, *batch[i].file, batch[i].compile, batch[i].exec);
      prompts.push_back(states[i]->decision.prompt);
    }
    auto completions = client_->submit_many(prompts, params);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      states[i]->completion = std::move(completions[i]);
      futures.push_back(JudgeFuture(std::move(states[i])));
    }
    return futures;
  }

  // Classify every item. Keys this batch claims are recorded in
  // `batch_leader` so a second copy of the same key becomes an in-batch
  // follower instead of deadlocking on its own in-flight marker. If
  // anything below throws, the states' destructors abandon every claimed
  // key, so other threads cannot wait on this batch forever.
  std::unordered_map<std::uint64_t, std::size_t> batch_leader;
  std::vector<std::size_t> miss_indices;
  miss_indices.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    JudgeFuture::State& state = *states[i];
    const std::uint64_t content_hash =
        support::fnv1a64(batch[i].file->content);
    const std::uint64_t key =
        cache_key(content_hash, *batch[i].file, batch[i].compile,
                  batch[i].exec, seed);
    const auto leader = batch_leader.find(key);
    if (leader != batch_leader.end()) {
      state.kind = JudgeFuture::State::Kind::kFollower;
      state.leader = states[leader->second];
      continue;
    }
    switch (probe_or_claim(key, content_hash, state.decision)) {
      case Probe::kHit:
        hits_.fetch_add(1, std::memory_order_relaxed);
        async_immediate_.fetch_add(1, std::memory_order_relaxed);
        state.kind = JudgeFuture::State::Kind::kReady;
        state.resolved = true;
        break;
      case Probe::kBusy:
        state.kind = JudgeFuture::State::Kind::kPeerWait;
        state.key = key;
        state.content_hash = content_hash;
        state.request = batch[i];
        break;
      case Probe::kClaimed:
        state.kind = JudgeFuture::State::Kind::kOwner;
        state.key = key;
        state.content_hash = content_hash;
        state.publish_on_resolve = true;
        state.batched = true;
        batch_leader.emplace(key, i);
        miss_indices.push_back(i);
        break;
    }
  }

  // Submit all genuine misses as one batch-API group: with a zero wait
  // window they flush as one forward pass (the PR 2 shape); with a
  // nonzero window the batcher may coalesce them with other callers'
  // misses into larger cross-worker passes.
  if (!miss_indices.empty()) {
    std::vector<std::string> prompts;
    prompts.reserve(miss_indices.size());
    for (const std::size_t index : miss_indices) {
      const JudgeRequest& request = batch[index];
      states[index]->decision.prompt = build_prompt(
          style_, *request.file, request.compile, request.exec);
      prompts.push_back(states[index]->decision.prompt);
    }
    auto completions = client_->submit_many(prompts, params);
    misses_.fetch_add(miss_indices.size(), std::memory_order_relaxed);
    for (std::size_t m = 0; m < miss_indices.size(); ++m) {
      states[miss_indices[m]]->completion = std::move(completions[m]);
    }
  }

  for (std::size_t i = 0; i < batch.size(); ++i) {
    futures.push_back(JudgeFuture(std::move(states[i])));
  }
  return futures;
}

JudgeDecision Llmj::evaluate(const frontend::SourceFile& file,
                             const toolchain::CompileResult* compile,
                             const toolchain::ExecutionRecord* exec,
                             std::uint64_t seed) const {
  return evaluate_async(JudgeRequest{&file, compile, exec}, seed).get();
}

std::vector<JudgeDecision> Llmj::evaluate_many(
    const std::vector<JudgeRequest>& batch, std::uint64_t seed) const {
  const auto futures = evaluate_async_many(batch, seed);
  std::vector<JudgeDecision> decisions(batch.size());
  // Drain discipline: resolve everything this batch owns first, then the
  // duplicates of other callers' in-flight work — two batches holding
  // duplicates of each other's claims publish before they wait, so they
  // can never deadlock.
  for (std::size_t i = 0; i < futures.size(); ++i) {
    if (!futures[i].waits_on_peer()) decisions[i] = futures[i].get();
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    if (futures[i].waits_on_peer()) decisions[i] = futures[i].get();
  }
  return decisions;
}

JudgeCacheStats Llmj::cache_stats() const noexcept {
  JudgeCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.duplicate_misses =
      duplicate_misses_.load(std::memory_order_relaxed);
  stats.persisted_hits = persisted_hits_.load(std::memory_order_relaxed);
  stats.warm_loaded = warm_loaded_;
  stats.async_items = async_items_.load(std::memory_order_relaxed);
  stats.async_immediate = async_immediate_.load(std::memory_order_relaxed);
  return stats;
}

void Llmj::register_metrics(obs::Registry& registry,
                            const std::string& prefix) const {
  const auto probe = [&registry, this, &prefix](const char* name,
                                                auto field) {
    registry.register_probe(prefix + "." + name, [this, field] {
      return static_cast<double>(field(cache_stats()));
    });
  };
  probe("hits", [](const JudgeCacheStats& s) { return s.hits; });
  probe("misses", [](const JudgeCacheStats& s) { return s.misses; });
  probe("evictions", [](const JudgeCacheStats& s) { return s.evictions; });
  probe("duplicate_misses",
        [](const JudgeCacheStats& s) { return s.duplicate_misses; });
  probe("persisted_hits",
        [](const JudgeCacheStats& s) { return s.persisted_hits; });
  probe("warm_loaded",
        [](const JudgeCacheStats& s) { return s.warm_loaded; });
  probe("async_items",
        [](const JudgeCacheStats& s) { return s.async_items; });
  probe("async_immediate",
        [](const JudgeCacheStats& s) { return s.async_immediate; });
}

void Llmj::clear_cache() {
  for (const auto& shard : shards_) {
    {
      support::MutexLock lock(shard->mutex);
      shard->entries.clear();
      shard->order.clear();
      // Reset in-flight markers too: a waiter parked on a key whose owner
      // publishes into the cleared map (or abandons) would otherwise race a
      // clear that happened between its probe and its wait. After the
      // reset, woken waiters find neither entry nor marker and simply
      // become owners themselves — a recompute, never a stranding. The
      // displaced owner's publish() re-inserts a correct (identical)
      // decision, which is harmless.
      shard->inflight.clear();
    }
    shard->done.notify_all();
  }
}

std::size_t Llmj::persist_cache() const {
  if (cache_config_.store == nullptr || !cache_config_.enabled) return 0;
  // Snapshot each shard under its lock, feed the store outside: evaluation
  // can keep publishing while the snapshot is written out.
  struct Snapshot {
    std::uint64_t key;
    std::uint64_t content_hash;
    JudgeDecision decision;
  };
  std::vector<Snapshot> snapshots;
  for (const auto& shard : shards_) {
    support::MutexLock lock(shard->mutex);
    for (const std::uint64_t key : shard->order) {
      const auto it = shard->entries.find(key);
      if (it == shard->entries.end()) continue;
      snapshots.push_back(
          Snapshot{key, it->second.content_hash, it->second.decision});
    }
  }
  for (const Snapshot& snapshot : snapshots) {
    cache_config_.store->put(kStoreNamespace, snapshot.key,
                             snapshot.content_hash,
                             encode_decision(style_, snapshot.decision));
  }
  return snapshots.size();
}

}  // namespace llm4vv::judge
