#include "judge/judge.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string_view>

#include "support/jsonl.hpp"
#include "support/rng.hpp"

namespace llm4vv::judge {

namespace {

constexpr const char* kStoreNamespace = "judge";

/// Round up to the next power of two (minimum 1).
std::size_t pow2_at_least(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

using support::hash_mix;

/// Parse a finished model call into the decision's verdict fields. Both
/// the sequential and the batched paths go through here, which is what
/// keeps their verdicts byte-for-byte identical by construction.
void finish_decision(JudgeDecision& decision, llm::Completion completion,
                     bool batched) {
  decision.completion = std::move(completion);
  decision.verdict = parse_verdict(decision.completion.text);
  decision.says_valid =
      verdict_says_valid(decision.verdict, /*fallback=*/false);
  decision.batched = batched;
}

// ---------------------------------------------------------------------------
// Artifact-store record codec. The persisted fields are exactly what a
// published cache entry holds, so a warm hit is byte-identical to the cold
// decision it snapshots — latency included (%.17g round-trips doubles
// exactly).
// ---------------------------------------------------------------------------

cache::ArtifactStore::Fields encode_decision(llm::PromptStyle style,
                                             const JudgeDecision& decision) {
  cache::ArtifactStore::Fields fields;
  fields["style"] = std::to_string(static_cast<int>(style));
  fields["verdict"] = std::to_string(static_cast<int>(decision.verdict));
  fields["says_valid"] = decision.says_valid ? "1" : "0";
  fields["prompt"] = decision.prompt;
  fields["text"] = decision.completion.text;
  fields["ptok"] = std::to_string(decision.completion.prompt_tokens);
  fields["ctok"] = std::to_string(decision.completion.completion_tokens);
  fields["latency"] = support::format_double_roundtrip(
      decision.completion.latency_seconds);
  return fields;
}

bool decode_decision(const cache::ArtifactStore::Fields& fields,
                     llm::PromptStyle style, JudgeDecision& out) {
  using cache::find_field;
  using cache::parse_int_field;
  const std::string* style_text = find_field(fields, "style");
  const std::string* verdict_text = find_field(fields, "verdict");
  const std::string* says_valid = find_field(fields, "says_valid");
  const std::string* prompt = find_field(fields, "prompt");
  const std::string* text = find_field(fields, "text");
  const std::string* ptok = find_field(fields, "ptok");
  const std::string* ctok = find_field(fields, "ctok");
  const std::string* latency = find_field(fields, "latency");
  if (style_text == nullptr || verdict_text == nullptr ||
      says_valid == nullptr || prompt == nullptr || text == nullptr ||
      ptok == nullptr || ctok == nullptr || latency == nullptr) {
    return false;
  }
  std::int64_t style_value = 0;
  std::int64_t verdict_value = 0;
  std::int64_t prompt_tokens = 0;
  std::int64_t completion_tokens = 0;
  if (!parse_int_field(*style_text, style_value) ||
      !parse_int_field(*verdict_text, verdict_value) ||
      !parse_int_field(*ptok, prompt_tokens) ||
      !parse_int_field(*ctok, completion_tokens)) {
    return false;
  }
  if (style_value != static_cast<std::int64_t>(style)) return false;
  if (verdict_value < 0 ||
      verdict_value > static_cast<std::int64_t>(Verdict::kUnparseable) ||
      prompt_tokens < 0 || completion_tokens < 0) {
    return false;
  }
  char* end = nullptr;
  const double latency_seconds = std::strtod(latency->c_str(), &end);
  if (end == latency->c_str() || *end != '\0') return false;

  out = JudgeDecision{};
  out.verdict = static_cast<Verdict>(verdict_value);
  out.says_valid = *says_valid == "1";
  out.prompt = *prompt;
  out.completion.text = *text;
  out.completion.prompt_tokens = static_cast<std::size_t>(prompt_tokens);
  out.completion.completion_tokens =
      static_cast<std::size_t>(completion_tokens);
  out.completion.latency_seconds = latency_seconds;
  return true;
}

}  // namespace

Llmj::Llmj(std::shared_ptr<llm::ModelClient> client, llm::PromptStyle style,
           JudgeCacheConfig cache)
    : client_(std::move(client)), style_(style), cache_config_(cache) {
  if (client_ == nullptr) {
    throw std::invalid_argument("Llmj: client must not be null");
  }
  if (cache_config_.capacity == 0) cache_config_.enabled = false;
  if (cache_config_.enabled) {
    const std::size_t shard_count =
        pow2_at_least(cache_config_.shards == 0 ? 1 : cache_config_.shards);
    shard_mask_ = shard_count - 1;
    shard_capacity_ =
        (cache_config_.capacity + shard_count - 1) / shard_count;
    shards_.reserve(shard_count);
    for (std::size_t i = 0; i < shard_count; ++i) {
      shards_.push_back(std::make_unique<CacheShard>());
    }
    if (cache_config_.store != nullptr) warm_load();
  }
}

void Llmj::warm_load() {
  // Constructor context: single-threaded, shards exist, no locks needed.
  cache_config_.store->for_each(
      kStoreNamespace,
      [this](std::uint64_t key, std::uint64_t content_hash,
             const cache::ArtifactStore::Fields& fields) {
        // Capacity check before the decode so an oversized store doesn't
        // pay decoding for entries this shard will discard anyway.
        CacheShard& shard = *shards_[key & shard_mask_];
        if (shard.entries.size() >= shard_capacity_ ||
            shard.entries.count(key) != 0) {
          return;
        }
        JudgeDecision decision;
        // Records of other prompt styles (decode checks the style field)
        // and corrupt records degrade to a miss, never a wrong verdict.
        if (!decode_decision(fields, style_, decision)) return;
        shard.entries.emplace(
            key, CacheEntry{content_hash, std::move(decision), true});
        shard.order.push_back(key);
        ++warm_loaded_;
      });
}

std::uint64_t Llmj::cache_key(std::uint64_t content_hash,
                              const frontend::SourceFile& file,
                              const toolchain::CompileResult* compile,
                              const toolchain::ExecutionRecord* exec,
                              std::uint64_t seed) const noexcept {
  // Everything the prompt and the deterministic model draw depend on:
  // file content + flavor select the prompt body and criteria block, the
  // compile/exec observables fill the agent tool-info block, and (style,
  // seed) select the protocol and the judgment draw.
  std::uint64_t h = content_hash;
  h = hash_mix(h, static_cast<std::uint64_t>(file.flavor));
  h = hash_mix(h, static_cast<std::uint64_t>(style_));
  h = hash_mix(h, seed);
  if (compile != nullptr) {
    h = hash_mix(h, 0xC0117117ULL);
    h = hash_mix(h, static_cast<std::uint64_t>(compile->success));
    h = hash_mix(h, static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(compile->return_code)));
    h = hash_mix(h, support::fnv1a64(compile->stderr_text));
    h = hash_mix(h, support::fnv1a64(compile->stdout_text));
  }
  if (exec != nullptr) {
    h = hash_mix(h, 0xE8EC0DEULL);
    h = hash_mix(h, static_cast<std::uint64_t>(exec->ran));
    h = hash_mix(h, static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(exec->return_code)));
    h = hash_mix(h, support::fnv1a64(exec->stderr_text));
    h = hash_mix(h, support::fnv1a64(exec->stdout_text));
  }
  return h;
}

JudgeDecision Llmj::evaluate_uncached(const frontend::SourceFile& file,
                                      const toolchain::CompileResult* compile,
                                      const toolchain::ExecutionRecord* exec,
                                      std::uint64_t seed) const {
  JudgeDecision decision;
  decision.prompt = build_prompt(style_, file, compile, exec);

  llm::GenerationParams params;
  params.seed = seed;
  finish_decision(decision, client_->complete(decision.prompt, params),
                  /*batched=*/false);
  return decision;
}

Llmj::Probe Llmj::probe_or_claim(std::uint64_t key,
                                 std::uint64_t content_hash,
                                 JudgeDecision& out) const {
  CacheShard& shard = *shards_[key & shard_mask_];
  std::lock_guard lock(shard.mutex);
  const auto it = shard.entries.find(key);
  if (it != shard.entries.end() && it->second.content_hash == content_hash) {
    out = it->second.decision;
    out.cached = true;
    out.batched = false;  // a copy, not a submission
    out.persisted = it->second.persisted;
    if (it->second.persisted) {
      persisted_hits_.fetch_add(1, std::memory_order_relaxed);
    }
    return Probe::kHit;
  }
  if (shard.inflight.count(key) != 0) return Probe::kBusy;
  shard.inflight.insert(key);
  return Probe::kClaimed;
}

void Llmj::publish(std::uint64_t key, std::uint64_t content_hash,
                   const JudgeDecision& decision) const {
  CacheShard& shard = *shards_[key & shard_mask_];
  {
    std::lock_guard lock(shard.mutex);
    shard.inflight.erase(key);
    if (shard.entries.emplace(key, CacheEntry{content_hash, decision})
            .second) {
      shard.order.push_back(key);
      while (shard.entries.size() > shard_capacity_) {
        shard.entries.erase(shard.order.front());
        shard.order.pop_front();
        evictions_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  shard.done.notify_all();
}

void Llmj::abandon(std::uint64_t key) const {
  CacheShard& shard = *shards_[key & shard_mask_];
  {
    std::lock_guard lock(shard.mutex);
    shard.inflight.erase(key);
  }
  shard.done.notify_all();
}

JudgeDecision Llmj::wait_for(std::uint64_t key, std::uint64_t content_hash,
                             const frontend::SourceFile& file,
                             const toolchain::CompileResult* compile,
                             const toolchain::ExecutionRecord* exec,
                             std::uint64_t seed) const {
  CacheShard& shard = *shards_[key & shard_mask_];
  {
    std::unique_lock lock(shard.mutex);
    shard.done.wait(lock, [&shard, key] {
      return shard.entries.count(key) != 0 ||
             shard.inflight.count(key) == 0;
    });
    const auto it = shard.entries.find(key);
    if (it != shard.entries.end() &&
        it->second.content_hash == content_hash) {
      duplicate_misses_.fetch_add(1, std::memory_order_relaxed);
      JudgeDecision decision = it->second.decision;
      decision.cached = true;
      decision.batched = false;  // a copy, not a submission
      decision.persisted = it->second.persisted;
      return decision;
    }
    // The computing caller failed (or the entry belongs to a colliding
    // key): take over as the new owner of this key.
    shard.inflight.insert(key);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  JudgeDecision decision;
  try {
    decision = evaluate_uncached(file, compile, exec, seed);
    publish(key, content_hash, decision);
  } catch (...) {
    // abandon() after a part-way publish is a harmless no-op erase plus a
    // spare wakeup; what matters is that the key never stays in flight.
    abandon(key);
    throw;
  }
  return decision;
}

JudgeDecision Llmj::evaluate(const frontend::SourceFile& file,
                             const toolchain::CompileResult* compile,
                             const toolchain::ExecutionRecord* exec,
                             std::uint64_t seed) const {
  if (!cache_config_.enabled) {
    return evaluate_uncached(file, compile, exec, seed);
  }

  const std::uint64_t content_hash = support::fnv1a64(file.content);
  const std::uint64_t key = cache_key(content_hash, file, compile, exec, seed);
  JudgeDecision decision;
  switch (probe_or_claim(key, content_hash, decision)) {
    case Probe::kHit:
      hits_.fetch_add(1, std::memory_order_relaxed);
      return decision;
    case Probe::kBusy:
      // Another worker is judging this exact key right now; wait for its
      // result instead of paying a duplicate simulated GPU call.
      return wait_for(key, content_hash, file, compile, exec, seed);
    case Probe::kClaimed:
      break;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);

  try {
    decision = evaluate_uncached(file, compile, exec, seed);
    publish(key, content_hash, decision);
  } catch (...) {
    abandon(key);
    throw;
  }
  return decision;
}

std::vector<JudgeDecision> Llmj::evaluate_many(
    const std::vector<JudgeRequest>& batch, std::uint64_t seed) const {
  std::vector<JudgeDecision> decisions(batch.size());
  if (batch.empty()) return decisions;

  llm::GenerationParams params;
  params.seed = seed;

  if (!cache_config_.enabled) {
    // Paper accounting: every item — duplicates included — is submitted,
    // as one batched pass.
    std::vector<std::string> prompts;
    prompts.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      decisions[i].prompt =
          build_prompt(style_, *batch[i].file, batch[i].compile,
                       batch[i].exec);
      prompts.push_back(decisions[i].prompt);
    }
    auto completions = client_->complete_many(prompts, params);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      finish_decision(decisions[i], std::move(completions[i]),
                      /*batched=*/true);
    }
    return decisions;
  }

  /// An item that missed the cache: either claimed by this batch (a miss
  /// to submit) or in flight on another thread (a waiter).
  struct Pending {
    std::size_t index;
    std::uint64_t key;
    std::uint64_t content_hash;
  };
  std::vector<Pending> misses;
  std::vector<Pending> waiters;
  std::vector<std::pair<std::size_t, std::size_t>> followers;  // idx, leader
  // Reserve up front so recording a freshly claimed key cannot itself
  // throw and lose the claim before the guard below can see it.
  misses.reserve(batch.size());
  waiters.reserve(batch.size());
  followers.reserve(batch.size());

  // Everything between the first claim and the last publish runs under
  // this guard: if classification, prompt assembly, submission, or
  // publication throws, every key this batch still holds in flight is
  // abandoned so other threads cannot wait on it forever (abandoning an
  // already-published key is a harmless no-op erase).
  try {
    // Pass 1: classify every item. Keys this batch claims are recorded in
    // `batch_leader` so a second copy of the same key becomes an in-batch
    // follower instead of deadlocking on its own in-flight marker.
    std::unordered_map<std::uint64_t, std::size_t> batch_leader;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const std::uint64_t content_hash =
          support::fnv1a64(batch[i].file->content);
      const std::uint64_t key =
          cache_key(content_hash, *batch[i].file, batch[i].compile,
                    batch[i].exec, seed);
      const auto leader = batch_leader.find(key);
      if (leader != batch_leader.end()) {
        followers.emplace_back(i, leader->second);
        continue;
      }
      switch (probe_or_claim(key, content_hash, decisions[i])) {
        case Probe::kHit:
          hits_.fetch_add(1, std::memory_order_relaxed);
          break;
        case Probe::kBusy:
          waiters.push_back(Pending{i, key, content_hash});
          break;
        case Probe::kClaimed:
          misses.push_back(Pending{i, key, content_hash});
          batch_leader.emplace(key, i);
          break;
      }
    }

    // Pass 2: submit all genuine misses as one batched forward pass.
    if (!misses.empty()) {
      std::vector<std::string> prompts;
      prompts.reserve(misses.size());
      for (const Pending& miss : misses) {
        const JudgeRequest& request = batch[miss.index];
        decisions[miss.index].prompt = build_prompt(
            style_, *request.file, request.compile, request.exec);
        prompts.push_back(decisions[miss.index].prompt);
      }
      auto completions = client_->complete_many(prompts, params);
      misses_.fetch_add(misses.size(), std::memory_order_relaxed);
      for (std::size_t m = 0; m < misses.size(); ++m) {
        JudgeDecision& decision = decisions[misses[m].index];
        finish_decision(decision, std::move(completions[m]),
                        /*batched=*/true);
        publish(misses[m].key, misses[m].content_hash, decision);
      }
    }
  } catch (...) {
    for (const Pending& miss : misses) abandon(miss.key);
    throw;
  }

  // Pass 3: in-batch followers copy their leader's freshly computed
  // decision (no extra model call — a deduplicated miss).
  for (const auto& [index, leader] : followers) {
    duplicate_misses_.fetch_add(1, std::memory_order_relaxed);
    decisions[index] = decisions[leader];
    decisions[index].cached = true;
    decisions[index].batched = false;
  }

  // Pass 4: wait for keys other threads were computing. This runs after
  // our own misses were published, so two batches waiting on each other
  // cannot cycle.
  for (const Pending& waiter : waiters) {
    const JudgeRequest& request = batch[waiter.index];
    decisions[waiter.index] =
        wait_for(waiter.key, waiter.content_hash, *request.file,
                 request.compile, request.exec, seed);
  }
  return decisions;
}

JudgeCacheStats Llmj::cache_stats() const noexcept {
  JudgeCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.duplicate_misses =
      duplicate_misses_.load(std::memory_order_relaxed);
  stats.persisted_hits = persisted_hits_.load(std::memory_order_relaxed);
  stats.warm_loaded = warm_loaded_;
  return stats;
}

void Llmj::clear_cache() {
  for (const auto& shard : shards_) {
    {
      std::lock_guard lock(shard->mutex);
      shard->entries.clear();
      shard->order.clear();
      // Reset in-flight markers too: a waiter parked on a key whose owner
      // publishes into the cleared map (or abandons) would otherwise race a
      // clear that happened between its probe and its wait. After the
      // reset, woken waiters find neither entry nor marker and simply
      // become owners themselves — a recompute, never a stranding. The
      // displaced owner's publish() re-inserts a correct (identical)
      // decision, which is harmless.
      shard->inflight.clear();
    }
    shard->done.notify_all();
  }
}

std::size_t Llmj::persist_cache() const {
  if (cache_config_.store == nullptr || !cache_config_.enabled) return 0;
  // Snapshot each shard under its lock, feed the store outside: evaluation
  // can keep publishing while the snapshot is written out.
  struct Snapshot {
    std::uint64_t key;
    std::uint64_t content_hash;
    JudgeDecision decision;
  };
  std::vector<Snapshot> snapshots;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    for (const std::uint64_t key : shard->order) {
      const auto it = shard->entries.find(key);
      if (it == shard->entries.end()) continue;
      snapshots.push_back(
          Snapshot{key, it->second.content_hash, it->second.decision});
    }
  }
  for (const Snapshot& snapshot : snapshots) {
    cache_config_.store->put(kStoreNamespace, snapshot.key,
                             snapshot.content_hash,
                             encode_decision(style_, snapshot.decision));
  }
  return snapshots.size();
}

}  // namespace llm4vv::judge
