#include "judge/judge.hpp"

#include <stdexcept>

namespace llm4vv::judge {

Llmj::Llmj(std::shared_ptr<llm::ModelClient> client, llm::PromptStyle style)
    : client_(std::move(client)), style_(style) {
  if (client_ == nullptr) {
    throw std::invalid_argument("Llmj: client must not be null");
  }
}

JudgeDecision Llmj::evaluate(const frontend::SourceFile& file,
                             const toolchain::CompileResult* compile,
                             const toolchain::ExecutionRecord* exec,
                             std::uint64_t seed) const {
  JudgeDecision decision;
  decision.prompt = build_prompt(style_, file, compile, exec);

  llm::GenerationParams params;
  params.seed = seed;
  decision.completion = client_->complete(decision.prompt, params);
  decision.verdict = parse_verdict(decision.completion.text);
  decision.says_valid =
      verdict_says_valid(decision.verdict, /*fallback=*/false);
  return decision;
}

}  // namespace llm4vv::judge
