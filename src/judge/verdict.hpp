#pragma once

#include <string>

namespace llm4vv::judge {

/// Outcome of parsing a completion for the FINAL JUDGEMENT protocol.
enum class Verdict {
  kValid,        ///< "FINAL JUDGEMENT: valid" / ": correct"
  kInvalid,      ///< "FINAL JUDGEMENT: invalid" / ": incorrect"
  kUnparseable,  ///< the model broke the output protocol
};

const char* verdict_name(Verdict verdict) noexcept;

/// Robustly extract the verdict from a completion. Accepts both protocol
/// vocabularies (valid/invalid and correct/incorrect), is case-insensitive,
/// tolerates extra whitespace after the colon, and — because "invalid"
/// contains "valid" and "incorrect" contains "correct" — matches the
/// negative forms first. When several FINAL JUDGEMENT phrases appear, the
/// last one wins (models sometimes restate their verdict).
Verdict parse_verdict(const std::string& completion);

/// Treat a verdict as a boolean judgment, mapping protocol violations to
/// `fallback` (the harness counts an unparseable response as a failed
/// evaluation of the file, i.e. invalid).
bool verdict_says_valid(Verdict verdict, bool fallback = false) noexcept;

}  // namespace llm4vv::judge
