#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "judge/prompt.hpp"
#include "judge/verdict.hpp"
#include "llm/client.hpp"

namespace llm4vv::judge {

/// One judged file: prompt, completion, parsed verdict.
struct JudgeDecision {
  Verdict verdict = Verdict::kUnparseable;
  bool says_valid = false;      ///< verdict with the invalid fallback
  std::string prompt;
  llm::Completion completion;
  /// True when this decision was served from the memoization cache (no
  /// prompt assembly, no model call, no simulated GPU time spent).
  bool cached = false;
};

/// Configuration of the judge's decision memoization cache. Probed and
/// mutated suites frequently contain byte-identical files (a mutation that
/// does not apply leaves the file unchanged), and decisions are fully
/// deterministic in (file, outcomes, style, seed), so repeats can skip the
/// prompt assembly and the model call entirely.
struct JudgeCacheConfig {
  bool enabled = true;
  /// Maximum cached decisions across all shards; oldest-first eviction.
  /// Entries hold the full decision (prompt + completion text, so cached
  /// results are byte-identical to uncached ones), typically a few KB
  /// each — size the capacity with that footprint in mind.
  std::size_t capacity = 1024;
  /// Shard count (rounded up to a power of two, minimum 1). Sharding keeps
  /// concurrent judge workers from serializing on one cache mutex.
  std::size_t shards = 8;
};

/// Counters of the memoization cache (monotonic over the Llmj's lifetime).
struct JudgeCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

/// The LLM-as-a-Judge orchestrator. One instance per prompt style:
///  - kDirectAnalysis  -> the paper's Part One non-agent judge
///  - kAgentDirect     -> LLMJ 1
///  - kAgentIndirect   -> LLMJ 2
///
/// For agent styles the caller supplies the compile/execute records (the
/// "tools" of Figure 1); evaluate() assembles the prompt, queries the
/// model client, and parses the FINAL JUDGEMENT protocol. Thread-safe.
class Llmj {
 public:
  Llmj(std::shared_ptr<llm::ModelClient> client, llm::PromptStyle style,
       JudgeCacheConfig cache = {});

  /// Judge a file. Agent styles require non-null compile/exec records.
  JudgeDecision evaluate(const frontend::SourceFile& file,
                         const toolchain::CompileResult* compile = nullptr,
                         const toolchain::ExecutionRecord* exec = nullptr,
                         std::uint64_t seed = 0) const;

  llm::PromptStyle style() const noexcept { return style_; }
  const char* name() const noexcept {
    return llm::prompt_style_name(style_);
  }

  /// Snapshot of the memoization counters.
  JudgeCacheStats cache_stats() const noexcept;

  /// Drop all cached decisions (counters are kept).
  void clear_cache() const;

 private:
  /// One cached decision plus the file-content hash it was computed for.
  /// The content hash is re-checked on every hit: the map key is a 64-bit
  /// mix of all inputs, and this second independent hash turns an
  /// astronomically unlikely key collision into a detected miss instead of
  /// a silently wrong verdict.
  struct CacheEntry {
    std::uint64_t content_hash = 0;
    JudgeDecision decision;
  };

  /// One cache shard: its own lock, map, and FIFO eviction order.
  struct CacheShard {
    std::mutex mutex;
    std::unordered_map<std::uint64_t, CacheEntry> entries;
    std::deque<std::uint64_t> order;
  };

  std::uint64_t cache_key(std::uint64_t content_hash,
                          const frontend::SourceFile& file,
                          const toolchain::CompileResult* compile,
                          const toolchain::ExecutionRecord* exec,
                          std::uint64_t seed) const noexcept;

  JudgeDecision evaluate_uncached(const frontend::SourceFile& file,
                                  const toolchain::CompileResult* compile,
                                  const toolchain::ExecutionRecord* exec,
                                  std::uint64_t seed) const;

  std::shared_ptr<llm::ModelClient> client_;
  llm::PromptStyle style_;

  JudgeCacheConfig cache_config_;
  std::size_t shard_mask_ = 0;
  std::size_t shard_capacity_ = 0;
  mutable std::vector<std::unique_ptr<CacheShard>> shards_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace llm4vv::judge
