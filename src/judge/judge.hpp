#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/artifact_store.hpp"
#include "judge/prompt.hpp"
#include "judge/verdict.hpp"
#include "llm/client.hpp"
#include "support/thread_annotations.hpp"

namespace llm4vv::judge {

class Llmj;

/// One judged file: prompt, completion, parsed verdict.
struct JudgeDecision {
  Verdict verdict = Verdict::kUnparseable;
  bool says_valid = false;      ///< verdict with the invalid fallback
  std::string prompt;
  llm::Completion completion;
  /// True when this decision was served from the memoization cache (no
  /// prompt assembly, no model call, no simulated GPU time spent).
  bool cached = false;
  /// True when this decision's model call rode the batch submission API
  /// (an evaluate_many / evaluate_async_many miss). False for sequential
  /// calls and for copies served from the cache or in-flight dedup — the
  /// pipeline's chunk accounting counts exactly the batched submissions.
  bool batched = false;
  /// True when the serving cache entry was warm-loaded from a persistent
  /// artifact store: a previous process run paid for the model call.
  /// Implies `cached`.
  bool persisted = false;
};

/// Configuration of the judge's decision memoization cache. Probed and
/// mutated suites frequently contain byte-identical files (a mutation that
/// does not apply leaves the file unchanged), and decisions are fully
/// deterministic in (file, outcomes, style, seed), so repeats can skip the
/// prompt assembly and the model call entirely.
struct JudgeCacheConfig {
  bool enabled = true;
  /// Maximum cached decisions across all shards; oldest-first eviction.
  /// Entries hold the full decision (prompt + completion text, so cached
  /// results are byte-identical to uncached ones), typically a few KB
  /// each — size the capacity with that footprint in mind.
  std::size_t capacity = 1024;
  /// Shard count (rounded up to a power of two, minimum 1). Sharding keeps
  /// concurrent judge workers from serializing on one cache mutex.
  std::size_t shards = 8;
  /// Optional persistence. When set, the Llmj warm-loads every "judge"
  /// record of its own prompt style at construction (byte-identical
  /// decisions on warm hits, no model call, no simulated GPU time) and
  /// persist_cache() snapshots the sharded memo back into the store. The
  /// store's fingerprint (corpus/model/seed) gates staleness: a mismatch
  /// cold-starts the file, never serves a wrong verdict. Null (the
  /// default) keeps the cache process-local, exactly as before.
  std::shared_ptr<cache::ArtifactStore> store;
};

/// Counters of the memoization cache (monotonic over the Llmj's lifetime).
/// hits + misses + duplicate_misses equals the number of items served
/// while the cache was enabled.
struct JudgeCacheStats {
  std::uint64_t hits = 0;
  /// Items that actually assembled a prompt and queried the model.
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  /// Items that missed the cache but were served by piggybacking on a
  /// computation already in flight — a concurrent worker judging the same
  /// key, or an earlier copy of the key inside the same batch. Before
  /// in-flight dedup these were thundering-herd misses that each paid a
  /// full simulated GPU call.
  std::uint64_t duplicate_misses = 0;
  /// Subset of `hits` served by entries warm-loaded from the persistent
  /// artifact store: cross-run savings, as opposed to in-process ones.
  std::uint64_t persisted_hits = 0;
  /// Decisions decoded from the store at construction (warm start size).
  std::uint64_t warm_loaded = 0;
  /// Items that entered the asynchronous core (everything does: the
  /// blocking entry points are wrappers over evaluate_async[_many]).
  std::uint64_t async_items = 0;
  /// Subset of `async_items` whose future was already resolved when the
  /// submission returned — cache hits that never touched the batcher.
  std::uint64_t async_immediate = 0;
};

/// One item of a batched or asynchronous evaluation. Agent styles require
/// non-null compile/exec records, exactly like evaluate(). The referenced
/// file/compile/exec objects must stay alive until the matching decision
/// (or JudgeFuture) is resolved.
struct JudgeRequest {
  const frontend::SourceFile* file = nullptr;
  const toolchain::CompileResult* compile = nullptr;
  const toolchain::ExecutionRecord* exec = nullptr;
};

/// Handle on one asynchronously judged request.
///
/// Cache hits resolve at submission time; misses resolve when the model
/// client's adaptive batcher flushes them; duplicates of in-flight work
/// resolve when the owning caller publishes. get() finalizes the decision
/// (parsing the verdict and, for claimed misses, publishing into the memo
/// cache) and is idempotent.
///
/// Lifetime: the future must not outlive the Llmj that issued it (the
/// shared state points back into the judge's cache shards). Dropping an
/// unresolved future is safe and deterministic — a claimed key is
/// abandoned so no other caller can be left waiting on it forever, and the
/// underlying model submission fails cleanly if its client is destroyed.
class JudgeFuture {
 public:
  JudgeFuture() = default;

  bool valid() const noexcept { return state_ != nullptr; }
  /// True when get() will not block: the decision is resolved, the
  /// underlying model pass has flushed (get() then only finalizes), or —
  /// for a duplicate of another caller's in-flight work — that owner has
  /// published. Itself non-blocking, even against a concurrent get().
  bool ready() const;
  /// True when this future waits on a computation owned by another caller
  /// (a duplicate of in-flight work). Drain such futures AFTER every
  /// future you own — the blocking wrappers and the pipeline do — so two
  /// batches holding duplicates of each other's claimed keys resolve the
  /// owned work first instead of deadlocking.
  bool waits_on_peer() const;
  /// Block until resolved and return the decision. Rethrows whatever the
  /// underlying submission failed with. Idempotent and thread-safe.
  JudgeDecision get() const;

  struct State;

 private:
  friend class Llmj;
  explicit JudgeFuture(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

/// The LLM-as-a-Judge orchestrator. One instance per prompt style:
///  - kDirectAnalysis  -> the paper's Part One non-agent judge
///  - kAgentDirect     -> LLMJ 1
///  - kAgentIndirect   -> LLMJ 2
///
/// For agent styles the caller supplies the compile/execute records (the
/// "tools" of Figure 1); the judge assembles the prompt, queries the model
/// client, and parses the FINAL JUDGEMENT protocol. Thread-safe.
///
/// The asynchronous pair evaluate_async()/evaluate_async_many() is the
/// core; evaluate()/evaluate_many() are thin submit-and-wait wrappers kept
/// for convenience and backward compatibility (one code path, byte-
/// identical decisions).
class Llmj {
 public:
  Llmj(std::shared_ptr<llm::ModelClient> client, llm::PromptStyle style,
       JudgeCacheConfig cache = {});

  /// Judge a file (blocking wrapper over evaluate_async). Agent styles
  /// require non-null compile/exec records.
  JudgeDecision evaluate(const frontend::SourceFile& file,
                         const toolchain::CompileResult* compile = nullptr,
                         const toolchain::ExecutionRecord* exec = nullptr,
                         std::uint64_t seed = 0) const;

  /// Judge a batch of files in one submission (blocking wrapper over
  /// evaluate_async_many). Decisions come back in request order and are
  /// byte-for-byte what evaluate() would have produced per item (only the
  /// latency accounting differs, via the batched pass pricing). With the
  /// cache disabled every item is submitted — including duplicates —
  /// preserving the paper's one-request-per-file accounting.
  std::vector<JudgeDecision> evaluate_many(
      const std::vector<JudgeRequest>& batch, std::uint64_t seed = 0) const;

  /// Judge a file asynchronously. A cache hit resolves immediately; a miss
  /// is submitted to the model client's adaptive batcher (sequential
  /// accounting: a lone submission is priced exactly like the blocking
  /// call); a duplicate of in-flight work resolves when its owner
  /// publishes. The request's referents must outlive the future.
  JudgeFuture evaluate_async(const JudgeRequest& request,
                             std::uint64_t seed = 0) const;

  /// Judge a batch asynchronously. The batch is partitioned into cache
  /// hits (resolved immediately), in-batch duplicates (resolved from their
  /// leader), duplicates of in-flight work (resolved at publication), and
  /// genuine misses — which are handed to the client as one submit_many
  /// group, so the adaptive batcher can coalesce them with other callers'
  /// misses into shared forward passes. Futures come back in request
  /// order. Drain discipline: get() the non-waits_on_peer() futures first.
  std::vector<JudgeFuture> evaluate_async_many(
      const std::vector<JudgeRequest>& batch, std::uint64_t seed = 0) const;

  llm::PromptStyle style() const noexcept { return style_; }
  const char* name() const noexcept {
    return llm::prompt_style_name(style_);
  }

  /// The model client this judge submits through (for batcher telemetry:
  /// the pipeline snapshots its stats around a run).
  const llm::ModelClient& client() const noexcept { return *client_; }

  /// Snapshot of the memoization counters.
  JudgeCacheStats cache_stats() const noexcept;

  /// Re-register the memoization counters into a metrics registry as
  /// scrape-time probes under `prefix` ("<prefix>.hits", ...). Probes read
  /// cache_stats(), so registry values equal the legacy snapshot fields by
  /// construction. The judge must outlive the registration.
  void register_metrics(obs::Registry& registry,
                        const std::string& prefix) const;

  /// Drop all cached decisions (counters are kept). Also resets the
  /// in-flight dedup sets and wakes their waiters, so a clear issued during
  /// concurrent evaluation can never strand a thread waiting on a key whose
  /// computation it will no longer observe; a waiter woken this way simply
  /// recomputes. Non-const: this is a genuine mutation, not a logically-
  /// const read through the `mutable` shards.
  void clear_cache();

  /// Snapshot every cached decision into the configured artifact store
  /// (namespace "judge"). Does not write the file — call store->save() for
  /// durability, so one save can also cover a compile cache sharing the
  /// store. Safe to call while other threads evaluate. Returns the number
  /// of records written; 0 when no store is configured.
  std::size_t persist_cache() const;

 private:
  friend class JudgeFuture;
  friend struct JudgeFuture::State;

  /// One cached decision plus the file-content hash it was computed for.
  /// The content hash is re-checked on every hit: the map key is a 64-bit
  /// mix of all inputs, and this second independent hash turns an
  /// astronomically unlikely key collision into a detected miss instead of
  /// a silently wrong verdict.
  struct CacheEntry {
    std::uint64_t content_hash = 0;
    JudgeDecision decision;
    bool persisted = false;  ///< warm-loaded from the artifact store
  };

  /// One cache shard: its own lock, map, FIFO eviction order, and the set
  /// of keys currently being computed (in-flight dedup). `done` is
  /// signalled whenever an in-flight key is published or abandoned.
  struct CacheShard {
    support::Mutex mutex;
    support::CondVar done;
    std::unordered_map<std::uint64_t, CacheEntry> entries GUARDED_BY(mutex);
    std::deque<std::uint64_t> order GUARDED_BY(mutex);
    std::unordered_set<std::uint64_t> inflight GUARDED_BY(mutex);
  };

  /// Outcome of probing a key: served from the cache, claimed by this
  /// caller (it must compute and then publish/abandon), or busy because
  /// another caller is already computing it.
  enum class Probe { kHit, kClaimed, kBusy };

  std::uint64_t cache_key(std::uint64_t content_hash,
                          const frontend::SourceFile& file,
                          const toolchain::CompileResult* compile,
                          const toolchain::ExecutionRecord* exec,
                          std::uint64_t seed) const noexcept;

  Probe probe_or_claim(std::uint64_t key, std::uint64_t content_hash,
                       JudgeDecision& out) const;
  /// True when the key has a published cache entry (readiness probe for
  /// peer-wait futures; takes only the shard lock, never blocks).
  bool published(std::uint64_t key, std::uint64_t content_hash) const;
  void publish(std::uint64_t key, std::uint64_t content_hash,
               const JudgeDecision& decision) const;
  void abandon(std::uint64_t key) const;
  JudgeDecision wait_for(std::uint64_t key, std::uint64_t content_hash,
                         const frontend::SourceFile& file,
                         const toolchain::CompileResult* compile,
                         const toolchain::ExecutionRecord* exec,
                         std::uint64_t seed) const;

  JudgeDecision evaluate_uncached(const frontend::SourceFile& file,
                                  const toolchain::CompileResult* compile,
                                  const toolchain::ExecutionRecord* exec,
                                  std::uint64_t seed) const;

  /// Decode the store's "judge" records of this style into the shards.
  void warm_load();

  std::shared_ptr<llm::ModelClient> client_;
  llm::PromptStyle style_;

  JudgeCacheConfig cache_config_;
  std::size_t shard_mask_ = 0;
  std::size_t shard_capacity_ = 0;
  mutable std::vector<std::unique_ptr<CacheShard>> shards_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> evictions_{0};
  mutable std::atomic<std::uint64_t> duplicate_misses_{0};
  mutable std::atomic<std::uint64_t> persisted_hits_{0};
  mutable std::atomic<std::uint64_t> async_items_{0};
  mutable std::atomic<std::uint64_t> async_immediate_{0};
  std::uint64_t warm_loaded_ = 0;  ///< set once in the constructor
};

}  // namespace llm4vv::judge
