#pragma once

#include <memory>

#include "judge/prompt.hpp"
#include "judge/verdict.hpp"
#include "llm/client.hpp"

namespace llm4vv::judge {

/// One judged file: prompt, completion, parsed verdict.
struct JudgeDecision {
  Verdict verdict = Verdict::kUnparseable;
  bool says_valid = false;      ///< verdict with the invalid fallback
  std::string prompt;
  llm::Completion completion;
};

/// The LLM-as-a-Judge orchestrator. One instance per prompt style:
///  - kDirectAnalysis  -> the paper's Part One non-agent judge
///  - kAgentDirect     -> LLMJ 1
///  - kAgentIndirect   -> LLMJ 2
///
/// For agent styles the caller supplies the compile/execute records (the
/// "tools" of Figure 1); evaluate() assembles the prompt, queries the
/// model client, and parses the FINAL JUDGEMENT protocol. Thread-safe.
class Llmj {
 public:
  Llmj(std::shared_ptr<llm::ModelClient> client, llm::PromptStyle style);

  /// Judge a file. Agent styles require non-null compile/exec records.
  JudgeDecision evaluate(const frontend::SourceFile& file,
                         const toolchain::CompileResult* compile = nullptr,
                         const toolchain::ExecutionRecord* exec = nullptr,
                         std::uint64_t seed = 0) const;

  llm::PromptStyle style() const noexcept { return style_; }
  const char* name() const noexcept {
    return llm::prompt_style_name(style_);
  }

 private:
  std::shared_ptr<llm::ModelClient> client_;
  llm::PromptStyle style_;
};

}  // namespace llm4vv::judge
