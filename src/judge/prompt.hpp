#pragma once

#include <string>

#include "frontend/source.hpp"
#include "llm/model.hpp"
#include "toolchain/compiler.hpp"
#include "toolchain/executor.hpp"

namespace llm4vv::judge {

/// The paper's evaluation criteria block (Listing 1), instantiated for a
/// flavor.
std::string criteria_block(frontend::Flavor flavor);

/// Part One's direct-analysis prompt (Listing 3): criteria + code, with the
/// `FINAL JUDGEMENT: correct/incorrect` protocol.
std::string direct_analysis_prompt(const frontend::SourceFile& file);

/// The agent-based direct prompt (Listing 2): criteria + judgement protocol
/// (`valid`/`invalid`) + compiler and program outputs + code.
std::string agent_direct_prompt(const frontend::SourceFile& file,
                                const toolchain::CompileResult& compile,
                                const toolchain::ExecutionRecord& exec);

/// The agent-based indirect prompt (Listing 4): describe-then-judge.
std::string agent_indirect_prompt(const frontend::SourceFile& file,
                                  const toolchain::CompileResult& compile,
                                  const toolchain::ExecutionRecord& exec);

/// Prompt for a style (dispatches to the three builders above).
std::string build_prompt(llm::PromptStyle style,
                         const frontend::SourceFile& file,
                         const toolchain::CompileResult* compile,
                         const toolchain::ExecutionRecord* exec);

}  // namespace llm4vv::judge
