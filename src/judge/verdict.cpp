#include "judge/verdict.hpp"

#include "support/strings.hpp"

namespace llm4vv::judge {

const char* verdict_name(Verdict verdict) noexcept {
  switch (verdict) {
    case Verdict::kValid: return "valid";
    case Verdict::kInvalid: return "invalid";
    case Verdict::kUnparseable: return "unparseable";
  }
  return "?";
}

Verdict parse_verdict(const std::string& completion) {
  const std::string lower = support::to_lower(completion);
  const std::string marker = "final judgement:";

  // Find the last marker occurrence.
  std::size_t at = std::string::npos;
  std::size_t search = 0;
  for (;;) {
    const std::size_t hit = lower.find(marker, search);
    if (hit == std::string::npos) break;
    at = hit;
    search = hit + marker.size();
  }
  // Some models write the American spelling; `at` marks the phrase start
  // in either case and the colon is located from there.
  if (at == std::string::npos) {
    const std::string alt = "final judgment:";
    search = 0;
    for (;;) {
      const std::size_t hit = lower.find(alt, search);
      if (hit == std::string::npos) break;
      at = hit;
      search = hit + alt.size();
    }
  }
  if (at == std::string::npos) return Verdict::kUnparseable;

  std::size_t i = lower.find(':', at);
  if (i == std::string::npos) return Verdict::kUnparseable;
  ++i;
  while (i < lower.size() &&
         (lower[i] == ' ' || lower[i] == '\n' || lower[i] == '\t' ||
          lower[i] == '*' || lower[i] == '"')) {
    ++i;
  }
  const std::string tail = lower.substr(i, 12);
  // Negative forms first: "invalid" contains "valid".
  if (support::starts_with(tail, "invalid") ||
      support::starts_with(tail, "incorrect")) {
    return Verdict::kInvalid;
  }
  if (support::starts_with(tail, "valid") ||
      support::starts_with(tail, "correct")) {
    return Verdict::kValid;
  }
  return Verdict::kUnparseable;
}

bool verdict_says_valid(Verdict verdict, bool fallback) noexcept {
  switch (verdict) {
    case Verdict::kValid: return true;
    case Verdict::kInvalid: return false;
    case Verdict::kUnparseable: return fallback;
  }
  return fallback;
}

}  // namespace llm4vv::judge
