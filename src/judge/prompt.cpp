#include "judge/prompt.hpp"

#include <stdexcept>

namespace llm4vv::judge {

namespace {

using frontend::Flavor;

std::string tool_info_block(const toolchain::CompileResult& compile,
                            const toolchain::ExecutionRecord& exec,
                            Flavor flavor) {
  const char* flavor_name = frontend::flavor_name(flavor);
  std::string s;
  s += "Here is some information about the code to help you.\n";
  s += "When compiled with a compliant ";
  s += flavor_name;
  s += " compiler, the below code causes the following outputs:\n";
  s += "Compiler return code: " + std::to_string(compile.return_code) + "\n";
  s += "Compiler STDERR: " + (compile.stderr_text.empty()
                                  ? std::string("(empty)")
                                  : compile.stderr_text);
  if (!compile.stderr_text.empty() && compile.stderr_text.back() != '\n') {
    s += "\n";
  }
  if (s.back() != '\n') s += "\n";
  s += "Compiler STDOUT: " +
       (compile.stdout_text.empty() ? std::string("(empty)")
                                    : compile.stdout_text) +
       "\n";
  s += "When the compiled code is run, it gives the following results:\n";
  if (exec.ran) {
    s += "Return code: " + std::to_string(exec.return_code) + "\n";
    s += "STDERR: " + (exec.stderr_text.empty() ? std::string("(empty)")
                                                : exec.stderr_text);
    if (s.back() != '\n') s += "\n";
    s += "STDOUT: " + (exec.stdout_text.empty() ? std::string("(empty)")
                                                : exec.stdout_text);
    if (s.back() != '\n') s += "\n";
  } else {
    s += "Return code: -1\n";
    s += "STDERR: (the program could not be run because compilation "
         "failed)\n";
    s += "STDOUT: (empty)\n";
  }
  return s;
}

}  // namespace

std::string criteria_block(Flavor flavor) {
  const std::string f = frontend::flavor_name(flavor);
  std::string s;
  s += "Syntax: Ensure all " + f +
       " directives and pragmas are syntactically correct.\n";
  s += "Directive Appropriateness: Check if the right directives are used "
       "for the intended parallel computations.\n";
  s += "Clause Correctness: Verify that all clauses within the directives "
       "are correctly used according to " + f + " specifications.\n";
  s += "Memory Management: Assess the accuracy of data movement between "
       "CPU and GPU.\n";
  s += "Compliance: Ensure the code adheres to the latest " + f +
       " specifications and best practices.\n";
  s += "Logic: Verify that the logic of the test (e.g. performing the same "
       "computation in serial and parallel and comparing) is correct.\n";
  return s;
}

std::string direct_analysis_prompt(const frontend::SourceFile& file) {
  const std::string f = frontend::flavor_name(file.flavor);
  std::string s;
  s += "Review the following " + f +
       " code and evaluate it based on the following criteria:\n\n";
  s += criteria_block(file.flavor);
  s += "Based on these criteria, evaluate the code in a brief summary, "
       "then respond with precisely \"FINAL JUDGEMENT: correct\" (or "
       "incorrect).\n";
  s += "You MUST include the exact phrase \"FINAL JUDGEMENT: correct\" in "
       "your evaluation if you believe the code is correct. Otherwise, you "
       "must include the phrase \"FINAL JUDGEMENT: incorrect\" in your "
       "evaluation.\n";
  s += "Here is the code:\n";
  s += file.content;
  return s;
}

std::string agent_direct_prompt(const frontend::SourceFile& file,
                                const toolchain::CompileResult& compile,
                                const toolchain::ExecutionRecord& exec) {
  std::string s;
  s += criteria_block(file.flavor);
  s += "Based on these criteria, evaluate the code and determine if it is "
       "a valid or invalid test. Think step by step.\n";
  s += "You MUST include the exact phrase, \"FINAL JUDGEMENT: valid\" in "
       "your response if you deem the test to be valid.\n";
  s += "If you deem the test to be invalid, include the exact phrase "
       "\"FINAL JUDGEMENT: invalid\" in your response instead.\n";
  s += tool_info_block(compile, exec, file.flavor);
  s += "Here is the code:\n";
  s += file.content;
  return s;
}

std::string agent_indirect_prompt(const frontend::SourceFile& file,
                                  const toolchain::CompileResult& compile,
                                  const toolchain::ExecutionRecord& exec) {
  const std::string f = frontend::flavor_name(file.flavor);
  std::string s;
  s += "Describe what the below " + f +
       " program will do when run. Think step by step.\n";
  s += "Here is some information about the code to help you; you do not "
       "have to compile or run the code yourself.\n";
  s += tool_info_block(compile, exec, file.flavor);
  s += "Using this information, describe in full detail how the below code "
       "works, what the below code will do when run, and suggest why the "
       "below code might have been written this way.\n";
  s += "Then, based on that description, determine whether the described "
       "program would be a valid or invalid compiler test for " + f +
       " compilers.\n";
  s += "You MUST include the exact phrase \"FINAL JUDGEMENT: valid\" in "
       "your final response if you believe that your description of the "
       "below " + f + " code describes a valid compiler test; otherwise, "
       "your final response MUST include the exact phrase "
       "\"FINAL JUDGEMENT: invalid\".\n";
  s += "Here is the code for you to analyze:\n";
  s += file.content;
  return s;
}

std::string build_prompt(llm::PromptStyle style,
                         const frontend::SourceFile& file,
                         const toolchain::CompileResult* compile,
                         const toolchain::ExecutionRecord* exec) {
  switch (style) {
    case llm::PromptStyle::kDirectAnalysis:
      return direct_analysis_prompt(file);
    case llm::PromptStyle::kAgentDirect:
    case llm::PromptStyle::kAgentIndirect:
      if (compile == nullptr || exec == nullptr) {
        throw std::invalid_argument(
            "build_prompt: agent prompts need compile and exec records");
      }
      return style == llm::PromptStyle::kAgentDirect
                 ? agent_direct_prompt(file, *compile, *exec)
                 : agent_indirect_prompt(file, *compile, *exec);
  }
  throw std::invalid_argument("build_prompt: unknown style");
}

}  // namespace llm4vv::judge
