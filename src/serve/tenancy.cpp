#include "serve/tenancy.hpp"

#include "obs/registry.hpp"

namespace llm4vv::serve {

const char* shed_reason_name(ShedReason reason) noexcept {
  switch (reason) {
    case ShedReason::kRateLimit: return "rate_limit";
    case ShedReason::kQuota: return "quota";
    case ShedReason::kQueueFull: return "queue_full";
    case ShedReason::kDraining: return "draining";
  }
  return "?";
}

std::uint64_t TenantStats::latency_bucket_edge(std::size_t b) noexcept {
  static constexpr std::uint64_t kEdges[kLatencyBuckets] = {
      100, 1000, 10000, 100000, 1000000, UINT64_MAX};
  return kEdges[b < kLatencyBuckets ? b : kLatencyBuckets - 1];
}

const char* TenantStats::latency_bucket_label(std::size_t b) noexcept {
  static constexpr const char* kLabels[kLatencyBuckets] = {
      "lt_100us", "lt_1ms", "lt_10ms", "lt_100ms", "lt_1s", "ge_1s"};
  return kLabels[b < kLatencyBuckets ? b : kLatencyBuckets - 1];
}

namespace {

std::size_t latency_bucket(std::uint64_t latency_us) noexcept {
  for (std::size_t b = 0; b + 1 < TenantStats::kLatencyBuckets; ++b) {
    if (latency_us < TenantStats::latency_bucket_edge(b)) return b;
  }
  return TenantStats::kLatencyBuckets - 1;
}

void accumulate(TenantStats& into, const TenantStats& from) noexcept {
  into.submitted += from.submitted;
  into.accepted += from.accepted;
  into.shed_rate += from.shed_rate;
  into.shed_quota += from.shed_quota;
  into.shed_queue += from.shed_queue;
  into.shed_draining += from.shed_draining;
  into.completed_ok += from.completed_ok;
  into.completed_error += from.completed_error;
  into.in_flight += from.in_flight;
  for (std::size_t b = 0; b < TenantStats::kLatencyBuckets; ++b) {
    into.latency_hist[b] += from.latency_hist[b];
  }
}

}  // namespace

TenantTable::TenantTable(TenantConfig default_config)
    : default_config_(default_config) {}

TenantTable::~TenantTable() {
  std::shared_ptr<obs::Registry> registry;
  std::string prefix;
  {
    support::MutexLock lock(mutex_);
    registry = std::move(registry_);
    prefix = prefix_;
  }
  // Outside the table lock: scrapes hold registry-then-table, so the
  // teardown path must never hold table-then-registry.
  if (registry != nullptr) registry->unregister_prefix(prefix + ".");
}

TenantTable::Tenant& TenantTable::tenant_locked(const std::string& name,
                                                bool* created) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    it = tenants_.emplace(name, std::make_unique<Tenant>(default_config_))
             .first;
    if (it->second->config.weight == 0) it->second->config.weight = 1;
    if (created != nullptr) *created = true;
  }
  return *it->second;
}

void TenantTable::configure(const std::string& name, TenantConfig config) {
  if (config.weight == 0) config.weight = 1;
  bool created = false;
  {
    support::MutexLock lock(mutex_);
    Tenant& tenant = tenant_locked(name, &created);
    tenant.config = config;
    tenant.bucket = TokenBucket(config.rate_per_sec, config.burst);
  }
  if (created) register_tenant_probes(name);
}

void TenantTable::ensure(const std::string& name) {
  bool created = false;
  {
    support::MutexLock lock(mutex_);
    tenant_locked(name, &created);
  }
  if (created) register_tenant_probes(name);
}

Admission TenantTable::try_admit(const std::string& name,
                                 std::uint64_t now_us) {
  bool created = false;
  Admission admission;
  {
    support::MutexLock lock(mutex_);
    Tenant& tenant = tenant_locked(name, &created);
    tenant.stats.submitted += 1;
    if (tenant.config.max_in_flight > 0 &&
        tenant.stats.in_flight >= tenant.config.max_in_flight) {
      tenant.stats.shed_quota += 1;
      admission = Admission::kShedQuota;
    } else if (!tenant.bucket.try_take(now_us)) {
      tenant.stats.shed_rate += 1;
      admission = Admission::kShedRate;
    } else {
      tenant.stats.accepted += 1;
      tenant.stats.in_flight += 1;
      admission = Admission::kAdmit;
    }
  }
  if (created) register_tenant_probes(name);
  return admission;
}

void TenantTable::record_shed_draining(const std::string& name) {
  bool created = false;
  {
    support::MutexLock lock(mutex_);
    Tenant& tenant = tenant_locked(name, &created);
    tenant.stats.submitted += 1;
    tenant.stats.shed_draining += 1;
  }
  if (created) register_tenant_probes(name);
}

void TenantTable::record_post_admit_shed(const std::string& name,
                                         ShedReason reason) {
  support::MutexLock lock(mutex_);
  const auto it = tenants_.find(name);
  if (it == tenants_.end()) return;
  TenantStats& stats = it->second->stats;
  if (stats.accepted > 0) stats.accepted -= 1;
  if (stats.in_flight > 0) stats.in_flight -= 1;
  switch (reason) {
    case ShedReason::kRateLimit: stats.shed_rate += 1; break;
    case ShedReason::kQuota: stats.shed_quota += 1; break;
    case ShedReason::kQueueFull: stats.shed_queue += 1; break;
    case ShedReason::kDraining: stats.shed_draining += 1; break;
  }
}

void TenantTable::complete(const std::string& name, bool ok,
                           std::uint64_t latency_us) {
  support::MutexLock lock(mutex_);
  const auto it = tenants_.find(name);
  if (it == tenants_.end()) return;
  TenantStats& stats = it->second->stats;
  if (ok) {
    stats.completed_ok += 1;
  } else {
    stats.completed_error += 1;
  }
  if (stats.in_flight > 0) stats.in_flight -= 1;
  stats.latency_hist[latency_bucket(latency_us)] += 1;
}

std::uint32_t TenantTable::weight(const std::string& name) const {
  support::MutexLock lock(mutex_);
  const auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    return default_config_.weight == 0 ? 1 : default_config_.weight;
  }
  return it->second->config.weight;
}

TenantStats TenantTable::stats(const std::string& name) const {
  support::MutexLock lock(mutex_);
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? TenantStats{} : it->second->stats;
}

std::vector<std::pair<std::string, TenantStats>> TenantTable::all_stats()
    const {
  support::MutexLock lock(mutex_);
  std::vector<std::pair<std::string, TenantStats>> out;
  out.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) {
    out.emplace_back(name, tenant->stats);
  }
  return out;
}

TenantStats TenantTable::totals() const {
  support::MutexLock lock(mutex_);
  TenantStats total;
  for (const auto& [name, tenant] : tenants_) {
    accumulate(total, tenant->stats);
  }
  return total;
}

void TenantTable::register_metrics(std::shared_ptr<obs::Registry> registry,
                                   const std::string& prefix) {
  if (registry == nullptr) return;
  std::vector<std::string> existing;
  {
    support::MutexLock lock(mutex_);
    registry_ = registry;
    prefix_ = prefix;
    existing.reserve(tenants_.size());
    for (const auto& [name, tenant] : tenants_) existing.push_back(name);
  }
  // Aggregate probes over totals(); registered outside the table lock
  // (scrape order is registry -> table).
  const std::shared_ptr<obs::Registry>& reg = registry;
  const auto probe_total = [this](std::uint64_t TenantStats::*field) {
    return [this, field] {
      return static_cast<double>(totals().*field);
    };
  };
  reg->register_probe(prefix + ".submitted",
                      probe_total(&TenantStats::submitted));
  reg->register_probe(prefix + ".accepted",
                      probe_total(&TenantStats::accepted));
  reg->register_probe(prefix + ".in_flight",
                      probe_total(&TenantStats::in_flight));
  reg->register_probe(prefix + ".completed_ok",
                      probe_total(&TenantStats::completed_ok));
  reg->register_probe(prefix + ".completed_error",
                      probe_total(&TenantStats::completed_error));
  reg->register_probe(prefix + ".shed",
                      [this] { return static_cast<double>(totals().shed_total()); });
  reg->register_probe(prefix + ".tenants", [this] {
    support::MutexLock lock(mutex_);
    return static_cast<double>(tenants_.size());
  });
  for (const std::string& name : existing) register_tenant_probes(name);
}

void TenantTable::register_tenant_probes(const std::string& name) {
  std::shared_ptr<obs::Registry> registry;
  std::string base;
  {
    support::MutexLock lock(mutex_);
    if (registry_ == nullptr) return;
    registry = registry_;
    base = prefix_ + ".tenant." + name;
  }
  const auto probe = [this, name](std::uint64_t TenantStats::*field) {
    return [this, name, field] {
      return static_cast<double>(stats(name).*field);
    };
  };
  registry->register_probe(base + ".submitted",
                           probe(&TenantStats::submitted));
  registry->register_probe(base + ".accepted", probe(&TenantStats::accepted));
  registry->register_probe(base + ".in_flight",
                           probe(&TenantStats::in_flight));
  registry->register_probe(base + ".completed_ok",
                           probe(&TenantStats::completed_ok));
  registry->register_probe(base + ".completed_error",
                           probe(&TenantStats::completed_error));
  registry->register_probe(base + ".shed", [this, name] {
    return static_cast<double>(stats(name).shed_total());
  });
  for (std::size_t b = 0; b < TenantStats::kLatencyBuckets; ++b) {
    registry->register_probe(base + ".latency_us",
                             TenantStats::latency_bucket_label(b),
                             [this, name, b] {
                               return static_cast<double>(
                                   stats(name).latency_hist[b]);
                             });
  }
}

}  // namespace llm4vv::serve
