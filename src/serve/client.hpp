#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "frontend/source.hpp"
#include "serve/protocol.hpp"

/// serve::Client — a small blocking client for the llm4vv-serve protocol
/// (docs/SERVING.md). One TCP connection, line-delimited JSON both ways.
///
/// Threading: a Client is NOT internally synchronized. Single-threaded use
/// is always safe; so is the open-loop load-gen split — one thread calling
/// the send_* methods while one other thread calls next_response() — because
/// the send and receive paths touch disjoint state over a full-duplex
/// socket.
namespace llm4vv::serve {

class Client {
 public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connect and (when `tenant` is non-empty) send hello + wait for the
  /// hello_ok acknowledgement. False on failure (see last_error()).
  bool connect(const std::string& host, std::uint16_t port,
               const std::string& tenant = "", int timeout_ms = 5000);
  bool connected() const noexcept { return fd_ >= 0; }
  void close();

  // --- send path -----------------------------------------------------------
  bool send_submit(std::uint64_t id, const frontend::SourceFile& file);
  bool send_ping();
  bool send_stats();
  bool send_shutdown();
  /// Half-close the write side: the server finishes every in-flight job,
  /// flushes the responses, then closes.
  bool shutdown_write();

  // --- receive path --------------------------------------------------------
  /// Block up to `timeout_ms` (-1 = forever) for the next response line.
  /// nullopt on timeout, clean EOF, or error — last_error() distinguishes
  /// (empty string on timeout, "eof" on clean close).
  std::optional<Response> next_response(int timeout_ms = -1);

  /// Submit one job and wait for ITS terminal response, skipping
  /// non-terminal frames (pong, draining, ...). nullopt on transport
  /// failure or timeout.
  std::optional<Response> submit_and_wait(std::uint64_t id,
                                          const frontend::SourceFile& file,
                                          int timeout_ms = 30000);

  const std::string& last_error() const noexcept { return error_; }

 private:
  bool send_line(const std::string& line);
  bool fail(std::string message);

  int fd_ = -1;
  std::string in_buf_;
  std::string error_;
};

}  // namespace llm4vv::serve
