#include "serve/protocol.hpp"

#include <cmath>

namespace llm4vv::serve {

namespace {

using support::JsonObject;
using support::JsonValue;

const JsonValue* find_field(
    const std::map<std::string, JsonValue>& fields, const std::string& key) {
  const auto it = fields.find(key);
  return it == fields.end() ? nullptr : &it->second;
}

std::string string_field(const std::map<std::string, JsonValue>& fields,
                         const std::string& key) {
  const JsonValue* value = find_field(fields, key);
  return value != nullptr && value->is_string() ? value->string : "";
}

double number_field(const std::map<std::string, JsonValue>& fields,
                    const std::string& key, double fallback = 0.0) {
  const JsonValue* value = find_field(fields, key);
  return value != nullptr && value->is_number() ? value->number : fallback;
}

bool bool_field(const std::map<std::string, JsonValue>& fields,
                const std::string& key) {
  const JsonValue* value = find_field(fields, key);
  return value != nullptr && value->kind == JsonValue::Kind::kBool &&
         value->boolean;
}

/// Job ids ride as JSON numbers; doubles hold 53 integer bits exactly,
/// far beyond any realistic per-connection id, and negatives/fractions
/// are rejected as malformed.
std::optional<std::uint64_t> id_field(
    const std::map<std::string, JsonValue>& fields, const std::string& key) {
  const JsonValue* value = find_field(fields, key);
  if (value == nullptr || !value->is_number()) return std::nullopt;
  if (value->number < 0.0 || value->number != std::floor(value->number)) {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(value->number);
}

}  // namespace

bool valid_tenant_name(std::string_view name) noexcept {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

const char* language_token(frontend::Language language) noexcept {
  switch (language) {
    case frontend::Language::kC: return "c";
    case frontend::Language::kCpp: return "cpp";
    case frontend::Language::kFortran: return "fortran";
  }
  return "c";
}

const char* flavor_token(frontend::Flavor flavor) noexcept {
  switch (flavor) {
    case frontend::Flavor::kOpenACC: return "openacc";
    case frontend::Flavor::kOpenMP: return "openmp";
  }
  return "openacc";
}

std::optional<frontend::Language> parse_language_token(
    std::string_view token) {
  if (token == "c") return frontend::Language::kC;
  if (token == "cpp") return frontend::Language::kCpp;
  if (token == "fortran") return frontend::Language::kFortran;
  return std::nullopt;
}

std::optional<frontend::Flavor> parse_flavor_token(std::string_view token) {
  if (token == "openacc") return frontend::Flavor::kOpenACC;
  if (token == "openmp") return frontend::Flavor::kOpenMP;
  return std::nullopt;
}

std::string encode_hello(const std::string& tenant) {
  return JsonObject().field("op", "hello").field("tenant", tenant).str();
}

std::string encode_submit(std::uint64_t id, const frontend::SourceFile& file) {
  return JsonObject()
      .field("op", "submit")
      .field("id", static_cast<std::int64_t>(id))
      .field("name", file.name)
      .field("language", language_token(file.language))
      .field("flavor", flavor_token(file.flavor))
      .field("content", file.content)
      .str();
}

std::string encode_ping() { return JsonObject().field("op", "ping").str(); }

std::string encode_stats_request() {
  return JsonObject().field("op", "stats").str();
}

std::string encode_shutdown() {
  return JsonObject().field("op", "shutdown").str();
}

std::string encode_hello_ok(const std::string& tenant) {
  return JsonObject().field("type", "hello_ok").field("tenant", tenant).str();
}

std::string encode_verdict(std::uint64_t id, const std::string& verdict,
                           bool judge_valid, bool compiled, bool executed,
                           bool cached, double gpu_seconds,
                           std::uint64_t latency_us) {
  return JsonObject()
      .field("type", "verdict")
      .field("id", static_cast<std::int64_t>(id))
      .field("verdict", verdict)
      .field("judge_valid", judge_valid)
      .field("compiled", compiled)
      .field("executed", executed)
      .field("cached", cached)
      .field("gpu_seconds", gpu_seconds)
      .field("latency_us", static_cast<std::int64_t>(latency_us))
      .str();
}

std::string encode_shed(std::uint64_t id, const std::string& reason) {
  return JsonObject()
      .field("type", "shed")
      .field("id", static_cast<std::int64_t>(id))
      .field("reason", reason)
      .str();
}

std::string encode_error(std::uint64_t id, const std::string& reason,
                         std::uint64_t latency_us) {
  return JsonObject()
      .field("type", "error")
      .field("id", static_cast<std::int64_t>(id))
      .field("reason", reason)
      .field("latency_us", static_cast<std::int64_t>(latency_us))
      .str();
}

std::string encode_protocol_error(const std::string& reason) {
  return JsonObject().field("type", "error").field("reason", reason).str();
}

std::string encode_pong() { return JsonObject().field("type", "pong").str(); }

std::string encode_draining() {
  return JsonObject().field("type", "draining").str();
}

std::string encode_bye() { return JsonObject().field("type", "bye").str(); }

Request parse_request(std::string_view line) {
  Request request;
  const auto fields = support::parse_json_object_line(line);
  if (!fields.has_value()) {
    request.error = "not a JSON object line";
    return request;
  }
  const std::string op = string_field(*fields, "op");
  if (op == "hello") {
    request.tenant = string_field(*fields, "tenant");
    if (!valid_tenant_name(request.tenant)) {
      request.error = "hello: bad tenant name";
      return request;
    }
    request.op = RequestOp::kHello;
    return request;
  }
  if (op == "submit") {
    const auto id = id_field(*fields, "id");
    if (!id.has_value()) {
      request.error = "submit: missing or bad id";
      return request;
    }
    const auto language =
        parse_language_token(string_field(*fields, "language"));
    const auto flavor = parse_flavor_token(string_field(*fields, "flavor"));
    if (!language.has_value() || !flavor.has_value()) {
      request.error = "submit: bad language/flavor";
      return request;
    }
    request.op = RequestOp::kSubmit;
    request.id = *id;
    request.file.name = string_field(*fields, "name");
    request.file.language = *language;
    request.file.flavor = *flavor;
    request.file.content = string_field(*fields, "content");
    return request;
  }
  if (op == "ping") {
    request.op = RequestOp::kPing;
    return request;
  }
  if (op == "stats") {
    request.op = RequestOp::kStats;
    return request;
  }
  if (op == "shutdown") {
    request.op = RequestOp::kShutdown;
    return request;
  }
  request.error = op.empty() ? "missing op" : "unknown op: " + op;
  return request;
}

Response parse_response(std::string_view line) {
  Response response;
  auto fields = support::parse_json_object_line(line);
  if (!fields.has_value()) {
    response.reason = "not a JSON object line";
    return response;
  }
  const std::string type = string_field(*fields, "type");
  if (const auto id = id_field(*fields, "id"); id.has_value()) {
    response.id = *id;
    response.has_id = true;
  }
  if (type == "hello_ok") {
    response.type = ResponseType::kHelloOk;
    response.tenant = string_field(*fields, "tenant");
  } else if (type == "verdict") {
    response.type = ResponseType::kVerdict;
    response.verdict = string_field(*fields, "verdict");
    response.judge_valid = bool_field(*fields, "judge_valid");
    response.compiled = bool_field(*fields, "compiled");
    response.executed = bool_field(*fields, "executed");
    response.cached = bool_field(*fields, "cached");
    response.gpu_seconds = number_field(*fields, "gpu_seconds");
    response.latency_us =
        static_cast<std::uint64_t>(number_field(*fields, "latency_us"));
  } else if (type == "shed") {
    response.type = ResponseType::kShed;
    response.reason = string_field(*fields, "reason");
  } else if (type == "error") {
    response.type = ResponseType::kError;
    response.reason = string_field(*fields, "reason");
    response.latency_us =
        static_cast<std::uint64_t>(number_field(*fields, "latency_us"));
  } else if (type == "pong") {
    response.type = ResponseType::kPong;
  } else if (type == "stats") {
    response.type = ResponseType::kStats;
  } else if (type == "draining") {
    response.type = ResponseType::kDraining;
  } else if (type == "bye") {
    response.type = ResponseType::kBye;
  } else {
    response.reason = type.empty() ? "missing type" : "unknown type: " + type;
    return response;
  }
  response.fields = std::move(*fields);
  return response;
}

}  // namespace llm4vv::serve
