#include "serve/scheduler.hpp"

#include <algorithm>

namespace llm4vv::serve {

FairScheduler::Push FairScheduler::push(ServeJob job, std::uint32_t weight) {
  {
    support::MutexLock lock(mutex_);
    if (closed_) return Push::kClosed;
    if (depth_ >= max_queued_) return Push::kFull;
    TenantQueue* queue = nullptr;
    for (TenantQueue& candidate : queues_) {
      if (candidate.tenant == job.tenant) {
        queue = &candidate;
        break;
      }
    }
    if (queue == nullptr) {
      queues_.push_back(TenantQueue{job.tenant, 1, {}});
      queue = &queues_.back();
    }
    queue->weight = weight == 0 ? 1 : weight;
    queue->jobs.push_back(std::move(job));
    depth_ += 1;
  }
  ready_.notify_one();
  return Push::kOk;
}

std::size_t FairScheduler::pop_up_to(std::size_t max,
                                     std::vector<ServeJob>& out) {
  if (max == 0) return 0;
  support::UniqueLock lock(mutex_);
  while (depth_ == 0 && !closed_) ready_.wait(lock);
  if (depth_ == 0) return 0;  // closed and drained: end-of-stream
  std::size_t taken = 0;
  // Weighted round-robin: the cursor remembers its position across pops,
  // so service keeps rotating even when every pop drains less than a full
  // cycle.
  while (taken < max && depth_ > 0) {
    TenantQueue& queue = queues_[cursor_ % queues_.size()];
    std::size_t quota = std::min<std::size_t>(queue.weight, max - taken);
    while (quota > 0 && !queue.jobs.empty()) {
      out.push_back(std::move(queue.jobs.front()));
      queue.jobs.pop_front();
      depth_ -= 1;
      taken += 1;
      quota -= 1;
    }
    cursor_ = (cursor_ + 1) % queues_.size();
  }
  scheduled_ += taken;
  return taken;
}

void FairScheduler::close() {
  {
    support::MutexLock lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

bool FairScheduler::closed() const {
  support::MutexLock lock(mutex_);
  return closed_;
}

std::size_t FairScheduler::depth() const {
  support::MutexLock lock(mutex_);
  return depth_;
}

std::uint64_t FairScheduler::scheduled() const {
  support::MutexLock lock(mutex_);
  return scheduled_;
}

}  // namespace llm4vv::serve
