#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "support/thread_annotations.hpp"

namespace llm4vv::obs {
class Registry;
}

/// serve tenancy — multi-tenant admission control and accounting
/// (docs/SERVING.md).
///
/// Every connection binds to a tenant (hello op; "anon" before one). Each
/// tenant carries a token-bucket rate limit, an in-flight quota, and a fair-
/// share weight, plus full accounting with one hard invariant the drain
/// test pins:
///
///     submitted == accepted + shed          (every submit classified once)
///     accepted  == completed_ok + completed_error + in_flight
///
/// After a graceful drain in_flight is zero, so accepted == completed — no
/// accepted job is ever lost. Counters surface through obs::Registry as
/// scrape-time probes ("serve.tenant.<name>.submitted", ...), the same
/// snapshot-probe pattern every other subsystem uses.
namespace llm4vv::serve {

/// Per-tenant admission knobs. Zero means "unlimited" for both limits.
struct TenantConfig {
  double rate_per_sec = 0.0;     ///< token refill rate; 0 = no rate limit
  double burst = 8.0;            ///< bucket capacity in jobs
  std::size_t max_in_flight = 0; ///< accepted-but-unfinished cap; 0 = none
  std::uint32_t weight = 1;      ///< fair-share weight (min 1)
};

/// Deterministic token bucket: pure state + an explicit clock parameter,
/// so admission decisions are unit-testable without sleeping. Not
/// internally synchronized — TenantTable guards it with its table mutex.
class TokenBucket {
 public:
  TokenBucket(double rate_per_sec, double burst)
      : rate_(rate_per_sec), burst_(burst < 1.0 ? 1.0 : burst),
        tokens_(burst_) {}

  /// Refill from elapsed time, then try to take one token. A zero rate
  /// always admits. `now_us` must be monotone per bucket.
  bool try_take(std::uint64_t now_us) {
    if (rate_ <= 0.0) return true;
    if (primed_) {
      const double elapsed_s =
          static_cast<double>(now_us - last_us_) * 1e-6;
      tokens_ += elapsed_s * rate_;
      if (tokens_ > burst_) tokens_ = burst_;
    }
    primed_ = true;
    last_us_ = now_us;
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  double tokens() const noexcept { return tokens_; }

 private:
  double rate_;
  double burst_;
  double tokens_;
  std::uint64_t last_us_ = 0;
  bool primed_ = false;
};

/// Why a submit was refused (or, post-admission, reclassified as shed).
enum class ShedReason {
  kRateLimit,  ///< token bucket empty
  kQuota,      ///< in-flight quota reached
  kQueueFull,  ///< the fair scheduler's bound was hit
  kDraining,   ///< the server stopped accepting
};
const char* shed_reason_name(ShedReason reason) noexcept;

/// Snapshot of one tenant's counters (monotonic except in_flight).
struct TenantStats {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t shed_rate = 0;
  std::uint64_t shed_quota = 0;
  std::uint64_t shed_queue = 0;
  std::uint64_t shed_draining = 0;
  std::uint64_t completed_ok = 0;
  std::uint64_t completed_error = 0;
  std::uint64_t in_flight = 0;

  /// Terminal-response latency histogram (submit → response, µs).
  static constexpr std::size_t kLatencyBuckets = 6;
  std::uint64_t latency_hist[kLatencyBuckets] = {};
  /// Upper edge of bucket `b` in µs (the last bucket is +Inf).
  static std::uint64_t latency_bucket_edge(std::size_t b) noexcept;
  /// Stable bucket label: "lt_100us", ..., "ge_1s".
  static const char* latency_bucket_label(std::size_t b) noexcept;

  std::uint64_t shed_total() const noexcept {
    return shed_rate + shed_quota + shed_queue + shed_draining;
  }
  std::uint64_t completed() const noexcept {
    return completed_ok + completed_error;
  }
};

/// Admission decision for one submit.
enum class Admission { kAdmit, kShedRate, kShedQuota };

/// The tenant table: get-or-create tenants, admission decisions, and
/// accounting. Thread-safe; the IO thread admits, workers complete.
class TenantTable {
 public:
  explicit TenantTable(TenantConfig default_config = {});
  ~TenantTable();

  TenantTable(const TenantTable&) = delete;
  TenantTable& operator=(const TenantTable&) = delete;

  /// Pre-register a tenant with explicit knobs (before or after ensure();
  /// reconfiguring an existing tenant keeps its counters).
  void configure(const std::string& name, TenantConfig config)
      EXCLUDES(mutex_);

  /// Get-or-create: unknown tenants materialize with the default config.
  /// When a registry is attached, a newly created tenant registers its
  /// per-tenant probes (outside the table lock — scrapes take registry
  /// then table, so registration must never hold table then registry).
  void ensure(const std::string& name) EXCLUDES(mutex_);

  /// Classify one submit: counts `submitted`, then either consumes a
  /// token + quota slot (kAdmit: accepted & in_flight move) or counts the
  /// shed. Creates the tenant if needed (via ensure()).
  Admission try_admit(const std::string& name, std::uint64_t now_us)
      EXCLUDES(mutex_);

  /// A submit refused while draining: counts submitted + shed_draining
  /// (no token is consumed).
  void record_shed_draining(const std::string& name) EXCLUDES(mutex_);

  /// Reclassify an admitted job that could not be scheduled (queue full,
  /// or the scheduler closed under it): accepted and in_flight roll back,
  /// the shed counter for `reason` moves instead.
  void record_post_admit_shed(const std::string& name, ShedReason reason)
      EXCLUDES(mutex_);

  /// Terminal completion of an accepted job (verdict or judge error).
  void complete(const std::string& name, bool ok, std::uint64_t latency_us)
      EXCLUDES(mutex_);

  /// Fair-share weight (min 1; default config's for unknown tenants).
  std::uint32_t weight(const std::string& name) const EXCLUDES(mutex_);

  TenantStats stats(const std::string& name) const EXCLUDES(mutex_);
  std::vector<std::pair<std::string, TenantStats>> all_stats() const
      EXCLUDES(mutex_);
  /// Sum over tenants (latency histogram included).
  TenantStats totals() const EXCLUDES(mutex_);

  /// Attach a registry: aggregate probes ("<prefix>.submitted", ...)
  /// register now, per-tenant probes ("<prefix>.tenant.<name>.*") as each
  /// tenant materializes. The table unregisters "<prefix>." on
  /// destruction; the registry must outlive the table.
  void register_metrics(std::shared_ptr<obs::Registry> registry,
                        const std::string& prefix) EXCLUDES(mutex_);

 private:
  struct Tenant {
    TenantConfig config;
    TokenBucket bucket;
    TenantStats stats;
    explicit Tenant(const TenantConfig& c)
        : config(c), bucket(c.rate_per_sec, c.burst) {}
  };

  /// Get-or-create under the lock; sets `created` for probe registration.
  Tenant& tenant_locked(const std::string& name, bool* created)
      REQUIRES(mutex_);
  void register_tenant_probes(const std::string& name);

  const TenantConfig default_config_;
  mutable support::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Tenant>> tenants_ GUARDED_BY(mutex_);
  std::shared_ptr<obs::Registry> registry_ GUARDED_BY(mutex_);
  std::string prefix_ GUARDED_BY(mutex_);
};

}  // namespace llm4vv::serve
