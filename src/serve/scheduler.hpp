#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "frontend/source.hpp"
#include "support/thread_annotations.hpp"

/// serve::FairScheduler — weighted fair queueing between tenants and the
/// dispatcher workers (docs/SERVING.md).
///
/// One bounded FIFO per tenant, drained by weighted round-robin: each
/// visit takes up to `weight` jobs from a tenant's queue before the cursor
/// advances, so at saturation tenant i receives weight_i / sum(weights) of
/// the service — and every tenant with queued work is visited once per
/// cycle, which is the no-starvation guarantee the serve bench gates.
/// close() is the drain half: pushes start failing, pops hand out the
/// backlog and then return 0 (end-of-stream), exactly the MpmcQueue
/// contract the pipeline workers already follow.
namespace llm4vv::serve {

/// One accepted validation job travelling from the IO thread to a worker.
struct ServeJob {
  std::uint64_t seq = 0;            ///< server-wide ordinal (trace id)
  std::uint64_t connection_id = 0;  ///< response routing key
  std::uint64_t request_id = 0;     ///< client-chosen id, echoed back
  std::string tenant;
  frontend::SourceFile file;
  std::uint64_t submitted_us = 0;   ///< admission timestamp (latency base)
};

class FairScheduler {
 public:
  enum class Push { kOk, kFull, kClosed };

  /// `max_queued` bounds the total backlog across tenants (> 0).
  explicit FairScheduler(std::size_t max_queued = 1024)
      : max_queued_(max_queued == 0 ? 1 : max_queued) {}

  FairScheduler(const FairScheduler&) = delete;
  FairScheduler& operator=(const FairScheduler&) = delete;

  /// Enqueue one job under its tenant (weight from the tenant table;
  /// 0 is promoted to 1). kFull when the global bound is hit — the caller
  /// sheds the job rather than blocking the IO thread.
  Push push(ServeJob job, std::uint32_t weight) EXCLUDES(mutex_);

  /// Block until jobs are available (or closed-and-drained), then append
  /// up to `max` jobs to `out` in weighted round-robin order. Returns the
  /// number appended; 0 means end-of-stream.
  std::size_t pop_up_to(std::size_t max, std::vector<ServeJob>& out)
      EXCLUDES(mutex_);

  /// Stop accepting pushes; pops drain the backlog then see end-of-stream.
  void close() EXCLUDES(mutex_);
  bool closed() const EXCLUDES(mutex_);

  /// Jobs currently queued across all tenants.
  std::size_t depth() const EXCLUDES(mutex_);
  /// Jobs handed to workers over the scheduler's lifetime.
  std::uint64_t scheduled() const EXCLUDES(mutex_);
  std::size_t max_queued() const noexcept { return max_queued_; }

  /// Scrape-time probes: "<prefix>.depth", "<prefix>.scheduled",
  /// "<prefix>.max_queued". Duck-typed like MpmcQueue::register_metrics;
  /// the scheduler must outlive the registration.
  template <typename RegistryT>
  void register_metrics(RegistryT& registry, const std::string& prefix) const {
    registry.register_probe(prefix + ".depth", [this] {
      return static_cast<double>(depth());
    });
    registry.register_probe(prefix + ".scheduled", [this] {
      return static_cast<double>(scheduled());
    });
    registry.register_probe(prefix + ".max_queued", [this] {
      return static_cast<double>(max_queued());
    });
  }

 private:
  struct TenantQueue {
    std::string tenant;
    std::uint32_t weight = 1;
    std::deque<ServeJob> jobs;
  };

  const std::size_t max_queued_;
  mutable support::Mutex mutex_;
  support::CondVar ready_;
  std::vector<TenantQueue> queues_ GUARDED_BY(mutex_);
  std::size_t cursor_ GUARDED_BY(mutex_) = 0;
  std::size_t depth_ GUARDED_BY(mutex_) = 0;
  std::uint64_t scheduled_ GUARDED_BY(mutex_) = 0;
  bool closed_ GUARDED_BY(mutex_) = false;
};

}  // namespace llm4vv::serve
