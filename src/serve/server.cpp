#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "serve/protocol.hpp"
#include "support/jsonl.hpp"
#include "support/stopwatch.hpp"

namespace llm4vv::serve {

namespace {

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// After the bye frames are queued, connections that never drain their
/// output (a client that stopped reading) are force-closed so a drain can
/// always finish.
constexpr std::uint64_t kDrainFlushBudgetUs = 5'000'000;

}  // namespace

/// One client connection. Input-side state (in_buf, tenant, hello) is
/// touched only by the IO thread; the output buffer is shared — workers
/// append terminal responses, the IO thread flushes — and is the one piece
/// of per-connection state under a lock.
struct Connection {
  int fd = -1;
  std::uint64_t id = 0;
  // IO-thread-only:
  std::string tenant = "anon";
  std::string in_buf;
  bool input_closed = false;
  bool dead = false;  ///< write error; close on next sweep

  support::Mutex out_mutex;
  std::string out_buf GUARDED_BY(out_mutex);
  /// Accepted jobs whose terminal response has not been queued yet. A
  /// half-closed connection (peer EOF) stays open until this reaches zero,
  /// so a client may send its submits, shut down its write side, and still
  /// collect every response.
  std::int64_t outstanding GUARDED_BY(out_mutex) = 0;

  void append_output(const std::string& line) EXCLUDES(out_mutex) {
    support::MutexLock lock(out_mutex);
    out_buf.append(line);
    out_buf.push_back('\n');
  }

  bool output_pending() EXCLUDES(out_mutex) {
    support::MutexLock lock(out_mutex);
    return !out_buf.empty();
  }

  void add_outstanding(std::int64_t n) EXCLUDES(out_mutex) {
    support::MutexLock lock(out_mutex);
    outstanding += n;
  }

  bool settled() EXCLUDES(out_mutex) {
    support::MutexLock lock(out_mutex);
    return out_buf.empty() && outstanding <= 0;
  }

  /// Write as much buffered output as the socket accepts. Returns false
  /// on a fatal write error.
  bool flush() EXCLUDES(out_mutex) {
    support::MutexLock lock(out_mutex);
    while (!out_buf.empty()) {
      const ssize_t n =
          send(fd, out_buf.data(), out_buf.size(), MSG_NOSIGNAL);
      if (n > 0) {
        out_buf.erase(0, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      return false;
    }
    return true;
  }
};

struct Server::Impl {
  toolchain::CompilerDriver compiler;
  toolchain::Executor executor;
  std::shared_ptr<const judge::Llmj> judge;
  ServerConfig config;

  TenantTable tenant_table;
  FairScheduler scheduler;

  int listen_fd = -1;
  int wake_rd = -1;
  int wake_wr = -1;
  std::uint16_t bound_port = 0;

  mutable support::Mutex state_mutex;
  support::CondVar state_cv;
  bool started GUARDED_BY(state_mutex) = false;
  bool drain_requested GUARDED_BY(state_mutex) = false;
  std::size_t workers_live GUARDED_BY(state_mutex) = 0;
  bool workers_done GUARDED_BY(state_mutex) = false;
  bool joiner_active GUARDED_BY(state_mutex) = false;
  bool join_done GUARDED_BY(state_mutex) = false;

  mutable support::Mutex conns_mutex;
  std::unordered_map<std::uint64_t, std::shared_ptr<Connection>> conns
      GUARDED_BY(conns_mutex);
  std::uint64_t next_conn_id GUARDED_BY(conns_mutex) = 1;

  mutable support::Mutex stats_mutex;
  ServerStats counters GUARDED_BY(stats_mutex);

  std::vector<std::thread> worker_threads;
  std::thread io_thread;

  // IO-thread-only job ordinal (trace ids and drain bookkeeping).
  std::uint64_t next_seq = 1;

  Impl(toolchain::CompilerDriver compiler_in, toolchain::Executor executor_in,
       std::shared_ptr<const judge::Llmj> judge_in, ServerConfig config_in)
      : compiler(std::move(compiler_in)),
        executor(std::move(executor_in)),
        judge(std::move(judge_in)),
        config(std::move(config_in)),
        tenant_table(config.default_tenant),
        scheduler(config.max_queued) {
    for (const auto& [name, tenant_config] : config.tenants) {
      tenant_table.configure(name, tenant_config);
    }
  }

  ~Impl() {
    if (listen_fd >= 0) ::close(listen_fd);
    if (wake_rd >= 0) ::close(wake_rd);
    if (wake_wr >= 0) ::close(wake_wr);
    if (config.registry != nullptr) {
      config.registry->unregister_prefix(config.metrics_prefix);
    }
  }

  void wake() {
    if (wake_wr < 0) return;
    const char byte = 1;
    // A full pipe already guarantees a pending wakeup.
    (void)!write(wake_wr, &byte, 1);
  }

  void bump(std::uint64_t ServerStats::*field, std::uint64_t n = 1)
      EXCLUDES(stats_mutex) {
    support::MutexLock lock(stats_mutex);
    counters.*field += n;
  }

  std::shared_ptr<Connection> find_conn(std::uint64_t id)
      EXCLUDES(conns_mutex) {
    support::MutexLock lock(conns_mutex);
    const auto it = conns.find(id);
    return it == conns.end() ? nullptr : it->second;
  }

  /// Route one response line to its connection and wake the IO thread.
  /// Called from workers and from the IO thread itself.
  void queue_response(std::uint64_t conn_id, const std::string& line) {
    const auto conn = find_conn(conn_id);
    if (conn == nullptr) {
      bump(&ServerStats::orphaned_responses);
      return;
    }
    conn->append_output(line);
    conn->add_outstanding(-1);  // every worker response is a job's terminal
    bump(&ServerStats::responses_out);
    wake();
  }

  // ---- lifecycle ---------------------------------------------------------

  void start();
  void request_drain() {
    {
      support::MutexLock lock(state_mutex);
      if (drain_requested) return;
      drain_requested = true;
    }
    state_cv.notify_all();
    wake();
  }
  void wait_drained();

  bool draining() const {
    support::MutexLock lock(state_mutex);
    return drain_requested;
  }

  // ---- IO thread ---------------------------------------------------------

  void io_loop();
  void accept_connections();
  void read_connection(const std::shared_ptr<Connection>& conn,
                       bool draining_now);
  void handle_line(const std::shared_ptr<Connection>& conn,
                   std::string_view line, bool draining_now);
  void handle_submit(const std::shared_ptr<Connection>& conn,
                     Request& request, bool draining_now);
  std::string render_stats(bool draining_now);
  void close_connection(std::uint64_t id);
  std::vector<std::shared_ptr<Connection>> snapshot_conns()
      EXCLUDES(conns_mutex);

  // ---- workers -----------------------------------------------------------

  void worker_loop();
  void process_batch(std::vector<ServeJob>& batch);
  void finish_job(const ServeJob& job, bool ok, const std::string& line);
};

void Server::Impl::start() {
  {
    support::MutexLock lock(state_mutex);
    if (started) throw std::runtime_error("serve: start() called twice");
    started = true;
  }
  int pipe_fds[2] = {-1, -1};
  if (pipe(pipe_fds) != 0) {
    throw std::runtime_error("serve: pipe() failed");
  }
  wake_rd = pipe_fds[0];
  wake_wr = pipe_fds[1];
  set_nonblocking(wake_rd);
  set_nonblocking(wake_wr);

  listen_fd = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) throw std::runtime_error("serve: socket() failed");
  const int one = 1;
  setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config.port);
  if (inet_pton(AF_INET, config.host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("serve: bad host address: " + config.host);
  }
  if (bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    throw std::runtime_error(std::string("serve: bind failed: ") +
                             std::strerror(errno));
  }
  if (listen(listen_fd, config.listen_backlog) != 0) {
    throw std::runtime_error(std::string("serve: listen failed: ") +
                             std::strerror(errno));
  }
  socklen_t addr_len = sizeof addr;
  getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  bound_port = ntohs(addr.sin_port);
  set_nonblocking(listen_fd);

  if (config.registry != nullptr) {
    const std::string& prefix = config.metrics_prefix;
    tenant_table.register_metrics(config.registry, prefix);
    scheduler.register_metrics(*config.registry, prefix + ".sched");
    const auto probe = [this](std::uint64_t ServerStats::*field) {
      return [this, field] {
        support::MutexLock lock(stats_mutex);
        return static_cast<double>(counters.*field);
      };
    };
    config.registry->register_probe(
        prefix + ".connections_accepted",
        probe(&ServerStats::connections_accepted));
    config.registry->register_probe(prefix + ".connections_closed",
                                    probe(&ServerStats::connections_closed));
    config.registry->register_probe(prefix + ".lines_in",
                                    probe(&ServerStats::lines_in));
    config.registry->register_probe(prefix + ".responses_out",
                                    probe(&ServerStats::responses_out));
    config.registry->register_probe(prefix + ".protocol_errors",
                                    probe(&ServerStats::protocol_errors));
    config.registry->register_probe(prefix + ".orphaned_responses",
                                    probe(&ServerStats::orphaned_responses));
  }

  const std::size_t worker_count = config.workers == 0 ? 1 : config.workers;
  {
    support::MutexLock lock(state_mutex);
    workers_live = worker_count;
  }
  worker_threads.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    worker_threads.emplace_back([this] { worker_loop(); });
  }
  io_thread = std::thread([this] { io_loop(); });
}

void Server::Impl::wait_drained() {
  support::UniqueLock lock(state_mutex);
  if (!started) return;
  while (!drain_requested) state_cv.wait(lock);
  if (join_done) return;
  if (joiner_active) {
    while (!join_done) state_cv.wait(lock);
    return;
  }
  joiner_active = true;
  lock.unlock();
  // Workers exit once the IO thread (which observed the drain) closes the
  // scheduler and the backlog runs dry; every terminal response is queued
  // by then.
  for (std::thread& worker : worker_threads) worker.join();
  {
    support::MutexLock relock(state_mutex);
    workers_done = true;
  }
  wake();
  io_thread.join();
  lock.lock();
  join_done = true;
  state_cv.notify_all();
}

std::vector<std::shared_ptr<Connection>> Server::Impl::snapshot_conns() {
  support::MutexLock lock(conns_mutex);
  std::vector<std::shared_ptr<Connection>> out;
  out.reserve(conns.size());
  for (const auto& [id, conn] : conns) out.push_back(conn);
  return out;
}

void Server::Impl::close_connection(std::uint64_t id) {
  std::shared_ptr<Connection> conn;
  {
    support::MutexLock lock(conns_mutex);
    const auto it = conns.find(id);
    if (it == conns.end()) return;
    conn = it->second;
    conns.erase(it);
  }
  ::close(conn->fd);
  conn->fd = -1;
  bump(&ServerStats::connections_closed);
}

void Server::Impl::io_loop() {
  bool draining_now = false;
  bool bye_queued = false;
  std::uint64_t drain_flush_deadline_us = 0;
  std::vector<pollfd> pollfds;
  std::vector<std::uint64_t> pollfd_conn;  // conn id per pollfd (0 = none)

  for (;;) {
    pollfds.clear();
    pollfd_conn.clear();
    pollfds.push_back(pollfd{wake_rd, POLLIN, 0});
    pollfd_conn.push_back(0);
    if (!draining_now) {
      pollfds.push_back(pollfd{listen_fd, POLLIN, 0});
      pollfd_conn.push_back(0);
    }
    const auto live = snapshot_conns();
    for (const auto& conn : live) {
      short events = 0;
      if (!conn->input_closed) events |= POLLIN;
      if (conn->output_pending()) events |= POLLOUT;
      if (events == 0) continue;
      pollfds.push_back(pollfd{conn->fd, events, 0});
      pollfd_conn.push_back(conn->id);
    }
    const int timeout_ms = bye_queued ? 50 : -1;
    const int ready = poll(pollfds.data(),
                           static_cast<nfds_t>(pollfds.size()), timeout_ms);
    if (ready < 0 && errno != EINTR) break;

    // 1. Drain the wake pipe and pick up state transitions.
    if (pollfds[0].revents & POLLIN) {
      char buf[64];
      while (read(wake_rd, buf, sizeof buf) > 0) {
      }
    }
    bool workers_finished;
    {
      support::MutexLock lock(state_mutex);
      if (drain_requested && !draining_now) {
        draining_now = true;
      }
      workers_finished = workers_done;
    }
    if (draining_now && !scheduler.closed()) {
      // Stop accepting: no new connections, no new jobs. Workers drain
      // the backlog; every connection hears about it.
      scheduler.close();
      for (const auto& conn : snapshot_conns()) {
        conn->append_output(encode_draining());
      }
    }
    if (workers_finished && !bye_queued) {
      bye_queued = true;
      drain_flush_deadline_us = support::now_us() + kDrainFlushBudgetUs;
      for (const auto& conn : snapshot_conns()) {
        conn->append_output(encode_bye());
      }
    }

    // 2. Accept new connections (the listen fd, when still polled).
    if (!draining_now) {
      for (std::size_t i = 1; i < pollfds.size(); ++i) {
        if (pollfds[i].fd == listen_fd && (pollfds[i].revents & POLLIN)) {
          accept_connections();
          break;
        }
      }
    }

    // 3. Per-connection IO.
    for (std::size_t i = 0; i < pollfds.size(); ++i) {
      const std::uint64_t conn_id = pollfd_conn[i];
      if (conn_id == 0) continue;
      const auto conn = find_conn(conn_id);
      if (conn == nullptr) continue;
      const short revents = pollfds[i].revents;
      if (revents & (POLLERR | POLLNVAL)) {
        conn->dead = true;
      } else {
        if (revents & (POLLIN | POLLHUP)) {
          read_connection(conn, draining_now);
        }
        if ((revents & POLLOUT) && !conn->flush()) conn->dead = true;
      }
    }

    // 4. Sweep finished connections.
    for (const auto& conn : snapshot_conns()) {
      const bool flushed = !conn->output_pending();
      if (conn->dead || (conn->input_closed && conn->settled()) ||
          (bye_queued && flushed) ||
          (bye_queued && support::now_us() > drain_flush_deadline_us)) {
        close_connection(conn->id);
      }
    }
    if (bye_queued) {
      support::MutexLock lock(conns_mutex);
      if (conns.empty()) break;
    }
  }
}

void Server::Impl::accept_connections() {
  for (;;) {
    const int fd = accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: back to poll
    bool full;
    {
      support::MutexLock lock(conns_mutex);
      full = conns.size() >= 1024;
    }
    if (full) {
      ::close(fd);
      return;
    }
    set_nonblocking(fd);
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      support::MutexLock lock(conns_mutex);
      conn->id = next_conn_id++;
      conns.emplace(conn->id, conn);
    }
    bump(&ServerStats::connections_accepted);
  }
}

void Server::Impl::read_connection(const std::shared_ptr<Connection>& conn,
                                   bool draining_now) {
  char buf[16384];
  for (;;) {
    const ssize_t n = recv(conn->fd, buf, sizeof buf, 0);
    if (n > 0) {
      conn->in_buf.append(buf, static_cast<std::size_t>(n));
      if (conn->in_buf.size() > config.max_line_bytes &&
          conn->in_buf.find('\n') == std::string::npos) {
        bump(&ServerStats::protocol_errors);
        conn->append_output(encode_protocol_error("line too long"));
        conn->input_closed = true;
        return;
      }
      continue;
    }
    if (n == 0) {
      conn->input_closed = true;  // peer half-closed; flush what remains
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn->dead = true;
    return;
  }
  std::size_t start = 0;
  for (;;) {
    const std::size_t newline = conn->in_buf.find('\n', start);
    if (newline == std::string::npos) break;
    std::string_view line(conn->in_buf.data() + start, newline - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty()) {
      bump(&ServerStats::lines_in);
      handle_line(conn, line, draining_now);
    }
    start = newline + 1;
  }
  if (start > 0) conn->in_buf.erase(0, start);
}

void Server::Impl::handle_line(const std::shared_ptr<Connection>& conn,
                               std::string_view line, bool draining_now) {
  Request request = parse_request(line);
  switch (request.op) {
    case RequestOp::kHello:
      conn->tenant = request.tenant;
      tenant_table.ensure(conn->tenant);
      conn->append_output(encode_hello_ok(conn->tenant));
      bump(&ServerStats::responses_out);
      return;
    case RequestOp::kSubmit:
      handle_submit(conn, request, draining_now);
      return;
    case RequestOp::kPing:
      conn->append_output(encode_pong());
      bump(&ServerStats::responses_out);
      return;
    case RequestOp::kStats:
      conn->append_output(render_stats(draining_now));
      bump(&ServerStats::responses_out);
      return;
    case RequestOp::kShutdown:
      conn->append_output(encode_draining());
      bump(&ServerStats::responses_out);
      request_drain();
      return;
    case RequestOp::kInvalid:
      bump(&ServerStats::protocol_errors);
      conn->append_output(encode_protocol_error(request.error));
      bump(&ServerStats::responses_out);
      return;
  }
}

void Server::Impl::handle_submit(const std::shared_ptr<Connection>& conn,
                                 Request& request, bool draining_now) {
  const std::string& tenant = conn->tenant;
  if (draining_now) {
    tenant_table.record_shed_draining(tenant);
    conn->append_output(encode_shed(
        request.id, shed_reason_name(ShedReason::kDraining)));
    bump(&ServerStats::responses_out);
    return;
  }
  const Admission admission =
      tenant_table.try_admit(tenant, support::now_us());
  if (admission != Admission::kAdmit) {
    const ShedReason reason = admission == Admission::kShedRate
                                  ? ShedReason::kRateLimit
                                  : ShedReason::kQuota;
    conn->append_output(encode_shed(request.id, shed_reason_name(reason)));
    bump(&ServerStats::responses_out);
    return;
  }
  ServeJob job;
  job.seq = next_seq++;
  job.connection_id = conn->id;
  job.request_id = request.id;
  job.tenant = tenant;
  job.file = std::move(request.file);
  job.submitted_us = support::now_us();
  // Count the job before the push: the worker's decrement (in
  // queue_response) must never observe the counter missing its increment.
  conn->add_outstanding(1);
  const auto pushed = scheduler.push(std::move(job),
                                     tenant_table.weight(tenant));
  if (pushed != FairScheduler::Push::kOk) {
    conn->add_outstanding(-1);
    const ShedReason reason = pushed == FairScheduler::Push::kFull
                                  ? ShedReason::kQueueFull
                                  : ShedReason::kDraining;
    tenant_table.record_post_admit_shed(tenant, reason);
    conn->append_output(encode_shed(request.id, shed_reason_name(reason)));
    bump(&ServerStats::responses_out);
  }
}

std::string Server::Impl::render_stats(bool draining_now) {
  const TenantStats totals = tenant_table.totals();
  ServerStats server_counters;
  {
    support::MutexLock lock(stats_mutex);
    server_counters = counters;
  }
  return support::JsonObject()
      .field("type", "stats")
      .field("submitted", static_cast<std::int64_t>(totals.submitted))
      .field("accepted", static_cast<std::int64_t>(totals.accepted))
      .field("shed", static_cast<std::int64_t>(totals.shed_total()))
      .field("completed_ok",
             static_cast<std::int64_t>(totals.completed_ok))
      .field("completed_error",
             static_cast<std::int64_t>(totals.completed_error))
      .field("in_flight", static_cast<std::int64_t>(totals.in_flight))
      .field("queue_depth", static_cast<std::int64_t>(scheduler.depth()))
      .field("connections",
             static_cast<std::int64_t>(
                 server_counters.connections_accepted -
                 server_counters.connections_closed))
      .field("draining", draining_now)
      .str();
}

void Server::Impl::worker_loop() {
  std::vector<ServeJob> batch;
  const std::size_t batch_size = config.job_batch == 0 ? 1 : config.job_batch;
  for (;;) {
    batch.clear();
    if (scheduler.pop_up_to(batch_size, batch) == 0) break;
    process_batch(batch);
  }
  // The last worker out flips workers_done so the drain completes on its
  // own: the IO thread can broadcast "bye" and flush without anyone having
  // called Server::wait() yet (a client blocked on responses must not
  // deadlock against an owner that reads before joining).
  bool last = false;
  {
    support::MutexLock lock(state_mutex);
    last = --workers_live == 0;
    if (last) workers_done = true;
  }
  if (last) {
    state_cv.notify_all();
    wake();
  }
}

void Server::Impl::process_batch(std::vector<ServeJob>& batch) {
  obs::Tracer* const tracer = config.trace.get();
  struct StageWork {
    toolchain::CompileResult compile;
    toolchain::ExecutionRecord exec;
  };
  std::vector<StageWork> work(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    {
      obs::ObsSpan span(tracer, obs::SpanKind::kQueueWait, batch[i].seq);
      span.set_start_us(batch[i].submitted_us);
      span.set_arg(2);  // residency before the judge stage, like the pipeline
    }
    {
      obs::ObsSpan span(tracer, obs::SpanKind::kCompile, batch[i].seq);
      work[i].compile = compiler.compile(batch[i].file);
      span.set_arg(work[i].compile.success ? 1 : 0);
    }
    {
      obs::ObsSpan span(tracer, obs::SpanKind::kExecute, batch[i].seq);
      work[i].exec = executor.run(work[i].compile.module);
      span.set_arg(work[i].exec.passed() ? 1 : 0);
    }
  }
  std::vector<judge::JudgeRequest> requests;
  requests.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    requests.push_back(judge::JudgeRequest{&batch[i].file, &work[i].compile,
                                           &work[i].exec});
  }
  const auto futures =
      judge->evaluate_async_many(requests, config.judge_seed);
  // Drain discipline (judge/judge.hpp): resolve owned futures before
  // peer-waiting duplicates so concurrent batches can never deadlock on
  // each other's claimed keys.
  for (const bool peer_pass : {false, true}) {
    for (std::size_t i = 0; i < futures.size(); ++i) {
      if (futures[i].waits_on_peer() != peer_pass) continue;
      obs::ObsSpan span(tracer, obs::SpanKind::kJudge, batch[i].seq);
      std::string line;
      bool ok = true;
      try {
        const judge::JudgeDecision decision = futures[i].get();
        span.set_arg(static_cast<std::int64_t>(decision.verdict));
        double gpu_seconds = 0.0;
        if (!decision.cached) {
          gpu_seconds = decision.completion.latency_seconds;
          span.set_gpu_seconds(gpu_seconds);
          span.set_flow(decision.completion.trace_flow);
        }
        line = encode_verdict(
            batch[i].request_id, judge::verdict_name(decision.verdict),
            decision.says_valid, work[i].compile.success,
            work[i].exec.passed(), decision.cached, gpu_seconds,
            support::now_us() - batch[i].submitted_us);
      } catch (const llm::ModelError& e) {
        span.set_arg(-1);
        ok = false;
        line = encode_error(
            batch[i].request_id,
            std::string(llm::failure_kind_name(e.kind())) + ": " + e.what(),
            support::now_us() - batch[i].submitted_us);
      } catch (const std::exception& e) {
        span.set_arg(-1);
        ok = false;
        line = encode_error(batch[i].request_id, e.what(),
                            support::now_us() - batch[i].submitted_us);
      }
      span.end();
      finish_job(batch[i], ok, line);
    }
  }
}

void Server::Impl::finish_job(const ServeJob& job, bool ok,
                              const std::string& line) {
  tenant_table.complete(job.tenant, ok,
                        support::now_us() - job.submitted_us);
  queue_response(job.connection_id, line);
}

// ---- public surface -------------------------------------------------------

Server::Server(toolchain::CompilerDriver compiler,
               toolchain::Executor executor,
               std::shared_ptr<const judge::Llmj> judge, ServerConfig config)
    : impl_(std::make_unique<Impl>(std::move(compiler), std::move(executor),
                                   std::move(judge), std::move(config))) {}

Server::~Server() {
  bool need_drain;
  {
    support::MutexLock lock(impl_->state_mutex);
    need_drain = impl_->started && !impl_->join_done;
  }
  if (need_drain) {
    impl_->request_drain();
    impl_->wait_drained();
  }
}

void Server::start() { impl_->start(); }
void Server::request_drain() { impl_->request_drain(); }
void Server::wait() { impl_->wait_drained(); }
bool Server::draining() const { return impl_->draining(); }
std::uint16_t Server::port() const { return impl_->bound_port; }

ServerStats Server::stats() const {
  support::MutexLock lock(impl_->stats_mutex);
  return impl_->counters;
}

TenantTable& Server::tenants() { return impl_->tenant_table; }
const TenantTable& Server::tenants() const { return impl_->tenant_table; }
const FairScheduler& Server::scheduler() const { return impl_->scheduler; }

}  // namespace llm4vv::serve
