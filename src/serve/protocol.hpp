#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "frontend/source.hpp"
#include "support/jsonl.hpp"

/// serve::protocol — the llm4vv-serve wire format (docs/SERVING.md).
///
/// One JSON object per line, both directions, built on support/jsonl (flat
/// scalar fields only — the dialect the repo already persists everywhere).
/// Requests carry an "op" discriminator, responses a "type". Every accepted
/// submit gets exactly ONE terminal response — "verdict", "shed", or
/// "error" — echoing the client-chosen "id"; auxiliary responses (hello
/// acknowledgement, pong, stats, the draining notice, the final bye) are
/// not terminal and carry no job id.
namespace llm4vv::serve {

/// Client → server operations.
enum class RequestOp {
  kHello,     ///< {"op":"hello","tenant":"<name>"} — bind the connection
  kSubmit,    ///< {"op":"submit","id":N,"name":...,"language":...,
              ///<  "flavor":...,"content":...} — one validation job
  kPing,      ///< {"op":"ping"} → {"type":"pong"}
  kStats,     ///< {"op":"stats"} → {"type":"stats",...} totals snapshot
  kShutdown,  ///< {"op":"shutdown"} — request a graceful server drain
  kInvalid,   ///< parse failure; `error` holds the reason
};

/// One parsed request line.
struct Request {
  RequestOp op = RequestOp::kInvalid;
  std::string tenant;             ///< hello
  std::uint64_t id = 0;           ///< submit (client-chosen job id)
  frontend::SourceFile file;      ///< submit payload
  std::string error;              ///< kInvalid: why the line was rejected
};

/// Server → client frame types.
enum class ResponseType {
  kHelloOk,   ///< hello acknowledged; echoes the bound tenant
  kVerdict,   ///< terminal: the judge decided
  kShed,      ///< terminal: admission refused the job (reason says why)
  kError,     ///< terminal: the job ran but the judge submission failed
  kPong,
  kStats,     ///< flat totals snapshot (raw fields kept in `fields`)
  kDraining,  ///< broadcast notice: the server stopped accepting jobs
  kBye,       ///< final frame before the server closes the connection
  kInvalid,   ///< unparseable line
};

/// One parsed response line. Only the fields matching `type` are
/// meaningful; `fields` always holds the raw parsed object (the stats
/// snapshot is read through it).
struct Response {
  ResponseType type = ResponseType::kInvalid;
  std::uint64_t id = 0;           ///< terminal frames: echoed job id
  bool has_id = false;
  std::string verdict;            ///< kVerdict: "valid"/"invalid"/"unparseable"
  bool judge_valid = false;       ///< kVerdict: the judge's boolean call
  bool compiled = false;          ///< kVerdict: compile stage accepted
  bool executed = false;          ///< kVerdict: execute stage passed
  bool cached = false;            ///< kVerdict: served from the memo cache
  double gpu_seconds = 0.0;       ///< kVerdict: simulated model time paid
  std::uint64_t latency_us = 0;   ///< kVerdict/kError: submit → response
  std::string reason;             ///< kShed/kError/kInvalid
  std::string tenant;             ///< kHelloOk
  std::map<std::string, support::JsonValue> fields;

  /// True for the exactly-once frames a submit is owed.
  bool terminal() const noexcept {
    return type == ResponseType::kVerdict || type == ResponseType::kShed ||
           type == ResponseType::kError;
  }
};

/// Tenant names travel the wire and become metric-name segments, so they
/// are restricted to [A-Za-z0-9_.-], 1..64 chars.
bool valid_tenant_name(std::string_view name) noexcept;

/// "c" / "cpp" / "fortran" and "openacc" / "openmp" wire spellings.
const char* language_token(frontend::Language language) noexcept;
const char* flavor_token(frontend::Flavor flavor) noexcept;
std::optional<frontend::Language> parse_language_token(std::string_view token);
std::optional<frontend::Flavor> parse_flavor_token(std::string_view token);

// --- request encoding (client side) ---------------------------------------
std::string encode_hello(const std::string& tenant);
std::string encode_submit(std::uint64_t id, const frontend::SourceFile& file);
std::string encode_ping();
std::string encode_stats_request();
std::string encode_shutdown();

// --- response encoding (server side) ---------------------------------------
std::string encode_hello_ok(const std::string& tenant);
/// `gpu_seconds` is the simulated model time this decision paid (0 for
/// cache hits), `latency_us` the submit→response wall time.
std::string encode_verdict(std::uint64_t id, const std::string& verdict,
                           bool judge_valid, bool compiled, bool executed,
                           bool cached, double gpu_seconds,
                           std::uint64_t latency_us);
std::string encode_shed(std::uint64_t id, const std::string& reason);
std::string encode_error(std::uint64_t id, const std::string& reason,
                         std::uint64_t latency_us);
/// A line-level failure (bad JSON, unknown op): an "error" frame with NO
/// id field, so it can never be mistaken for a job's terminal response
/// (parse_response leaves has_id false).
std::string encode_protocol_error(const std::string& reason);
std::string encode_pong();
std::string encode_draining();
std::string encode_bye();

/// Parse one request line. Never throws: malformed input comes back as
/// op == kInvalid with `error` set, so the server can answer rather than
/// drop the connection.
Request parse_request(std::string_view line);

/// Parse one response line (client side). kInvalid on malformed input.
Response parse_response(std::string_view line);

}  // namespace llm4vv::serve
