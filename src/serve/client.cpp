#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace llm4vv::serve {

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      in_buf_(std::move(other.in_buf_)),
      error_(std::move(other.error_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    in_buf_ = std::move(other.in_buf_);
    error_ = std::move(other.error_);
  }
  return *this;
}

bool Client::fail(std::string message) {
  error_ = std::move(message);
  return false;
}

bool Client::connect(const std::string& host, std::uint16_t port,
                     const std::string& tenant, int timeout_ms) {
  close();
  error_.clear();
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return fail("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    return fail("bad host address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    close();
    return fail(std::string("connect failed: ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  if (tenant.empty()) return true;
  if (!send_line(encode_hello(tenant))) return false;
  const auto response = next_response(timeout_ms);
  if (!response.has_value()) {
    return fail(error_.empty() ? "hello timed out" : error_);
  }
  if (response->type != ResponseType::kHelloOk) {
    return fail("hello rejected: " + response->reason);
  }
  return true;
}

void Client::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  in_buf_.clear();
}

bool Client::send_line(const std::string& line) {
  if (fd_ < 0) return fail("not connected");
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = send(fd_, framed.data() + sent, framed.size() - sent,
                           MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail(std::string("send failed: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool Client::send_submit(std::uint64_t id, const frontend::SourceFile& file) {
  return send_line(encode_submit(id, file));
}
bool Client::send_ping() { return send_line(encode_ping()); }
bool Client::send_stats() { return send_line(encode_stats_request()); }
bool Client::send_shutdown() { return send_line(encode_shutdown()); }

bool Client::shutdown_write() {
  if (fd_ < 0) return fail("not connected");
  if (::shutdown(fd_, SHUT_WR) != 0) {
    return fail(std::string("shutdown failed: ") + std::strerror(errno));
  }
  return true;
}

std::optional<Response> Client::next_response(int timeout_ms) {
  if (fd_ < 0) {
    fail("not connected");
    return std::nullopt;
  }
  for (;;) {
    const std::size_t newline = in_buf_.find('\n');
    if (newline != std::string::npos) {
      std::string line = in_buf_.substr(0, newline);
      in_buf_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      return parse_response(line);
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = poll(&pfd, 1, timeout_ms);
    if (ready == 0) {
      error_.clear();  // timeout, not a transport failure
      return std::nullopt;
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      fail(std::string("poll failed: ") + std::strerror(errno));
      return std::nullopt;
    }
    char buf[16384];
    const ssize_t n = recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      in_buf_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      fail("eof");
      return std::nullopt;
    }
    if (errno == EINTR) continue;
    fail(std::string("recv failed: ") + std::strerror(errno));
    return std::nullopt;
  }
}

std::optional<Response> Client::submit_and_wait(
    std::uint64_t id, const frontend::SourceFile& file, int timeout_ms) {
  if (!send_submit(id, file)) return std::nullopt;
  for (;;) {
    auto response = next_response(timeout_ms);
    if (!response.has_value()) {
      if (error_.empty()) fail("submit timed out");
      return std::nullopt;
    }
    if (response->terminal() && response->has_id && response->id == id) {
      return response;
    }
    // Skip pong / stats / draining notices and terminals for other ids
    // (a pipelined caller should use next_response directly instead).
  }
}

}  // namespace llm4vv::serve
