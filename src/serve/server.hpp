#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "judge/judge.hpp"
#include "serve/scheduler.hpp"
#include "serve/tenancy.hpp"
#include "toolchain/compiler.hpp"
#include "toolchain/executor.hpp"

namespace llm4vv::obs {
class Registry;
class Tracer;
}

/// serve::Server — the llm4vv-serve front (docs/SERVING.md).
///
/// A poll()-based IO thread owns the listening socket and every
/// connection: it accepts, splits the byte stream into protocol lines,
/// admits submits through the TenantTable, and enqueues accepted jobs on
/// the FairScheduler. Dispatcher workers pop weighted-fair job batches,
/// run compile → execute inline (both stages are thread-safe const calls)
/// and judge through the async futures API — so misses from all workers
/// coalesce in the model client's central adaptive batcher — then append
/// the terminal response line to the owning connection's output buffer
/// and wake the IO thread to flush it.
///
/// Graceful drain (request_drain(), or a client "shutdown" op): stop
/// accepting connections and submits (late submits shed as "draining"),
/// close the scheduler so workers finish the backlog and exit, flush every
/// buffered response, send "bye", close. wait() returns only after all of
/// that — no accepted job is ever dropped, which serve_test pins against
/// the tenant accounting invariants.
namespace llm4vv::serve {

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;          ///< 0 = ephemeral; see Server::port()
  std::size_t workers = 2;         ///< dispatcher worker threads
  std::size_t job_batch = 8;       ///< jobs per scheduler pop / judge group
  std::size_t max_queued = 1024;   ///< FairScheduler backlog bound
  std::size_t max_line_bytes = 1 << 20;  ///< per-connection line bound
  int listen_backlog = 64;
  std::uint64_t judge_seed = 0;
  TenantConfig default_tenant;     ///< knobs for tenants not listed below
  std::vector<std::pair<std::string, TenantConfig>> tenants;
  /// Optional telemetry. The registry gains "serve.*" probes (per-tenant
  /// accounting, scheduler depth); the tracer records per-job compile /
  /// execute / judge spans. Both must outlive the server.
  std::shared_ptr<obs::Registry> registry;
  std::shared_ptr<obs::Tracer> trace;
  std::string metrics_prefix = "serve";
};

/// Connection- and frame-level counters (job accounting lives in the
/// TenantTable; these cover what tenants cannot see).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t lines_in = 0;
  std::uint64_t responses_out = 0;
  std::uint64_t protocol_errors = 0;
  /// Completed jobs whose connection was already gone at response time
  /// (the work and its accounting still count; only the frame is dropped).
  std::uint64_t orphaned_responses = 0;
};

class Server {
 public:
  Server(toolchain::CompilerDriver compiler, toolchain::Executor executor,
         std::shared_ptr<const judge::Llmj> judge, ServerConfig config = {});
  /// Drains (request_drain + wait) if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and start the IO + worker threads. Throws
  /// std::runtime_error on socket failure. Call once.
  void start();

  /// Begin the graceful drain. Thread-safe, idempotent, non-blocking —
  /// safe from a signal-watcher thread (not from a signal handler: it
  /// takes locks).
  void request_drain();

  /// Block until a requested drain has fully completed: workers joined,
  /// responses flushed, connections closed. Safe from multiple threads.
  void wait();

  /// True once request_drain() (or a shutdown op) was observed.
  bool draining() const;

  /// The bound port (resolves port 0 after start()).
  std::uint16_t port() const;

  ServerStats stats() const;
  /// Per-tenant accounting (admission counters, latency histograms).
  TenantTable& tenants();
  const TenantTable& tenants() const;
  /// Scheduler backlog telemetry.
  const FairScheduler& scheduler() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace llm4vv::serve
