#include "frontend/lexer.hpp"

#include <array>
#include <cctype>

#include "support/strings.hpp"

namespace llm4vv::frontend {

namespace {

constexpr std::array kKeywords = {
    "int",      "long",   "float",    "double", "char",   "void",
    "unsigned", "signed", "short",    "bool",   "if",     "else",
    "while",    "for",    "do",       "return", "break",  "continue",
    "const",    "static", "sizeof",   "struct", "true",   "false",
    "switch",   "case",   "default",  "goto",   "extern", "inline",
    "restrict", "new",    "delete",   "auto",
};

class Cursor {
 public:
  Cursor(std::string_view src, DiagnosticEngine& diags)
      : src_(src), diags_(diags) {}

  bool at_end() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }
  bool match(char expected) {
    if (at_end() || src_[pos_] != expected) return false;
    advance();
    return true;
  }

  int line() const { return line_; }
  int column() const { return column_; }
  DiagnosticEngine& diags() { return diags_; }

 private:
  std::string_view src_;
  DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

/// Reads to end of line, folding `\`-continuations; cursor ends after the
/// newline. Returns the collected text without the trailing newline.
std::string read_logical_line(Cursor& cur) {
  std::string text;
  while (!cur.at_end()) {
    const char c = cur.peek();
    if (c == '\\' && (cur.peek(1) == '\n' ||
                      (cur.peek(1) == '\r' && cur.peek(2) == '\n'))) {
      cur.advance();  // backslash
      if (cur.peek() == '\r') cur.advance();
      cur.advance();  // newline
      text.push_back(' ');
      continue;
    }
    if (c == '\n') {
      cur.advance();
      break;
    }
    if (c == '\r') {
      cur.advance();
      continue;
    }
    text.push_back(cur.advance());
  }
  return text;
}

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

bool is_keyword(std::string_view word) noexcept {
  for (const char* kw : kKeywords) {
    if (word == kw) return true;
  }
  return false;
}

LexOutput lex(std::string_view source, DiagnosticEngine& diags) {
  LexOutput out;
  Cursor cur(source, diags);
  // Stray-character reporting is capped so pathological inputs (binary
  // garbage, heavily mutated files) cannot flood the diagnostic engine.
  int stray_reports = 0;
  constexpr int kMaxStrayReports = 20;

  const auto push = [&](TokenKind kind, std::string text, int line, int col) {
    out.tokens.push_back(Token{kind, std::move(text), line, col});
  };

  while (!cur.at_end()) {
    const int line = cur.line();
    const int col = cur.column();
    const char c = cur.peek();

    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' ||
        c == '\f') {
      cur.advance();
      continue;
    }

    // Comments.
    if (c == '/' && cur.peek(1) == '/') {
      while (!cur.at_end() && cur.peek() != '\n') cur.advance();
      continue;
    }
    if (c == '/' && cur.peek(1) == '*') {
      cur.advance();
      cur.advance();
      bool closed = false;
      while (!cur.at_end()) {
        if (cur.peek() == '*' && cur.peek(1) == '/') {
          cur.advance();
          cur.advance();
          closed = true;
          break;
        }
        cur.advance();
      }
      if (!closed) {
        diags.error(DiagCode::kUnterminated, line, col,
                    "unterminated /* comment");
      }
      continue;
    }

    // Preprocessor-ish lines.
    if (c == '#') {
      const std::string text = read_logical_line(cur);
      const auto words = support::split_whitespace(text);
      if (words.empty()) continue;
      if (support::starts_with(support::trim(text), "#pragma") ||
          (words[0] == "#" && words.size() > 1 && words[1] == "pragma")) {
        push(TokenKind::kPragma, text, line, col);
      } else if (support::starts_with(support::trim(text), "#include")) {
        push(TokenKind::kHashInclude, text, line, col);
      } else if (support::starts_with(support::trim(text), "#define")) {
        // Object-like macro: "#define NAME replacement...".
        if (words.size() >= 3) {
          std::string value;
          for (std::size_t i = 2; i < words.size(); ++i) {
            if (i > 2) value += ' ';
            value += words[i];
          }
          out.defines[words[1]] = value;
        }
      }
      // #ifdef/#endif/#undef etc. are skipped: the corpus never emits them,
      // and skipping matches "preprocess then compile" for trivial guards.
      continue;
    }

    // Identifiers / keywords (with macro substitution).
    if (ident_start(c)) {
      std::string word;
      while (!cur.at_end() && ident_char(cur.peek())) word += cur.advance();
      const auto macro = out.defines.find(word);
      if (macro != out.defines.end()) {
        // One-level substitution: re-lex the replacement in isolation.
        DiagnosticEngine sub_diags;
        LexOutput sub = lex(macro->second, sub_diags);
        for (auto& tok : sub.tokens) {
          if (tok.kind == TokenKind::kEof) break;
          tok.line = line;
          tok.column = col;
          out.tokens.push_back(std::move(tok));
        }
        continue;
      }
      const bool keyword = is_keyword(word);
      push(keyword ? TokenKind::kKeyword : TokenKind::kIdentifier,
           std::move(word), line, col);
      continue;
    }

    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(cur.peek(1))))) {
      std::string num;
      bool is_float = false;
      while (!cur.at_end()) {
        const char d = cur.peek();
        if (std::isdigit(static_cast<unsigned char>(d)) || d == 'x' ||
            d == 'X' ||
            (num.size() >= 1 && (num[0] == '0') &&
             std::isxdigit(static_cast<unsigned char>(d)))) {
          num += cur.advance();
        } else if (d == '.') {
          is_float = true;
          num += cur.advance();
        } else if ((d == 'e' || d == 'E') && num.find('x') == std::string::npos) {
          is_float = true;
          num += cur.advance();
          if (cur.peek() == '+' || cur.peek() == '-') num += cur.advance();
        } else if (d == 'f' || d == 'F') {
          is_float = true;
          cur.advance();
          break;
        } else if (d == 'l' || d == 'L' || d == 'u' || d == 'U') {
          cur.advance();  // integer suffix, dropped
        } else {
          break;
        }
      }
      push(is_float ? TokenKind::kFloatLiteral : TokenKind::kIntLiteral,
           std::move(num), line, col);
      continue;
    }

    // String literal.
    if (c == '"') {
      cur.advance();
      std::string text;
      bool closed = false;
      while (!cur.at_end()) {
        const char d = cur.advance();
        if (d == '\\' && !cur.at_end()) {
          const char e = cur.advance();
          switch (e) {
            case 'n': text.push_back('\n'); break;
            case 't': text.push_back('\t'); break;
            case 'r': text.push_back('\r'); break;
            case '0': text.push_back('\0'); break;
            case '\\': text.push_back('\\'); break;
            case '"': text.push_back('"'); break;
            default: text.push_back(e); break;
          }
          continue;
        }
        if (d == '"') {
          closed = true;
          break;
        }
        if (d == '\n') break;
        text.push_back(d);
      }
      if (!closed) {
        diags.error(DiagCode::kUnterminated, line, col,
                    "unterminated string literal");
      }
      push(TokenKind::kStringLiteral, std::move(text), line, col);
      continue;
    }

    // Char literal.
    if (c == '\'') {
      cur.advance();
      std::string text;
      bool closed = false;
      while (!cur.at_end()) {
        const char d = cur.advance();
        if (d == '\\' && !cur.at_end()) {
          const char e = cur.advance();
          switch (e) {
            case 'n': text.push_back('\n'); break;
            case 't': text.push_back('\t'); break;
            case '0': text.push_back('\0'); break;
            default: text.push_back(e); break;
          }
          continue;
        }
        if (d == '\'') {
          closed = true;
          break;
        }
        if (d == '\n') break;
        text.push_back(d);
      }
      if (!closed) {
        diags.error(DiagCode::kUnterminated, line, col,
                    "unterminated character literal");
      }
      push(TokenKind::kCharLiteral, std::move(text), line, col);
      continue;
    }

    // Punctuators.
    cur.advance();
    TokenKind kind;
    std::string text(1, c);
    switch (c) {
      case '(': kind = TokenKind::kLParen; break;
      case ')': kind = TokenKind::kRParen; break;
      case '{': kind = TokenKind::kLBrace; break;
      case '}': kind = TokenKind::kRBrace; break;
      case '[': kind = TokenKind::kLBracket; break;
      case ']': kind = TokenKind::kRBracket; break;
      case ';': kind = TokenKind::kSemicolon; break;
      case ',': kind = TokenKind::kComma; break;
      case ':': kind = TokenKind::kColon; break;
      case '?': kind = TokenKind::kQuestion; break;
      case '~': kind = TokenKind::kTilde; break;
      case '.': kind = TokenKind::kDot; break;
      case '+':
        if (cur.match('+')) { kind = TokenKind::kPlusPlus; text = "++"; }
        else if (cur.match('=')) { kind = TokenKind::kPlusEq; text = "+="; }
        else kind = TokenKind::kPlus;
        break;
      case '-':
        if (cur.match('-')) { kind = TokenKind::kMinusMinus; text = "--"; }
        else if (cur.match('=')) { kind = TokenKind::kMinusEq; text = "-="; }
        else if (cur.match('>')) { kind = TokenKind::kArrow; text = "->"; }
        else kind = TokenKind::kMinus;
        break;
      case '*':
        if (cur.match('=')) { kind = TokenKind::kStarEq; text = "*="; }
        else kind = TokenKind::kStar;
        break;
      case '/':
        if (cur.match('=')) { kind = TokenKind::kSlashEq; text = "/="; }
        else kind = TokenKind::kSlash;
        break;
      case '%': kind = TokenKind::kPercent; break;
      case '&':
        if (cur.match('&')) { kind = TokenKind::kAmpAmp; text = "&&"; }
        else kind = TokenKind::kAmp;
        break;
      case '|':
        if (cur.match('|')) { kind = TokenKind::kPipePipe; text = "||"; }
        else kind = TokenKind::kPipe;
        break;
      case '^': kind = TokenKind::kCaret; break;
      case '!':
        if (cur.match('=')) { kind = TokenKind::kBangEq; text = "!="; }
        else kind = TokenKind::kBang;
        break;
      case '<':
        if (cur.match('=')) { kind = TokenKind::kLessEq; text = "<="; }
        else if (cur.match('<')) { kind = TokenKind::kShl; text = "<<"; }
        else kind = TokenKind::kLess;
        break;
      case '>':
        if (cur.match('=')) { kind = TokenKind::kGreaterEq; text = ">="; }
        else if (cur.match('>')) { kind = TokenKind::kShr; text = ">>"; }
        else kind = TokenKind::kGreater;
        break;
      case '=':
        if (cur.match('=')) { kind = TokenKind::kEqEq; text = "=="; }
        else kind = TokenKind::kAssign;
        break;
      default:
        if (stray_reports < kMaxStrayReports) {
          ++stray_reports;
          diags.error(DiagCode::kUnexpectedToken, line, col,
                      std::string("stray character '") + c + "' in program");
        }
        continue;
    }
    push(kind, std::move(text), line, col);
  }

  push(TokenKind::kEof, "", cur.line(), cur.column());
  return out;
}

const char* token_kind_name(TokenKind kind) noexcept {
  switch (kind) {
    case TokenKind::kEof: return "end of file";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kKeyword: return "keyword";
    case TokenKind::kIntLiteral: return "integer literal";
    case TokenKind::kFloatLiteral: return "floating literal";
    case TokenKind::kStringLiteral: return "string literal";
    case TokenKind::kCharLiteral: return "character literal";
    case TokenKind::kPragma: return "#pragma";
    case TokenKind::kHashInclude: return "#include";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kComma: return "','";
    case TokenKind::kColon: return "':'";
    case TokenKind::kQuestion: return "'?'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kAmp: return "'&'";
    case TokenKind::kPipe: return "'|'";
    case TokenKind::kCaret: return "'^'";
    case TokenKind::kTilde: return "'~'";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kLess: return "'<'";
    case TokenKind::kGreater: return "'>'";
    case TokenKind::kLessEq: return "'<='";
    case TokenKind::kGreaterEq: return "'>='";
    case TokenKind::kEqEq: return "'=='";
    case TokenKind::kBangEq: return "'!='";
    case TokenKind::kAmpAmp: return "'&&'";
    case TokenKind::kPipePipe: return "'||'";
    case TokenKind::kShl: return "'<<'";
    case TokenKind::kShr: return "'>>'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kPlusEq: return "'+='";
    case TokenKind::kMinusEq: return "'-='";
    case TokenKind::kStarEq: return "'*='";
    case TokenKind::kSlashEq: return "'/='";
    case TokenKind::kPlusPlus: return "'++'";
    case TokenKind::kMinusMinus: return "'--'";
    case TokenKind::kArrow: return "'->'";
    case TokenKind::kDot: return "'.'";
  }
  return "?";
}

}  // namespace llm4vv::frontend
