#pragma once

#include <memory>
#include <string>
#include <vector>

namespace llm4vv::frontend {

/// Scalar base types of the V&V subset. `long`/`int`/`char`/`bool` all map
/// to a 64-bit integer at run time; `float`/`double` map to binary64.
enum class BaseType { kVoid, kInt, kLong, kChar, kBool, kFloat, kDouble };

/// A (base, pointer-depth, optional array extent) type. The subset has no
/// structs or multi-dimensional arrays: V&V tests overwhelmingly use flat
/// scalar/array/pointer data, and linearize 2-D work manually.
struct Type {
  BaseType base = BaseType::kInt;
  int pointer_depth = 0;  ///< e.g. `int*` -> 1, `int**` -> 2
  bool is_array = false;  ///< declared as `T name[extent]`
  /// Array extent expression is kept in the declaration (not here) because
  /// extents may reference macros/consts; after sema this holds the folded
  /// constant extent (0 when not an array or not foldable).
  long array_extent = 0;

  bool is_pointer() const noexcept { return pointer_depth > 0; }
  bool is_float() const noexcept {
    return !is_pointer() &&
           (base == BaseType::kFloat || base == BaseType::kDouble);
  }
};

/// Render a type roughly as spelled, e.g. "double*", "int[1024]".
std::string type_to_string(const Type& type);

// --------------------------------------------------------------------------
// Expressions
// --------------------------------------------------------------------------

enum class ExprKind {
  kIntLit, kFloatLit, kStringLit, kCharLit,
  kIdent,
  kUnary,     ///< op in {-, !, ~, *, &, ++pre, --pre}
  kPostfix,   ///< op in {++, --}
  kBinary,
  kAssign,    ///< op in {=, +=, -=, *=, /=}
  kTernary,
  kCall,
  kIndex,
  kCast,
  kSizeof,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// One expression node. A single struct with a kind tag keeps lowering and
/// printing simple; unused fields stay empty.
struct Expr {
  ExprKind kind = ExprKind::kIntLit;
  int line = 0;
  int column = 0;

  long int_value = 0;         ///< kIntLit / kCharLit
  double float_value = 0.0;   ///< kFloatLit
  std::string text;           ///< kStringLit text, kIdent name, op spelling,
                              ///< kCall callee name
  Type cast_type;             ///< kCast target, kSizeof operand type

  ExprPtr lhs;                ///< unary/binary/assign/index/ternary-cond/cast
  ExprPtr rhs;                ///< binary/assign/index/ternary-then
  ExprPtr third;              ///< ternary-else
  std::vector<ExprPtr> args;  ///< kCall arguments

  /// Filled by sema for kIdent: index into the enclosing Program's symbol
  /// table (-1 when unresolved).
  int symbol_id = -1;
};

// --------------------------------------------------------------------------
// Statements
// --------------------------------------------------------------------------

enum class StmtKind {
  kDecl,
  kExpr,
  kCompound,
  kIf,
  kWhile,
  kDoWhile,
  kFor,
  kReturn,
  kBreak,
  kContinue,
  kPragma,  ///< a directive, optionally owning the statement it applies to
  kEmpty,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// One variable declarator within a declaration statement.
struct Declarator {
  std::string name;
  Type type;
  ExprPtr array_extent;  ///< null unless declared `T name[expr]`
  ExprPtr init;          ///< null when uninitialized
  int symbol_id = -1;    ///< filled by sema
  int line = 0;
  int column = 0;
};

/// One statement node (kind-tagged like Expr).
struct Stmt {
  StmtKind kind = StmtKind::kEmpty;
  int line = 0;
  int column = 0;

  std::vector<Declarator> decls;   ///< kDecl
  ExprPtr expr;                    ///< kExpr / kReturn value / condition
  std::vector<StmtPtr> body;       ///< kCompound children
  StmtPtr then_branch;             ///< kIf then / loop body / pragma target
  StmtPtr else_branch;             ///< kIf else
  StmtPtr init_stmt;               ///< kFor init (decl or expr stmt)
  ExprPtr step_expr;               ///< kFor increment

  std::string pragma_text;         ///< kPragma: the raw "#pragma ..." line
};

// --------------------------------------------------------------------------
// Top level
// --------------------------------------------------------------------------

/// One function parameter.
struct Param {
  std::string name;
  Type type;
  int symbol_id = -1;
};

/// A function definition (the subset has no separate prototypes; forward
/// calls resolve in a pre-pass).
struct FunctionDecl {
  std::string name;
  Type return_type;
  std::vector<Param> params;
  StmtPtr body;  ///< always a kCompound
  int line = 0;
  int column = 0;
};

/// Symbol classes tracked by sema.
enum class SymbolKind { kGlobal, kLocal, kParam, kFunction, kBuiltin };

/// One entry of the program-wide symbol table built by sema.
struct Symbol {
  SymbolKind kind = SymbolKind::kLocal;
  std::string name;
  Type type;
  int function_index = -1;  ///< kFunction: index into Program::functions
};

/// A parsed translation unit plus (after sema) its symbol table.
struct Program {
  std::vector<Declarator> globals;
  std::vector<FunctionDecl> functions;
  /// Pragmas appearing at file scope (e.g. `#pragma acc routine`).
  std::vector<StmtPtr> top_level_pragmas;
  std::vector<Symbol> symbols;  ///< filled by sema
  int main_index = -1;          ///< index of `main` in functions, -1 if none

  /// All pragma statements in source order (non-owning pointers into the
  /// function bodies / top_level_pragmas above), collected by the parser for
  /// the directive validator and the judge's perception layer.
  std::vector<const Stmt*> pragmas;
};

/// Construct helpers used by the parser and by tests building ASTs by hand.
ExprPtr make_int_literal(long value, int line = 0, int column = 0);
ExprPtr make_ident(std::string name, int line = 0, int column = 0);

}  // namespace llm4vv::frontend
