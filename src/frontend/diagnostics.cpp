#include "frontend/diagnostics.hpp"

namespace llm4vv::frontend {

const char* diag_code_name(DiagCode code) noexcept {
  switch (code) {
    case DiagCode::kUnexpectedToken: return "unexpected-token";
    case DiagCode::kUnterminated: return "unterminated";
    case DiagCode::kMismatchedBrace: return "mismatched-brace";
    case DiagCode::kUndeclaredIdentifier: return "undeclared-identifier";
    case DiagCode::kRedefinition: return "redefinition";
    case DiagCode::kNotCallable: return "not-callable";
    case DiagCode::kBadArity: return "bad-arity";
    case DiagCode::kBadDirective: return "bad-directive";
    case DiagCode::kBadClause: return "bad-clause";
    case DiagCode::kBadClauseArg: return "bad-clause-arg";
    case DiagCode::kVersionGate: return "version-gate";
    case DiagCode::kMissingMain: return "missing-main";
    case DiagCode::kInvalidBreak: return "invalid-break";
    case DiagCode::kTypeMismatch: return "type-mismatch";
    case DiagCode::kStrictness: return "strictness";
  }
  return "?";
}

void DiagnosticEngine::report(Severity severity, DiagCode code, int line,
                              int column, std::string message) {
  diags_.push_back(
      Diagnostic{severity, code, line, column, std::move(message)});
}

void DiagnosticEngine::error(DiagCode code, int line, int column,
                             std::string message) {
  report(Severity::kError, code, line, column, std::move(message));
}

void DiagnosticEngine::warning(DiagCode code, int line, int column,
                               std::string message) {
  report(Severity::kWarning, code, line, column, std::move(message));
}

std::size_t DiagnosticEngine::error_count() const noexcept {
  std::size_t n = 0;
  for (const auto& d : diags_) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

bool DiagnosticEngine::has_code(DiagCode code) const noexcept {
  for (const auto& d : diags_) {
    if (d.code == code) return true;
  }
  return false;
}

}  // namespace llm4vv::frontend
