#pragma once

#include <functional>
#include <string>

#include "frontend/ast.hpp"
#include "frontend/diagnostics.hpp"
#include "frontend/token.hpp"

namespace llm4vv::frontend {

/// Parser configuration.
struct ParserOptions {
  /// Decides whether a `#pragma` line introduces a *construct* (and thus
  /// owns the statement that follows, like `#pragma acc parallel loop`) or
  /// is *standalone* (like `#pragma acc update host(...)`). The toolchain
  /// wires this to the directive library; the default treats every pragma
  /// as standalone.
  std::function<bool(const std::string& pragma_text)> pragma_takes_statement;

  /// Give up after this many parse errors (error recovery guard).
  int max_errors = 25;
};

/// Parse a token stream into a Program. Parse errors are reported to
/// `diags`; the returned Program is best-effort (callers must check
/// `diags.has_errors()` before using it for execution).
Program parse(const std::vector<Token>& tokens, DiagnosticEngine& diags,
              const ParserOptions& options = {});

}  // namespace llm4vv::frontend
