#pragma once

#include <span>

#include "frontend/ast.hpp"

namespace llm4vv::frontend {

/// Description of one runtime-library function that is implicitly declared
/// in every translation unit (matching the headers the V&V corpus includes:
/// stdio.h, stdlib.h, math.h, openacc.h, omp.h).
struct BuiltinInfo {
  const char* name;
  int arity;            ///< fixed parameter count; ignored when variadic
  bool variadic;
  BaseType return_base; ///< return type base
  int return_pointer;   ///< return type pointer depth
};

/// Constant identifiers that are implicitly declared (OpenACC device enums).
struct BuiltinConstant {
  const char* name;
  long value;
};

/// The full builtin function table (sema declares these; the VM implements
/// them in vm/runtime.cpp — the two are kept in sync by a unit test).
std::span<const BuiltinInfo> builtin_functions() noexcept;

/// The builtin constant table.
std::span<const BuiltinConstant> builtin_constants() noexcept;

/// Look up a builtin function by name; nullptr when not a builtin.
const BuiltinInfo* find_builtin(std::string_view name) noexcept;

/// Look up a builtin constant by name; nullptr when not one.
const BuiltinConstant* find_builtin_constant(std::string_view name) noexcept;

}  // namespace llm4vv::frontend
