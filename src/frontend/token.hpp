#pragma once

#include <string>
#include <vector>

namespace llm4vv::frontend {

/// Token kinds for the C/C++ V&V subset. Punctuators get individual kinds so
/// the parser can switch on them without string comparisons.
enum class TokenKind {
  kEof,
  kIdentifier,
  kKeyword,
  kIntLiteral,
  kFloatLiteral,
  kStringLiteral,
  kCharLiteral,
  kPragma,       ///< one whole `#pragma ...` line (continuations folded in)
  kHashInclude,  ///< an `#include ...` line (ignored by later phases)
  // Punctuators:
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kSemicolon, kComma, kColon, kQuestion,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAmp, kPipe, kCaret, kTilde, kBang,
  kLess, kGreater, kLessEq, kGreaterEq, kEqEq, kBangEq,
  kAmpAmp, kPipePipe,
  kShl, kShr,
  kAssign, kPlusEq, kMinusEq, kStarEq, kSlashEq,
  kPlusPlus, kMinusMinus,
  kArrow, kDot,
};

/// One lexed token with its 1-based source position.
struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;  ///< raw spelling (pragmas: the full directive line)
  int line = 1;
  int column = 1;

  /// True for an identifier or keyword spelled exactly `s`.
  bool is(const char* s) const { return text == s; }
};

/// Name of a token kind for diagnostics ("identifier", "'{'", ...).
const char* token_kind_name(TokenKind kind) noexcept;

}  // namespace llm4vv::frontend
