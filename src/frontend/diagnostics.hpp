#pragma once

#include <string>
#include <vector>

namespace llm4vv::frontend {

/// Diagnostic severity; errors make the compile stage fail.
enum class Severity { kNote, kWarning, kError };

/// Stable machine-readable diagnostic categories. The toolchain's compiler
/// personas key their message formatting off these, and tests assert on them
/// instead of on free-form message text.
enum class DiagCode {
  kUnexpectedToken,       ///< parser: token does not fit the grammar
  kUnterminated,          ///< lexer: unterminated string/char/comment
  kMismatchedBrace,       ///< parser: missing '{' '}' '(' ')' pairing
  kUndeclaredIdentifier,  ///< sema: use of an undeclared identifier
  kRedefinition,          ///< sema: identifier redefined in the same scope
  kNotCallable,           ///< sema: call of a non-function
  kBadArity,              ///< sema: wrong number of call arguments
  kBadDirective,          ///< directive: unknown directive name
  kBadClause,             ///< directive: unknown or inapplicable clause
  kBadClauseArg,          ///< directive: malformed clause argument
  kVersionGate,           ///< directive: feature newer than supported spec
  kMissingMain,           ///< sema: no main function/program entry
  kInvalidBreak,          ///< sema: break/continue outside a loop
  kTypeMismatch,          ///< sema: operation on incompatible type
  kStrictness,            ///< toolchain persona strictness quirk
};

/// Short stable mnemonic for a DiagCode, e.g. "undeclared-identifier".
const char* diag_code_name(DiagCode code) noexcept;

/// One compiler diagnostic with source position (1-based line/column).
struct Diagnostic {
  Severity severity = Severity::kError;
  DiagCode code = DiagCode::kUnexpectedToken;
  int line = 0;
  int column = 0;
  std::string message;
};

/// Collects diagnostics across lexing, parsing, sema, and directive
/// validation for one file. Passed by reference down the front-end; the
/// toolchain driver renders the result in a compiler persona's style.
class DiagnosticEngine {
 public:
  /// Append a diagnostic.
  void report(Severity severity, DiagCode code, int line, int column,
              std::string message);

  /// Convenience: error-severity report.
  void error(DiagCode code, int line, int column, std::string message);

  /// Convenience: warning-severity report.
  void warning(DiagCode code, int line, int column, std::string message);

  /// All diagnostics in report order.
  const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diags_;
  }

  /// Number of error-severity diagnostics.
  std::size_t error_count() const noexcept;

  /// True when at least one error was reported.
  bool has_errors() const noexcept { return error_count() > 0; }

  /// True when any diagnostic carries the given code.
  bool has_code(DiagCode code) const noexcept;

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace llm4vv::frontend
