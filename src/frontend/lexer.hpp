#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "frontend/diagnostics.hpp"
#include "frontend/token.hpp"

namespace llm4vv::frontend {

/// Result of lexing one translation unit.
struct LexOutput {
  std::vector<Token> tokens;  ///< ends with a kEof token
  /// Object-like macros collected from `#define NAME value` lines; the lexer
  /// substitutes them into subsequent identifier tokens (one level, which is
  /// all the V&V corpus uses).
  std::map<std::string, std::string> defines;
};

/// Hand-written C/C++ lexer for the V&V test subset.
///
/// Properties that matter to the reproduction:
///  - `#pragma` lines are captured verbatim as single kPragma tokens
///    (with `\` line continuations folded) so negative-probing mutations and
///    the directive validator both see the exact source spelling;
///  - `#include` lines become kHashInclude tokens and are otherwise ignored
///    (the VM's runtime library is implicitly available);
///  - `#define NAME token` object-like macros are substituted;
///  - unterminated strings/comments produce kUnterminated diagnostics.
LexOutput lex(std::string_view source, DiagnosticEngine& diags);

/// True if `word` is a keyword of the C/C++ subset.
bool is_keyword(std::string_view word) noexcept;

}  // namespace llm4vv::frontend
