#pragma once

#include <string>

namespace llm4vv::frontend {

/// Source language of a V&V test file. The paper's suites contain C, C++,
/// and (for OpenACC Part One) a small share of Fortran.
enum class Language { kC, kCpp, kFortran };

/// Directive-based programming model a test targets.
enum class Flavor { kOpenACC, kOpenMP };

/// Human-readable names, e.g. "C", "C++", "Fortran".
const char* language_name(Language language) noexcept;

/// Canonical file extension: ".c", ".cpp", ".F90".
const char* language_extension(Language language) noexcept;

/// Human-readable flavor names: "OpenACC" / "OpenMP".
const char* flavor_name(Flavor flavor) noexcept;

/// One V&V test source file as it travels through the system: through
/// negative probing, the compiler front-end, the VM, and the judge prompts.
struct SourceFile {
  std::string name;     ///< e.g. "acc_parallel_reduction_017.c"
  Language language = Language::kC;
  Flavor flavor = Flavor::kOpenACC;
  std::string content;  ///< full source text
};

inline const char* language_name(Language language) noexcept {
  switch (language) {
    case Language::kC: return "C";
    case Language::kCpp: return "C++";
    case Language::kFortran: return "Fortran";
  }
  return "?";
}

inline const char* language_extension(Language language) noexcept {
  switch (language) {
    case Language::kC: return ".c";
    case Language::kCpp: return ".cpp";
    case Language::kFortran: return ".F90";
  }
  return "";
}

inline const char* flavor_name(Flavor flavor) noexcept {
  switch (flavor) {
    case Flavor::kOpenACC: return "OpenACC";
    case Flavor::kOpenMP: return "OpenMP";
  }
  return "?";
}

}  // namespace llm4vv::frontend
