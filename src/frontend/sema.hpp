#pragma once

#include "frontend/ast.hpp"
#include "frontend/diagnostics.hpp"

namespace llm4vv::frontend {

/// Run semantic analysis over a parsed Program:
///
///  - builds the program-wide symbol table (globals, functions, params,
///    locals, builtins and builtin constants) and writes `symbol_id` back
///    into every identifier, declarator, and parameter;
///  - reports undeclared identifiers (the paper's issue-2 mutation class),
///    redefinitions, calls of non-functions, arity mismatches, break /
///    continue outside loops, deref/index of non-pointers, and a missing
///    `main`;
///  - folds constant array extents into `Type::array_extent` where possible
///    (non-constant extents are left to the VM, which evaluates the extent
///    expression at declaration time).
///
/// Returns true when no *new* errors were reported by this pass.
bool analyze(Program& program, DiagnosticEngine& diags);

}  // namespace llm4vv::frontend
