#include "frontend/sema.hpp"

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "frontend/builtins.hpp"

namespace llm4vv::frontend {

namespace {

/// Attempts to fold an expression into a compile-time integer constant.
/// Handles the forms the corpus uses for array extents: literals, sizeof,
/// unary minus, and +-*/% of constants.
std::optional<long> fold_constant(const Expr* expr) {
  if (expr == nullptr) return std::nullopt;
  switch (expr->kind) {
    case ExprKind::kIntLit:
    case ExprKind::kCharLit:
      return expr->int_value;
    case ExprKind::kSizeof:
      // All scalar slots are one VM cell wide; sizeof is cell-count based.
      return 1;
    case ExprKind::kUnary:
      if (expr->text == "-") {
        if (const auto v = fold_constant(expr->lhs.get())) return -*v;
      }
      return std::nullopt;
    case ExprKind::kBinary: {
      const auto l = fold_constant(expr->lhs.get());
      const auto r = fold_constant(expr->rhs.get());
      if (!l || !r) return std::nullopt;
      if (expr->text == "+") return *l + *r;
      if (expr->text == "-") return *l - *r;
      if (expr->text == "*") return *l * *r;
      if (expr->text == "/") return *r == 0 ? std::nullopt
                                            : std::optional<long>(*l / *r);
      if (expr->text == "%") return *r == 0 ? std::nullopt
                                            : std::optional<long>(*l % *r);
      return std::nullopt;
    }
    default:
      return std::nullopt;
  }
}

class Sema {
 public:
  Sema(Program& program, DiagnosticEngine& diags)
      : program_(program), diags_(diags) {}

  bool run() {
    const std::size_t errors_before = diags_.error_count();
    register_builtins();
    register_functions();
    analyze_globals();
    for (std::size_t i = 0; i < program_.functions.size(); ++i) {
      analyze_function(program_.functions[i]);
    }
    if (program_.main_index < 0) {
      diags_.error(DiagCode::kMissingMain, 1, 1,
                   "no entry point: expected a function named 'main'");
    }
    return diags_.error_count() == errors_before;
  }

 private:
  using Scope = std::map<std::string, int>;  // name -> symbol id

  int add_symbol(SymbolKind kind, std::string name, Type type,
                 int function_index = -1) {
    program_.symbols.push_back(
        Symbol{kind, std::move(name), type, function_index});
    return static_cast<int>(program_.symbols.size()) - 1;
  }

  void register_builtins() {
    for (const auto& b : builtin_functions()) {
      Type t;
      t.base = b.return_base;
      t.pointer_depth = b.return_pointer;
      const int id = add_symbol(SymbolKind::kBuiltin, b.name, t);
      global_scope_[b.name] = id;
    }
    for (const auto& c : builtin_constants()) {
      Type t;
      t.base = BaseType::kLong;
      const int id = add_symbol(SymbolKind::kBuiltin, c.name, t);
      global_scope_[c.name] = id;
    }
  }

  void register_functions() {
    for (std::size_t i = 0; i < program_.functions.size(); ++i) {
      auto& fn = program_.functions[i];
      if (global_scope_.count(fn.name) &&
          program_.symbols[global_scope_[fn.name]].kind ==
              SymbolKind::kFunction) {
        diags_.error(DiagCode::kRedefinition, fn.line, fn.column,
                     "redefinition of function '" + fn.name + "'");
        continue;
      }
      const int id = add_symbol(SymbolKind::kFunction, fn.name,
                                fn.return_type, static_cast<int>(i));
      global_scope_[fn.name] = id;
    }
  }

  void analyze_globals() {
    scopes_.push_back(&global_scope_);
    for (auto& decl : program_.globals) {
      declare(decl, SymbolKind::kGlobal);
      if (decl.init) analyze_expr(decl.init.get());
    }
    scopes_.pop_back();
  }

  void declare(Declarator& decl, SymbolKind kind) {
    Scope& scope = *scopes_.back();
    const auto it = scope.find(decl.name);
    if (it != scope.end() &&
        program_.symbols[it->second].kind != SymbolKind::kBuiltin) {
      diags_.error(DiagCode::kRedefinition, decl.line, decl.column,
                   "redefinition of '" + decl.name + "'");
    }
    if (decl.type.is_array) {
      if (const auto extent = fold_constant(decl.array_extent.get())) {
        decl.type.array_extent = *extent;
        if (*extent <= 0) {
          diags_.error(DiagCode::kTypeMismatch, decl.line, decl.column,
                       "array '" + decl.name + "' has non-positive size " +
                           std::to_string(*extent));
        }
      } else if (decl.array_extent) {
        analyze_expr(decl.array_extent.get());  // runtime-sized (VLA)
        decl.type.array_extent = 0;
      } else {
        diags_.error(DiagCode::kTypeMismatch, decl.line, decl.column,
                     "array '" + decl.name + "' has no size");
      }
    }
    decl.symbol_id = add_symbol(kind, decl.name, decl.type);
    scope[decl.name] = decl.symbol_id;
  }

  void analyze_function(FunctionDecl& fn) {
    Scope fn_scope;
    scopes_.push_back(&global_scope_);
    scopes_.push_back(&fn_scope);
    for (auto& param : fn.params) {
      if (fn_scope.count(param.name)) {
        diags_.error(DiagCode::kRedefinition, fn.line, fn.column,
                     "duplicate parameter '" + param.name + "'");
      }
      param.symbol_id = add_symbol(SymbolKind::kParam, param.name, param.type);
      fn_scope[param.name] = param.symbol_id;
    }
    loop_depth_ = 0;
    analyze_stmt(fn.body.get());
    scopes_.pop_back();
    scopes_.pop_back();
  }

  void analyze_stmt(Stmt* stmt) {
    if (stmt == nullptr) return;
    switch (stmt->kind) {
      case StmtKind::kDecl:
        for (auto& decl : stmt->decls) {
          // Initializer is analyzed before declaring so `int x = x;`
          // correctly reports x as undeclared.
          if (decl.init) analyze_expr(decl.init.get());
          declare(decl, SymbolKind::kLocal);
        }
        break;
      case StmtKind::kExpr:
        analyze_expr(stmt->expr.get());
        break;
      case StmtKind::kCompound: {
        Scope block_scope;
        scopes_.push_back(&block_scope);
        for (auto& child : stmt->body) analyze_stmt(child.get());
        scopes_.pop_back();
        break;
      }
      case StmtKind::kIf:
        analyze_expr(stmt->expr.get());
        analyze_stmt(stmt->then_branch.get());
        analyze_stmt(stmt->else_branch.get());
        break;
      case StmtKind::kWhile:
      case StmtKind::kDoWhile:
        analyze_expr(stmt->expr.get());
        ++loop_depth_;
        analyze_stmt(stmt->then_branch.get());
        --loop_depth_;
        break;
      case StmtKind::kFor: {
        Scope for_scope;
        scopes_.push_back(&for_scope);
        analyze_stmt(stmt->init_stmt.get());
        if (stmt->expr) analyze_expr(stmt->expr.get());
        if (stmt->step_expr) analyze_expr(stmt->step_expr.get());
        ++loop_depth_;
        analyze_stmt(stmt->then_branch.get());
        --loop_depth_;
        scopes_.pop_back();
        break;
      }
      case StmtKind::kReturn:
        if (stmt->expr) analyze_expr(stmt->expr.get());
        break;
      case StmtKind::kBreak:
      case StmtKind::kContinue:
        if (loop_depth_ == 0) {
          diags_.error(DiagCode::kInvalidBreak, stmt->line, stmt->column,
                       stmt->kind == StmtKind::kBreak
                           ? "'break' statement not in a loop"
                           : "'continue' statement not in a loop");
        }
        break;
      case StmtKind::kPragma:
        // Directive text itself is validated by the directive library; here
        // we only analyze the statement the construct applies to.
        analyze_stmt(stmt->then_branch.get());
        break;
      case StmtKind::kEmpty:
        break;
    }
  }

  int lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto hit = (*it)->find(name);
      if (hit != (*it)->end()) return hit->second;
    }
    return -1;
  }

  /// Lightweight type of an expression, for pointer/array checks.
  Type expr_type(const Expr* expr) const {
    if (expr == nullptr) return Type{};
    switch (expr->kind) {
      case ExprKind::kIdent:
        if (expr->symbol_id >= 0 &&
            expr->symbol_id < static_cast<int>(program_.symbols.size())) {
          return program_.symbols[expr->symbol_id].type;
        }
        return Type{};
      case ExprKind::kFloatLit: {
        Type t;
        t.base = BaseType::kDouble;
        return t;
      }
      case ExprKind::kStringLit: {
        Type t;
        t.base = BaseType::kChar;
        t.pointer_depth = 1;
        return t;
      }
      case ExprKind::kCast:
        return expr->cast_type;
      case ExprKind::kUnary:
        if (expr->text == "*") {
          Type t = expr_type(expr->lhs.get());
          if (t.is_array) {
            t.is_array = false;
          } else if (t.pointer_depth > 0) {
            --t.pointer_depth;
          }
          return t;
        }
        if (expr->text == "&") {
          Type t = expr_type(expr->lhs.get());
          t.is_array = false;
          ++t.pointer_depth;
          return t;
        }
        return expr_type(expr->lhs.get());
      case ExprKind::kIndex: {
        Type t = expr_type(expr->lhs.get());
        if (t.is_array) {
          t.is_array = false;
        } else if (t.pointer_depth > 0) {
          --t.pointer_depth;
        }
        return t;
      }
      case ExprKind::kBinary: {
        const Type l = expr_type(expr->lhs.get());
        if (l.is_pointer() || l.is_array) return l;
        const Type r = expr_type(expr->rhs.get());
        if (r.is_float()) return r;
        return l;
      }
      case ExprKind::kCall: {
        const int id = lookup(expr->text);
        if (id >= 0) return program_.symbols[id].type;
        return Type{};
      }
      default:
        return Type{};
    }
  }

  static bool is_lvalue(const Expr* expr) {
    if (expr == nullptr) return false;
    switch (expr->kind) {
      case ExprKind::kIdent:
      case ExprKind::kIndex:
        return true;
      case ExprKind::kUnary:
        return expr->text == "*";
      default:
        return false;
    }
  }

  void analyze_expr(Expr* expr) {
    if (expr == nullptr) return;
    switch (expr->kind) {
      case ExprKind::kIdent: {
        const int id = lookup(expr->text);
        if (id < 0) {
          diags_.error(DiagCode::kUndeclaredIdentifier, expr->line,
                       expr->column,
                       "use of undeclared identifier '" + expr->text + "'");
        } else {
          const auto kind = program_.symbols[id].kind;
          expr->symbol_id = id;
          if (kind == SymbolKind::kFunction) {
            // Bare function name outside a call: fine (function pointer-ish
            // usage is not in the subset, but harmless).
          }
        }
        break;
      }
      case ExprKind::kCall: {
        const int id = lookup(expr->text);
        if (id < 0) {
          diags_.error(DiagCode::kUndeclaredIdentifier, expr->line,
                       expr->column,
                       "call to undeclared function '" + expr->text + "'");
        } else {
          expr->symbol_id = id;
          const Symbol& sym = program_.symbols[id];
          if (sym.kind == SymbolKind::kFunction) {
            const auto& fn = program_.functions[sym.function_index];
            if (fn.params.size() != expr->args.size()) {
              diags_.error(DiagCode::kBadArity, expr->line, expr->column,
                           "function '" + expr->text + "' expects " +
                               std::to_string(fn.params.size()) +
                               " argument(s), got " +
                               std::to_string(expr->args.size()));
            }
          } else if (sym.kind == SymbolKind::kBuiltin) {
            const BuiltinInfo* info = find_builtin(expr->text);
            if (info == nullptr) {
              // A builtin *constant* used as a function.
              diags_.error(DiagCode::kNotCallable, expr->line, expr->column,
                           "'" + expr->text + "' is not a function");
            } else if (!info->variadic &&
                       static_cast<int>(expr->args.size()) != info->arity) {
              diags_.error(DiagCode::kBadArity, expr->line, expr->column,
                           "builtin '" + expr->text + "' expects " +
                               std::to_string(info->arity) +
                               " argument(s), got " +
                               std::to_string(expr->args.size()));
            } else if (info->variadic &&
                       static_cast<int>(expr->args.size()) < info->arity) {
              diags_.error(DiagCode::kBadArity, expr->line, expr->column,
                           "builtin '" + expr->text + "' expects at least " +
                               std::to_string(info->arity) + " argument(s)");
            }
          } else {
            diags_.error(DiagCode::kNotCallable, expr->line, expr->column,
                         "called object '" + expr->text +
                             "' is not a function");
          }
        }
        for (auto& arg : expr->args) analyze_expr(arg.get());
        break;
      }
      case ExprKind::kAssign:
        analyze_expr(expr->lhs.get());
        analyze_expr(expr->rhs.get());
        if (!is_lvalue(expr->lhs.get())) {
          diags_.error(DiagCode::kTypeMismatch, expr->line, expr->column,
                       "expression is not assignable");
        }
        break;
      case ExprKind::kUnary:
        analyze_expr(expr->lhs.get());
        if (expr->text == "*") {
          const Type t = expr_type(expr->lhs.get());
          if (!t.is_pointer() && !t.is_array) {
            diags_.error(DiagCode::kTypeMismatch, expr->line, expr->column,
                         "indirection requires a pointer operand");
          }
        }
        if ((expr->text == "++" || expr->text == "--") &&
            !is_lvalue(expr->lhs.get())) {
          diags_.error(DiagCode::kTypeMismatch, expr->line, expr->column,
                       "operand of '" + expr->text + "' is not assignable");
        }
        break;
      case ExprKind::kPostfix:
        analyze_expr(expr->lhs.get());
        if (!is_lvalue(expr->lhs.get())) {
          diags_.error(DiagCode::kTypeMismatch, expr->line, expr->column,
                       "operand of postfix '" + expr->text +
                           "' is not assignable");
        }
        break;
      case ExprKind::kIndex: {
        analyze_expr(expr->lhs.get());
        analyze_expr(expr->rhs.get());
        const Type t = expr_type(expr->lhs.get());
        if (!t.is_pointer() && !t.is_array) {
          diags_.error(DiagCode::kTypeMismatch, expr->line, expr->column,
                       "subscripted value is not an array or pointer");
        }
        break;
      }
      case ExprKind::kBinary:
      case ExprKind::kTernary:
        analyze_expr(expr->lhs.get());
        analyze_expr(expr->rhs.get());
        analyze_expr(expr->third.get());
        break;
      case ExprKind::kCast:
      case ExprKind::kSizeof:
        analyze_expr(expr->lhs.get());
        break;
      default:
        break;
    }
  }

  Program& program_;
  DiagnosticEngine& diags_;
  Scope global_scope_;
  std::vector<Scope*> scopes_;
  int loop_depth_ = 0;
};

}  // namespace

bool analyze(Program& program, DiagnosticEngine& diags) {
  Sema sema(program, diags);
  return sema.run();
}

}  // namespace llm4vv::frontend
