#include "frontend/parser.hpp"

#include <cstdlib>
#include <stdexcept>

namespace llm4vv::frontend {

namespace {

/// Thrown internally to unwind to a synchronization point; never escapes
/// parse().
struct ParseError {};

/// Thrown when max_errors is exceeded; aborts the parse entirely.
struct TooManyErrors {};

bool is_type_keyword(const Token& tok) {
  if (tok.kind != TokenKind::kKeyword) return false;
  return tok.is("int") || tok.is("long") || tok.is("float") ||
         tok.is("double") || tok.is("char") || tok.is("void") ||
         tok.is("bool") || tok.is("unsigned") || tok.is("signed") ||
         tok.is("short") || tok.is("const") || tok.is("static") ||
         tok.is("extern") || tok.is("inline");
}

class Parser {
 public:
  Parser(const std::vector<Token>& tokens, DiagnosticEngine& diags,
         const ParserOptions& options)
      : tokens_(tokens), diags_(diags), options_(options) {}

  Program run() {
    Program program;
    try {
      while (!at_end()) {
        try {
          parse_top_level(program);
        } catch (const ParseError&) {
          synchronize_top_level();
        }
      }
    } catch (const TooManyErrors&) {
      // Diagnostics already record the failure; return what we have.
    }
    collect_pragmas(program);
    return program;
  }

 private:
  // -- token plumbing ------------------------------------------------------

  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& advance() {
    const Token& tok = peek();
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return tok;
  }
  bool at_end() const { return peek().kind == TokenKind::kEof; }
  bool check(TokenKind kind) const { return peek().kind == kind; }
  bool match(TokenKind kind) {
    if (!check(kind)) return false;
    advance();
    return true;
  }
  const Token& expect(TokenKind kind, const char* context) {
    if (check(kind)) return advance();
    error_here(std::string("expected ") + token_kind_name(kind) + " " +
                   context + ", found " + token_kind_name(peek().kind),
               kind == TokenKind::kLBrace || kind == TokenKind::kRBrace
                   ? DiagCode::kMismatchedBrace
                   : DiagCode::kUnexpectedToken);
    throw ParseError{};
  }

  void error_here(const std::string& message,
                  DiagCode code = DiagCode::kUnexpectedToken) {
    diags_.error(code, peek().line, peek().column, message);
    if (static_cast<int>(diags_.error_count()) >= options_.max_errors) {
      throw TooManyErrors{};
    }
  }

  void synchronize_top_level() {
    // Skip to something that can plausibly start a new top-level item.
    while (!at_end()) {
      if (check(TokenKind::kSemicolon)) {
        advance();
        return;
      }
      if (check(TokenKind::kRBrace)) {
        advance();
        return;
      }
      if (is_type_keyword(peek()) || check(TokenKind::kPragma)) return;
      advance();
    }
  }

  void synchronize_statement() {
    while (!at_end()) {
      if (check(TokenKind::kSemicolon)) {
        advance();
        return;
      }
      if (check(TokenKind::kRBrace)) return;
      advance();
    }
  }

  // -- types ---------------------------------------------------------------

  bool looks_like_type() const { return is_type_keyword(peek()); }

  Type parse_type_specifier() {
    Type type;
    bool saw_base = false;
    bool is_unsigned = false;
    int longs = 0;
    for (;;) {
      const Token& tok = peek();
      if (tok.kind != TokenKind::kKeyword) break;
      if (tok.is("const") || tok.is("static") || tok.is("extern") ||
          tok.is("inline") || tok.is("restrict") || tok.is("signed")) {
        advance();
        continue;
      }
      if (tok.is("unsigned")) { is_unsigned = true; advance(); continue; }
      if (tok.is("long")) { ++longs; saw_base = true; advance(); continue; }
      if (tok.is("short")) { saw_base = true; advance(); continue; }
      if (tok.is("int")) { type.base = BaseType::kInt; saw_base = true; advance(); continue; }
      if (tok.is("char")) { type.base = BaseType::kChar; saw_base = true; advance(); continue; }
      if (tok.is("bool")) { type.base = BaseType::kBool; saw_base = true; advance(); continue; }
      if (tok.is("float")) { type.base = BaseType::kFloat; saw_base = true; advance(); continue; }
      if (tok.is("double")) { type.base = BaseType::kDouble; saw_base = true; advance(); continue; }
      if (tok.is("void")) { type.base = BaseType::kVoid; saw_base = true; advance(); continue; }
      break;
    }
    if (longs > 0 && type.base == BaseType::kInt) type.base = BaseType::kLong;
    (void)is_unsigned;  // unsigned collapses onto the signed 64-bit model
    if (!saw_base) {
      error_here("expected a type specifier");
      throw ParseError{};
    }
    while (match(TokenKind::kStar)) {
      ++type.pointer_depth;
      while (peek().kind == TokenKind::kKeyword &&
             (peek().is("const") || peek().is("restrict"))) {
        advance();
      }
    }
    return type;
  }

  // -- top level -----------------------------------------------------------

  void parse_top_level(Program& program) {
    if (match(TokenKind::kHashInclude)) return;
    if (check(TokenKind::kPragma)) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kPragma;
      stmt->line = peek().line;
      stmt->column = peek().column;
      stmt->pragma_text = advance().text;
      program.top_level_pragmas.push_back(std::move(stmt));
      return;
    }
    if (check(TokenKind::kSemicolon)) {
      advance();
      return;
    }
    if (!looks_like_type()) {
      error_here("expected a declaration at file scope, found " +
                 std::string(token_kind_name(peek().kind)));
      throw ParseError{};
    }

    Type type = parse_type_specifier();
    const Token& name = expect(TokenKind::kIdentifier, "after type");

    if (check(TokenKind::kLParen)) {
      parse_function(program, type, name);
      return;
    }

    // Global variable declaration (possibly multiple declarators).
    parse_declarator_list(program.globals, type, name);
    expect(TokenKind::kSemicolon, "after global declaration");
  }

  void parse_function(Program& program, const Type& return_type,
                      const Token& name) {
    FunctionDecl fn;
    fn.name = name.text;
    fn.return_type = return_type;
    fn.line = name.line;
    fn.column = name.column;

    expect(TokenKind::kLParen, "after function name");
    if (!check(TokenKind::kRParen)) {
      // `void` alone means "no parameters".
      if (peek().is("void") && peek(1).kind == TokenKind::kRParen) {
        advance();
      } else {
        for (;;) {
          Param param;
          param.type = parse_type_specifier();
          const Token& pname = expect(TokenKind::kIdentifier,
                                      "in parameter list");
          param.name = pname.text;
          if (match(TokenKind::kLBracket)) {
            // Array parameter decays to a pointer.
            if (!check(TokenKind::kRBracket)) parse_expression();
            expect(TokenKind::kRBracket, "after array parameter");
            ++param.type.pointer_depth;
          }
          fn.params.push_back(std::move(param));
          if (!match(TokenKind::kComma)) break;
        }
      }
    }
    expect(TokenKind::kRParen, "after parameter list");
    fn.body = parse_compound();
    if (fn.name == "main") {
      program.main_index = static_cast<int>(program.functions.size());
    }
    program.functions.push_back(std::move(fn));
  }

  void parse_declarator_list(std::vector<Declarator>& out, Type base_type,
                             const Token& first_name) {
    // `first_name` was already consumed by the caller.
    out.push_back(parse_declarator_tail(base_type, first_name));
    while (match(TokenKind::kComma)) {
      Type type = base_type;
      type.is_array = false;
      // Pointer stars bind per declarator (`int *p, q;` leaves q an int):
      // the stars the type specifier consumed belong to the first
      // declarator only.
      type.pointer_depth = 0;
      while (match(TokenKind::kStar)) ++type.pointer_depth;
      const Token& name = expect(TokenKind::kIdentifier, "in declaration");
      out.push_back(parse_declarator_tail(type, name));
    }
  }

  Declarator parse_declarator_tail(Type type, const Token& name) {
    Declarator decl;
    decl.name = name.text;
    decl.line = name.line;
    decl.column = name.column;
    if (match(TokenKind::kLBracket)) {
      type.is_array = true;
      if (!check(TokenKind::kRBracket)) {
        decl.array_extent = parse_assignment();
      }
      expect(TokenKind::kRBracket, "after array extent");
    }
    decl.type = type;
    if (match(TokenKind::kAssign)) {
      decl.init = parse_assignment();
    }
    return decl;
  }

  // -- statements ----------------------------------------------------------

  StmtPtr parse_compound() {
    const Token& open = expect(TokenKind::kLBrace, "to open a block");
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kCompound;
    stmt->line = open.line;
    stmt->column = open.column;
    while (!check(TokenKind::kRBrace) && !at_end()) {
      try {
        stmt->body.push_back(parse_statement());
      } catch (const ParseError&) {
        synchronize_statement();
      }
    }
    if (!match(TokenKind::kRBrace)) {
      error_here("expected '}' to close block opened at line " +
                     std::to_string(open.line),
                 DiagCode::kMismatchedBrace);
      throw ParseError{};
    }
    return stmt;
  }

  StmtPtr parse_statement() {
    const Token& tok = peek();
    auto at = [&](StmtPtr stmt) {
      stmt->line = tok.line;
      stmt->column = tok.column;
      return stmt;
    };

    if (match(TokenKind::kHashInclude)) {
      // An include in statement position is tolerated as a no-op (mutated
      // files sometimes splice one mid-function).
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kEmpty;
      return at(std::move(stmt));
    }
    if (check(TokenKind::kPragma)) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kPragma;
      stmt->pragma_text = advance().text;
      if (options_.pragma_takes_statement &&
          options_.pragma_takes_statement(stmt->pragma_text)) {
        stmt->then_branch = parse_statement();
      }
      return at(std::move(stmt));
    }
    if (check(TokenKind::kLBrace)) return parse_compound();
    if (match(TokenKind::kSemicolon)) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kEmpty;
      return at(std::move(stmt));
    }
    if (tok.kind == TokenKind::kKeyword) {
      if (tok.is("if")) return parse_if();
      if (tok.is("while")) return parse_while();
      if (tok.is("do")) return parse_do_while();
      if (tok.is("for")) return parse_for();
      if (tok.is("return")) {
        advance();
        auto stmt = std::make_unique<Stmt>();
        stmt->kind = StmtKind::kReturn;
        if (!check(TokenKind::kSemicolon)) stmt->expr = parse_expression();
        expect(TokenKind::kSemicolon, "after return statement");
        return at(std::move(stmt));
      }
      if (tok.is("break") || tok.is("continue")) {
        advance();
        auto stmt = std::make_unique<Stmt>();
        stmt->kind = tok.is("break") ? StmtKind::kBreak : StmtKind::kContinue;
        expect(TokenKind::kSemicolon, "after jump statement");
        return at(std::move(stmt));
      }
      if (is_type_keyword(tok)) return parse_decl_statement();
      error_here("unexpected keyword '" + tok.text + "' in statement");
      throw ParseError{};
    }
    if (check(TokenKind::kRBrace)) {
      error_here("unexpected '}'", DiagCode::kMismatchedBrace);
      throw ParseError{};
    }

    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kExpr;
    stmt->expr = parse_expression();
    expect(TokenKind::kSemicolon, "after expression statement");
    return at(std::move(stmt));
  }

  StmtPtr parse_decl_statement() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kDecl;
    stmt->line = peek().line;
    stmt->column = peek().column;
    const Type type = parse_type_specifier();
    const Token& name = expect(TokenKind::kIdentifier, "in declaration");
    parse_declarator_list(stmt->decls, type, name);
    expect(TokenKind::kSemicolon, "after declaration");
    return stmt;
  }

  StmtPtr parse_if() {
    const Token& kw = advance();  // 'if'
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kIf;
    stmt->line = kw.line;
    stmt->column = kw.column;
    expect(TokenKind::kLParen, "after 'if'");
    stmt->expr = parse_expression();
    expect(TokenKind::kRParen, "after if condition");
    stmt->then_branch = parse_statement();
    if (peek().kind == TokenKind::kKeyword && peek().is("else")) {
      advance();
      stmt->else_branch = parse_statement();
    }
    return stmt;
  }

  StmtPtr parse_while() {
    const Token& kw = advance();  // 'while'
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kWhile;
    stmt->line = kw.line;
    stmt->column = kw.column;
    expect(TokenKind::kLParen, "after 'while'");
    stmt->expr = parse_expression();
    expect(TokenKind::kRParen, "after while condition");
    stmt->then_branch = parse_statement();
    return stmt;
  }

  StmtPtr parse_do_while() {
    const Token& kw = advance();  // 'do'
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kDoWhile;
    stmt->line = kw.line;
    stmt->column = kw.column;
    stmt->then_branch = parse_statement();
    if (!(peek().kind == TokenKind::kKeyword && peek().is("while"))) {
      error_here("expected 'while' after do-body");
      throw ParseError{};
    }
    advance();
    expect(TokenKind::kLParen, "after 'while'");
    stmt->expr = parse_expression();
    expect(TokenKind::kRParen, "after do-while condition");
    expect(TokenKind::kSemicolon, "after do-while");
    return stmt;
  }

  StmtPtr parse_for() {
    const Token& kw = advance();  // 'for'
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kFor;
    stmt->line = kw.line;
    stmt->column = kw.column;
    expect(TokenKind::kLParen, "after 'for'");
    if (match(TokenKind::kSemicolon)) {
      // no init
    } else if (looks_like_type()) {
      stmt->init_stmt = parse_decl_statement();
    } else {
      auto init = std::make_unique<Stmt>();
      init->kind = StmtKind::kExpr;
      init->line = peek().line;
      init->column = peek().column;
      init->expr = parse_expression();
      stmt->init_stmt = std::move(init);
      expect(TokenKind::kSemicolon, "after for-init");
    }
    if (!check(TokenKind::kSemicolon)) stmt->expr = parse_expression();
    expect(TokenKind::kSemicolon, "after for-condition");
    if (!check(TokenKind::kRParen)) stmt->step_expr = parse_expression();
    expect(TokenKind::kRParen, "after for-clauses");
    stmt->then_branch = parse_statement();
    return stmt;
  }

  // -- expressions ---------------------------------------------------------

  ExprPtr parse_expression() { return parse_assignment(); }

  ExprPtr parse_assignment() {
    ExprPtr lhs = parse_ternary();
    const TokenKind k = peek().kind;
    if (k == TokenKind::kAssign || k == TokenKind::kPlusEq ||
        k == TokenKind::kMinusEq || k == TokenKind::kStarEq ||
        k == TokenKind::kSlashEq) {
      const Token& op = advance();
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kAssign;
      expr->text = op.text;
      expr->line = op.line;
      expr->column = op.column;
      expr->lhs = std::move(lhs);
      expr->rhs = parse_assignment();
      return expr;
    }
    return lhs;
  }

  ExprPtr parse_ternary() {
    ExprPtr cond = parse_binary(0);
    if (!check(TokenKind::kQuestion)) return cond;
    const Token& q = advance();
    auto expr = std::make_unique<Expr>();
    expr->kind = ExprKind::kTernary;
    expr->line = q.line;
    expr->column = q.column;
    expr->lhs = std::move(cond);
    expr->rhs = parse_expression();
    expect(TokenKind::kColon, "in conditional expression");
    expr->third = parse_ternary();
    return expr;
  }

  static int binary_precedence(TokenKind kind) {
    switch (kind) {
      case TokenKind::kPipePipe: return 1;
      case TokenKind::kAmpAmp: return 2;
      case TokenKind::kPipe: return 3;
      case TokenKind::kCaret: return 4;
      case TokenKind::kAmp: return 5;
      case TokenKind::kEqEq:
      case TokenKind::kBangEq: return 6;
      case TokenKind::kLess:
      case TokenKind::kGreater:
      case TokenKind::kLessEq:
      case TokenKind::kGreaterEq: return 7;
      case TokenKind::kShl:
      case TokenKind::kShr: return 8;
      case TokenKind::kPlus:
      case TokenKind::kMinus: return 9;
      case TokenKind::kStar:
      case TokenKind::kSlash:
      case TokenKind::kPercent: return 10;
      default: return 0;
    }
  }

  ExprPtr parse_binary(int min_prec) {
    ExprPtr lhs = parse_unary();
    for (;;) {
      const int prec = binary_precedence(peek().kind);
      if (prec == 0 || prec < min_prec) return lhs;
      const Token& op = advance();
      ExprPtr rhs = parse_binary(prec + 1);
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kBinary;
      expr->text = op.text;
      expr->line = op.line;
      expr->column = op.column;
      expr->lhs = std::move(lhs);
      expr->rhs = std::move(rhs);
      lhs = std::move(expr);
    }
  }

  ExprPtr parse_unary() {
    const Token& tok = peek();
    const TokenKind k = tok.kind;
    if (k == TokenKind::kMinus || k == TokenKind::kBang ||
        k == TokenKind::kTilde || k == TokenKind::kStar ||
        k == TokenKind::kAmp || k == TokenKind::kPlusPlus ||
        k == TokenKind::kMinusMinus || k == TokenKind::kPlus) {
      advance();
      if (k == TokenKind::kPlus) return parse_unary();  // unary plus: no-op
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kUnary;
      expr->text = tok.text;
      expr->line = tok.line;
      expr->column = tok.column;
      expr->lhs = parse_unary();
      return expr;
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr expr = parse_primary();
    for (;;) {
      if (check(TokenKind::kLParen)) {
        const Token& open = advance();
        auto call = std::make_unique<Expr>();
        call->kind = ExprKind::kCall;
        call->line = open.line;
        call->column = open.column;
        if (expr->kind == ExprKind::kIdent) {
          call->text = expr->text;
        } else {
          error_here("only direct calls of named functions are supported",
                     DiagCode::kNotCallable);
          throw ParseError{};
        }
        if (!check(TokenKind::kRParen)) {
          for (;;) {
            call->args.push_back(parse_assignment());
            if (!match(TokenKind::kComma)) break;
          }
        }
        expect(TokenKind::kRParen, "after call arguments");
        expr = std::move(call);
        continue;
      }
      if (check(TokenKind::kLBracket)) {
        const Token& open = advance();
        auto index = std::make_unique<Expr>();
        index->kind = ExprKind::kIndex;
        index->line = open.line;
        index->column = open.column;
        index->lhs = std::move(expr);
        index->rhs = parse_expression();
        expect(TokenKind::kRBracket, "after array index");
        expr = std::move(index);
        continue;
      }
      if (check(TokenKind::kPlusPlus) || check(TokenKind::kMinusMinus)) {
        const Token& op = advance();
        auto post = std::make_unique<Expr>();
        post->kind = ExprKind::kPostfix;
        post->text = op.text;
        post->line = op.line;
        post->column = op.column;
        post->lhs = std::move(expr);
        expr = std::move(post);
        continue;
      }
      return expr;
    }
  }

  ExprPtr parse_primary() {
    const Token& tok = peek();
    switch (tok.kind) {
      case TokenKind::kIntLiteral: {
        advance();
        auto expr = std::make_unique<Expr>();
        expr->kind = ExprKind::kIntLit;
        expr->int_value = std::strtol(tok.text.c_str(), nullptr, 0);
        expr->line = tok.line;
        expr->column = tok.column;
        return expr;
      }
      case TokenKind::kFloatLiteral: {
        advance();
        auto expr = std::make_unique<Expr>();
        expr->kind = ExprKind::kFloatLit;
        expr->float_value = std::strtod(tok.text.c_str(), nullptr);
        expr->line = tok.line;
        expr->column = tok.column;
        return expr;
      }
      case TokenKind::kStringLiteral: {
        advance();
        auto expr = std::make_unique<Expr>();
        expr->kind = ExprKind::kStringLit;
        expr->text = tok.text;
        expr->line = tok.line;
        expr->column = tok.column;
        return expr;
      }
      case TokenKind::kCharLiteral: {
        advance();
        auto expr = std::make_unique<Expr>();
        expr->kind = ExprKind::kCharLit;
        expr->int_value = tok.text.empty()
                              ? 0
                              : static_cast<unsigned char>(tok.text[0]);
        expr->line = tok.line;
        expr->column = tok.column;
        return expr;
      }
      case TokenKind::kIdentifier: {
        advance();
        return make_ident(tok.text, tok.line, tok.column);
      }
      case TokenKind::kKeyword: {
        if (tok.is("sizeof")) {
          advance();
          expect(TokenKind::kLParen, "after sizeof");
          auto expr = std::make_unique<Expr>();
          expr->kind = ExprKind::kSizeof;
          expr->line = tok.line;
          expr->column = tok.column;
          if (looks_like_type()) {
            expr->cast_type = parse_type_specifier();
          } else {
            expr->lhs = parse_expression();
          }
          expect(TokenKind::kRParen, "after sizeof operand");
          return expr;
        }
        if (tok.is("true") || tok.is("false")) {
          advance();
          return make_int_literal(tok.is("true") ? 1 : 0, tok.line,
                                  tok.column);
        }
        error_here("unexpected keyword '" + tok.text + "' in expression");
        throw ParseError{};
      }
      case TokenKind::kLParen: {
        advance();
        if (looks_like_type()) {
          // Cast expression.
          auto expr = std::make_unique<Expr>();
          expr->kind = ExprKind::kCast;
          expr->line = tok.line;
          expr->column = tok.column;
          expr->cast_type = parse_type_specifier();
          expect(TokenKind::kRParen, "after cast type");
          expr->lhs = parse_unary();
          return expr;
        }
        ExprPtr inner = parse_expression();
        expect(TokenKind::kRParen, "after parenthesized expression");
        return inner;
      }
      default:
        error_here("expected an expression, found " +
                   std::string(token_kind_name(tok.kind)));
        throw ParseError{};
    }
  }

  // -- pragma collection ---------------------------------------------------

  static void collect_from_stmt(const Stmt* stmt,
                                std::vector<const Stmt*>& out) {
    if (stmt == nullptr) return;
    if (stmt->kind == StmtKind::kPragma) out.push_back(stmt);
    for (const auto& child : stmt->body) collect_from_stmt(child.get(), out);
    collect_from_stmt(stmt->then_branch.get(), out);
    collect_from_stmt(stmt->else_branch.get(), out);
    collect_from_stmt(stmt->init_stmt.get(), out);
  }

  void collect_pragmas(Program& program) {
    for (const auto& pragma : program.top_level_pragmas) {
      program.pragmas.push_back(pragma.get());
    }
    for (const auto& fn : program.functions) {
      collect_from_stmt(fn.body.get(), program.pragmas);
    }
  }

  const std::vector<Token>& tokens_;
  DiagnosticEngine& diags_;
  const ParserOptions& options_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse(const std::vector<Token>& tokens, DiagnosticEngine& diags,
              const ParserOptions& options) {
  Parser parser(tokens, diags, options);
  return parser.run();
}

}  // namespace llm4vv::frontend
