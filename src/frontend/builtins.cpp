#include "frontend/builtins.hpp"

#include <array>
#include <string_view>

namespace llm4vv::frontend {

namespace {

constexpr std::array<BuiltinInfo, 35> kBuiltins = {{
    // stdio
    {"printf", 1, true, BaseType::kInt, 0},
    // Fortran `print *, ...` lowers to this variadic writer.
    {"f90_print", 0, true, BaseType::kVoid, 0},
    {"fprintf", 2, true, BaseType::kInt, 0},
    {"puts", 1, false, BaseType::kInt, 0},
    // stdlib
    {"malloc", 1, false, BaseType::kVoid, 1},
    {"calloc", 2, false, BaseType::kVoid, 1},
    {"free", 1, false, BaseType::kVoid, 0},
    {"exit", 1, false, BaseType::kVoid, 0},
    {"abort", 0, false, BaseType::kVoid, 0},
    {"abs", 1, false, BaseType::kInt, 0},
    {"labs", 1, false, BaseType::kLong, 0},
    {"rand", 0, false, BaseType::kInt, 0},
    {"srand", 1, false, BaseType::kVoid, 0},
    // math
    {"fabs", 1, false, BaseType::kDouble, 0},
    {"fabsf", 1, false, BaseType::kFloat, 0},
    {"sqrt", 1, false, BaseType::kDouble, 0},
    {"sin", 1, false, BaseType::kDouble, 0},
    {"cos", 1, false, BaseType::kDouble, 0},
    {"exp", 1, false, BaseType::kDouble, 0},
    {"log", 1, false, BaseType::kDouble, 0},
    {"pow", 2, false, BaseType::kDouble, 0},
    {"floor", 1, false, BaseType::kDouble, 0},
    {"ceil", 1, false, BaseType::kDouble, 0},
    // openacc.h
    {"acc_get_num_devices", 1, false, BaseType::kInt, 0},
    {"acc_set_device_num", 2, false, BaseType::kVoid, 0},
    {"acc_get_device_num", 1, false, BaseType::kInt, 0},
    {"acc_init", 1, false, BaseType::kVoid, 0},
    {"acc_shutdown", 1, false, BaseType::kVoid, 0},
    {"acc_on_device", 1, false, BaseType::kInt, 0},
    // omp.h
    {"omp_get_num_threads", 0, false, BaseType::kInt, 0},
    {"omp_get_thread_num", 0, false, BaseType::kInt, 0},
    {"omp_get_max_threads", 0, false, BaseType::kInt, 0},
    {"omp_get_num_devices", 0, false, BaseType::kInt, 0},
    {"omp_is_initial_device", 0, false, BaseType::kInt, 0},
    {"omp_get_num_teams", 0, false, BaseType::kInt, 0},
}};

constexpr std::array<BuiltinConstant, 6> kConstants = {{
    {"acc_device_default", 0},
    {"acc_device_host", 1},
    {"acc_device_not_host", 2},
    {"acc_device_nvidia", 3},
    {"RAND_MAX", 2147483647L},
    {"NULL", 0},
}};

}  // namespace

std::span<const BuiltinInfo> builtin_functions() noexcept {
  return {kBuiltins.data(), kBuiltins.size()};
}

std::span<const BuiltinConstant> builtin_constants() noexcept {
  return {kConstants.data(), kConstants.size()};
}

const BuiltinInfo* find_builtin(std::string_view name) noexcept {
  for (const auto& b : kBuiltins) {
    if (name == b.name) return &b;
  }
  return nullptr;
}

const BuiltinConstant* find_builtin_constant(std::string_view name) noexcept {
  for (const auto& c : kConstants) {
    if (name == c.name) return &c;
  }
  return nullptr;
}

}  // namespace llm4vv::frontend
