#include "frontend/fortran.hpp"

#include <cctype>
#include <cstdlib>
#include <map>
#include <set>

#include "support/strings.hpp"

namespace llm4vv::frontend {

namespace {

/// Token over one Fortran source line.
struct FTok {
  enum Kind {
    kIdent, kInt, kFloat, kString,
    kLParen, kRParen, kComma, kColonColon, kColon,
    kAssign, kPlus, kMinus, kStar, kSlash, kPower,
    kEq, kNe, kLt, kGt, kLe, kGe, kAnd, kOr, kNot,
    kEnd
  } kind = kEnd;
  std::string text;
  long int_value = 0;
  double float_value = 0.0;
};

/// Lex one logical Fortran line (comments already stripped).
std::vector<FTok> lex_line(std::string_view line, DiagnosticEngine& diags,
                           int lineno) {
  std::vector<FTok> toks;
  std::size_t i = 0;
  const auto push = [&](FTok::Kind k, std::string text = {}) {
    FTok t;
    t.kind = k;
    t.text = std::move(text);
    toks.push_back(std::move(t));
  };
  while (i < line.size()) {
    const char c = line[i];
    if (c == ' ' || c == '\t') { ++i; continue; }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (i < line.size() &&
             (std::isalnum(static_cast<unsigned char>(line[i])) ||
              line[i] == '_')) {
        word.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(line[i]))));
        ++i;
      }
      push(FTok::kIdent, std::move(word));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < line.size() &&
         std::isdigit(static_cast<unsigned char>(line[i + 1])))) {
      std::string num;
      bool is_float = false;
      while (i < line.size()) {
        char d = line[i];
        if (std::isdigit(static_cast<unsigned char>(d))) { num.push_back(d); ++i; continue; }
        if (d == '.') {
          // Don't swallow `.and.` style operators after a number.
          if (i + 1 < line.size() &&
              std::isalpha(static_cast<unsigned char>(line[i + 1]))) break;
          is_float = true; num.push_back('.'); ++i; continue;
        }
        if (d == 'e' || d == 'E' || d == 'd' || d == 'D') {
          is_float = true; num.push_back('e'); ++i;
          if (i < line.size() && (line[i] == '+' || line[i] == '-')) {
            num.push_back(line[i]); ++i;
          }
          continue;
        }
        if (d == '_') {  // kind suffix like 1.0_8
          ++i;
          while (i < line.size() &&
                 std::isalnum(static_cast<unsigned char>(line[i]))) ++i;
          break;
        }
        break;
      }
      FTok t;
      if (is_float) {
        t.kind = FTok::kFloat;
        t.float_value = std::strtod(num.c_str(), nullptr);
      } else {
        t.kind = FTok::kInt;
        t.int_value = std::strtol(num.c_str(), nullptr, 10);
      }
      t.text = num;
      toks.push_back(std::move(t));
      continue;
    }
    if (c == '\'' || c == '"') {
      const char quote = c;
      ++i;
      std::string text;
      bool closed = false;
      while (i < line.size()) {
        if (line[i] == quote) { closed = true; ++i; break; }
        text.push_back(line[i]); ++i;
      }
      if (!closed) {
        diags.error(DiagCode::kUnterminated, lineno, 1,
                    "unterminated string literal");
      }
      push(FTok::kString, std::move(text));
      continue;
    }
    if (c == '.') {
      // dotted logical operator: .and. .or. .not. .eq. etc.
      std::size_t j = i + 1;
      std::string word;
      while (j < line.size() && std::isalpha(static_cast<unsigned char>(line[j]))) {
        word.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(line[j]))));
        ++j;
      }
      if (j < line.size() && line[j] == '.') {
        i = j + 1;
        if (word == "and") push(FTok::kAnd);
        else if (word == "or") push(FTok::kOr);
        else if (word == "not") push(FTok::kNot);
        else if (word == "eq") push(FTok::kEq);
        else if (word == "ne") push(FTok::kNe);
        else if (word == "lt") push(FTok::kLt);
        else if (word == "gt") push(FTok::kGt);
        else if (word == "le") push(FTok::kLe);
        else if (word == "ge") push(FTok::kGe);
        else {
          diags.error(DiagCode::kUnexpectedToken, lineno, 1,
                      "unknown operator '." + word + ".'");
        }
        continue;
      }
      diags.error(DiagCode::kUnexpectedToken, lineno, 1, "stray '.'");
      ++i;
      continue;
    }
    ++i;
    switch (c) {
      case '(': push(FTok::kLParen); break;
      case ')': push(FTok::kRParen); break;
      case ',': push(FTok::kComma); break;
      case ':':
        if (i < line.size() && line[i] == ':') { ++i; push(FTok::kColonColon); }
        else push(FTok::kColon);
        break;
      case '=':
        if (i < line.size() && line[i] == '=') { ++i; push(FTok::kEq); }
        else push(FTok::kAssign);
        break;
      case '+': push(FTok::kPlus); break;
      case '-': push(FTok::kMinus); break;
      case '*':
        if (i < line.size() && line[i] == '*') { ++i; push(FTok::kPower); }
        else push(FTok::kStar);
        break;
      case '/':
        if (i < line.size() && line[i] == '=') { ++i; push(FTok::kNe); }
        else push(FTok::kSlash);
        break;
      case '<':
        if (i < line.size() && line[i] == '=') { ++i; push(FTok::kLe); }
        else push(FTok::kLt);
        break;
      case '>':
        if (i < line.size() && line[i] == '=') { ++i; push(FTok::kGe); }
        else push(FTok::kGt);
        break;
      default:
        diags.error(DiagCode::kUnexpectedToken, lineno, 1,
                    std::string("stray character '") + c + "'");
        break;
    }
  }
  FTok eof;
  eof.kind = FTok::kEnd;
  toks.push_back(eof);
  return toks;
}

/// One logical source line with its tokens.
struct FLine {
  int lineno = 0;
  std::string raw;
  std::vector<FTok> toks;
  bool is_pragma = false;
  std::string pragma_text;
};

class FortranParser {
 public:
  FortranParser(std::string_view source, DiagnosticEngine& diags,
                const ParserOptions& options)
      : diags_(diags), options_(options) {
    preprocess(source);
  }

  Program run() {
    Program program;
    FunctionDecl main_fn;
    main_fn.name = "main";
    main_fn.return_type = Type{BaseType::kInt, 0, false, 0};
    main_fn.line = 1;

    auto body = std::make_unique<Stmt>();
    body->kind = StmtKind::kCompound;
    body->line = 1;

    cursor_ = 0;
    bool saw_program = false;
    // Header: `program NAME`, `use ...`, `implicit none`.
    while (cursor_ < lines_.size()) {
      const FLine& line = lines_[cursor_];
      if (line.is_pragma) break;
      const auto& toks = line.toks;
      if (toks.empty() || toks[0].kind != FTok::kIdent) break;
      if (toks[0].text == "program") {
        saw_program = true;
        ++cursor_;
        continue;
      }
      if (toks[0].text == "use" || toks[0].text == "implicit") {
        ++cursor_;
        continue;
      }
      break;
    }
    if (!saw_program) {
      diags_.error(DiagCode::kMissingMain, 1, 1,
                   "expected a 'program' statement");
    }

    parse_block(body->body, BlockKind::kProgram);
    // Consume the `end program` line if present.
    if (cursor_ < lines_.size()) ++cursor_;

    // Implicit `return errs`-less fallthrough: return 0.
    auto ret = std::make_unique<Stmt>();
    ret->kind = StmtKind::kReturn;
    ret->expr = make_int_literal(0);
    body->body.push_back(std::move(ret));

    main_fn.body = std::move(body);
    program.main_index = 0;
    program.functions.push_back(std::move(main_fn));
    collect_pragmas(program);
    return program;
  }

 private:
  void preprocess(std::string_view source) {
    int lineno = 0;
    for (auto& raw : support::split_lines(source)) {
      ++lineno;
      std::string_view text = support::trim(raw);
      if (text.empty()) continue;
      FLine line;
      line.lineno = lineno;
      line.raw = std::string(text);
      if (text[0] == '!') {
        // Comment or directive sentinel.
        if (support::starts_with(text, "!$acc") ||
            support::starts_with(text, "!$omp")) {
          line.is_pragma = true;
          line.pragma_text = std::string(text);
          lines_.push_back(std::move(line));
        }
        continue;
      }
      line.toks = lex_line(text, diags_, lineno);
      lines_.push_back(std::move(line));
    }
  }

  // -- statement block parsing ---------------------------------------------

  /// What construct a block belongs to; decides which `end ...` lines
  /// terminate it. Fortran requires the matching closer (`end do` for do,
  /// `end if`/`else` for if, bare `end`/`end program` for the program), so
  /// deleting a closer is a *structural* error, exactly like deleting a
  /// brace in C.
  enum class BlockKind { kProgram, kDo, kIf };

  bool is_terminator(const FLine& line, BlockKind kind) const {
    if (line.is_pragma || line.toks.empty() ||
        line.toks[0].kind != FTok::kIdent) {
      return false;
    }
    const std::string& first = line.toks[0].text;
    const std::string second =
        line.toks.size() > 1 && line.toks[1].kind == FTok::kIdent
            ? line.toks[1].text
            : std::string();
    switch (kind) {
      case BlockKind::kDo:
        return first == "enddo" || (first == "end" && second == "do");
      case BlockKind::kIf:
        return first == "endif" || (first == "end" && second == "if") ||
               first == "else" || first == "elseif";
      case BlockKind::kProgram:
        return first == "end" &&
               (second.empty() || second == "program");
    }
    return false;
  }

  /// Parses statements until a terminator of `kind` (left unconsumed).
  void parse_block(std::vector<StmtPtr>& out, BlockKind kind) {
    while (cursor_ < lines_.size()) {
      const FLine& line = lines_[cursor_];
      if (is_terminator(line, kind)) return;
      StmtPtr stmt = parse_statement();
      if (stmt) out.push_back(std::move(stmt));
    }
    if (kind != BlockKind::kProgram) {
      diags_.error(DiagCode::kMismatchedBrace,
                   lines_.empty() ? 1 : lines_.back().lineno, 1,
                   kind == BlockKind::kDo
                       ? "missing 'end do' before end of file"
                       : "missing 'end if' before end of file");
    }
  }

  StmtPtr parse_statement() {
    FLine& line = lines_[cursor_];
    const int lineno = line.lineno;

    if (line.is_pragma) {
      ++cursor_;
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kPragma;
      stmt->line = lineno;
      stmt->pragma_text = line.pragma_text;
      if (options_.pragma_takes_statement &&
          options_.pragma_takes_statement(stmt->pragma_text) &&
          cursor_ < lines_.size()) {
        stmt->then_branch = parse_statement();
      }
      return stmt;
    }

    pos_ = 0;
    cur_line_ = &line;
    const FTok& head = peek();
    if (head.kind != FTok::kIdent) {
      diags_.error(DiagCode::kUnexpectedToken, lineno, 1,
                   "expected a statement");
      ++cursor_;
      return nullptr;
    }

    const std::string& kw = head.text;
    if (kw == "integer" || kw == "real" || kw == "logical" ||
        kw == "double") {
      return parse_declaration(lineno);
    }
    if (kw == "do") return parse_do(lineno);
    if (kw == "if") return parse_if(lineno);
    if (kw == "call") return parse_call_stmt(lineno);
    if (kw == "allocate") return parse_allocate(lineno, /*alloc=*/true);
    if (kw == "deallocate") return parse_allocate(lineno, /*alloc=*/false);
    if (kw == "print") return parse_print(lineno);
    if (kw == "stop") {
      advance();
      long code = 0;
      if (peek().kind == FTok::kInt) code = advance().int_value;
      ++cursor_;
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kReturn;
      stmt->line = lineno;
      stmt->expr = make_int_literal(code, lineno);
      return stmt;
    }
    if (kw == "return") {
      ++cursor_;
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kReturn;
      stmt->line = lineno;
      stmt->expr = make_int_literal(0, lineno);
      return stmt;
    }
    if (kw == "exit") {  // loop exit
      ++cursor_;
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kBreak;
      stmt->line = lineno;
      return stmt;
    }
    if (kw == "cycle") {
      ++cursor_;
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kContinue;
      stmt->line = lineno;
      return stmt;
    }

    // Assignment: `name = expr` or `name(idx) = expr`.
    return parse_assignment_stmt(lineno);
  }

  StmtPtr parse_declaration(int lineno) {
    // `integer[, parameter | , allocatable] :: names`
    Type base;
    const std::string& kw = advance().text;
    if (kw == "integer") base.base = BaseType::kLong;
    else if (kw == "logical") base.base = BaseType::kBool;
    else base.base = BaseType::kDouble;  // real / real(8) / double precision
    if (kw == "double") {
      if (peek().kind == FTok::kIdent && peek().text == "precision") advance();
    }
    if (peek().kind == FTok::kLParen) {  // kind spec `real(8)`
      skip_parens();
    }
    bool is_parameter = false;
    bool is_allocatable = false;
    while (peek().kind == FTok::kComma) {
      advance();
      if (peek().kind == FTok::kIdent) {
        const std::string attr = advance().text;
        if (attr == "parameter") is_parameter = true;
        else if (attr == "allocatable") is_allocatable = true;
        else if (attr == "dimension") { if (peek().kind == FTok::kLParen) skip_parens(); }
      }
    }
    if (peek().kind != FTok::kColonColon) {
      diags_.error(DiagCode::kUnexpectedToken, lineno, 1,
                   "expected '::' in declaration");
      ++cursor_;
      return nullptr;
    }
    advance();

    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kDecl;
    stmt->line = lineno;
    for (;;) {
      if (peek().kind != FTok::kIdent) {
        diags_.error(DiagCode::kUnexpectedToken, lineno, 1,
                     "expected a name in declaration");
        break;
      }
      Declarator decl;
      decl.name = advance().text;
      decl.type = base;
      decl.line = lineno;
      if (peek().kind == FTok::kLParen) {
        advance();
        if (peek().kind == FTok::kColon) {
          // deferred shape `(:)` -> allocatable handled as pointer
          advance();
          expect(FTok::kRParen, lineno);
          decl.type.pointer_depth = 1;
        } else {
          // fixed extent: extent+1 cells for 1-based indexing
          ExprPtr extent = parse_expr();
          expect(FTok::kRParen, lineno);
          decl.type.is_array = true;
          auto plus1 = std::make_unique<Expr>();
          plus1->kind = ExprKind::kBinary;
          plus1->text = "+";
          plus1->line = lineno;
          plus1->lhs = std::move(extent);
          plus1->rhs = make_int_literal(1, lineno);
          decl.array_extent = std::move(plus1);
          array_names_.insert(decl.name);
        }
      }
      if (is_allocatable && decl.type.pointer_depth > 0) {
        array_names_.insert(decl.name);
      }
      if (peek().kind == FTok::kAssign) {
        advance();
        decl.init = parse_expr();
      }
      if (is_parameter) parameter_names_.insert(decl.name);
      stmt->decls.push_back(std::move(decl));
      if (peek().kind != FTok::kComma) break;
      advance();
    }
    ++cursor_;
    return stmt;
  }

  StmtPtr parse_do(int lineno) {
    advance();  // 'do'
    if (peek().kind != FTok::kIdent) {
      diags_.error(DiagCode::kUnexpectedToken, lineno, 1,
                   "expected loop variable after 'do'");
      ++cursor_;
      return nullptr;
    }
    const std::string var = advance().text;
    expect(FTok::kAssign, lineno);
    ExprPtr lo = parse_expr();
    expect(FTok::kComma, lineno);
    ExprPtr hi = parse_expr();
    ++cursor_;  // done with the do-line

    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kFor;
    stmt->line = lineno;

    auto init = std::make_unique<Stmt>();
    init->kind = StmtKind::kExpr;
    init->line = lineno;
    auto assign = std::make_unique<Expr>();
    assign->kind = ExprKind::kAssign;
    assign->text = "=";
    assign->line = lineno;
    assign->lhs = make_ident(var, lineno);
    assign->rhs = std::move(lo);
    init->expr = std::move(assign);
    stmt->init_stmt = std::move(init);

    auto cond = std::make_unique<Expr>();
    cond->kind = ExprKind::kBinary;
    cond->text = "<=";
    cond->line = lineno;
    cond->lhs = make_ident(var, lineno);
    cond->rhs = std::move(hi);
    stmt->expr = std::move(cond);

    auto step = std::make_unique<Expr>();
    step->kind = ExprKind::kPostfix;
    step->text = "++";
    step->line = lineno;
    step->lhs = make_ident(var, lineno);
    stmt->step_expr = std::move(step);

    auto body = std::make_unique<Stmt>();
    body->kind = StmtKind::kCompound;
    body->line = lineno;
    parse_block(body->body, BlockKind::kDo);
    consume_end_line(BlockKind::kDo);
    stmt->then_branch = std::move(body);
    return stmt;
  }

  StmtPtr parse_if(int lineno) {
    advance();  // 'if'
    expect(FTok::kLParen, lineno);
    ExprPtr cond = parse_paren_expr_rest();
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kIf;
    stmt->line = lineno;
    stmt->expr = std::move(cond);

    if (peek().kind == FTok::kIdent && peek().text == "then") {
      advance();
      ++cursor_;
      auto then_body = std::make_unique<Stmt>();
      then_body->kind = StmtKind::kCompound;
      then_body->line = lineno;
      parse_block(then_body->body, BlockKind::kIf);
      stmt->then_branch = std::move(then_body);
      if (cursor_ < lines_.size() && !lines_[cursor_].is_pragma &&
          !lines_[cursor_].toks.empty() &&
          lines_[cursor_].toks[0].kind == FTok::kIdent &&
          lines_[cursor_].toks[0].text == "else") {
        ++cursor_;
        auto else_body = std::make_unique<Stmt>();
        else_body->kind = StmtKind::kCompound;
        else_body->line = lineno;
        parse_block(else_body->body, BlockKind::kIf);
        stmt->else_branch = std::move(else_body);
      }
      consume_end_line(BlockKind::kIf);
      return stmt;
    }

    // One-line if: `if (cond) statement-on-same-line`.
    StmtPtr inline_stmt = parse_inline_statement(lineno);
    stmt->then_branch = std::move(inline_stmt);
    return stmt;
  }

  /// Parses the remainder of the current line as a single statement
  /// (assignment / call / exit / cycle), consuming the line.
  StmtPtr parse_inline_statement(int lineno) {
    if (peek().kind == FTok::kIdent) {
      const std::string kw = peek().text;
      if (kw == "call") return parse_call_stmt(lineno);
      if (kw == "exit") {
        advance();
        ++cursor_;
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::kBreak;
        s->line = lineno;
        return s;
      }
      if (kw == "cycle") {
        advance();
        ++cursor_;
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::kContinue;
        s->line = lineno;
        return s;
      }
      if (kw == "stop") {
        advance();
        long code = 0;
        if (peek().kind == FTok::kInt) code = advance().int_value;
        ++cursor_;
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::kReturn;
        s->line = lineno;
        s->expr = make_int_literal(code, lineno);
        return s;
      }
      return parse_assignment_stmt(lineno);
    }
    diags_.error(DiagCode::kUnexpectedToken, lineno, 1,
                 "expected a statement after one-line if");
    ++cursor_;
    return nullptr;
  }

  StmtPtr parse_call_stmt(int lineno) {
    advance();  // 'call'
    if (peek().kind != FTok::kIdent) {
      diags_.error(DiagCode::kUnexpectedToken, lineno, 1,
                   "expected a subroutine name after 'call'");
      ++cursor_;
      return nullptr;
    }
    const std::string name = advance().text;
    auto call = std::make_unique<Expr>();
    call->kind = ExprKind::kCall;
    call->text = name;
    call->line = lineno;
    if (peek().kind == FTok::kLParen) {
      advance();
      if (peek().kind != FTok::kRParen) {
        for (;;) {
          call->args.push_back(parse_expr());
          if (peek().kind != FTok::kComma) break;
          advance();
        }
      }
      expect(FTok::kRParen, lineno);
    }
    ++cursor_;
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kExpr;
    stmt->line = lineno;
    stmt->expr = std::move(call);
    return stmt;
  }

  StmtPtr parse_allocate(int lineno, bool alloc) {
    advance();  // keyword
    expect(FTok::kLParen, lineno);
    if (peek().kind != FTok::kIdent) {
      diags_.error(DiagCode::kUnexpectedToken, lineno, 1,
                   "expected an array name in allocate/deallocate");
      ++cursor_;
      return nullptr;
    }
    const std::string name = advance().text;
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kExpr;
    stmt->line = lineno;
    if (alloc) {
      // allocate(a(n))  =>  a = malloc(n + 1)
      expect(FTok::kLParen, lineno);
      ExprPtr extent = parse_expr();
      expect(FTok::kRParen, lineno);
      expect(FTok::kRParen, lineno);
      auto plus1 = std::make_unique<Expr>();
      plus1->kind = ExprKind::kBinary;
      plus1->text = "+";
      plus1->line = lineno;
      plus1->lhs = std::move(extent);
      plus1->rhs = make_int_literal(1, lineno);
      auto call = std::make_unique<Expr>();
      call->kind = ExprKind::kCall;
      call->text = "malloc";
      call->line = lineno;
      call->args.push_back(std::move(plus1));
      auto assign = std::make_unique<Expr>();
      assign->kind = ExprKind::kAssign;
      assign->text = "=";
      assign->line = lineno;
      assign->lhs = make_ident(name, lineno);
      assign->rhs = std::move(call);
      stmt->expr = std::move(assign);
    } else {
      expect(FTok::kRParen, lineno);
      auto call = std::make_unique<Expr>();
      call->kind = ExprKind::kCall;
      call->text = "free";
      call->line = lineno;
      call->args.push_back(make_ident(name, lineno));
      stmt->expr = std::move(call);
    }
    ++cursor_;
    return stmt;
  }

  StmtPtr parse_print(int lineno) {
    advance();  // 'print'
    if (peek().kind == FTok::kStar) advance();
    if (peek().kind == FTok::kComma) advance();
    auto call = std::make_unique<Expr>();
    call->kind = ExprKind::kCall;
    call->text = "f90_print";
    call->line = lineno;
    while (peek().kind != FTok::kEnd) {
      if (peek().kind == FTok::kString) {
        auto s = std::make_unique<Expr>();
        s->kind = ExprKind::kStringLit;
        s->text = advance().text;
        s->line = lineno;
        call->args.push_back(std::move(s));
      } else {
        call->args.push_back(parse_expr());
      }
      if (peek().kind != FTok::kComma) break;
      advance();
    }
    ++cursor_;
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kExpr;
    stmt->line = lineno;
    stmt->expr = std::move(call);
    return stmt;
  }

  StmtPtr parse_assignment_stmt(int lineno) {
    ExprPtr lhs = parse_postfix();
    if (peek().kind != FTok::kAssign) {
      diags_.error(DiagCode::kUnexpectedToken, lineno, 1,
                   "expected '=' in assignment statement");
      ++cursor_;
      return nullptr;
    }
    advance();
    ExprPtr rhs = parse_expr();
    ++cursor_;
    auto assign = std::make_unique<Expr>();
    assign->kind = ExprKind::kAssign;
    assign->text = "=";
    assign->line = lineno;
    assign->lhs = std::move(lhs);
    assign->rhs = std::move(rhs);
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kExpr;
    stmt->line = lineno;
    stmt->expr = std::move(assign);
    return stmt;
  }

  void consume_end_line(BlockKind kind) {
    const char* what = kind == BlockKind::kDo ? "do" : "if";
    if (cursor_ >= lines_.size()) {
      diags_.error(DiagCode::kMismatchedBrace,
                   lines_.empty() ? 1 : lines_.back().lineno, 1,
                   std::string("expected 'end ") + what + "'");
      return;
    }
    const FLine& line = lines_[cursor_];
    if (!line.is_pragma && !line.toks.empty() &&
        line.toks[0].kind == FTok::kIdent) {
      const std::string& first = line.toks[0].text;
      const std::string second =
          line.toks.size() > 1 && line.toks[1].kind == FTok::kIdent
              ? line.toks[1].text
              : std::string();
      const bool matches =
          kind == BlockKind::kDo
              ? (first == "enddo" || (first == "end" && second == "do"))
              : (first == "endif" || (first == "end" && second == "if"));
      if (matches) {
        ++cursor_;
        return;
      }
    }
    diags_.error(DiagCode::kMismatchedBrace, line.lineno, 1,
                 std::string("expected 'end ") + what + "'");
  }

  // -- expression parsing over the current line -----------------------------

  const FTok& peek(std::size_t ahead = 0) const {
    const auto& toks = cur_line_->toks;
    const std::size_t i = pos_ + ahead;
    return i < toks.size() ? toks[i] : toks.back();
  }
  const FTok& advance() {
    const FTok& t = peek();
    if (pos_ + 1 < cur_line_->toks.size()) ++pos_;
    return t;
  }
  void expect(FTok::Kind kind, int lineno) {
    if (peek().kind == kind) {
      advance();
      return;
    }
    diags_.error(DiagCode::kUnexpectedToken, lineno, 1,
                 "unexpected token in Fortran statement");
  }
  void skip_parens() {
    if (peek().kind != FTok::kLParen) return;
    advance();
    int depth = 1;
    while (depth > 0 && peek().kind != FTok::kEnd) {
      if (peek().kind == FTok::kLParen) ++depth;
      if (peek().kind == FTok::kRParen) --depth;
      advance();
    }
  }

  /// Parses the body of a parenthesized expression whose '(' was consumed,
  /// consuming the closing ')'.
  ExprPtr parse_paren_expr_rest() {
    ExprPtr e = parse_expr();
    expect(FTok::kRParen, cur_line_->lineno);
    return e;
  }

  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (peek().kind == FTok::kOr) {
      advance();
      lhs = make_binary("||", std::move(lhs), parse_and());
    }
    return lhs;
  }
  ExprPtr parse_and() {
    ExprPtr lhs = parse_cmp();
    while (peek().kind == FTok::kAnd) {
      advance();
      lhs = make_binary("&&", std::move(lhs), parse_cmp());
    }
    return lhs;
  }
  ExprPtr parse_cmp() {
    ExprPtr lhs = parse_add();
    for (;;) {
      const char* op = nullptr;
      switch (peek().kind) {
        case FTok::kEq: op = "=="; break;
        case FTok::kNe: op = "!="; break;
        case FTok::kLt: op = "<"; break;
        case FTok::kGt: op = ">"; break;
        case FTok::kLe: op = "<="; break;
        case FTok::kGe: op = ">="; break;
        default: return lhs;
      }
      advance();
      lhs = make_binary(op, std::move(lhs), parse_add());
    }
  }
  ExprPtr parse_add() {
    ExprPtr lhs = parse_mul();
    for (;;) {
      if (peek().kind == FTok::kPlus) {
        advance();
        lhs = make_binary("+", std::move(lhs), parse_mul());
      } else if (peek().kind == FTok::kMinus) {
        advance();
        lhs = make_binary("-", std::move(lhs), parse_mul());
      } else {
        return lhs;
      }
    }
  }
  ExprPtr parse_mul() {
    ExprPtr lhs = parse_unary_expr();
    for (;;) {
      if (peek().kind == FTok::kStar) {
        advance();
        lhs = make_binary("*", std::move(lhs), parse_unary_expr());
      } else if (peek().kind == FTok::kSlash) {
        advance();
        lhs = make_binary("/", std::move(lhs), parse_unary_expr());
      } else if (peek().kind == FTok::kPower) {
        advance();
        // a ** b  =>  pow(a, b)
        auto call = std::make_unique<Expr>();
        call->kind = ExprKind::kCall;
        call->text = "pow";
        call->line = cur_line_->lineno;
        call->args.push_back(std::move(lhs));
        call->args.push_back(parse_unary_expr());
        lhs = std::move(call);
      } else {
        return lhs;
      }
    }
  }
  ExprPtr parse_unary_expr() {
    if (peek().kind == FTok::kMinus) {
      advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->text = "-";
      e->line = cur_line_->lineno;
      e->lhs = parse_unary_expr();
      return e;
    }
    if (peek().kind == FTok::kNot) {
      advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->text = "!";
      e->line = cur_line_->lineno;
      e->lhs = parse_unary_expr();
      return e;
    }
    if (peek().kind == FTok::kPlus) {
      advance();
      return parse_unary_expr();
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    const int lineno = cur_line_->lineno;
    const FTok& tok = peek();
    if (tok.kind == FTok::kInt) {
      advance();
      return make_int_literal(tok.int_value, lineno);
    }
    if (tok.kind == FTok::kFloat) {
      advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kFloatLit;
      e->float_value = tok.float_value;
      e->line = lineno;
      return e;
    }
    if (tok.kind == FTok::kString) {
      advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kStringLit;
      e->text = tok.text;
      e->line = lineno;
      return e;
    }
    if (tok.kind == FTok::kLParen) {
      advance();
      return parse_paren_expr_rest();
    }
    if (tok.kind == FTok::kIdent) {
      const std::string name = advance().text;
      if (peek().kind == FTok::kLParen) {
        advance();
        // Array reference or function call, disambiguated by declarations.
        if (array_names_.count(name)) {
          ExprPtr idx = parse_expr();
          expect(FTok::kRParen, lineno);
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kIndex;
          e->line = lineno;
          e->lhs = make_ident(name, lineno);
          e->rhs = std::move(idx);
          return e;
        }
        auto call = std::make_unique<Expr>();
        call->kind = ExprKind::kCall;
        // Intrinsic name mapping: abs on reals is fabs in the VM runtime;
        // mod(a,b) has no C builtin equivalent, map to a % b below;
        // int()/real()/dble() become casts.
        call->text = name == "abs" ? "fabs" : name;
        call->line = lineno;
        if (peek().kind != FTok::kRParen) {
          for (;;) {
            call->args.push_back(parse_expr());
            if (peek().kind != FTok::kComma) break;
            advance();
          }
        }
        expect(FTok::kRParen, lineno);
        if (call->text == "mod" && call->args.size() == 2) {
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kBinary;
          e->text = "%";
          e->line = lineno;
          e->lhs = std::move(call->args[0]);
          e->rhs = std::move(call->args[1]);
          return e;
        }
        if ((call->text == "int" || call->text == "real" ||
             call->text == "dble") &&
            call->args.size() == 1) {
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kCast;
          e->line = lineno;
          e->cast_type.base = call->text == "int" ? BaseType::kLong
                                                  : BaseType::kDouble;
          e->lhs = std::move(call->args[0]);
          return e;
        }
        return call;
      }
      return make_ident(name, lineno);
    }
    diags_.error(DiagCode::kUnexpectedToken, lineno, 1,
                 "expected an expression");
    advance();
    return make_int_literal(0, lineno);
  }

  ExprPtr make_binary(const char* op, ExprPtr lhs, ExprPtr rhs) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kBinary;
    e->text = op;
    e->line = cur_line_->lineno;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    return e;
  }

  static void collect_from_stmt(const Stmt* stmt,
                                std::vector<const Stmt*>& out) {
    if (stmt == nullptr) return;
    if (stmt->kind == StmtKind::kPragma) out.push_back(stmt);
    for (const auto& child : stmt->body) collect_from_stmt(child.get(), out);
    collect_from_stmt(stmt->then_branch.get(), out);
    collect_from_stmt(stmt->else_branch.get(), out);
    collect_from_stmt(stmt->init_stmt.get(), out);
  }

  void collect_pragmas(Program& program) {
    for (const auto& fn : program.functions) {
      collect_from_stmt(fn.body.get(), program.pragmas);
    }
  }

  DiagnosticEngine& diags_;
  const ParserOptions& options_;
  std::vector<FLine> lines_;
  std::size_t cursor_ = 0;   ///< current line
  FLine* cur_line_ = nullptr;
  std::size_t pos_ = 0;      ///< token cursor within cur_line_
  std::set<std::string> array_names_;
  std::set<std::string> parameter_names_;
};

}  // namespace

Program parse_fortran(std::string_view source, DiagnosticEngine& diags,
                      const ParserOptions& options) {
  FortranParser parser(source, diags, options);
  return parser.run();
}

}  // namespace llm4vv::frontend
