#include "frontend/ast.hpp"

namespace llm4vv::frontend {

std::string type_to_string(const Type& type) {
  std::string out;
  switch (type.base) {
    case BaseType::kVoid: out = "void"; break;
    case BaseType::kInt: out = "int"; break;
    case BaseType::kLong: out = "long"; break;
    case BaseType::kChar: out = "char"; break;
    case BaseType::kBool: out = "bool"; break;
    case BaseType::kFloat: out = "float"; break;
    case BaseType::kDouble: out = "double"; break;
  }
  for (int i = 0; i < type.pointer_depth; ++i) out.push_back('*');
  if (type.is_array) {
    out += "[" + std::to_string(type.array_extent) + "]";
  }
  return out;
}

ExprPtr make_int_literal(long value, int line, int column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIntLit;
  e->int_value = value;
  e->line = line;
  e->column = column;
  return e;
}

ExprPtr make_ident(std::string name, int line, int column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIdent;
  e->text = std::move(name);
  e->line = line;
  e->column = column;
  return e;
}

}  // namespace llm4vv::frontend
