#pragma once

#include <string_view>

#include "frontend/ast.hpp"
#include "frontend/diagnostics.hpp"
#include "frontend/parser.hpp"

namespace llm4vv::frontend {

/// Parse a Fortran-lite source file into the same AST the C/C++ front-end
/// produces, so the rest of the system (sema, directive validation, the VM,
/// probing, the judge) is language-agnostic.
///
/// The dialect covers exactly what the OpenACC V&V Fortran corpus emits:
/// `program`/`end program`, `implicit none`, integer/real(8) declarations
/// (including `parameter` constants and `allocatable` arrays), `allocate` /
/// `deallocate`, `do`/`end do`, block `if`/`else`/`end if`, assignments,
/// `call`, `print *, ...`, `stop`, and `!$acc` / `!$omp` directive comments
/// (which become PragmaStmt nodes, exactly like `#pragma` lines in C).
///
/// Fortran's 1-based arrays are modelled by allocating extent+1 cells and
/// indexing directly, so `a(n)` is always in bounds and `a(0)` is never
/// generated.
Program parse_fortran(std::string_view source, DiagnosticEngine& diags,
                      const ParserOptions& options = {});

}  // namespace llm4vv::frontend
