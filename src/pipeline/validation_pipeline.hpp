#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "judge/judge.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "toolchain/compiler.hpp"
#include "toolchain/executor.hpp"

namespace llm4vv::pipeline {

/// Pipeline operating modes (Section III-C):
///  - kFilterEarly: a file that fails a stage is not passed downstream —
///    "a file that fails an earlier stage of the pipeline does not need to
///    be passed to the next stage". This is the production configuration.
///  - kRecordAll: every file flows through all three stages and every
///    stage's outcome is recorded — the configuration the paper used for
///    its experiments, so pipeline verdicts can be computed retroactively
///    while also measuring the judges on every file.
enum class PipelineMode { kFilterEarly, kRecordAll };

/// Worker/queue configuration of the three stages.
struct PipelineConfig {
  PipelineMode mode = PipelineMode::kRecordAll;
  std::size_t compile_workers = 1;
  std::size_t execute_workers = 1;
  /// Parallelism of the LLM stage ("if there are enough available GPU
  /// resources"); bounded by the ModelClient's concurrency anyway.
  std::size_t judge_workers = 1;
  std::size_t queue_capacity = 128;
  std::uint64_t judge_seed = 0;
  /// Items a judge worker submits to Llmj::evaluate_async_many per group:
  /// cache misses inside such a group enter the model client's adaptive
  /// batcher together, and — with the batcher's wait window pinned to 0 —
  /// go to the model as one batched forward pass that amortizes prefill.
  /// With a nonzero window the batcher may further coalesce groups from
  /// different judge workers into shared cross-worker passes. 1 selects
  /// the sequential per-item path — the paper's one-call-per-file
  /// accounting, which the core/ experiments pin to keep their simulated
  /// GPU totals seed-exact. 0 is invalid: the pipeline constructor rejects
  /// it instead of silently misbehaving. Effective group sizes are also
  /// bounded by how many items a queue pop returns, so chunk occupancy can
  /// come in under this value on a draining queue.
  std::size_t judge_batch_size = 8;
  /// Items a worker moves per queue round-trip (pop_up_to / push_all).
  /// Batching amortizes the queue lock over several items; kept small so
  /// one worker cannot starve its siblings of a nearly-empty queue. 1
  /// hands items through one at a time — the sparse-arrival shape the
  /// adaptive batcher's wait window is designed for (and what
  /// BM_PipelineAdaptiveBatch measures). 0 is clamped to 1.
  std::size_t stage_batch = 16;
  /// Lock-striped shards per inter-stage queue (see support::MpmcQueue):
  /// workers hash to a home shard and steal from siblings, so high worker
  /// counts stop serializing on one queue mutex. 0 (the default) sizes
  /// automatically — one shard per worker of the widest stage, capped at
  /// min(hardware threads, 8): striping beyond the hardware's parallelism
  /// is pure scan overhead. Sharding never changes per-file results
  /// (records are indexed, not ordered); 1 restores the strict-FIFO
  /// single-mutex queue.
  std::size_t queue_shards = 0;
  /// Optional metrics registry. When set, run() re-registers the judge's
  /// client/cache counters and the inter-stage queue gauges as run-scoped
  /// probes under "pipeline.*", bumps owned pipeline counters as items move
  /// through the stages, and snapshots the whole registry into
  /// PipelineResult::metrics before unregistering the run-scoped probes.
  /// Null (the default) keeps the pipeline metrics-free: every metric hook
  /// degrades to a single branch on a null handle.
  std::shared_ptr<obs::Registry> registry;
  /// Optional span tracer. When set, run() emits one run span plus
  /// per-file compile / queue-wait / execute / judge spans (trace id =
  /// input index + 1) into the tracer's per-thread rings; judge spans carry
  /// the serving batcher flush's flow id so exports can link batches to
  /// their member requests. Null (the default) disables tracing with fixed
  /// overhead: every span site is a single branch on the null sink.
  std::shared_ptr<obs::Tracer> trace;
};

/// Everything recorded about one file's trip through the pipeline.
struct PipelineRecord {
  std::size_t index = 0;        ///< position in the input vector
  bool compiled = false;        ///< compile stage verdict
  int compile_rc = -1;
  bool executed = false;        ///< reached the execute stage and exited 0
  int exec_rc = -1;
  bool judged = false;          ///< reached the judge stage
  judge::Verdict verdict = judge::Verdict::kUnparseable;
  bool judge_says_valid = false;
  /// The pipeline's final verdict: compiled && exited 0 && judged valid.
  bool pipeline_says_valid = false;
  /// Simulated GPU seconds spent judging this file (0 when filtered or when
  /// the judge served the decision from its memoization cache).
  double judge_gpu_seconds = 0.0;
  /// True when a downstream queue was closed before this item could be
  /// handed over: the item was processed by earlier stages but never
  /// reached the later ones. Never set during a normal run; it records
  /// lost work instead of dropping it silently.
  bool dropped = false;
  /// True when the judge stage answered from its memoization cache.
  bool judge_cached = false;
  /// True when the serving judge-cache entry was warm-loaded from a
  /// persistent artifact store (cross-run hit; implies judge_cached).
  bool judge_persisted = false;
  /// True when the compile stage was served from the compile cache (the
  /// front-end never ran for this file in this call).
  bool compile_cached = false;
  /// True when the judge stage gave up on this file: the model call failed
  /// past the client's retry budget (or was shed / timed out). The record
  /// stays in the results with the failure's kind and attempt count below
  /// — graceful degradation, never a silent drop. `judged` stays false.
  bool judge_error = false;
  /// Why the judge gave up (valid only when judge_error).
  llm::FailureKind judge_error_kind = llm::FailureKind::kOther;
  /// Forward passes the client spent on this record's judge decision: 1 on
  /// a clean first try, >1 when retries were needed (success or failure),
  /// 0 when no pass ran (cache hit, filtered, shed, or still queued at
  /// expiry).
  std::uint32_t judge_attempts = 0;
};

/// Per-stage counters.
struct StageStats {
  std::size_t processed = 0;  ///< items the stage actually worked on
  std::size_t rejected = 0;   ///< items the stage failed
  double busy_seconds = 0.0;  ///< summed worker time in the stage
};

/// Result of one pipeline run.
struct PipelineResult {
  std::vector<PipelineRecord> records;  ///< input order
  StageStats compile_stage;
  StageStats execute_stage;
  StageStats judge_stage;
  double wall_seconds = 0.0;
  /// GPU seconds the LLM stage consumed; in kFilterEarly mode this is what
  /// early filtering saves relative to kRecordAll. Cache hits consume none.
  double judge_gpu_seconds = 0.0;
  /// Judge decisions served from the memoization cache during this run.
  std::uint64_t judge_cache_hits = 0;
  /// Judge decisions that actually assembled a prompt and hit the model.
  std::uint64_t judge_cache_misses = 0;
  /// Items refused by a closed queue (sum of PipelineRecord::dropped).
  std::size_t dropped_items = 0;
  /// Batched judge submission *groups*: judge-worker chunk groups that put
  /// at least one prompt in front of the model (cache-hit-only groups
  /// don't count). This is the per-worker "popped chunk" view; the batcher
  /// counters below are the forward-pass truth.
  std::uint64_t judge_batches = 0;
  /// Prompts submitted through those groups.
  std::uint64_t judge_batched_prompts = 0;
  /// Largest single submission group observed during the run.
  std::uint64_t judge_max_batch = 0;
  /// Mean prompts per batched forward pass actually formed by the model
  /// client's adaptive batcher during this run (0 when nothing was
  /// batched). The headline occupancy number: how full the batched
  /// forward passes really ran. Unlike the popped-chunk counters above,
  /// this is computed from the client's flush statistics, so passes that
  /// coalesced several workers' groups count once, at their true size.
  double judge_batch_occupancy = 0.0;
  /// Forward passes the judge's client executed during the run (every
  /// flush, any size) and their flush-reason split — the adaptive
  /// batcher's telemetry, windowed over this run.
  std::uint64_t judge_formed_batches = 0;
  std::uint64_t judge_flush_immediate = 0;
  std::uint64_t judge_flush_full = 0;
  std::uint64_t judge_flush_window = 0;
  /// Flush-size histogram over the run (buckets per
  /// llm::ClientStats::occupancy_bucket_label).
  std::array<std::uint64_t, llm::ClientStats::kOccupancyBuckets>
      judge_occupancy_hist{};
  /// High-water mark of requests pending in the client's batcher (client
  /// lifetime, not per-run: a high-water mark cannot be windowed).
  std::size_t judge_queue_depth_peak = 0;
  /// Judge cache hits served by entries warm-loaded from a persistent
  /// artifact store (subset of judge_cache_hits): the cross-run savings a
  /// warm start delivers, as opposed to in-process memoization.
  std::uint64_t judge_persisted_hits = 0;
  /// Compile-stage results served from the driver's compile cache (the
  /// front-end was skipped), and the subset that came from a persistent
  /// store rather than this process's own earlier compiles.
  std::uint64_t compile_cache_hits = 0;
  std::uint64_t compile_persisted_hits = 0;
  /// Resolved VM dispatch core the execute stage ran with ("computed-goto",
  /// "table", or "reference"; see vm::dispatch_mode_name).
  std::string execute_dispatch;
  /// Whether the execute stage's VM decode pass fused superinstructions.
  bool execute_fusion = false;
  /// Superinstruction sites the VM decoder rewrote, summed over every
  /// module the execute stage ran (0 with fusion off), and the largest
  /// distinct-pattern count any single module hit.
  std::uint64_t execute_fused_instructions = 0;
  std::uint32_t execute_fusion_patterns = 0;
  /// Lock-striped shards each inter-stage queue ran with this run.
  std::size_t queue_shards = 0;
  /// Pops served by a non-home shard across the three inter-stage queues —
  /// how often workers had to steal instead of hitting their own shard.
  std::uint64_t queue_steals = 0;
  // -- resilience telemetry (all zero with faults/retries off) ------------
  /// Records whose judge stage gave up (sum of PipelineRecord::judge_error).
  std::size_t judge_errors = 0;
  /// Client counters windowed over this run (see llm::ClientStats): extra
  /// forward-pass attempts, deadline give-ups, requests shed by the
  /// bounded pending queue, circuit-breaker opens, and the resolution-
  /// latency histogram of retried requests.
  std::uint64_t judge_retries = 0;
  std::uint64_t judge_timeouts = 0;
  std::uint64_t judge_shed = 0;
  std::uint64_t breaker_opens = 0;
  std::array<std::uint64_t, llm::ClientStats::kRetryLatencyBuckets>
      judge_retry_latency_hist{};
  /// Registry snapshot taken at the end of the run, while the run-scoped
  /// probes (client, judge cache, queues) were still registered. Empty when
  /// PipelineConfig::registry was null.
  obs::MetricsSnapshot metrics;
};

/// The staged validation pipeline of Figure 2: bounded queues between a
/// compile stage, an execute stage, and an agent-based LLMJ stage, each
/// served by its own worker pool (CP.mess: stages share nothing and
/// communicate only through the queues).
class ValidationPipeline {
 public:
  /// Throws std::invalid_argument on a null judge or a config with
  /// judge_batch_size == 0 (use 1 for sequential per-item judging).
  ValidationPipeline(toolchain::CompilerDriver compiler,
                     toolchain::Executor executor,
                     std::shared_ptr<const judge::Llmj> judge,
                     PipelineConfig config = {});

  /// Push a batch of files through the pipeline and wait for completion.
  PipelineResult run(const std::vector<frontend::SourceFile>& files) const;

  const PipelineConfig& config() const noexcept { return config_; }

 private:
  toolchain::CompilerDriver compiler_;
  toolchain::Executor executor_;
  std::shared_ptr<const judge::Llmj> judge_;
  PipelineConfig config_;
};

}  // namespace llm4vv::pipeline
