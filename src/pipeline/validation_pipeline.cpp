#include "pipeline/validation_pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>

#include "support/mpmc_queue.hpp"
#include "support/stopwatch.hpp"

namespace llm4vv::pipeline {

namespace {

/// Work unit flowing between stages. The compile artifacts ride along so
/// the judge stage can quote them in the agent prompt.
struct WorkItem {
  std::size_t index = 0;
  toolchain::CompileResult compile;
  toolchain::ExecutionRecord exec;
  /// When this item was pushed into the downstream queue (support::now_us),
  /// stamped only while a tracer is attached; 0 otherwise. The consumer
  /// turns it into a backdated queue-wait span ending when processing of
  /// the item starts.
  std::uint64_t queued_us = 0;
};

/// Everything one judge worker accumulates locally and merges at join.
struct JudgeLocal {
  StageStats stats;
  double gpu_seconds = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t batches = 0;
  std::uint64_t batched_prompts = 0;
  std::uint64_t max_batch = 0;
  std::uint64_t persisted_hits = 0;
  std::uint64_t errors = 0;
};

/// Compile workers likewise accumulate cache counters locally.
struct CompileLocal {
  StageStats stats;
  std::uint64_t cache_hits = 0;
  std::uint64_t persisted_hits = 0;
};

/// Execute workers accumulate the VM decoder's superinstruction telemetry
/// beside their stage stats: total fused sites across the modules they ran,
/// and the largest distinct-pattern count any single module hit.
struct ExecuteLocal {
  StageStats stats;
  std::uint64_t fused_instructions = 0;
  std::uint32_t fusion_patterns = 0;
};

void merge_into(StageStats& total, const StageStats& part) {
  total.processed += part.processed;
  total.rejected += part.rejected;
  total.busy_seconds += part.busy_seconds;
}

/// Owned pipeline counters, fetched once per run: handle lookup is by name
/// under the registry mutex — too costly per item, free per run. With no
/// registry every handle stays null, so each inc() on the hot path is a
/// single branch. Names mirror the legacy PipelineResult fields one-to-one
/// (tests/obs_consistency_test.cpp asserts the totals stay equal).
struct PipelineMetrics {
  obs::Counter files;
  obs::Counter dropped;
  obs::Counter compile_processed;
  obs::Counter compile_rejected;
  obs::Counter compile_cache_hits;
  obs::Counter compile_persisted_hits;
  obs::Counter execute_processed;
  obs::Counter execute_rejected;
  obs::Counter execute_fused_instructions;
  obs::Counter judge_processed;
  obs::Counter judge_rejected;
  obs::Counter judge_cache_hits;
  obs::Counter judge_cache_misses;
  obs::Counter judge_persisted_hits;
  obs::Counter judge_errors;
  /// Items per popped judge chunk — how full the stage-3 pops ran.
  obs::Histogram judge_chunk;
};

PipelineMetrics fetch_metrics(obs::Registry* registry) {
  PipelineMetrics m;
  if (registry == nullptr) return m;
  m.files = registry->counter("pipeline.files");
  m.dropped = registry->counter("pipeline.dropped");
  m.compile_processed = registry->counter("pipeline.compile.processed");
  m.compile_rejected = registry->counter("pipeline.compile.rejected");
  m.compile_cache_hits = registry->counter("pipeline.compile.cache_hits");
  m.compile_persisted_hits =
      registry->counter("pipeline.compile.persisted_hits");
  m.execute_processed = registry->counter("pipeline.execute.processed");
  m.execute_rejected = registry->counter("pipeline.execute.rejected");
  m.execute_fused_instructions =
      registry->counter("pipeline.execute.fused_instructions");
  m.judge_processed = registry->counter("pipeline.judge.processed");
  m.judge_rejected = registry->counter("pipeline.judge.rejected");
  m.judge_cache_hits = registry->counter("pipeline.judge.cache_hits");
  m.judge_cache_misses = registry->counter("pipeline.judge.cache_misses");
  m.judge_persisted_hits = registry->counter("pipeline.judge.persisted_hits");
  m.judge_errors = registry->counter("pipeline.judge.errors");
  m.judge_chunk = registry->histogram("pipeline.judge.chunk_size",
                                      {1, 2, 4, 8, 16, 32, 64});
  return m;
}

}  // namespace

ValidationPipeline::ValidationPipeline(
    toolchain::CompilerDriver compiler, toolchain::Executor executor,
    std::shared_ptr<const judge::Llmj> judge, PipelineConfig config)
    : compiler_(std::move(compiler)),
      executor_(executor),
      judge_(std::move(judge)),
      config_(config) {
  if (judge_ == nullptr) {
    throw std::invalid_argument("ValidationPipeline: judge must not be null");
  }
  if (config_.judge_batch_size == 0) {
    throw std::invalid_argument(
        "ValidationPipeline: PipelineConfig::judge_batch_size must be >= 1 "
        "(1 = sequential per-item judging); 0 is not a valid batch size");
  }
  if (config_.compile_workers == 0) config_.compile_workers = 1;
  if (config_.execute_workers == 0) config_.execute_workers = 1;
  if (config_.judge_workers == 0) config_.judge_workers = 1;
  if (config_.stage_batch == 0) config_.stage_batch = 1;
}

PipelineResult ValidationPipeline::run(
    const std::vector<frontend::SourceFile>& files) const {
  PipelineResult result;
  result.records.resize(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    result.records[i].index = i;
  }
  if (files.empty()) return result;

  obs::Registry* const registry = config_.registry.get();
  obs::Tracer* const tracer = config_.trace.get();
  const PipelineMetrics metrics = fetch_metrics(registry);
  metrics.files.inc(files.size());
  // Run-scoped probes: the judge's client and memo-cache counters
  // re-register under "pipeline.*" for this run (the queues join below,
  // once they exist) and are unregistered after the end-of-run snapshot,
  // so a registry that outlives this pipeline never holds callbacks into
  // dead objects.
  if (registry != nullptr) {
    judge_->client().register_metrics(*registry, "pipeline.client");
    judge_->register_metrics(*registry, "pipeline.judge_cache");
  }

  const bool filter = config_.mode == PipelineMode::kFilterEarly;
  const std::size_t kStageBatch = config_.stage_batch;

  // Queue sharding: auto (0) stripes one shard per worker of the widest
  // stage, capped at 8 — enough to stop the queue mutex from serializing
  // workers without scattering a small run across mostly-empty shards —
  // and never beyond the hardware's parallelism: without concurrent
  // lock-holders, striping is pure scan overhead (measured ~15-30% on a
  // 1-core host in BM_PipelineExecuteScale).
  std::size_t shards = config_.queue_shards;
  if (shards == 0) {
    shards = std::max({config_.compile_workers, config_.execute_workers,
                       config_.judge_workers});
    const std::size_t hw = std::max<std::size_t>(
        1, std::thread::hardware_concurrency());
    shards = std::min({shards, hw, std::size_t{8}});
  }
  result.execute_dispatch = vm::dispatch_mode_name(executor_.dispatch_mode());
  result.execute_fusion = executor_.fusion_enabled();
  result.queue_shards = shards;

  // Snapshot the judge client's batcher counters so the run can report the
  // forward passes actually formed on its behalf (assumes the client is
  // not concurrently serving unrelated traffic — true for every in-tree
  // call site, where runs on a shared client are sequential).
  const llm::ClientStats client_before = judge_->client().stats();

  support::MpmcQueue<std::size_t> compile_queue(config_.queue_capacity,
                                                shards);
  support::MpmcQueue<WorkItem> execute_queue(config_.queue_capacity, shards);
  support::MpmcQueue<WorkItem> judge_queue(config_.queue_capacity, shards);
  if (registry != nullptr) {
    compile_queue.register_metrics(*registry, "pipeline.queue.compile");
    execute_queue.register_metrics(*registry, "pipeline.queue.execute");
    judge_queue.register_metrics(*registry, "pipeline.queue.judge");
  }

  // Per-worker accumulators: each worker owns one slot and writes it once
  // at exit, so the hot loop touches no shared counter and takes no lock
  // (the old StageCounter mutex and gpu_mutex are gone). With no mutex
  // there is nothing here for the thread-safety analysis to check; the
  // cross-thread handoffs all ride on the annotated MpmcQueue, and the
  // join() barrier below publishes the locals.
  std::vector<CompileLocal> compile_locals(config_.compile_workers);
  std::vector<ExecuteLocal> execute_locals(config_.execute_workers);
  std::vector<JudgeLocal> judge_locals(config_.judge_workers);

  std::atomic<std::size_t> compile_live{config_.compile_workers};
  std::atomic<std::size_t> execute_live{config_.execute_workers};

  support::Stopwatch wall;
  // One span covers the whole run; per-file stage spans parent to it so a
  // Chrome trace groups cleanly per run even when a process runs several.
  obs::ObsSpan run_span(tracer, obs::SpanKind::kRun, 0);
  run_span.set_arg(static_cast<std::int64_t>(files.size()));
  const std::uint64_t run_span_id = run_span.id();
  std::vector<std::thread> workers;
  workers.reserve(config_.compile_workers + config_.execute_workers +
                  config_.judge_workers);

  // Stage 1: compile.
  for (std::size_t w = 0; w < config_.compile_workers; ++w) {
    workers.emplace_back([&, w] {
      CompileLocal local;
      std::vector<std::size_t> batch;
      std::vector<WorkItem> outgoing;
      batch.reserve(kStageBatch);
      outgoing.reserve(kStageBatch);
      for (;;) {
        batch.clear();
        if (compile_queue.pop_up_to(kStageBatch, batch) == 0) break;
        outgoing.clear();
        for (const std::size_t index : batch) {
          support::Stopwatch timer;
          obs::ObsSpan span(tracer, obs::SpanKind::kCompile, index + 1,
                            run_span_id);
          WorkItem item;
          item.index = index;
          item.compile = compiler_.compile(files[index]);
          span.set_arg(item.compile.success ? 1 : 0);
          span.end();
          PipelineRecord& record = result.records[index];
          record.compiled = item.compile.success;
          record.compile_rc = item.compile.return_code;
          record.compile_cached = item.compile.cached;
          if (item.compile.cached) ++local.cache_hits;
          if (item.compile.persisted) ++local.persisted_hits;
          ++local.stats.processed;
          if (!item.compile.success) ++local.stats.rejected;
          metrics.compile_processed.inc();
          if (item.compile.cached) metrics.compile_cache_hits.inc();
          if (item.compile.persisted) metrics.compile_persisted_hits.inc();
          if (!item.compile.success) metrics.compile_rejected.inc();
          local.stats.busy_seconds += timer.seconds();
          if (filter && !item.compile.success) continue;
          if (tracer != nullptr) item.queued_us = support::now_us();
          outgoing.push_back(std::move(item));
        }
        const std::size_t pushed = execute_queue.push_all(outgoing);
        for (std::size_t j = pushed; j < outgoing.size(); ++j) {
          result.records[outgoing[j].index].dropped = true;
          metrics.dropped.inc();
        }
      }
      compile_locals[w] = local;
      if (compile_live.fetch_sub(1) == 1) execute_queue.close();
    });
  }

  // Stage 2: execute.
  for (std::size_t w = 0; w < config_.execute_workers; ++w) {
    workers.emplace_back([&, w] {
      ExecuteLocal local;
      std::vector<WorkItem> batch;
      std::vector<WorkItem> outgoing;
      batch.reserve(kStageBatch);
      outgoing.reserve(kStageBatch);
      for (;;) {
        batch.clear();
        if (execute_queue.pop_up_to(kStageBatch, batch) == 0) break;
        outgoing.clear();
        for (WorkItem& item : batch) {
          if (tracer != nullptr && item.queued_us != 0) {
            // Residency in the execute queue: enqueue to processing start.
            obs::ObsSpan wait(tracer, obs::SpanKind::kQueueWait,
                              item.index + 1, run_span_id);
            wait.set_start_us(item.queued_us);
            wait.set_arg(1);
          }
          support::Stopwatch timer;
          obs::ObsSpan span(tracer, obs::SpanKind::kExecute, item.index + 1,
                            run_span_id);
          item.exec = executor_.run(item.compile.module);
          span.set_arg(item.exec.passed() ? 1 : 0);
          span.end();
          PipelineRecord& record = result.records[item.index];
          record.executed = item.exec.passed();
          record.exec_rc = item.exec.return_code;
          ++local.stats.processed;
          if (!item.exec.passed()) ++local.stats.rejected;
          metrics.execute_processed.inc();
          if (!item.exec.passed()) metrics.execute_rejected.inc();
          if (item.exec.fused_instructions > 0) {
            local.fused_instructions += item.exec.fused_instructions;
            local.fusion_patterns =
                std::max(local.fusion_patterns, item.exec.fusion_patterns);
            metrics.execute_fused_instructions.inc(
                item.exec.fused_instructions);
          }
          local.stats.busy_seconds += timer.seconds();
          if (filter && !item.exec.passed()) continue;
          if (tracer != nullptr) item.queued_us = support::now_us();
          outgoing.push_back(std::move(item));
        }
        const std::size_t pushed = judge_queue.push_all(outgoing);
        for (std::size_t j = pushed; j < outgoing.size(); ++j) {
          result.records[outgoing[j].index].dropped = true;
          metrics.dropped.inc();
        }
      }
      execute_locals[w] = local;
      if (execute_live.fetch_sub(1) == 1) judge_queue.close();
    });
  }

  // Stage 3: agent-based LLMJ, submit-then-drain. With judge_batch_size >
  // 1 the worker slices each popped chunk into submission groups and
  // submits every group asynchronously before draining any future: cache
  // misses enter the client's adaptive batcher together, and while this
  // worker blocks on its first decision other workers keep submitting —
  // so with a nonzero batcher window, cross-worker batches form naturally
  // instead of being limited to per-worker chunks.
  const std::size_t judge_batch = config_.judge_batch_size;
  for (std::size_t w = 0; w < config_.judge_workers; ++w) {
    workers.emplace_back([&, w] {
      JudgeLocal local;
      const auto record_decision = [&](const WorkItem& item,
                                       const judge::JudgeDecision& decision) {
        PipelineRecord& record = result.records[item.index];
        record.judged = true;
        record.verdict = decision.verdict;
        record.judge_says_valid = decision.says_valid;
        record.judge_cached = decision.cached;
        record.judge_persisted = decision.persisted;
        ++local.stats.processed;
        if (!decision.says_valid) ++local.stats.rejected;
        if (decision.persisted) ++local.persisted_hits;
        metrics.judge_processed.inc();
        if (!decision.says_valid) metrics.judge_rejected.inc();
        if (decision.persisted) metrics.judge_persisted_hits.inc();
        if (decision.cached) {
          ++local.cache_hits;
          metrics.judge_cache_hits.inc();
        } else {
          ++local.cache_misses;
          metrics.judge_cache_misses.inc();
          record.judge_attempts = decision.completion.attempts;
          record.judge_gpu_seconds = decision.completion.latency_seconds;
          local.gpu_seconds += decision.completion.latency_seconds;
        }
      };
      // Graceful degradation: a judge failure that survived the client's
      // retry budget becomes a recorded outcome — kind and attempt count
      // preserved — instead of a dropped record or a worker-killing throw.
      const auto record_error = [&](const WorkItem& item,
                                    const std::exception_ptr& error) {
        PipelineRecord& record = result.records[item.index];
        record.judge_error = true;
        try {
          std::rethrow_exception(error);
        } catch (const llm::ModelError& e) {
          record.judge_error_kind = e.kind();
          record.judge_attempts = e.attempts();
        } catch (...) {
          record.judge_error_kind = llm::FailureKind::kOther;
        }
        ++local.stats.processed;
        ++local.errors;
        metrics.judge_processed.inc();
        metrics.judge_errors.inc();
      };
      /// One submitted-but-not-drained chunk item.
      struct PendingJudge {
        const WorkItem* item = nullptr;
        judge::JudgeFuture future;
        judge::JudgeDecision decision;
        std::exception_ptr error;  ///< the judge gave up on this item
        std::size_t group = 0;  ///< submission-group id within the chunk
        std::uint64_t submit_us = 0;  ///< judge-span start (tracing only)
      };
      // Judge span: submission to drain, stamped when the future resolves.
      // Uncached decisions carry the simulated GPU cost and the flow id of
      // the serving batcher flush, so exporters can link each request back
      // to the forward pass that served it.
      const auto trace_judge = [&](const PendingJudge& entry) {
        if (tracer == nullptr) return;
        obs::ObsSpan span(tracer, obs::SpanKind::kJudge,
                          entry.item->index + 1, run_span_id);
        span.set_start_us(entry.submit_us);
        if (entry.error != nullptr) {
          span.set_arg(-1);
        } else {
          span.set_arg(static_cast<std::int64_t>(entry.decision.verdict));
          if (!entry.decision.cached) {
            span.set_gpu_seconds(entry.decision.completion.latency_seconds);
            span.set_flow(entry.decision.completion.trace_flow);
          }
        }
      };
      std::vector<WorkItem> batch;
      std::vector<judge::JudgeRequest> requests;
      std::vector<PendingJudge> pending;
      batch.reserve(kStageBatch);
      requests.reserve(judge_batch);
      pending.reserve(kStageBatch);
      for (;;) {
        batch.clear();
        if (judge_queue.pop_up_to(kStageBatch, batch) == 0) break;
        metrics.judge_chunk.observe(batch.size());
        if (tracer != nullptr) {
          // Residency in the judge queue: enqueue to chunk pickup.
          for (const WorkItem& item : batch) {
            if (item.queued_us == 0) continue;
            obs::ObsSpan wait(tracer, obs::SpanKind::kQueueWait,
                              item.index + 1, run_span_id);
            wait.set_start_us(item.queued_us);
            wait.set_arg(2);
          }
        }
        if (judge_batch <= 1) {
          // Sequential per-item path: the paper's one-call-per-file
          // accounting (each call is its own immediate flush when the
          // batcher window is pinned to 0).
          for (const WorkItem& item : batch) {
            support::Stopwatch timer;
            obs::ObsSpan span(tracer, obs::SpanKind::kJudge, item.index + 1,
                              run_span_id);
            try {
              const judge::JudgeDecision decision =
                  judge_->evaluate(files[item.index], &item.compile,
                                   &item.exec, config_.judge_seed);
              span.set_arg(static_cast<std::int64_t>(decision.verdict));
              if (!decision.cached) {
                span.set_gpu_seconds(decision.completion.latency_seconds);
                span.set_flow(decision.completion.trace_flow);
              }
              span.end();
              local.stats.busy_seconds += timer.seconds();
              record_decision(item, decision);
            } catch (...) {
              span.set_arg(-1);
              span.end();
              local.stats.busy_seconds += timer.seconds();
              record_error(item, std::current_exception());
            }
          }
          continue;
        }
        support::Stopwatch timer;
        // Submit every group of the chunk first...
        pending.clear();
        std::size_t groups = 0;
        for (std::size_t start = 0; start < batch.size();
             start += judge_batch, ++groups) {
          const std::size_t end =
              std::min(batch.size(), start + judge_batch);
          requests.clear();
          for (std::size_t i = start; i < end; ++i) {
            requests.push_back(judge::JudgeRequest{
                &files[batch[i].index], &batch[i].compile, &batch[i].exec});
          }
          const std::uint64_t group_submit_us =
              tracer != nullptr ? support::now_us() : 0;
          auto futures =
              judge_->evaluate_async_many(requests, config_.judge_seed);
          for (std::size_t i = start; i < end; ++i) {
            PendingJudge entry;
            entry.item = &batch[i];
            entry.future = std::move(futures[i - start]);
            entry.group = groups;
            entry.submit_us = group_submit_us;
            pending.push_back(std::move(entry));
          }
        }
        // ...then drain: futures this worker owns first, duplicates of
        // other workers' in-flight keys second — the owners publish before
        // anyone waits, so two workers holding duplicates of each other's
        // claims cannot deadlock.
        for (PendingJudge& entry : pending) {
          if (!entry.future.waits_on_peer()) {
            try {
              entry.decision = entry.future.get();
            } catch (...) {
              entry.error = std::current_exception();
            }
            trace_judge(entry);
          }
        }
        for (PendingJudge& entry : pending) {
          if (entry.future.waits_on_peer()) {
            try {
              entry.decision = entry.future.get();
            } catch (...) {
              entry.error = std::current_exception();
            }
            trace_judge(entry);
          }
        }
        local.stats.busy_seconds += timer.seconds();
        // Per-group accounting of the popped-chunk view: count only
        // decisions whose model call rode the batch submission API —
        // cache hits, dedup copies, and rare sequential fallbacks (a
        // waiter taking over an abandoned key) are not batched prompts.
        // The forward-pass truth comes from the client's flush counters,
        // snapshotted around the whole run.
        for (std::size_t g = 0; g < groups; ++g) {
          std::uint64_t submitted = 0;
          for (const PendingJudge& entry : pending) {
            if (entry.group == g && entry.decision.batched) ++submitted;
          }
          if (submitted > 0) {
            ++local.batches;
            local.batched_prompts += submitted;
            local.max_batch = std::max(local.max_batch, submitted);
          }
        }
        for (const PendingJudge& entry : pending) {
          if (entry.error != nullptr) {
            record_error(*entry.item, entry.error);
          } else {
            record_decision(*entry.item, entry.decision);
          }
        }
      }
      judge_locals[w] = local;
    });
  }

  // Feed the first stage in bulk, then signal end-of-input. push_all blocks
  // on back-pressure, so arbitrarily large batches are safe here.
  {
    std::vector<std::size_t> indices(files.size());
    for (std::size_t i = 0; i < files.size(); ++i) indices[i] = i;
    compile_queue.push_all(indices);
    compile_queue.close();
  }

  for (auto& worker : workers) worker.join();

  for (auto& record : result.records) {
    record.pipeline_says_valid =
        record.compiled && record.executed && record.judged &&
        record.judge_says_valid;
    if (record.dropped) ++result.dropped_items;
  }
  for (const auto& local : compile_locals) {
    merge_into(result.compile_stage, local.stats);
    result.compile_cache_hits += local.cache_hits;
    result.compile_persisted_hits += local.persisted_hits;
  }
  for (const auto& local : execute_locals) {
    merge_into(result.execute_stage, local.stats);
    result.execute_fused_instructions += local.fused_instructions;
    result.execute_fusion_patterns =
        std::max(result.execute_fusion_patterns, local.fusion_patterns);
  }
  for (const auto& local : judge_locals) {
    merge_into(result.judge_stage, local.stats);
    result.judge_gpu_seconds += local.gpu_seconds;
    result.judge_cache_hits += local.cache_hits;
    result.judge_cache_misses += local.cache_misses;
    result.judge_batches += local.batches;
    result.judge_batched_prompts += local.batched_prompts;
    result.judge_max_batch = std::max(result.judge_max_batch, local.max_batch);
    result.judge_persisted_hits += local.persisted_hits;
    result.judge_errors += local.errors;
  }
  // Batcher truth: occupancy and flush telemetry come from the client's
  // counters, windowed over this run — batches are counted as the model
  // actually formed them, not as the judge workers' popped chunks happened
  // to slice them (a pass coalescing several workers' groups counts once,
  // at its true size).
  const llm::ClientStats client_after = judge_->client().stats();
  result.judge_formed_batches =
      client_after.formed_batches - client_before.formed_batches;
  result.judge_flush_immediate =
      client_after.flush_immediate - client_before.flush_immediate;
  result.judge_flush_full =
      client_after.flush_full - client_before.flush_full;
  result.judge_flush_window =
      client_after.flush_window - client_before.flush_window;
  for (std::size_t b = 0; b < llm::ClientStats::kOccupancyBuckets; ++b) {
    result.judge_occupancy_hist[b] =
        client_after.occupancy_hist[b] - client_before.occupancy_hist[b];
  }
  result.judge_queue_depth_peak = client_after.pending_high_water;
  result.judge_retries = client_after.retries - client_before.retries;
  result.judge_timeouts = client_after.timeouts - client_before.timeouts;
  result.judge_shed = client_after.pending_shed - client_before.pending_shed;
  result.breaker_opens =
      client_after.breaker_opens - client_before.breaker_opens;
  for (std::size_t b = 0; b < llm::ClientStats::kRetryLatencyBuckets; ++b) {
    result.judge_retry_latency_hist[b] =
        client_after.retry_latency_hist[b] -
        client_before.retry_latency_hist[b];
  }
  result.queue_steals =
      compile_queue.steals() + execute_queue.steals() + judge_queue.steals();
  const std::uint64_t formed_batched =
      client_after.batches - client_before.batches;
  const std::uint64_t formed_prompts =
      client_after.batched_prompts - client_before.batched_prompts;
  if (formed_batched > 0) {
    result.judge_batch_occupancy = static_cast<double>(formed_prompts) /
                                   static_cast<double>(formed_batched);
  }
  run_span.set_gpu_seconds(result.judge_gpu_seconds);
  run_span.end();
  // Snapshot while the run-scoped probes (client, judge cache, queues) are
  // still live, then drop them: the queues die with this frame, and the
  // client/cache probes must not outlive the pipeline into a longer-lived
  // registry.
  if (registry != nullptr) {
    result.metrics = registry->snapshot();
    registry->unregister_prefix("pipeline.client.");
    registry->unregister_prefix("pipeline.judge_cache.");
    registry->unregister_prefix("pipeline.queue.");
  }
  result.wall_seconds = wall.seconds();
  return result;
}

}  // namespace llm4vv::pipeline
