#include "pipeline/validation_pipeline.hpp"

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "support/mpmc_queue.hpp"
#include "support/stopwatch.hpp"

namespace llm4vv::pipeline {

namespace {

/// Work unit flowing between stages. The compile artifacts ride along so
/// the judge stage can quote them in the agent prompt.
struct WorkItem {
  std::size_t index = 0;
  toolchain::CompileResult compile;
  toolchain::ExecutionRecord exec;
};

/// Thread-safe accumulator for one stage's counters.
class StageCounter {
 public:
  void account(bool rejected, double seconds) {
    std::lock_guard lock(mutex_);
    ++stats_.processed;
    if (rejected) ++stats_.rejected;
    stats_.busy_seconds += seconds;
  }

  StageStats snapshot() const {
    std::lock_guard lock(mutex_);
    return stats_;
  }

 private:
  mutable std::mutex mutex_;
  StageStats stats_;
};

}  // namespace

ValidationPipeline::ValidationPipeline(
    toolchain::CompilerDriver compiler, toolchain::Executor executor,
    std::shared_ptr<const judge::Llmj> judge, PipelineConfig config)
    : compiler_(std::move(compiler)),
      executor_(executor),
      judge_(std::move(judge)),
      config_(config) {
  if (judge_ == nullptr) {
    throw std::invalid_argument("ValidationPipeline: judge must not be null");
  }
  if (config_.compile_workers == 0) config_.compile_workers = 1;
  if (config_.execute_workers == 0) config_.execute_workers = 1;
  if (config_.judge_workers == 0) config_.judge_workers = 1;
}

PipelineResult ValidationPipeline::run(
    const std::vector<frontend::SourceFile>& files) const {
  PipelineResult result;
  result.records.resize(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    result.records[i].index = i;
  }
  if (files.empty()) return result;

  const bool filter = config_.mode == PipelineMode::kFilterEarly;

  support::MpmcQueue<std::size_t> compile_queue(config_.queue_capacity);
  support::MpmcQueue<WorkItem> execute_queue(config_.queue_capacity);
  support::MpmcQueue<WorkItem> judge_queue(config_.queue_capacity);

  StageCounter compile_counter;
  StageCounter execute_counter;
  StageCounter judge_counter;
  std::mutex gpu_mutex;
  double judge_gpu_seconds = 0.0;

  std::atomic<std::size_t> compile_live{config_.compile_workers};
  std::atomic<std::size_t> execute_live{config_.execute_workers};

  support::Stopwatch wall;
  std::vector<std::thread> workers;
  workers.reserve(config_.compile_workers + config_.execute_workers +
                  config_.judge_workers);

  // Stage 1: compile.
  for (std::size_t w = 0; w < config_.compile_workers; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        const auto index = compile_queue.pop();
        if (!index) break;
        support::Stopwatch timer;
        WorkItem item;
        item.index = *index;
        item.compile = compiler_.compile(files[*index]);
        PipelineRecord& record = result.records[*index];
        record.compiled = item.compile.success;
        record.compile_rc = item.compile.return_code;
        compile_counter.account(!item.compile.success, timer.seconds());
        if (filter && !item.compile.success) continue;
        execute_queue.push(std::move(item));
      }
      if (compile_live.fetch_sub(1) == 1) execute_queue.close();
    });
  }

  // Stage 2: execute.
  for (std::size_t w = 0; w < config_.execute_workers; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        auto item = execute_queue.pop();
        if (!item) break;
        support::Stopwatch timer;
        item->exec = executor_.run(item->compile.module);
        PipelineRecord& record = result.records[item->index];
        record.executed = item->exec.passed();
        record.exec_rc = item->exec.return_code;
        execute_counter.account(!item->exec.passed(), timer.seconds());
        if (filter && !item->exec.passed()) continue;
        judge_queue.push(std::move(*item));
      }
      if (execute_live.fetch_sub(1) == 1) judge_queue.close();
    });
  }

  // Stage 3: agent-based LLMJ.
  for (std::size_t w = 0; w < config_.judge_workers; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        auto item = judge_queue.pop();
        if (!item) break;
        support::Stopwatch timer;
        const judge::JudgeDecision decision =
            judge_->evaluate(files[item->index], &item->compile, &item->exec,
                             config_.judge_seed);
        PipelineRecord& record = result.records[item->index];
        record.judged = true;
        record.verdict = decision.verdict;
        record.judge_says_valid = decision.says_valid;
        record.judge_gpu_seconds = decision.completion.latency_seconds;
        judge_counter.account(!decision.says_valid, timer.seconds());
        {
          std::lock_guard lock(gpu_mutex);
          judge_gpu_seconds += decision.completion.latency_seconds;
        }
      }
    });
  }

  // Feed the first stage, then signal end-of-input.
  for (std::size_t i = 0; i < files.size(); ++i) {
    compile_queue.push(i);
  }
  compile_queue.close();

  for (auto& worker : workers) worker.join();

  for (auto& record : result.records) {
    record.pipeline_says_valid =
        record.compiled && record.executed && record.judged &&
        record.judge_says_valid;
  }
  result.compile_stage = compile_counter.snapshot();
  result.execute_stage = execute_counter.snapshot();
  result.judge_stage = judge_counter.snapshot();
  result.wall_seconds = wall.seconds();
  result.judge_gpu_seconds = judge_gpu_seconds;
  return result;
}

}  // namespace llm4vv::pipeline
