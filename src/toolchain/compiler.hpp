#pragma once

#include <memory>
#include <string>

#include "frontend/diagnostics.hpp"
#include "frontend/source.hpp"
#include "vm/bytecode.hpp"

namespace llm4vv::toolchain {

/// Which real compiler's behaviour (diagnostic style, spec version support,
/// feature quirks) the driver imitates. The paper used NVIDIA HPC SDK `nvc`
/// for OpenACC and LLVM `clang` for OpenMP offloading.
struct CompilerConfig {
  frontend::Flavor flavor = frontend::Flavor::kOpenACC;
  /// Supported directive spec version in tenths (nvc: OpenACC 3.3 -> 33;
  /// clang: OpenMP 4.5 -> 45 — the paper capped its corpus at 4.5 because
  /// "many OpenMP offloading compilers do not support all OpenMP features
  /// introduced after version 4.5").
  int supported_version = 33;
  /// Persona name used in diagnostics ("nvc", "clang").
  std::string persona = "nvc";
  /// Probability that a *valid* file trips a feature-support quirk and is
  /// rejected anyway (deterministic per file content). This models the
  /// paper's observed "inconsistent feature support" compile losses on
  /// valid tests; see DESIGN.md §5 and profiles.cpp for the calibration.
  double strictness_reject_rate = 0.0;
  /// Seed mixed into the per-file quirk decision.
  std::uint64_t quirk_seed = 0x9e1ceULL;
};

/// Everything the rest of the system needs to know about one compilation:
/// the process-like observables (return code, streams) that feed the agent
/// prompts, plus the lowered module when compilation succeeded.
struct CompileResult {
  bool success = false;
  int return_code = 1;
  std::string stderr_text;
  std::string stdout_text;
  std::vector<frontend::Diagnostic> diagnostics;
  /// Lowered bytecode; null when compilation failed.
  std::shared_ptr<const vm::Module> module;
};

/// Default personas matching the paper's setup.
CompilerConfig nvc_persona();
CompilerConfig clang_persona();

/// The simulated compiler driver: lex -> parse -> sema -> directive
/// validation -> lowering, with persona-styled diagnostics on stderr.
class CompilerDriver {
 public:
  explicit CompilerDriver(CompilerConfig config);

  /// Compile one source file. Thread-safe (const; no shared mutable state).
  CompileResult compile(const frontend::SourceFile& file) const;

  const CompilerConfig& config() const noexcept { return config_; }

 private:
  CompilerConfig config_;
};

}  // namespace llm4vv::toolchain
