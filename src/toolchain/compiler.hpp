#pragma once

#include <memory>
#include <string>

#include "frontend/diagnostics.hpp"
#include "frontend/source.hpp"
#include "vm/bytecode.hpp"

namespace llm4vv::cache {
class CompileCache;  // cache/compile_cache.hpp stores CompileResults
}

namespace llm4vv::toolchain {

/// Which real compiler's behaviour (diagnostic style, spec version support,
/// feature quirks) the driver imitates. The paper used NVIDIA HPC SDK `nvc`
/// for OpenACC and LLVM `clang` for OpenMP offloading.
struct CompilerConfig {
  frontend::Flavor flavor = frontend::Flavor::kOpenACC;
  /// Supported directive spec version in tenths (nvc: OpenACC 3.3 -> 33;
  /// clang: OpenMP 4.5 -> 45 — the paper capped its corpus at 4.5 because
  /// "many OpenMP offloading compilers do not support all OpenMP features
  /// introduced after version 4.5").
  int supported_version = 33;
  /// Persona name used in diagnostics ("nvc", "clang").
  std::string persona = "nvc";
  /// Probability that a *valid* file trips a feature-support quirk and is
  /// rejected anyway (deterministic per file content). This models the
  /// paper's observed "inconsistent feature support" compile losses on
  /// valid tests; see DESIGN.md §5 and profiles.cpp for the calibration.
  double strictness_reject_rate = 0.0;
  /// Seed mixed into the per-file quirk decision.
  std::uint64_t quirk_seed = 0x9e1ceULL;
};

/// Everything the rest of the system needs to know about one compilation:
/// the process-like observables (return code, streams) that feed the agent
/// prompts, plus the lowered module when compilation succeeded.
struct CompileResult {
  bool success = false;
  int return_code = 1;
  std::string stderr_text;
  std::string stdout_text;
  std::vector<frontend::Diagnostic> diagnostics;
  /// Lowered bytecode; null when compilation failed.
  std::shared_ptr<const vm::Module> module;
  /// True when the driver served this result from its compile cache (the
  /// front-end never ran for this call).
  bool cached = false;
  /// True when the serving cache entry was warm-loaded from a persistent
  /// artifact store (a previous process run paid for the front-end).
  bool persisted = false;
};

/// Default personas matching the paper's setup.
CompilerConfig nvc_persona();
CompilerConfig clang_persona();

/// Stable 64-bit digest of everything in CompilerConfig that can change a
/// compile's outcome. The compile cache mixes it into its keys so caches
/// (and store files) shared between personas never cross-serve results;
/// exposed as a free function so the cache can be built before the driver.
std::uint64_t driver_fingerprint(const CompilerConfig& config) noexcept;

/// Digest of everything about a SourceFile that can change its compile:
/// content, language (parser selection), and name (baked into the rendered
/// diagnostics). This is the identity the compile cache memoizes on.
std::uint64_t file_identity_hash(const frontend::SourceFile& file) noexcept;

/// The simulated compiler driver: lex -> parse -> sema -> directive
/// validation -> lowering, with persona-styled diagnostics on stderr.
///
/// With a cache::CompileCache attached, byte-identical files skip the whole
/// front-end: results are memoized on (content hash, driver fingerprint)
/// and — when the cache is store-backed — survive across process runs.
class CompilerDriver {
 public:
  explicit CompilerDriver(CompilerConfig config);
  CompilerDriver(CompilerConfig config,
                 std::shared_ptr<cache::CompileCache> cache);

  /// Compile one source file. Thread-safe (const; the only shared state is
  /// the thread-safe compile cache).
  CompileResult compile(const frontend::SourceFile& file) const;

  const CompilerConfig& config() const noexcept { return config_; }
  const std::shared_ptr<cache::CompileCache>& cache() const noexcept {
    return cache_;
  }

  /// Digest of this driver's config; see the free driver_fingerprint().
  std::uint64_t fingerprint() const noexcept {
    return driver_fingerprint(config_);
  }

 private:
  CompileResult compile_uncached(const frontend::SourceFile& file) const;

  CompilerConfig config_;
  std::shared_ptr<cache::CompileCache> cache_;
};

}  // namespace llm4vv::toolchain
