#include "toolchain/executor.hpp"

namespace llm4vv::toolchain {

ExecutionRecord Executor::run(
    const std::shared_ptr<const vm::Module>& module) const {
  ExecutionRecord record;
  if (module == nullptr) return record;
  const vm::ExecResult result =
      vm::execute(*module, limits_, dispatch_, fuse_);
  record.ran = true;
  record.return_code = result.return_code;
  record.stdout_text = result.stdout_text;
  record.stderr_text = result.stderr_text;
  record.trap = result.trap;
  record.steps = result.steps;
  record.fused_instructions = result.fused_instructions;
  record.fusion_patterns = result.fusion_patterns;
  return record;
}

}  // namespace llm4vv::toolchain
