#pragma once

#include "toolchain/compiler.hpp"
#include "vm/interp.hpp"

namespace llm4vv::toolchain {

/// Process-like view of one test execution, feeding the pipeline's second
/// stage and the agent prompts.
struct ExecutionRecord {
  bool ran = false;  ///< false when there was no module to run
  int return_code = -1;
  std::string stdout_text;
  std::string stderr_text;
  vm::TrapKind trap = vm::TrapKind::kNone;
  std::uint64_t steps = 0;

  bool passed() const noexcept { return ran && return_code == 0; }
};

/// Runs compiled modules under the VM with execution budgets.
class Executor {
 public:
  /// `dispatch` selects the VM dispatch core (all cores are semantically
  /// identical; the default is the fastest one this build provides).
  explicit Executor(vm::ExecLimits limits = {},
                    vm::DispatchMode dispatch = vm::default_dispatch_mode())
      : limits_(limits), dispatch_(dispatch) {}

  /// Execute a compiled module; a null module yields ran=false.
  ExecutionRecord run(const std::shared_ptr<const vm::Module>& module) const;

  /// The dispatch core this executor runs modules with.
  vm::DispatchMode dispatch_mode() const noexcept { return dispatch_; }

 private:
  vm::ExecLimits limits_;
  vm::DispatchMode dispatch_;
};

}  // namespace llm4vv::toolchain
