#pragma once

#include "toolchain/compiler.hpp"
#include "vm/interp.hpp"

namespace llm4vv::toolchain {

/// Process-like view of one test execution, feeding the pipeline's second
/// stage and the agent prompts.
struct ExecutionRecord {
  bool ran = false;  ///< false when there was no module to run
  int return_code = -1;
  std::string stdout_text;
  std::string stderr_text;
  vm::TrapKind trap = vm::TrapKind::kNone;
  std::uint64_t steps = 0;

  bool passed() const noexcept { return ran && return_code == 0; }
};

/// Runs compiled modules under the VM with execution budgets.
class Executor {
 public:
  explicit Executor(vm::ExecLimits limits = {}) : limits_(limits) {}

  /// Execute a compiled module; a null module yields ran=false.
  ExecutionRecord run(const std::shared_ptr<const vm::Module>& module) const;

 private:
  vm::ExecLimits limits_;
};

}  // namespace llm4vv::toolchain
