#pragma once

#include "toolchain/compiler.hpp"
#include "vm/interp.hpp"

namespace llm4vv::toolchain {

/// Process-like view of one test execution, feeding the pipeline's second
/// stage and the agent prompts.
struct ExecutionRecord {
  bool ran = false;  ///< false when there was no module to run
  int return_code = -1;
  std::string stdout_text;
  std::string stderr_text;
  vm::TrapKind trap = vm::TrapKind::kNone;
  std::uint64_t steps = 0;
  /// Superinstruction sites the VM's decode-time fusion pass rewrote for
  /// this run (0 when fusion is off or the reference core ran) and the
  /// distinct patterns among them — see docs/ARCHITECTURE.md.
  std::uint64_t fused_instructions = 0;
  std::uint32_t fusion_patterns = 0;

  bool passed() const noexcept { return ran && return_code == 0; }
};

/// Runs compiled modules under the VM with execution budgets.
class Executor {
 public:
  /// `dispatch` selects the VM dispatch core (all cores are semantically
  /// identical; the default is the fastest one this build provides), and
  /// `fuse` whether its pre-decoder fuses superinstructions (ignored by the
  /// reference core; the default follows the build's LLM4VV_VM_FUSION).
  explicit Executor(vm::ExecLimits limits = {},
                    vm::DispatchMode dispatch = vm::default_dispatch_mode(),
                    bool fuse = vm::default_fusion_enabled())
      : limits_(limits), dispatch_(dispatch), fuse_(fuse) {}

  /// Execute a compiled module; a null module yields ran=false.
  ExecutionRecord run(const std::shared_ptr<const vm::Module>& module) const;

  /// The dispatch core this executor runs modules with.
  vm::DispatchMode dispatch_mode() const noexcept { return dispatch_; }

  /// Whether this executor's VM decode pass fuses superinstructions.
  bool fusion_enabled() const noexcept { return fuse_; }

 private:
  vm::ExecLimits limits_;
  vm::DispatchMode dispatch_;
  bool fuse_;
};

}  // namespace llm4vv::toolchain
