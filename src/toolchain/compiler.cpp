#include "toolchain/compiler.hpp"

#include <cstring>

#include "cache/compile_cache.hpp"
#include "directive/validator.hpp"
#include "frontend/fortran.hpp"
#include "frontend/lexer.hpp"
#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "support/rng.hpp"
#include "vm/lower.hpp"

namespace llm4vv::toolchain {

namespace {

using frontend::DiagCode;
using frontend::Diagnostic;
using frontend::Severity;

std::string render_nvc(const frontend::SourceFile& file,
                       const Diagnostic& diag) {
  // NVHPC style: "NVC++-S-0103-message (file.c: 12)".
  const char* sev = diag.severity == Severity::kError ? "S" : "W";
  const int code = 100 + static_cast<int>(diag.code);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "NVC++-%s-%04d-", sev, code);
  return std::string(buf) + diag.message + " (" + file.name + ": " +
         std::to_string(diag.line) + ")\n";
}

std::string render_clang(const frontend::SourceFile& file,
                         const Diagnostic& diag) {
  // clang style: "file.c:12:3: error: message".
  const char* sev =
      diag.severity == Severity::kError
          ? "error"
          : (diag.severity == Severity::kWarning ? "warning" : "note");
  return file.name + ":" + std::to_string(diag.line) + ":" +
         std::to_string(diag.column) + ": " + sev + ": " + diag.message +
         "\n";
}

/// The strictness quirk only applies to files that actually use directives:
/// it models spotty *offload feature* support, so a plain C file (e.g. an
/// issue-3 replacement) never trips it.
bool uses_quirky_feature(const std::string& content) {
  return content.find("#pragma acc") != std::string::npos ||
         content.find("#pragma omp") != std::string::npos ||
         content.find("!$acc") != std::string::npos ||
         content.find("!$omp") != std::string::npos;
}

}  // namespace

CompilerConfig nvc_persona() {
  CompilerConfig config;
  config.flavor = frontend::Flavor::kOpenACC;
  config.supported_version = 33;
  config.persona = "nvc";
  // Calibrated to the paper's pipeline-vs-judge gap on valid OpenACC files
  // (Table IV "No issue" 79% vs Table VII 92% under LLMJ 1): the compile/
  // exec stages must reject ~13-14% of valid files.
  config.strictness_reject_rate = 0.14;
  return config;
}

CompilerConfig clang_persona() {
  CompilerConfig config;
  config.flavor = frontend::Flavor::kOpenMP;
  config.supported_version = 45;
  config.persona = "clang";
  // The OpenMP suite was pre-filtered to <= 4.5 precisely so the compiler
  // would be fully compliant; only a residual quirk rate remains
  // (Table V 92% vs Table VIII 93%).
  config.strictness_reject_rate = 0.015;
  return config;
}

CompilerDriver::CompilerDriver(CompilerConfig config)
    : config_(std::move(config)) {}

CompilerDriver::CompilerDriver(CompilerConfig config,
                               std::shared_ptr<cache::CompileCache> cache)
    : config_(std::move(config)), cache_(std::move(cache)) {}

std::uint64_t driver_fingerprint(const CompilerConfig& config) noexcept {
  // Mix every config field that can change a compile's outcome. The
  // strictness rate enters via its IEEE bit pattern (exact, no rounding).
  std::uint64_t h = support::fnv1a64(config.persona);
  h = support::hash_mix(h, static_cast<std::uint64_t>(config.flavor));
  h = support::hash_mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(
                               config.supported_version)));
  std::uint64_t rate_bits = 0;
  static_assert(sizeof(rate_bits) == sizeof(config.strictness_reject_rate));
  std::memcpy(&rate_bits, &config.strictness_reject_rate, sizeof(rate_bits));
  h = support::hash_mix(h, rate_bits);
  h = support::hash_mix(h, config.quirk_seed);
  return h;
}

std::uint64_t file_identity_hash(const frontend::SourceFile& file) noexcept {
  // Everything about the *file* that can change a compile's outcome: the
  // content (obviously), the language (selects the Fortran vs C front-end),
  // and the name (rendered into every persona diagnostic, so two identical
  // files under different names must not share cached stderr). The driver
  // config is covered separately by driver_fingerprint().
  std::uint64_t h = support::fnv1a64(file.content);
  h = support::hash_mix(h, support::fnv1a64(file.name));
  h = support::hash_mix(h, static_cast<std::uint64_t>(file.language));
  return h;
}

CompileResult CompilerDriver::compile(const frontend::SourceFile& file) const {
  if (cache_ == nullptr) return compile_uncached(file);
  const std::uint64_t identity = file_identity_hash(file);
  if (auto hit = cache_->lookup(identity)) return std::move(*hit);
  CompileResult result = compile_uncached(file);
  cache_->insert(identity, result);
  return result;
}

CompileResult CompilerDriver::compile_uncached(
    const frontend::SourceFile& file) const {
  CompileResult result;
  frontend::DiagnosticEngine diags;

  frontend::ParserOptions popts;
  popts.pragma_takes_statement = directive::pragma_takes_statement;

  frontend::Program program;
  if (file.language == frontend::Language::kFortran) {
    program = frontend::parse_fortran(file.content, diags, popts);
  } else {
    const auto lexed = frontend::lex(file.content, diags);
    program = frontend::parse(lexed.tokens, diags, popts);
  }

  if (!diags.has_errors()) {
    frontend::analyze(program, diags);
  }
  if (!diags.has_errors()) {
    directive::ValidatorOptions vopts;
    vopts.flavor = config_.flavor;
    vopts.supported_version = config_.supported_version;
    directive::validate_program(program, vopts, diags);
  }

  // Persona strictness quirk on otherwise-valid files (deterministic by
  // content hash, so re-compiling a file gives the same answer).
  if (!diags.has_errors() && config_.strictness_reject_rate > 0.0 &&
      uses_quirky_feature(file.content)) {
    support::Rng quirk(support::fnv1a64(file.content) ^ config_.quirk_seed);
    // Quirky features appear in most files, so rescale the per-file rate.
    if (quirk.chance(config_.strictness_reject_rate)) {
      diags.error(DiagCode::kStrictness, 1, 1,
                  config_.persona == "nvc"
                      ? "unsupported feature combination for the selected "
                        "compute capability"
                      : "feature is not yet supported by the offloading "
                        "target");
    }
  }

  result.diagnostics = diags.diagnostics();
  for (const auto& diag : result.diagnostics) {
    result.stderr_text += config_.persona == "nvc"
                              ? render_nvc(file, diag)
                              : render_clang(file, diag);
  }

  if (diags.has_errors()) {
    result.success = false;
    result.return_code = config_.persona == "nvc" ? 2 : 1;
    return result;
  }

  vm::LowerOptions lopts;
  lopts.flavor = config_.flavor;
  result.module =
      std::make_shared<const vm::Module>(vm::lower(program, lopts));
  result.success = true;
  result.return_code = 0;
  return result;
}

}  // namespace llm4vv::toolchain
