#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "frontend/diagnostics.hpp"
#include "vm/bytecode.hpp"

namespace llm4vv::cache {

/// Compact, self-validating text codecs for the artifact store's compile
/// records. A persisted compile hit must reproduce the whole CompileResult
/// — diagnostics AND the lowered module — or the front-end cannot actually
/// be skipped; these codecs carry both. The encoding is whitespace-
/// separated tokens (strings hex-encoded, doubles as IEEE bit patterns),
/// chosen so a record embeds losslessly inside one JSONL string field.
///
/// decode_* returns std::nullopt on any malformed or out-of-range token:
/// a corrupted record degrades to a cache miss, never to undefined
/// interpreter behaviour.
std::string encode_module(const vm::Module& module);
std::optional<vm::Module> decode_module(std::string_view text);

std::string encode_diagnostics(
    const std::vector<frontend::Diagnostic>& diagnostics);
std::optional<std::vector<frontend::Diagnostic>> decode_diagnostics(
    std::string_view text);

}  // namespace llm4vv::cache
