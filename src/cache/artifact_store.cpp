#include "cache/artifact_store.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/registry.hpp"
#include "support/jsonl.hpp"
#include "support/strings.hpp"

namespace llm4vv::cache {

namespace {

constexpr const char* kMagic = "llm4vv-artifact-store";
constexpr int kFormat = 1;

std::string hex16(std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

bool parse_hex16(const std::string& text, std::uint64_t& out) {
  if (text.empty() || text.size() > 16) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    const int digit = support::hex_digit_value(c);
    if (digit < 0) return false;
    value = (value << 4) | static_cast<std::uint64_t>(digit);
  }
  out = value;
  return true;
}

const std::string* get_string(
    const std::map<std::string, support::JsonValue>& object,
    const char* key) {
  const auto it = object.find(key);
  if (it == object.end() || !it->second.is_string()) return nullptr;
  return &it->second.string;
}

/// Tolerate CRLF files: getline leaves the '\r', which would otherwise
/// read as trailing garbage and cold-start the whole store.
void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

}  // namespace

const std::string* find_field(const ArtifactStore::Fields& fields,
                              const char* name) {
  const auto it = fields.find(name);
  return it == fields.end() ? nullptr : &it->second;
}

bool parse_int_field(const std::string& text, std::int64_t& value) {
  errno = 0;
  char* end = nullptr;
  value = std::strtoll(text.c_str(), &end, 10);
  return end != text.c_str() && *end == '\0' && errno != ERANGE;
}

ArtifactStore::ArtifactStore(ArtifactStoreConfig config)
    : config_(std::move(config)) {
  if (config_.max_records == 0) config_.max_records = 1;
  load_file();
}

std::string ArtifactStore::map_key(std::string_view ns, std::uint64_t key) {
  std::string combined(ns);
  combined.push_back('\0');
  combined += hex16(key);
  return combined;
}

void ArtifactStore::load_file() {
  if (config_.path.empty()) return;
  std::ifstream in(config_.path);
  if (!in.is_open()) return;  // fresh file: nothing to load, not an error
  // Constructor context: uncontended, taken to satisfy the GUARDED_BY
  // discipline on records_/order_ (insert_locked requires it).
  support::WriterLock lock(mutex_);
  load_report_.attempted = true;

  std::string line;
  if (!std::getline(in, line)) {
    load_report_.cold_start = true;
    load_report_.cold_start_reason = "empty file (no header)";
    return;
  }
  strip_cr(line);
  const auto header = support::parse_json_object_line(line);
  if (!header) {
    load_report_.cold_start = true;
    load_report_.cold_start_reason = "unparseable header line";
    return;
  }
  const std::string* magic = get_string(*header, "magic");
  const auto format = header->find("format");
  if (magic == nullptr || *magic != kMagic || format == header->end() ||
      !format->second.is_number() ||
      static_cast<int>(format->second.number) != kFormat) {
    load_report_.cold_start = true;
    load_report_.cold_start_reason = "wrong magic or format version";
    return;
  }
  const std::string* corpus = get_string(*header, "corpus");
  const std::string* model = get_string(*header, "model");
  const std::string* seed_hex = get_string(*header, "seed");
  std::uint64_t seed = 0;
  if (corpus == nullptr || model == nullptr || seed_hex == nullptr ||
      !parse_hex16(*seed_hex, seed)) {
    load_report_.cold_start = true;
    load_report_.cold_start_reason = "header missing fingerprint fields";
    return;
  }
  const StoreFingerprint found{*corpus, *model, seed};
  if (!(found == config_.fingerprint)) {
    load_report_.cold_start = true;
    load_report_.cold_start_reason =
        "fingerprint mismatch (corpus/model/seed changed); cold start";
    return;
  }

  while (std::getline(in, line)) {
    strip_cr(line);
    if (support::trim(line).empty()) continue;
    const auto object = support::parse_json_object_line(line);
    if (!object) {
      ++load_report_.corrupt_lines;
      continue;
    }
    const std::string* ns = get_string(*object, "ns");
    const std::string* key_hex = get_string(*object, "key");
    const std::string* check_hex = get_string(*object, "check");
    std::uint64_t key = 0;
    std::uint64_t check = 0;
    if (ns == nullptr || key_hex == nullptr || check_hex == nullptr ||
        !parse_hex16(*key_hex, key) || !parse_hex16(*check_hex, check)) {
      ++load_report_.corrupt_lines;
      continue;
    }
    Fields fields;
    bool bad_field = false;
    for (const auto& [name, value] : *object) {
      if (!support::starts_with(name, "f_")) continue;
      if (!value.is_string()) {
        bad_field = true;
        break;
      }
      fields.emplace(name.substr(2), value.string);
    }
    if (bad_field) {
      ++load_report_.corrupt_lines;
      continue;
    }
    insert_locked(*ns, key, check, std::move(fields));
    ++load_report_.loaded;
  }
  // Constructor runs single-threaded; discount the load's bookkeeping
  // (puts and any compaction of an over-full file against a smaller
  // max_records) so stats count only client traffic.
  puts_ = 0;
  compactions_ = 0;
}

std::optional<ArtifactStore::Fields> ArtifactStore::get(
    std::string_view ns, std::uint64_t key, std::uint64_t check) const {
  support::ReaderLock lock(mutex_);
  gets_.fetch_add(1, std::memory_order_relaxed);
  const auto it = records_.find(map_key(ns, key));
  if (it == records_.end() || it->second.check != check) return std::nullopt;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.fields;
}

void ArtifactStore::insert_locked(std::string_view ns, std::uint64_t key,
                                  std::uint64_t check, Fields fields) {
  std::string mk = map_key(ns, key);
  const auto it = records_.find(mk);
  if (it != records_.end()) {
    it->second.check = check;
    it->second.fields = std::move(fields);
    return;
  }
  Record record;
  record.ns = std::string(ns);
  record.key = key;
  record.check = check;
  record.fields = std::move(fields);
  records_.emplace(mk, std::move(record));
  order_.push_back(std::move(mk));
  while (records_.size() > config_.max_records) {
    records_.erase(order_.front());
    order_.pop_front();
    ++compactions_;
  }
  ++puts_;
}

void ArtifactStore::put(std::string_view ns, std::uint64_t key,
                        std::uint64_t check, Fields fields) {
  support::WriterLock lock(mutex_);
  insert_locked(ns, key, check, std::move(fields));
}

void ArtifactStore::for_each(
    std::string_view ns,
    const std::function<void(std::uint64_t, std::uint64_t, const Fields&)>&
        visit) const {
  support::ReaderLock lock(mutex_);
  for (const auto& mk : order_) {
    const auto it = records_.find(mk);
    if (it == records_.end() || it->second.ns != ns) continue;
    visit(it->second.key, it->second.check, it->second.fields);
  }
}

bool ArtifactStore::save() {
  if (config_.path.empty()) return true;

  // Savers serialize on their own mutex for the whole snapshot+write+rename
  // sequence: two concurrent save() calls would otherwise interleave writes
  // into the shared `<path>.tmp` and publish a garbled file. Readers and
  // writers of the in-memory map are unaffected — they only contend on
  // `mutex_` during the snapshot below.
  support::MutexLock save_lock(save_mutex_);

  // Render the snapshot under the lock, write it outside: a slow disk never
  // blocks readers longer than the serialization itself.
  std::ostringstream out;
  {
    support::WriterLock lock(mutex_);
    support::JsonObject header;
    header.field("magic", std::string(kMagic))
        .field("format", static_cast<std::int64_t>(kFormat))
        .field("corpus", config_.fingerprint.corpus)
        .field("model", config_.fingerprint.model)
        .field("seed", hex16(config_.fingerprint.seed));
    out << header.str() << '\n';
    for (const auto& mk : order_) {
      const auto it = records_.find(mk);
      if (it == records_.end()) continue;
      const Record& record = it->second;
      support::JsonObject line;
      line.field("ns", record.ns)
          .field("key", hex16(record.key))
          .field("check", hex16(record.check));
      for (const auto& [name, value] : record.fields) {
        line.field("f_" + name, value);
      }
      out << line.str() << '\n';
    }
  }

  const std::string temp = config_.path + ".tmp";
  {
    std::ofstream file(temp, std::ios::trunc | std::ios::binary);
    if (!file.is_open()) {
      support::WriterLock lock(mutex_);
      last_error_ = "cannot open temp file: " + temp;
      return false;
    }
    file << out.str();
    file.flush();
    if (!file.good()) {
      support::WriterLock lock(mutex_);
      last_error_ = "write failed: " + temp;
      return false;
    }
  }
  if (std::rename(temp.c_str(), config_.path.c_str()) != 0) {
    support::WriterLock lock(mutex_);
    last_error_ = "rename failed: " + temp + " -> " + config_.path;
    return false;
  }
  // Count only saves that actually published a file; a monitor reading
  // stats().saves > 0 may conclude persistence works.
  {
    support::WriterLock lock(mutex_);
    ++saves_;
  }
  return true;
}

std::size_t ArtifactStore::size() const {
  support::ReaderLock lock(mutex_);
  return records_.size();
}

ArtifactStoreStats ArtifactStore::stats() const {
  support::ReaderLock lock(mutex_);
  ArtifactStoreStats stats;
  stats.records = records_.size();
  stats.gets = gets_.load(std::memory_order_relaxed);
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.puts = puts_;
  stats.compactions = compactions_;
  stats.saves = saves_;
  return stats;
}

std::string ArtifactStore::last_error() const {
  support::ReaderLock lock(mutex_);
  return last_error_;
}

void ArtifactStore::register_metrics(obs::Registry& registry,
                                     const std::string& prefix) const {
  const auto probe = [&registry, this, &prefix](const char* name,
                                                auto field) {
    registry.register_probe(prefix + "." + name, [this, field] {
      return static_cast<double>(field(stats()));
    });
  };
  probe("records", [](const ArtifactStoreStats& s) { return s.records; });
  probe("gets", [](const ArtifactStoreStats& s) { return s.gets; });
  probe("hits", [](const ArtifactStoreStats& s) { return s.hits; });
  probe("puts", [](const ArtifactStoreStats& s) { return s.puts; });
  probe("compactions",
        [](const ArtifactStoreStats& s) { return s.compactions; });
  probe("saves", [](const ArtifactStoreStats& s) { return s.saves; });
}

}  // namespace llm4vv::cache
