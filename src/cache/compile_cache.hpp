#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>

#include "cache/artifact_store.hpp"
#include "support/thread_annotations.hpp"
#include "toolchain/compiler.hpp"

namespace llm4vv::cache {

struct CompileCacheConfig {
  /// Maximum memoized results; oldest-first eviction. Entries share the
  /// (immutable) lowered module, so a cached result is a handful of strings
  /// plus one shared_ptr.
  std::size_t capacity = 4096;
  /// Optional persistence: when set, the cache warm-loads every "compile"
  /// record whose driver fingerprint matches at construction and persist()
  /// snapshots the memo back. Null keeps the cache purely in-memory.
  std::shared_ptr<ArtifactStore> store;
};

struct CompileCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// Hits served by an entry that was warm-loaded from the artifact store
  /// (i.e. the front-end was skipped thanks to a previous process run).
  std::uint64_t persisted_hits = 0;
  std::uint64_t evictions = 0;
  /// Records decoded from the store at construction.
  std::uint64_t warm_loaded = 0;
};

/// Content-addressed memo of full CompileResults for one driver
/// configuration. Byte-identical files skip the lexer/parser/sema/lower
/// front-end entirely — within a run, across runs in one process, and
/// (through the artifact store, which serializes diagnostics and the
/// lowered bytecode module) across process runs.
///
/// The key mixes the file's identity hash (content + name + language; see
/// toolchain::file_identity_hash) with a fingerprint of the driver
/// configuration (flavor, spec version, persona, strictness, quirk seed),
/// so one cache — and one store file — can serve several personas without
/// cross-talk; the raw identity hash rides along as the collision check.
///
/// Thread-safe; one mutex. Compilation is orders of magnitude more
/// expensive than the critical section, so sharding (as in the judge's
/// memo cache) is not worth its footprint here.
class CompileCache {
 public:
  /// `driver_fingerprint` must uniquely describe the compiling driver's
  /// configuration; CompilerDriver computes it (see driver_fingerprint()).
  CompileCache(CompileCacheConfig config, std::uint64_t driver_fingerprint);

  /// Look up the result for a file identity hash. The returned result is a
  /// copy whose `cached` flag is set (and `persisted` when the entry came
  /// from the store).
  std::optional<toolchain::CompileResult> lookup(
      std::uint64_t identity_hash) const;

  /// Memoize a freshly compiled result.
  void insert(std::uint64_t identity_hash,
              const toolchain::CompileResult& result);

  /// Snapshot every memoized entry into the artifact store (namespace
  /// "compile"). Does not save the store — the caller decides when to hit
  /// the disk, so one save can cover the judge's records too. Returns the
  /// number of records written; 0 without a store.
  std::size_t persist() const;

  CompileCacheStats stats() const;
  const CompileCacheConfig& config() const noexcept { return config_; }

 private:
  struct Entry {
    toolchain::CompileResult result;
    std::uint64_t content_hash = 0;  ///< file identity hash (store check)
    bool persisted = false;          ///< warm-loaded from the store
  };

  std::uint64_t key_for(std::uint64_t content_hash) const noexcept;
  void warm_load() EXCLUDES(mutex_);

  CompileCacheConfig config_;
  std::uint64_t driver_fingerprint_ = 0;

  mutable support::Mutex mutex_;
  std::unordered_map<std::uint64_t, Entry> entries_ GUARDED_BY(mutex_);
  std::deque<std::uint64_t> order_ GUARDED_BY(mutex_);
  mutable CompileCacheStats stats_ GUARDED_BY(mutex_);
};

/// Encode/decode one CompileResult as artifact-store fields (exposed for
/// tests; persist()/warm_load() use these).
ArtifactStore::Fields encode_compile_result(
    const toolchain::CompileResult& result);
std::optional<toolchain::CompileResult> decode_compile_result(
    const ArtifactStore::Fields& fields);

}  // namespace llm4vv::cache
