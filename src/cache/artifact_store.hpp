#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "support/thread_annotations.hpp"

namespace llm4vv::obs {
class Registry;
}  // namespace llm4vv::obs

namespace llm4vv::cache {

/// Identity of the world a store's records were computed in. Persisted in
/// the file header and re-checked on load: any mismatch means the records
/// could be stale (different model, different judge seed, different corpus
/// recipe), so the store cold-starts instead of ever serving a wrong
/// artifact. Content hashes guard per-record identity; the fingerprint
/// guards everything a content hash cannot see.
struct StoreFingerprint {
  std::string corpus;      ///< free-form corpus/config recipe id
  std::string model;       ///< model name the artifacts were computed with
  std::uint64_t seed = 0;  ///< e.g. the judge seed

  bool operator==(const StoreFingerprint&) const = default;
};

struct ArtifactStoreConfig {
  /// Backing JSONL file. Empty selects a purely in-memory store (save() is
  /// then a no-op) — useful for tests and for sharing one process-wide
  /// cache between pipeline runs without touching disk.
  std::string path;
  /// Maximum records held (and persisted); oldest-first compaction beyond
  /// this bound, exactly like the judge memo cache's FIFO eviction.
  std::size_t max_records = 65536;
  StoreFingerprint fingerprint;
};

/// What happened when the store read its backing file at construction.
struct StoreLoadReport {
  bool attempted = false;   ///< path was non-empty and the file existed
  bool cold_start = false;  ///< header missing/mismatched: contents ignored
  std::string cold_start_reason;
  std::size_t loaded = 0;         ///< records accepted
  std::size_t corrupt_lines = 0;  ///< lines skipped (truncated tail etc.)
};

struct ArtifactStoreStats {
  std::size_t records = 0;
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;
  std::uint64_t puts = 0;
  std::uint64_t compactions = 0;  ///< records dropped by the size bound
  std::uint64_t saves = 0;
};

/// Persistent content-addressed artifact store (JSON Lines on disk).
///
/// Keys are (namespace, 64-bit key, 64-bit check): the key is whatever mix
/// of inputs the client computes (e.g. the judge's cache key), the check is
/// an independent content hash re-verified on every get, so a key collision
/// degrades to a miss instead of a wrong artifact. Values are flat
/// string->string field maps; clients own their own field encoding.
///
/// File format — line 1 is a versioned header carrying the fingerprint:
///   {"magic":"llm4vv-artifact-store","format":1,"corpus":...,"model":...,
///    "seed":"<hex>"}
/// then one record per line:
///   {"ns":"judge","key":"<hex16>","check":"<hex16>","f_<name>":"...",...}
/// A header mismatch cold-starts the store; unparseable record lines (e.g.
/// a tail truncated by a crash mid-write) are skipped and counted. save()
/// writes the whole store to `<path>.tmp` and renames it over `path`, so a
/// reader never observes a half-written file.
///
/// Thread-safe: get() takes a shared lock (concurrent readers never
/// serialize), put()/save() take the exclusive lock.
class ArtifactStore {
 public:
  using Fields = std::map<std::string, std::string>;

  /// Opens the store and loads `config.path` if it exists; see
  /// load_report() for what happened.
  explicit ArtifactStore(ArtifactStoreConfig config);

  /// Look up a record; nullopt when absent or when the stored check hash
  /// does not match (a detected collision counts as a miss).
  std::optional<Fields> get(std::string_view ns, std::uint64_t key,
                            std::uint64_t check) const;

  /// Insert or overwrite a record. Overwrites keep the record's original
  /// age; fresh keys enter at the back of the compaction order.
  void put(std::string_view ns, std::uint64_t key, std::uint64_t check,
           Fields fields);

  /// Visit every record of one namespace in oldest-first order (used by
  /// clients to warm-load their in-memory caches).
  void for_each(std::string_view ns,
                const std::function<void(std::uint64_t key,
                                         std::uint64_t check,
                                         const Fields& fields)>& visit) const;

  /// Atomically persist to the configured path (write-temp-then-rename).
  /// Returns false on IO failure (see last_error()); true and a no-op for
  /// an in-memory store.
  bool save();

  std::size_t size() const;
  ArtifactStoreStats stats() const;

  /// Re-register the store counters into a metrics registry as scrape-time
  /// probes under `prefix` ("<prefix>.records", "<prefix>.hits", ...).
  /// Probes read stats(), so registry values equal the legacy snapshot
  /// fields by construction. The store must outlive the registration.
  void register_metrics(obs::Registry& registry,
                        const std::string& prefix) const;
  const StoreLoadReport& load_report() const noexcept { return load_report_; }
  const ArtifactStoreConfig& config() const noexcept { return config_; }
  std::string last_error() const;

 private:
  struct Record {
    std::string ns;
    std::uint64_t key = 0;
    std::uint64_t check = 0;
    Fields fields;
  };

  static std::string map_key(std::string_view ns, std::uint64_t key);

  void load_file() EXCLUDES(mutex_);
  /// Insert shared by load_file() and put(); expects the writer lock held.
  void insert_locked(std::string_view ns, std::uint64_t key,
                     std::uint64_t check, Fields fields) REQUIRES(mutex_);

  ArtifactStoreConfig config_;
  StoreLoadReport load_report_;

  mutable support::SharedMutex mutex_;
  /// Serializes whole save() calls (snapshot + temp write + rename); see
  /// save() for why this cannot ride on `mutex_`.
  support::Mutex save_mutex_;
  std::unordered_map<std::string, Record> records_ GUARDED_BY(mutex_);
  /// Insertion order for compaction.
  std::deque<std::string> order_ GUARDED_BY(mutex_);
  std::string last_error_ GUARDED_BY(mutex_);

  mutable std::atomic<std::uint64_t> gets_{0};
  mutable std::atomic<std::uint64_t> hits_{0};
  std::uint64_t puts_ GUARDED_BY(mutex_) = 0;
  std::uint64_t compactions_ GUARDED_BY(mutex_) = 0;
  std::uint64_t saves_ GUARDED_BY(mutex_) = 0;
};

/// Field accessors shared by the store's client codecs (judge verdicts,
/// compile results), so their validation rules cannot drift apart:
/// find_field returns null for a missing name; parse_int_field accepts
/// exactly a full base-10 integer token and rejects overflow.
const std::string* find_field(const ArtifactStore::Fields& fields,
                              const char* name);
bool parse_int_field(const std::string& text, std::int64_t& value);

}  // namespace llm4vv::cache
