#include "cache/compile_cache.hpp"

#include <climits>
#include <cstdlib>
#include <vector>

#include "cache/module_codec.hpp"
#include "support/rng.hpp"

namespace llm4vv::cache {

namespace {

constexpr const char* kNamespace = "compile";

}  // namespace

ArtifactStore::Fields encode_compile_result(
    const toolchain::CompileResult& result) {
  ArtifactStore::Fields fields;
  fields["success"] = result.success ? "1" : "0";
  fields["rc"] = std::to_string(result.return_code);
  fields["stderr"] = result.stderr_text;
  fields["stdout"] = result.stdout_text;
  fields["diags"] = encode_diagnostics(result.diagnostics);
  if (result.module != nullptr) {
    fields["module"] = encode_module(*result.module);
  }
  return fields;
}

std::optional<toolchain::CompileResult> decode_compile_result(
    const ArtifactStore::Fields& fields) {
  const std::string* success = find_field(fields, "success");
  const std::string* rc = find_field(fields, "rc");
  const std::string* err = find_field(fields, "stderr");
  const std::string* out = find_field(fields, "stdout");
  const std::string* diags = find_field(fields, "diags");
  if (success == nullptr || rc == nullptr || err == nullptr ||
      out == nullptr || diags == nullptr) {
    return std::nullopt;
  }
  toolchain::CompileResult result;
  result.success = *success == "1";
  std::int64_t code = 0;
  if (!parse_int_field(*rc, code) || code < INT_MIN || code > INT_MAX) {
    return std::nullopt;
  }
  result.return_code = static_cast<int>(code);
  result.stderr_text = *err;
  result.stdout_text = *out;
  auto decoded_diags = decode_diagnostics(*diags);
  if (!decoded_diags) return std::nullopt;
  result.diagnostics = std::move(*decoded_diags);
  if (const std::string* module_text = find_field(fields, "module")) {
    auto module = decode_module(*module_text);
    if (!module) return std::nullopt;
    result.module =
        std::make_shared<const vm::Module>(std::move(*module));
  } else if (result.success) {
    // A successful compile without its module cannot skip the front-end.
    return std::nullopt;
  }
  return result;
}

CompileCache::CompileCache(CompileCacheConfig config,
                           std::uint64_t driver_fingerprint)
    : config_(std::move(config)), driver_fingerprint_(driver_fingerprint) {
  if (config_.capacity == 0) config_.capacity = 1;
  if (config_.store != nullptr) warm_load();
}

std::uint64_t CompileCache::key_for(
    std::uint64_t identity_hash) const noexcept {
  return support::hash_mix(identity_hash, driver_fingerprint_);
}

void CompileCache::warm_load() {
  // Constructor context: uncontended, the lock below is taken to satisfy
  // the GUARDED_BY discipline on entries_/order_/stats_.
  config_.store->for_each(
      kNamespace,
      [this](std::uint64_t key, std::uint64_t check,
             const ArtifactStore::Fields& fields) {
        support::MutexLock lock(mutex_);
        // Only records keyed under this driver's fingerprint belong here:
        // the check hash is the raw file identity hash, so re-deriving the
        // key filters other personas' records. The capacity check comes
        // before the (module-decoding, expensive) result decode so a store
        // larger than this cache doesn't pay for entries it will discard.
        if (key_for(check) != key) return;
        if (entries_.size() >= config_.capacity ||
            entries_.count(key) != 0) {
          return;
        }
        auto result = decode_compile_result(fields);
        if (!result) return;  // corrupt record: degrade to a miss
        entries_.emplace(key, Entry{std::move(*result), check, true});
        order_.push_back(key);
        ++stats_.warm_loaded;
      });
}

std::optional<toolchain::CompileResult> CompileCache::lookup(
    std::uint64_t identity_hash) const {
  const std::uint64_t key = key_for(identity_hash);
  support::MutexLock lock(mutex_);
  const auto it = entries_.find(key);
  // The raw identity hash is the collision check: a mixed-key collision
  // between two distinct files degrades to a miss, never a wrong result
  // (same contract as the judge cache's probe and the store's get()).
  if (it == entries_.end() || it->second.content_hash != identity_hash) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  if (it->second.persisted) ++stats_.persisted_hits;
  toolchain::CompileResult result = it->second.result;
  result.cached = true;
  result.persisted = it->second.persisted;
  return result;
}

void CompileCache::insert(std::uint64_t identity_hash,
                          const toolchain::CompileResult& result) {
  const std::uint64_t key = key_for(identity_hash);
  toolchain::CompileResult stored = result;
  stored.cached = false;
  stored.persisted = false;
  support::MutexLock lock(mutex_);
  if (!entries_.emplace(key, Entry{std::move(stored), identity_hash, false})
           .second) {
    return;
  }
  order_.push_back(key);
  while (entries_.size() > config_.capacity) {
    entries_.erase(order_.front());
    order_.pop_front();
    ++stats_.evictions;
  }
}

std::size_t CompileCache::persist() const {
  if (config_.store == nullptr) return 0;
  // Snapshot under the lock, feed the store outside it: the store takes its
  // own exclusive lock per put and may be shared with the judge.
  std::vector<std::pair<std::uint64_t, toolchain::CompileResult>> snapshot;
  {
    support::MutexLock lock(mutex_);
    snapshot.reserve(entries_.size());
    for (const std::uint64_t key : order_) {
      const auto it = entries_.find(key);
      if (it == entries_.end()) continue;
      auto result = it->second.result;
      snapshot.emplace_back(it->second.content_hash, std::move(result));
    }
  }
  for (const auto& [content_hash, result] : snapshot) {
    config_.store->put(kNamespace, key_for(content_hash), content_hash,
                       encode_compile_result(result));
  }
  return snapshot.size();
}

CompileCacheStats CompileCache::stats() const {
  support::MutexLock lock(mutex_);
  return stats_;
}

}  // namespace llm4vv::cache
