#include "cache/module_codec.hpp"

#include <charconv>
#include <cstdio>
#include <cstring>
#include <limits>

#include "support/strings.hpp"

namespace llm4vv::cache {

namespace {

// ---------------------------------------------------------------------------
// Token writer/reader
// ---------------------------------------------------------------------------

void put_u64(std::string& out, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llx",
                static_cast<unsigned long long>(value));
  out += buf;
  out.push_back(' ');
}

void put_i64(std::string& out, std::int64_t value) {
  out += std::to_string(value);
  out.push_back(' ');
}

/// Strings are hex-encoded byte-for-byte; "-" marks the empty string so
/// every token stays non-empty.
void put_string(std::string& out, std::string_view text) {
  if (text.empty()) {
    out += "- ";
    return;
  }
  static const char* hex = "0123456789abcdef";
  for (const char c : text) {
    const auto byte = static_cast<unsigned char>(c);
    out.push_back(hex[byte >> 4]);
    out.push_back(hex[byte & 0xF]);
  }
  out.push_back(' ');
}

struct TokenReader {
  std::string_view text;
  std::size_t pos = 0;
  bool failed = false;

  std::string_view next() {
    while (pos < text.size() && text[pos] == ' ') ++pos;
    if (pos >= text.size()) {
      failed = true;
      return {};
    }
    const std::size_t start = pos;
    while (pos < text.size() && text[pos] != ' ') ++pos;
    return text.substr(start, pos - start);
  }

  // from_chars: no allocation on this hot path (warm-start decodes read
  // four numeric tokens per instruction), and out-of-range tokens fail
  // instead of clamping — the header promises corrupt records reject, not
  // smuggle in a ULLONG_MAX bit pattern as a "valid" constant.
  std::uint64_t u64() {
    const auto token = next();
    if (failed) return 0;
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value, 16);
    if (ec != std::errc{} || ptr != token.data() + token.size()) {
      failed = true;
    }
    return value;
  }

  std::int64_t i64() {
    const auto token = next();
    if (failed) return 0;
    std::int64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value, 10);
    if (ec != std::errc{} || ptr != token.data() + token.size()) {
      failed = true;
    }
    return value;
  }

  std::int32_t i32() {
    const std::int64_t value = i64();
    if (value < std::numeric_limits<std::int32_t>::min() ||
        value > std::numeric_limits<std::int32_t>::max()) {
      failed = true;
      return 0;
    }
    return static_cast<std::int32_t>(value);
  }

  /// A bounded count guards decode loops against absurd allocations from a
  /// corrupted record.
  std::size_t count(std::size_t max) {
    const std::int64_t value = i64();
    if (value < 0 || static_cast<std::size_t>(value) > max) {
      failed = true;
      return 0;
    }
    return static_cast<std::size_t>(value);
  }

  std::string str() {
    const auto token = next();
    if (failed) return {};
    if (token == "-") return {};
    if (token.size() % 2 != 0) {
      failed = true;
      return {};
    }
    std::string out;
    out.reserve(token.size() / 2);
    for (std::size_t i = 0; i < token.size(); i += 2) {
      const int hi = support::hex_digit_value(token[i]);
      const int lo = support::hex_digit_value(token[i + 1]);
      if (hi < 0 || lo < 0) {
        failed = true;
        return {};
      }
      out.push_back(static_cast<char>((hi << 4) | lo));
    }
    return out;
  }
};

constexpr std::size_t kMaxItems = 1u << 22;  // decode-loop sanity bound

constexpr const char* kModuleMagic = "LLM4VV-MOD";
constexpr const char* kDiagMagic = "LLM4VV-DIAG";
constexpr int kCodecVersion = 1;

/// Structural validation of a decoded module. Token-level decoding only
/// proves the record was well-formed text; a flipped digit can still
/// produce an out-of-range chunk index or a negative slot count that the
/// interpreter would turn into out-of-bounds UB. The codec's contract is
/// that corruption degrades to a rejected record (a cache miss), so every
/// index the interpreter dereferences unchecked is validated here.
bool module_is_structurally_valid(const vm::Module& module) {
  const auto nchunks = static_cast<std::int64_t>(module.chunks.size());
  const auto nconsts = static_cast<std::int64_t>(module.consts.size());
  const auto nstrings = static_cast<std::int64_t>(module.strings.size());
  const auto nregions = static_cast<std::int64_t>(module.regions.size());
  if (module.global_slot_count < 0) return false;
  const auto chunk_index_ok = [nchunks](std::int32_t index) {
    return index >= -1 && static_cast<std::int64_t>(index) < nchunks;
  };
  if (!chunk_index_ok(module.main_chunk) ||
      !chunk_index_ok(module.init_chunk)) {
    return false;
  }
  for (const vm::Value& value : module.consts) {
    if (value.tag == vm::ValueTag::kString &&
        static_cast<std::int64_t>(value.ptr) >= nstrings) {
      return false;
    }
  }
  for (const vm::Chunk& chunk : module.chunks) {
    if (chunk.param_count < 0 || chunk.slot_count < chunk.param_count) {
      return false;
    }
    const auto ncode = static_cast<std::int64_t>(chunk.code.size());
    for (const vm::Instr& instr : chunk.code) {
      const std::int64_t a = instr.a;
      switch (instr.op) {
        case vm::Op::kPushConst:
          if (a < 0 || a >= nconsts) return false;
          break;
        case vm::Op::kLoadSlot:
        case vm::Op::kStoreSlot:
        case vm::Op::kAddrSlot:
        case vm::Op::kAllocArray:
          if (a < 0 || a >= chunk.slot_count) return false;
          break;
        case vm::Op::kLoadGlobal:
        case vm::Op::kStoreGlobal:
        case vm::Op::kAddrGlobal:
        case vm::Op::kAllocGlobalArray:
          if (a < 0 || a >= module.global_slot_count) return false;
          break;
        case vm::Op::kJump:
        case vm::Op::kJumpIfFalse:
        case vm::Op::kJumpIfTrue:
          if (a < 0 || a > ncode) return false;
          break;
        case vm::Op::kCall:
          if (a < 0 || a >= nchunks || instr.b < 0) return false;
          break;
        case vm::Op::kCallBuiltin:
          if (a < 0 || instr.b < 0) return false;
          break;
        case vm::Op::kDevEnter:
        case vm::Op::kDevExit:
        case vm::Op::kDevAction:
          if (a < 0 || a >= nregions) return false;
          break;
        default:
          break;
      }
    }
  }
  for (const vm::Region& region : module.regions) {
    for (const auto* ops : {&region.enter_ops, &region.exit_ops}) {
      for (const vm::ClauseOp& op : *ops) {
        if (op.slot < 0) return false;
        if (op.is_global && op.slot >= module.global_slot_count) {
          return false;
        }
      }
    }
  }
  return true;
}

std::uint64_t value_bits(const vm::Value& value) {
  // All union members alias the same 8 bytes; memcpy reads them portably
  // regardless of which member is active.
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value.i, sizeof(bits));
  return bits;
}

}  // namespace

// ---------------------------------------------------------------------------
// Module
// ---------------------------------------------------------------------------

std::string encode_module(const vm::Module& module) {
  std::string out;
  out += kModuleMagic;
  out.push_back(' ');
  put_i64(out, kCodecVersion);
  put_i64(out, module.global_slot_count);
  put_i64(out, module.main_chunk);
  put_i64(out, module.init_chunk);
  put_i64(out, static_cast<std::int64_t>(module.chunks.size()));
  put_i64(out, static_cast<std::int64_t>(module.consts.size()));
  put_i64(out, static_cast<std::int64_t>(module.strings.size()));
  put_i64(out, static_cast<std::int64_t>(module.regions.size()));
  for (const vm::Chunk& chunk : module.chunks) {
    put_string(out, chunk.name);
    put_i64(out, chunk.param_count);
    put_i64(out, chunk.slot_count);
    put_i64(out, static_cast<std::int64_t>(chunk.code.size()));
    for (const vm::Instr& instr : chunk.code) {
      put_i64(out, static_cast<std::int64_t>(instr.op));
      put_i64(out, instr.a);
      put_i64(out, instr.b);
      put_i64(out, instr.line);
    }
  }
  for (const vm::Value& value : module.consts) {
    put_i64(out, static_cast<std::int64_t>(value.tag));
    put_u64(out, value_bits(value));
  }
  for (const std::string& text : module.strings) put_string(out, text);
  for (const vm::Region& region : module.regions) {
    put_i64(out, region.device_mode ? 1 : 0);
    put_string(out, region.directive);
    put_i64(out, region.line);
    put_i64(out, static_cast<std::int64_t>(region.enter_ops.size()));
    put_i64(out, static_cast<std::int64_t>(region.exit_ops.size()));
    const auto put_clause = [&out](const vm::ClauseOp& op) {
      put_i64(out, static_cast<std::int64_t>(op.action));
      put_i64(out, op.is_global ? 1 : 0);
      put_i64(out, op.slot);
      put_string(out, op.var_name);
    };
    for (const vm::ClauseOp& op : region.enter_ops) put_clause(op);
    for (const vm::ClauseOp& op : region.exit_ops) put_clause(op);
  }
  if (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::optional<vm::Module> decode_module(std::string_view text) {
  TokenReader reader{text};
  if (reader.next() != kModuleMagic) return std::nullopt;
  if (reader.i64() != kCodecVersion) return std::nullopt;

  vm::Module module;
  module.global_slot_count = reader.i32();
  module.main_chunk = reader.i32();
  module.init_chunk = reader.i32();
  const std::size_t chunk_count = reader.count(kMaxItems);
  const std::size_t const_count = reader.count(kMaxItems);
  const std::size_t string_count = reader.count(kMaxItems);
  const std::size_t region_count = reader.count(kMaxItems);
  if (reader.failed) return std::nullopt;

  module.chunks.reserve(chunk_count);
  for (std::size_t c = 0; c < chunk_count; ++c) {
    vm::Chunk chunk;
    chunk.name = reader.str();
    chunk.param_count = reader.i32();
    chunk.slot_count = reader.i32();
    const std::size_t instr_count = reader.count(kMaxItems);
    if (reader.failed) return std::nullopt;
    chunk.code.reserve(instr_count);
    for (std::size_t i = 0; i < instr_count; ++i) {
      vm::Instr instr;
      const std::int64_t op = reader.i64();
      if (op < 0 || op > static_cast<std::int64_t>(vm::Op::kDevAction)) {
        return std::nullopt;
      }
      instr.op = static_cast<vm::Op>(op);
      instr.a = reader.i32();
      instr.b = reader.i32();
      instr.line = reader.i32();
      if (reader.failed) return std::nullopt;
      chunk.code.push_back(instr);
    }
    module.chunks.push_back(std::move(chunk));
  }

  module.consts.reserve(const_count);
  for (std::size_t i = 0; i < const_count; ++i) {
    const std::int64_t tag = reader.i64();
    const std::uint64_t bits = reader.u64();
    if (reader.failed || tag < 0 ||
        tag > static_cast<std::int64_t>(vm::ValueTag::kString)) {
      return std::nullopt;
    }
    vm::Value value;
    value.tag = static_cast<vm::ValueTag>(tag);
    std::memcpy(&value.i, &bits, sizeof(bits));
    module.consts.push_back(value);
  }

  module.strings.reserve(string_count);
  for (std::size_t i = 0; i < string_count; ++i) {
    module.strings.push_back(reader.str());
    if (reader.failed) return std::nullopt;
  }

  module.regions.reserve(region_count);
  for (std::size_t r = 0; r < region_count; ++r) {
    vm::Region region;
    region.device_mode = reader.i64() != 0;
    region.directive = reader.str();
    region.line = reader.i32();
    const std::size_t enter_count = reader.count(kMaxItems);
    const std::size_t exit_count = reader.count(kMaxItems);
    if (reader.failed) return std::nullopt;
    const auto read_clause = [&reader]() -> std::optional<vm::ClauseOp> {
      vm::ClauseOp op;
      const std::int64_t action = reader.i64();
      if (action < 0 ||
          action > static_cast<std::int64_t>(vm::ClauseAction::kNoOp)) {
        return std::nullopt;
      }
      op.action = static_cast<vm::ClauseAction>(action);
      op.is_global = reader.i64() != 0;
      op.slot = reader.i32();
      op.var_name = reader.str();
      if (reader.failed) return std::nullopt;
      return op;
    };
    for (std::size_t i = 0; i < enter_count; ++i) {
      auto op = read_clause();
      if (!op) return std::nullopt;
      region.enter_ops.push_back(std::move(*op));
    }
    for (std::size_t i = 0; i < exit_count; ++i) {
      auto op = read_clause();
      if (!op) return std::nullopt;
      region.exit_ops.push_back(std::move(*op));
    }
    module.regions.push_back(std::move(region));
  }

  if (reader.failed) return std::nullopt;
  if (!module_is_structurally_valid(module)) return std::nullopt;
  return module;
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

std::string encode_diagnostics(
    const std::vector<frontend::Diagnostic>& diagnostics) {
  std::string out;
  out += kDiagMagic;
  out.push_back(' ');
  put_i64(out, kCodecVersion);
  put_i64(out, static_cast<std::int64_t>(diagnostics.size()));
  for (const frontend::Diagnostic& diag : diagnostics) {
    put_i64(out, static_cast<std::int64_t>(diag.severity));
    put_i64(out, static_cast<std::int64_t>(diag.code));
    put_i64(out, diag.line);
    put_i64(out, diag.column);
    put_string(out, diag.message);
  }
  if (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::optional<std::vector<frontend::Diagnostic>> decode_diagnostics(
    std::string_view text) {
  TokenReader reader{text};
  if (reader.next() != kDiagMagic) return std::nullopt;
  if (reader.i64() != kCodecVersion) return std::nullopt;
  const std::size_t count = reader.count(kMaxItems);
  if (reader.failed) return std::nullopt;
  std::vector<frontend::Diagnostic> diagnostics;
  diagnostics.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    frontend::Diagnostic diag;
    const std::int64_t severity = reader.i64();
    const std::int64_t code = reader.i64();
    if (severity < 0 ||
        severity > static_cast<std::int64_t>(frontend::Severity::kError) ||
        code < 0 ||
        code > static_cast<std::int64_t>(frontend::DiagCode::kStrictness)) {
      return std::nullopt;
    }
    diag.severity = static_cast<frontend::Severity>(severity);
    diag.code = static_cast<frontend::DiagCode>(code);
    diag.line = reader.i32();
    diag.column = reader.i32();
    diag.message = reader.str();
    if (reader.failed) return std::nullopt;
    diagnostics.push_back(std::move(diag));
  }
  return diagnostics;
}

}  // namespace llm4vv::cache
