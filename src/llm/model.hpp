#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace llm4vv::llm {

/// Prompting styles studied by the paper (Listings 1-4 and Section V):
///  - kDirectAnalysis: Part One's "direct analysis" prompt — code only.
///  - kAgentDirect:    the agent-based direct prompt (LLMJ 1) — criteria +
///                     compiler/program outputs + code.
///  - kAgentIndirect:  the agent-based indirect prompt (LLMJ 2) —
///                     describe-then-judge wording.
enum class PromptStyle { kDirectAnalysis, kAgentDirect, kAgentIndirect };

/// Human-readable style name as used in the paper ("non-agent LLMJ",
/// "LLMJ 1", "LLMJ 2").
const char* prompt_style_name(PromptStyle style) noexcept;

/// Sampling parameters (the subset the simulation honours).
struct GenerationParams {
  int max_tokens = 1024;
  double temperature = 0.2;
  /// Seed mixed into the judgment draw; equal (prompt, seed) pairs give
  /// byte-identical completions.
  std::uint64_t seed = 0;
  /// 0-based retry ordinal, set by the ModelClient's retry layer. NOT part
  /// of the sampling identity: it is excluded from batcher coalescing and
  /// from the judgment RNG (a retried request yields byte-identical text),
  /// and only feeds the FaultPlan's attempt-dependent fault draws.
  std::uint32_t attempt = 0;
};

/// One model completion plus the accounting the pipeline's LLM stage needs.
struct Completion {
  std::string text;
  std::size_t prompt_tokens = 0;
  std::size_t completion_tokens = 0;
  /// Simulated wall-clock cost of this call on the modelled A100 node
  /// (prompt prefill + token-by-token decode). Pipeline statistics use
  /// this as virtual time; nothing actually sleeps.
  double latency_seconds = 0.0;
  /// Forward passes the ModelClient ran to obtain this completion (1 on
  /// the first try; >1 when the retry layer re-attempted after transient
  /// failures). Models leave this at 1; the client fills it in.
  std::uint32_t attempts = 1;
  /// Flow id of the batcher flush span that served this completion.
  /// Nonzero only while an obs::Tracer is attached to the client; the
  /// trace exporters use it to link each request's judge span back to the
  /// formed batch it rode in (docs/OBSERVABILITY.md). Models leave it 0.
  std::uint64_t trace_flow = 0;
};

/// Abstract chat/completions endpoint. The reproduction ships
/// SimulatedCoderModel; a real endpoint can be slotted in behind the same
/// interface (see examples/custom_model.cpp).
class LanguageModel {
 public:
  virtual ~LanguageModel() = default;

  /// Model identifier, e.g. "deepseek-coder-33b-instruct-sim".
  virtual std::string name() const = 0;

  /// Complete a prompt. Implementations must be thread-safe: the pipeline's
  /// LLM stage may call concurrently.
  virtual Completion generate(const std::string& prompt,
                              const GenerationParams& params) const = 0;

  /// Complete a batch of prompts in one forward pass. The default loops
  /// over generate(), so every LanguageModel supports batching; serving
  /// backends that amortize prefill across a batch (SimulatedCoderModel,
  /// real continuous-batching stacks) override it. Per-prompt completion
  /// text and token counts must be identical to the sequential path —
  /// batching may only change latency accounting.
  virtual std::vector<Completion> generate_batch(
      const std::vector<std::string>& prompts,
      const GenerationParams& params) const {
    std::vector<Completion> completions;
    completions.reserve(prompts.size());
    for (const std::string& prompt : prompts) {
      completions.push_back(generate(prompt, params));
    }
    return completions;
  }
};

inline const char* prompt_style_name(PromptStyle style) noexcept {
  switch (style) {
    case PromptStyle::kDirectAnalysis: return "non-agent LLMJ";
    case PromptStyle::kAgentDirect: return "LLMJ 1";
    case PromptStyle::kAgentIndirect: return "LLMJ 2";
  }
  return "?";
}

}  // namespace llm4vv::llm
