#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace llm4vv::llm {

/// Why a model request ultimately failed. Carried by every ModelError so
/// the pipeline can record *what kind* of failure a judge_error was and
/// the retry layer can decide whether another attempt can help.
enum class FailureKind {
  kTransient,  ///< backend hiccup; a retry may succeed
  kPermanent,  ///< the backend deterministically rejects this request
  kTimeout,    ///< the per-request deadline expired before an attempt won
  kOverflow,   ///< shed by the batcher's bounded pending queue
  kBreaker,    ///< rejected while the circuit breaker was open
  kShutdown,   ///< the client was destroyed with the request unresolved
  kOther,      ///< anything else (logic errors, unknown exceptions)
};

/// Stable short name ("transient", "permanent", ...) for logs and JSON.
const char* failure_kind_name(FailureKind kind) noexcept;

/// True when another attempt at the same request could plausibly succeed:
/// transient backend failures and breaker rejections (the breaker may
/// close again). Permanent rejections, deadline expiries, queue sheds,
/// shutdown, and unknown errors are final.
bool retryable(FailureKind kind) noexcept;

/// Base of every model-path failure. Derives from std::runtime_error so
/// pre-resilience call sites that catch runtime_error keep working;
/// resilience-aware callers read kind() and attempts() instead of parsing
/// the message.
class ModelError : public std::runtime_error {
 public:
  ModelError(FailureKind kind, const std::string& what,
             std::uint32_t attempts = 1)
      : std::runtime_error(what), kind_(kind), attempts_(attempts) {}

  FailureKind kind() const noexcept { return kind_; }
  /// Forward passes attempted for the failed request, including the final
  /// one (0 when the request failed before any pass ran, e.g. a shed or a
  /// deadline that expired while still queued).
  std::uint32_t attempts() const noexcept { return attempts_; }

 private:
  FailureKind kind_;
  std::uint32_t attempts_;
};

/// A backend hiccup a retry may clear.
struct TransientModelError : ModelError {
  explicit TransientModelError(const std::string& what,
                               std::uint32_t attempts = 1)
      : ModelError(FailureKind::kTransient, what, attempts) {}
};

/// A deterministic rejection: retrying the same request cannot help.
struct PermanentModelError : ModelError {
  explicit PermanentModelError(const std::string& what,
                               std::uint32_t attempts = 1)
      : ModelError(FailureKind::kPermanent, what, attempts) {}
};

/// The per-request deadline (RetryPolicy::deadline_us) expired. Deadlines
/// are checked at attempt boundaries — an in-flight forward pass is never
/// cancelled mid-call.
struct RequestTimeoutError : ModelError {
  explicit RequestTimeoutError(const std::string& what,
                               std::uint32_t attempts = 0)
      : ModelError(FailureKind::kTimeout, what, attempts) {}
};

/// Shed at submission time by the bounded pending queue
/// (BatcherConfig::max_pending with OverflowPolicy::kShed).
struct QueueOverflowError : ModelError {
  explicit QueueOverflowError(const std::string& what)
      : ModelError(FailureKind::kOverflow, what, 0) {}
};

/// Rejected while the circuit breaker was open (or a half-open probe was
/// already in flight). Retryable: the breaker may close again.
struct CircuitOpenError : ModelError {
  explicit CircuitOpenError(const std::string& what,
                            std::uint32_t attempts = 1)
      : ModelError(FailureKind::kBreaker, what, attempts) {}
};

/// The client shut down with the request unresolved: destroyed while the
/// request was pending in the batcher, waiting out a retry backoff, or
/// submitted after shutdown began.
struct ClientShutdownError : ModelError {
  explicit ClientShutdownError(const std::string& what,
                               std::uint32_t attempts = 0)
      : ModelError(FailureKind::kShutdown, what, attempts) {}
};

/// Knobs of the deterministic fault plan. All rates are probabilities in
/// [0, 1]; the all-zero default injects nothing (paper mode).
struct FaultPlanConfig {
  /// Seed of the fault draws; independent of the model/judgment seeds, so
  /// changing the fault schedule never changes a completion's text.
  std::uint64_t seed = 0xFA17ED5EEDULL;
  /// Probability a given (request, attempt) pair fails transiently. The
  /// draw mixes the attempt index, so a retry of a transiently-failed
  /// request re-rolls — retries can succeed.
  double transient_rate = 0.0;
  /// Probability a given request fails permanently. The draw does NOT mix
  /// the attempt index: a permanently-faulted request fails every attempt,
  /// so retrying it is provably futile (and the retry layer doesn't).
  double permanent_rate = 0.0;
  /// Probability a given (request, attempt) pair is served slowly: its
  /// simulated latency is multiplied by slow_latency_factor (a slow
  /// trickle of tokens, not an error — the completion text is unchanged).
  double slow_rate = 0.0;
  double slow_latency_factor = 8.0;
};

/// What the plan decided for one (request, attempt) draw.
enum class FaultKind { kNone, kTransient, kPermanent, kSlow };

/// Injection counters (drawn faults, whether or not a retry later cleared
/// them).
struct FaultStats {
  std::uint64_t transient = 0;
  std::uint64_t permanent = 0;
  std::uint64_t slow = 0;
};

/// Seeded, deterministic fault schedule consulted by SimulatedCoderModel
/// on every generate()/generate_batch() call. Determinism contract: the
/// outcome of decide() depends only on (prompt hash, attempt, seed), so a
/// run with a given plan is exactly reproducible, and — because the fault
/// draw is independent of the judgment RNG — completions that do get
/// served are byte-identical to a fault-free run.
///
/// Thread-safe without a lock: decide() is a pure function of its
/// arguments plus the immutable config, and the counters are relaxed
/// atomics — so there is nothing for GUARDED_BY to guard and the class
/// carries no thread-safety annotations by design (the concurrency lint
/// only polices mutex/cv members, of which this has none).
class FaultPlan {
 public:
  explicit FaultPlan(FaultPlanConfig config = {}) : config_(config) {}

  /// Decide the fate of one attempt at a request. `prompt_hash` is
  /// support::fnv1a64 of the prompt; `attempt` is the 0-based retry
  /// ordinal (GenerationParams::attempt).
  FaultKind decide(std::uint64_t prompt_hash,
                   std::uint32_t attempt) const noexcept;

  const FaultPlanConfig& config() const noexcept { return config_; }

  /// Faults drawn so far (monotonic; counts every injection, including
  /// ones a later retry cleared).
  FaultStats stats() const noexcept;

 private:
  FaultPlanConfig config_;
  mutable std::atomic<std::uint64_t> transient_{0};
  mutable std::atomic<std::uint64_t> permanent_{0};
  mutable std::atomic<std::uint64_t> slow_{0};
};

}  // namespace llm4vv::llm
