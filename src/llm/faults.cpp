#include "llm/faults.hpp"

#include "support/rng.hpp"

namespace llm4vv::llm {

namespace {

// Domain-separation salts so the three draws of one (request, attempt)
// never correlate.
constexpr std::uint64_t kPermanentSalt = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kTransientSalt = 0xbf58476d1ce4e5b9ULL;
constexpr std::uint64_t kSlowSalt = 0x94d049bb133111ebULL;

bool draw(std::uint64_t prompt_hash, std::uint64_t salt, std::uint64_t seed,
          double rate) noexcept {
  if (rate <= 0.0) return false;
  support::Rng rng(support::hash_mix(prompt_hash, seed ^ salt));
  return rng.chance(rate);
}

}  // namespace

const char* failure_kind_name(FailureKind kind) noexcept {
  switch (kind) {
    case FailureKind::kTransient: return "transient";
    case FailureKind::kPermanent: return "permanent";
    case FailureKind::kTimeout: return "timeout";
    case FailureKind::kOverflow: return "overflow";
    case FailureKind::kBreaker: return "breaker";
    case FailureKind::kShutdown: return "shutdown";
    case FailureKind::kOther: return "other";
  }
  return "?";
}

bool retryable(FailureKind kind) noexcept {
  return kind == FailureKind::kTransient || kind == FailureKind::kBreaker;
}

FaultKind FaultPlan::decide(std::uint64_t prompt_hash,
                            std::uint32_t attempt) const noexcept {
  // Permanent first, and attempt-independent: the same request draws the
  // same fate on every attempt, so permanents persist across retries.
  if (draw(prompt_hash, kPermanentSalt, config_.seed,
           config_.permanent_rate)) {
    permanent_.fetch_add(1, std::memory_order_relaxed);
    return FaultKind::kPermanent;
  }
  // Transient and slow draws mix the attempt ordinal: a retry re-rolls.
  const std::uint64_t attempt_hash =
      support::hash_mix(prompt_hash, static_cast<std::uint64_t>(attempt));
  if (draw(attempt_hash, kTransientSalt, config_.seed,
           config_.transient_rate)) {
    transient_.fetch_add(1, std::memory_order_relaxed);
    return FaultKind::kTransient;
  }
  if (draw(attempt_hash, kSlowSalt, config_.seed, config_.slow_rate)) {
    slow_.fetch_add(1, std::memory_order_relaxed);
    return FaultKind::kSlow;
  }
  return FaultKind::kNone;
}

FaultStats FaultPlan::stats() const noexcept {
  FaultStats out;
  out.transient = transient_.load(std::memory_order_relaxed);
  out.permanent = permanent_.load(std::memory_order_relaxed);
  out.slow = slow_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace llm4vv::llm
