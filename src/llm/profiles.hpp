#pragma once

#include "frontend/source.hpp"
#include "llm/model.hpp"

namespace llm4vv::llm {

/// Behavioural profile of the simulated deepseek-coder-33b-instruct judge
/// for one (flavor, prompt style) condition.
///
/// The simulated model *perceives* real evidence in the prompt (it runs a
/// lexer/parser/sema/directive-validator over the embedded code and reads
/// the tool outputs the agent prompt carries) and then each piece of
/// evidence convinces it with the probability given here. The q_* values
/// are therefore interpretable "how reliably does the model act on this
/// signal" parameters; they were calibrated offline against the paper's
/// Tables I/II (direct) and VII/VIII (agent) — see profiles.cpp for the
/// per-cell provenance.
struct JudgeProfile {
  // -- code-level evidence gates -------------------------------------------
  double q_no_directives = 0.5;    ///< file contains no model directives
  double q_misspelled_directive = 0.5;  ///< unknown directive name
  double q_brace_imbalance = 0.5;  ///< parse-level structural break
  double q_undeclared = 0.5;       ///< undeclared identifier (sema)
  double q_uninit_pointer = 0.1;   ///< pointer never assigned before use
  double q_logic_mismatch = 0.15;  ///< report/verify structure looks cut
  double q_missing_return = 0.15;  ///< value-returning fn without return
  // -- tool-output gates (agent styles; unused by kDirectAnalysis) ----------
  double q_compile_failed_corroborated = 0.0;  ///< tool+code agree it broke
  double q_compile_failed_alone = 0.0;  ///< tool failed, code looks fine
  double q_run_failed_corroborated = 0.0;
  double q_run_failed_alone = 0.0;
  // -- baseline behaviour ----------------------------------------------------
  /// P(judge says invalid) when no evidence fired at all (restrictiveness).
  double false_invalid_rate = 0.1;
  /// P(the completion omits the exact FINAL JUDGEMENT phrase) — real LLMs
  /// occasionally break the output contract; the verdict parser must cope.
  double protocol_violation_rate = 0.004;
};

/// Calibrated profile for a condition.
const JudgeProfile& judge_profile(frontend::Flavor flavor, PromptStyle style);

}  // namespace llm4vv::llm
