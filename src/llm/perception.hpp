#pragma once

#include <string>

#include "frontend/source.hpp"
#include "llm/model.hpp"

namespace llm4vv::llm {

/// What the simulated judge extracts from a prompt. Everything here is
/// derived from the prompt text alone — the model never sees ground truth.
/// The code-evidence flags come from running a real lexer / parser / sema /
/// directive-validation pass over the code block embedded in the prompt
/// (the machine analogue of the LLM "reading" the code); the profile then
/// decides how reliably each piece of evidence is acted upon.
struct PromptPerception {
  PromptStyle style = PromptStyle::kDirectAnalysis;
  frontend::Flavor flavor = frontend::Flavor::kOpenACC;
  std::string code;

  // Tool outputs quoted in agent prompts.
  bool has_tool_info = false;
  int compiler_rc = 0;
  int program_rc = 0;

  // Code-level evidence.
  bool no_directives = false;       ///< not a directive test at all
  bool misspelled_directive = false;
  bool brace_imbalance = false;     ///< structural parse break
  bool undeclared_identifier = false;
  bool uninit_pointer = false;      ///< pointer/allocatable never allocated
  bool missing_return = false;      ///< value fn with no return statement
  bool logic_mismatch = false;      ///< verify/report structure looks cut

  bool any_code_evidence() const noexcept {
    return misspelled_directive || brace_imbalance ||
           undeclared_identifier || uninit_pointer || missing_return ||
           logic_mismatch;
  }
};

/// Parse a judge prompt (any of the Listings 1-4 shapes built by
/// judge/prompt.cpp) into a PromptPerception.
PromptPerception perceive(const std::string& prompt);

/// Evidence extraction on a bare code string (exposed for unit tests).
void analyze_code(const std::string& code, frontend::Flavor flavor,
                  PromptPerception& out);

}  // namespace llm4vv::llm
