#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace llm4vv::llm {

/// Greedy longest-match subword tokenizer (BPE-style vocabulary of common
/// code fragments over a byte-level base).
///
/// The simulated inference stack uses it for what the real stack uses its
/// tokenizer for: accounting. Prompt/completion token counts drive the
/// latency model and context-window truncation, so they must be stable and
/// reasonable for C/Fortran/directive text, which the code-fragment
/// vocabulary ensures (~3.5 chars/token on corpus files, similar to
/// deepseek-coder's tokenizer on the same text).
///
/// Matching runs over a precompiled trie with flat 256-way transition
/// tables, so finding the longest vocabulary fragment at a position is one
/// table lookup per input byte instead of a string comparison per candidate
/// token. `encode`, `encode_into`, and `count_tokens` all share this core.
class Tokenizer {
 public:
  Tokenizer();

  /// Encode text to token ids (greedy longest match; lossless).
  std::vector<std::int32_t> encode(std::string_view text) const;

  /// Encode into a caller-owned buffer (cleared first). Reusing one buffer
  /// across calls makes the hot judge/accounting path allocation-free once
  /// the buffer has grown to a steady state.
  void encode_into(std::string_view text, std::vector<std::int32_t>& out) const;

  /// Decode ids back to text. decode(encode(t)) == t for all t.
  std::string decode(const std::vector<std::int32_t>& ids) const;

  /// encode(text).size() without materializing the id vector.
  std::size_t count_tokens(std::string_view text) const;

  /// Pre-trie reference implementation (per-position longest-first bucket
  /// scan). Kept in-tree so tests can cross-check the trie against it and
  /// benchmarks can report an apples-to-apples speedup ratio.
  std::vector<std::int32_t> encode_reference(std::string_view text) const;

  /// Vocabulary size (256 byte tokens + the fragment merges).
  std::size_t vocab_size() const noexcept { return vocab_.size(); }

  /// The text of one token id.
  const std::string& token_text(std::int32_t id) const;

 private:
  /// One trie node: a flat 256-way transition table plus the id of the
  /// vocabulary entry ending here (-1 when this prefix is not a token).
  struct TrieNode {
    std::int32_t next[256];
    std::int32_t token;
  };

  /// Longest vocabulary match starting at `pos`; every byte is a token, so
  /// a match of length >= 1 always exists. Returns the token id; the match
  /// length is the id's token_text().size() (callers on the hot path get it
  /// via the second out-parameter instead to avoid the indirection).
  std::int32_t match_longest(std::string_view text, std::size_t pos,
                             std::size_t& length) const noexcept {
    const unsigned char first = static_cast<unsigned char>(text[pos]);
    std::int32_t node = nodes_[0].next[first];
    std::int32_t best = nodes_[node].token;  // depth-1 nodes are terminal
    std::size_t best_length = 1;
    std::size_t depth = 1;
    const std::size_t limit = text.size() - pos;
    while (depth < limit) {
      node = nodes_[node]
                 .next[static_cast<unsigned char>(text[pos + depth])];
      if (node < 0) break;
      ++depth;
      if (nodes_[node].token >= 0) {
        best = nodes_[node].token;
        best_length = depth;
      }
    }
    length = best_length;
    return best;
  }

  std::vector<std::string> vocab_;
  /// Precompiled matching trie; node 0 is the root.
  std::vector<TrieNode> nodes_;
  /// First-byte index of the reference implementation: candidate token ids
  /// per leading byte, longest first.
  std::vector<std::vector<std::int32_t>> by_first_byte_;
};

/// Process-wide tokenizer instance (construction is cheap but not free).
const Tokenizer& default_tokenizer();

}  // namespace llm4vv::llm
