#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace llm4vv::llm {

/// Greedy longest-match subword tokenizer (BPE-style vocabulary of common
/// code fragments over a byte-level base).
///
/// The simulated inference stack uses it for what the real stack uses its
/// tokenizer for: accounting. Prompt/completion token counts drive the
/// latency model and context-window truncation, so they must be stable and
/// reasonable for C/Fortran/directive text, which the code-fragment
/// vocabulary ensures (~3.5 chars/token on corpus files, similar to
/// deepseek-coder's tokenizer on the same text).
class Tokenizer {
 public:
  Tokenizer();

  /// Encode text to token ids (greedy longest match; lossless).
  std::vector<std::int32_t> encode(const std::string& text) const;

  /// Decode ids back to text. decode(encode(t)) == t for all t.
  std::string decode(const std::vector<std::int32_t>& ids) const;

  /// encode(text).size() without materializing the id vector.
  std::size_t count_tokens(const std::string& text) const;

  /// Vocabulary size (256 byte tokens + the fragment merges).
  std::size_t vocab_size() const noexcept { return vocab_.size(); }

  /// The text of one token id.
  const std::string& token_text(std::int32_t id) const;

 private:
  std::vector<std::string> vocab_;
  /// First-byte index: candidate token ids per leading byte, longest first.
  std::vector<std::vector<std::int32_t>> by_first_byte_;
};

/// Process-wide tokenizer instance (construction is cheap but not free).
const Tokenizer& default_tokenizer();

}  // namespace llm4vv::llm
