#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "llm/faults.hpp"
#include "llm/model.hpp"
#include "support/thread_annotations.hpp"

namespace llm4vv::obs {
class Registry;
class Tracer;
}  // namespace llm4vv::obs

namespace llm4vv::llm {

/// What happens to a submission that would push the batcher's pending
/// queue past BatcherConfig::max_pending.
enum class OverflowPolicy {
  /// Fail the overflowing requests immediately with QueueOverflowError and
  /// count them in ClientStats::pending_shed (load-shedding: the caller
  /// finds out now, not after an unbounded wait).
  kShed,
  /// Block the submitting caller until the queue drains below the bound
  /// (classic backpressure; submission order is preserved). Needs an
  /// external drainer, so it only engages when window_us > 0 — an
  /// immediate-flush batcher (window_us == 0) never leaves anything
  /// pending and ignores the bound under this policy.
  kBlock,
};

/// Adaptive-batcher knobs of the asynchronous submission path.
///
/// Pending submissions coalesce across all callers and flush as one
/// generate_batch() forward pass when the batch is full (`max_batch`
/// requests pending) or the wait window (`window_us`) of the oldest pending
/// request elapses — whichever comes first.
///
/// The defaults are **paper mode**: `window_us = 0` flushes every
/// submission the moment it is enqueued, so nothing ever waits and nothing
/// from another caller can ride along — complete() prices exactly like a
/// sequential generate() (a batch of one is priced bit-identically, see
/// SimulatedCoderModel) and complete_many() prices exactly like the PR 2
/// one-pass-per-call batch. The core/ experiments rely on this pinning for
/// their seed-exact simulated-GPU accounting.
struct BatcherConfig {
  /// Flush as soon as this many requests are pending. 0 = no cap: a flush
  /// takes everything pending (every complete_many() call then maps to one
  /// forward pass, the PR 2 shape).
  std::size_t max_batch = 0;
  /// How long a pending request may wait for the batch to fill before the
  /// flusher thread submits it anyway. 0 = flush immediately on every
  /// submission (no flusher thread, no cross-caller coalescing).
  std::uint64_t window_us = 0;
  /// Bound on the pending queue. 0 (the default) keeps it unbounded — the
  /// pre-resilience behaviour every bench and the paper-mode pinning rely
  /// on. With a bound, a submission that would exceed it is handled per
  /// `overflow`. Note the bound is about coalescing backlog: with
  /// window_us == 0 nothing ever stays pending across calls, but a single
  /// over-sized submit_many still sheds its tail under kShed.
  std::size_t max_pending = 0;
  OverflowPolicy overflow = OverflowPolicy::kShed;
};

/// Retry discipline of the client's flush path. The default is paper mode:
/// one attempt, no deadline — a failed pass fails its futures exactly as
/// before the resilience layer existed.
struct RetryPolicy {
  /// Total forward-pass attempts per request (1 = no retries). Only
  /// retryable failures (see llm::retryable) consume further attempts:
  /// permanent errors fail on the spot regardless of budget.
  std::uint32_t max_attempts = 1;
  /// Exponential backoff between a request's consecutive attempts:
  /// min(base * multiplier^(k-1), max) for the k-th retry, plus a
  /// deterministic jitter in [0, jitter_us] drawn from (prompt, attempt,
  /// jitter_seed) — reproducible, but de-synchronized across requests.
  std::uint64_t base_backoff_us = 100;
  double backoff_multiplier = 2.0;
  std::uint64_t max_backoff_us = 100000;
  std::uint64_t jitter_us = 0;
  std::uint64_t jitter_seed = 0x6a177e12ULL;
  /// Per-request wall-clock deadline measured from submission (enqueue)
  /// time; 0 = none. Checked at attempt boundaries — a pass in flight is
  /// never cancelled mid-call, so a request can exceed its deadline by at
  /// most one pass plus one backoff.
  std::uint64_t deadline_us = 0;
};

/// Rolling-failure-rate circuit breaker over the client's forward passes.
/// Disabled by default (paper mode). When enabled, pass outcomes feed a
/// sliding window; too many failures OPEN the breaker, which fails further
/// passes fast (CircuitOpenError, retryable) without touching the model
/// until `cooldown_us` elapses. The first pass after cooldown is a
/// HALF-OPEN probe: success closes the breaker, failure re-opens it.
struct CircuitBreakerConfig {
  bool enabled = false;
  /// Sliding window of pass outcomes the failure rate is computed over.
  std::size_t window = 32;
  /// Outcomes required in the window before the rate can trip at all
  /// (prevents one early failure from opening a cold breaker).
  std::size_t min_samples = 8;
  /// Failure fraction at or above which the breaker opens.
  double open_failure_rate = 0.5;
  std::uint64_t cooldown_us = 10000;
};

/// Observable breaker state (see CircuitBreakerConfig).
enum class BreakerState { kClosed, kOpen, kHalfOpen };

/// Why a batch was flushed.
enum class FlushReason {
  kImmediate,  ///< window_us == 0: flushed at submission time
  kFull,       ///< pending depth reached max_batch
  kWindow,     ///< the oldest pending request's wait window elapsed
};

/// Aggregate statistics of an inference endpoint.
struct ClientStats {
  std::uint64_t requests = 0;
  std::uint64_t prompt_tokens = 0;
  std::uint64_t completion_tokens = 0;
  /// Sum of simulated per-call latencies — "GPU seconds" of the modelled
  /// A100 node, the currency the validation pipeline saves by filtering
  /// files before the LLM stage.
  double gpu_seconds = 0.0;
  /// Batched forward passes: flushes that carried two or more prompts, or
  /// whose requests arrived through the batch submission API
  /// (submit_many / complete_many). A lone complete()/submit() flush is a
  /// plain request, not a batch.
  std::uint64_t batches = 0;
  /// Prompts that went through those batched passes (also counted in
  /// `requests`, which covers both paths).
  std::uint64_t batched_prompts = 0;
  /// Largest single batch submitted so far.
  std::uint64_t max_batch = 0;

  // -- adaptive-batcher telemetry (every counter below is per flush) ------
  /// Forward passes the batcher executed, of any size and origin. This is
  /// the truthful denominator for occupancy: prompts / formed batches.
  std::uint64_t formed_batches = 0;
  /// Flush-reason split of `formed_batches`.
  std::uint64_t flush_immediate = 0;
  std::uint64_t flush_full = 0;
  std::uint64_t flush_window = 0;
  /// High-water mark of simultaneously pending (submitted, not yet
  /// flushed) requests over the client's lifetime.
  std::size_t pending_high_water = 0;
  /// Histogram of flush sizes. Seven fixed buckets, power-of-two edges
  /// above the two singleton buckets (upper edges inclusive):
  ///
  ///   bucket:  0    1    2      3      4       5        6
  ///   sizes:   1    2    3-4    5-8    9-16    17-32    33+
  ///
  /// i.e. a flush of `n` prompts lands in bucket 0 for n <= 1, bucket 1
  /// for n == 2, and bucket min(ceil(log2(n)), 6) for n >= 3. The edges
  /// are pinned by a unit test (client_async_test) and documented in
  /// docs/ASYNC_API.md; bench JSON and PipelineResult::judge_occupancy_hist
  /// reuse these buckets via occupancy_bucket_label().
  static constexpr std::size_t kOccupancyBuckets = 7;
  std::array<std::uint64_t, kOccupancyBuckets> occupancy_hist{};

  /// Bucket index a flush of `batch` prompts lands in (batch 0 — which no
  /// real flush produces — counts into bucket 0 with the singletons).
  static std::size_t occupancy_bucket(std::size_t batch) noexcept;
  /// Human-readable label of a bucket ("1", "2", "3-4", ...).
  static const char* occupancy_bucket_label(std::size_t bucket) noexcept;

  // -- resilience telemetry (all zero in paper mode) ----------------------
  /// Extra forward-pass attempts beyond each request's first (summed over
  /// resolved requests, successful or not).
  std::uint64_t retries = 0;
  /// Requests that resolved with an error (`requests` above counts only
  /// successfully served ones; a request lands in exactly one of the two).
  std::uint64_t failed_requests = 0;
  /// Subset of failed_requests that gave up on an expired deadline.
  std::uint64_t timeouts = 0;
  /// Requests shed at submission time by the bounded pending queue.
  std::uint64_t pending_shed = 0;
  /// Failed multi-request passes split into per-request retries.
  std::uint64_t batch_splits = 0;
  /// Closed->open transitions of the circuit breaker.
  std::uint64_t breaker_opens = 0;
  /// Pass attempts rejected while the breaker was open / probing.
  std::uint64_t breaker_rejected = 0;
  /// Histogram of resolution latency (flush start to verdict, real wall
  /// time) of requests that needed more than one attempt — the price the
  /// retry layer paid. Bucket upper edges: 100us, 1ms, 10ms, 100ms, 1s,
  /// then open-ended.
  static constexpr std::size_t kRetryLatencyBuckets = 6;
  std::array<std::uint64_t, kRetryLatencyBuckets> retry_latency_hist{};

  /// Bucket index a retried request resolving after `micros` lands in.
  static std::size_t retry_latency_bucket(std::uint64_t micros) noexcept;
  /// Human-readable label ("<100us", "<1ms", ..., ">=1s").
  static const char* retry_latency_bucket_label(std::size_t bucket) noexcept;
};

namespace detail {
/// Shared state behind a CompletionFuture; fulfilled exactly once by the
/// flush that served it (or failed with its exception / at shutdown).
struct CompletionState {
  support::Mutex mutex;
  support::CondVar cv;
  bool done GUARDED_BY(mutex) = false;
  Completion value GUARDED_BY(mutex);
  std::exception_ptr error GUARDED_BY(mutex);
  /// Size of the forward pass that served this completion (0 on failure).
  std::size_t flush_size GUARDED_BY(mutex) = 0;
};
}  // namespace detail

/// Handle on one asynchronously submitted completion. Copyable (shared
/// state); safe to outlive the ModelClient — a client destroyed with the
/// request still pending fails the future deterministically instead of
/// leaving a waiter hung.
class CompletionFuture {
 public:
  CompletionFuture() = default;

  bool valid() const noexcept { return state_ != nullptr; }
  /// True when get() will not block.
  bool ready() const;
  /// Block until the request is flushed (or failed).
  void wait() const;
  /// Block until resolved and return the completion; rethrows the flush's
  /// exception on failure. Idempotent.
  Completion get() const;
  /// True when the request resolved with an error — the first-class way to
  /// observe failure without a try/catch around get(). Blocks like wait().
  bool failed() const;
  /// The resolved error (null when the request succeeded or is still in
  /// flight; a ModelError for every failure the resilience layer
  /// produces). Non-blocking.
  std::exception_ptr error() const;
  /// Size of the forward pass that served this request (only meaningful
  /// once ready; 0 if the request failed before a pass ran).
  std::size_t flush_size() const;

 private:
  friend class ModelClient;
  explicit CompletionFuture(std::shared_ptr<detail::CompletionState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<detail::CompletionState> state_;
};

/// One recorded request/response pair (for the examples and debugging).
struct Transcript {
  std::string prompt;
  Completion completion;
};

/// Thread-safe inference-server facade over a LanguageModel.
///
/// Models the paper's serving setup: one model replica per GPU, so at most
/// `max_concurrency` forward passes' worth of streams proceed at once (the
/// pipeline's judge stage can be parallelized "if there are enough
/// available GPU resources"); excess callers block. Statistics and an
/// optional bounded transcript log are kept under a separate lock.
///
/// Submission is asynchronous at the core: submit()/submit_many() enqueue
/// requests into a central adaptive batcher (see BatcherConfig) and return
/// futures; the batcher coalesces pending requests across *all* callers
/// and flushes them as one generate_batch() pass when the batch fills or
/// the wait window elapses. The blocking complete()/complete_many() calls
/// are thin wrappers over that one code path. Only requests with equal
/// GenerationParams coalesce (a pass has a single params set); the batcher
/// flushes the longest FIFO run of equal-params requests at a time.
///
/// Slot admission is FIFO: every flush takes a ticket and acquires only at
/// the head of the queue. Without the ticket, a steady stream of
/// single-slot flushes could starve a wide flush indefinitely — each
/// release immediately re-consumed by a newcomer before N slots were ever
/// simultaneously free. With it, the wide flush's wait is bounded by the
/// work already queued ahead of it.
class ModelClient {
 public:
  ModelClient(std::shared_ptr<const LanguageModel> model,
              std::size_t max_concurrency = 1,
              std::size_t transcript_capacity = 0,
              BatcherConfig batcher = {}, RetryPolicy retry = {},
              CircuitBreakerConfig breaker = {});

  /// Destroying the client with requests still pending fails their futures
  /// deterministically with ClientShutdownError (get() throws); flushes
  /// already executing are drained first — but a flush parked in a retry
  /// backoff is woken and CANCELLED (its futures fail with
  /// ClientShutdownError too), not awaited to attempt exhaustion — so
  /// shutdown latency is bounded by one forward pass, no future is ever
  /// left unresolved, and no flush can touch a dead client.
  ~ModelClient();

  ModelClient(const ModelClient&) = delete;
  ModelClient& operator=(const ModelClient&) = delete;

  /// Submit one prompt to the adaptive batcher. Returns immediately with a
  /// future unless this submission fills the batch — the filling caller
  /// runs the flush inline (and with window_us == 0 every submission is
  /// its own immediate flush, pricing exactly like the old blocking path).
  CompletionFuture submit(const std::string& prompt,
                          const GenerationParams& params = {});

  /// Submit a group of prompts atomically (they enter the batcher
  /// back-to-back, so with window_us == 0 the group flushes as one pass —
  /// the PR 2 complete_many shape). Futures come back in prompt order.
  std::vector<CompletionFuture> submit_many(
      const std::vector<std::string>& prompts,
      const GenerationParams& params = {});

  /// Blocking completion call (thread-safe): submit + wait. With a nonzero
  /// batcher window the call waits for its flush like every other
  /// submission — pin window_us to 0 for strictly sequential pricing.
  Completion complete(const std::string& prompt,
                      const GenerationParams& params = {});

  /// Blocking batched completion (thread-safe): submit_many + wait all.
  /// Each flush acquires min(size, max_concurrency) GPU slots atomically —
  /// it waits until that many are free at once instead of trickling in, so
  /// two batched callers can never deadlock each other holding partial
  /// slot sets. Statistics record each pass as one batch plus per-prompt
  /// token counts; completions come back in prompt order.
  std::vector<Completion> complete_many(
      const std::vector<std::string>& prompts,
      const GenerationParams& params = {});

  /// Snapshot of the running statistics.
  ClientStats stats() const;

  /// Attach a span tracer: every subsequent flush records a client.flush
  /// span (batch size, summed sim-GPU seconds, a flow id the served
  /// completions carry in Completion::trace_flow), and retries/backoffs
  /// record client.retry / client.backoff spans. Pass null to detach.
  /// NOT thread-safe against in-flight traffic — attach during setup,
  /// before the first submission, like every other client knob.
  void set_tracer(std::shared_ptr<obs::Tracer> tracer) noexcept {
    tracer_ = std::move(tracer);
  }

  /// Re-register this client's statistics into a metrics registry as
  /// scrape-time probes under `prefix` ("<prefix>.requests",
  /// "<prefix>.gpu_seconds", ...; see docs/OBSERVABILITY.md for the full
  /// list). The probes read stats() on every scrape, so the registry value
  /// and the legacy snapshot field are the same number by construction.
  /// The client must outlive the registration — unregister_prefix(prefix)
  /// (or registry teardown) before destroying the client.
  void register_metrics(obs::Registry& registry,
                        const std::string& prefix) const;

  /// Callers currently queued for GPU slots (ticket taken, not admitted).
  /// A live gauge for monitoring and for deterministic fairness tests.
  std::size_t queue_depth() const;

  /// Requests currently pending in the adaptive batcher (submitted, not
  /// yet flushed).
  std::size_t pending_depth() const;

  /// The batcher configuration this client runs with.
  const BatcherConfig& batcher() const noexcept { return batcher_; }

  /// The retry policy this client runs with.
  const RetryPolicy& retry_policy() const noexcept { return retry_; }

  /// The breaker configuration and its current state.
  const CircuitBreakerConfig& breaker_config() const noexcept {
    return breaker_config_;
  }
  BreakerState breaker_state() const;

  /// Recorded transcripts (most recent `transcript_capacity` calls).
  std::vector<Transcript> transcripts() const;

  /// The wrapped model's name.
  std::string model_name() const { return model_->name(); }

 private:
  /// One request waiting in the adaptive batcher.
  struct PendingRequest {
    std::string prompt;
    GenerationParams params;
    std::shared_ptr<detail::CompletionState> state;
    /// Arrived through submit_many/complete_many (batch accounting keeps
    /// the PR 2 meaning of `batches` for single-prompt batch calls).
    bool batch_origin = false;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// RAII lease on acquired concurrency slots: the destructor returns them
  /// and wakes every waiter (multi-slot flush waiters need the broadcast),
  /// so no exit path — normal, throwing model, failed validation — can
  /// leak a slot.
  struct SlotLease {
    ModelClient& client;
    std::size_t slots;
    ~SlotLease();
  };

  /// Take a FIFO ticket and block until at the head of the queue with
  /// `slots` slots free; admits the caller and passes the head on.
  void acquire_slots(std::size_t slots) EXCLUDES(mutex_);

  /// Enqueue requests and run whatever flush policy triggers. Returns the
  /// futures in request order.
  std::vector<CompletionFuture> enqueue(std::vector<PendingRequest> requests)
      EXCLUDES(batch_mutex_);

  /// Length of the FIFO head run of equal-params pending requests (capped
  /// at max_batch) — the requests one flush could actually carry.
  std::size_t head_run_locked() const REQUIRES(batch_mutex_);

  /// Pop the longest FIFO run of equal-params pending requests (capped at
  /// max_batch).
  std::vector<PendingRequest> collect_group_locked() REQUIRES(batch_mutex_);

  /// Per-request result of a flush's resilient resolution (defined in the
  /// .cpp; the header only passes references around).
  struct FlushOutcome;
  /// Counter deltas one flush accumulates for the stats merge.
  struct FlushTally;

  /// Run one (possibly retried/split) forward-pass resolution for `group`
  /// and fulfill its futures. Never throws: every failure is stored into
  /// the affected futures instead.
  void execute_flush(std::vector<PendingRequest>& group, FlushReason reason)
      EXCLUDES(batch_mutex_, mutex_);

  /// Resolve `indices` of `group` (requests sharing their attempt
  /// history), starting at 0-based `attempt`: run a pass, and on failure
  /// either fail the requests, split a multi-request pass into per-request
  /// retries, or back off and re-attempt — per the RetryPolicy.
  /// `flush_start_us` is the flush's support::now_us() origin (one clock
  /// with the trace spans).
  void resolve_requests(std::vector<PendingRequest>& group,
                        std::vector<std::size_t> indices,
                        std::uint32_t attempt, std::uint64_t flush_start_us,
                        std::vector<FlushOutcome>& outcomes,
                        FlushTally& tally);

  /// Sleep out the backoff before retry number `retry` (1-based) of the
  /// request holding `prompt`, capped at `deadline` when the policy has
  /// one. Interruptible: returns false immediately when the client starts
  /// shutting down (the caller then cancels the retry).
  bool backoff_wait(std::uint32_t retry, const std::string& prompt,
                    std::chrono::steady_clock::time_point deadline,
                    bool has_deadline) EXCLUDES(batch_mutex_);

  /// Breaker admission for one pass attempt; false = fail fast.
  bool breaker_admit() EXCLUDES(breaker_mutex_);
  /// Feed one pass outcome into the breaker window.
  void breaker_record(bool success) EXCLUDES(breaker_mutex_);

  /// Window-flush thread body (only started when window_us > 0).
  void flusher_main() EXCLUDES(batch_mutex_);

  std::shared_ptr<const LanguageModel> model_;
  /// Span sink; null (the default) = tracing off, one branch per would-be
  /// span. Set during setup (see set_tracer), read from flush threads.
  std::shared_ptr<obs::Tracer> tracer_;
  const std::size_t max_concurrency_;
  const std::size_t transcript_capacity_;
  const BatcherConfig batcher_;
  const RetryPolicy retry_;
  const CircuitBreakerConfig breaker_config_;

  mutable support::Mutex mutex_;
  support::CondVar slot_free_;
  std::size_t in_flight_ GUARDED_BY(mutex_) = 0;
  /// FIFO ticket discipline: `next_ticket_` is taken on arrival,
  /// `serving_` advances when the head finishes acquiring. A caller waits
  /// until it *is* the head AND its slots fit — so wide waiters cannot be
  /// overtaken forever, at the price of head-of-line blocking (bounded:
  /// every holder eventually releases).
  std::uint64_t next_ticket_ GUARDED_BY(mutex_) = 0;
  std::uint64_t serving_ GUARDED_BY(mutex_) = 0;
  ClientStats stats_ GUARDED_BY(mutex_);
  std::deque<Transcript> transcripts_ GUARDED_BY(mutex_);

  /// Adaptive-batcher state, under its own lock so submissions never
  /// contend with the stats/slot lock.
  mutable support::Mutex batch_mutex_;
  support::CondVar batch_cv_;
  std::deque<PendingRequest> pending_ GUARDED_BY(batch_mutex_);
  /// Flushes currently executing on caller threads; the destructor waits
  /// for them so an in-flight pass can never touch a dead client.
  std::size_t active_flushes_ GUARDED_BY(batch_mutex_) = 0;
  support::CondVar flush_done_;
  bool shutting_down_ GUARDED_BY(batch_mutex_) = false;
  std::atomic<std::size_t> pending_high_water_{0};
  /// Wakes OverflowPolicy::kBlock submitters when the pending queue
  /// drains below max_pending (notified wherever pending_ shrinks).
  support::CondVar room_cv_;
  /// Shed/breaker counters live outside stats_ so the enqueue path (which
  /// holds batch_mutex_) and the breaker (its own lock) never have to
  /// take the stats lock; stats() folds them into the snapshot.
  std::atomic<std::uint64_t> pending_shed_{0};
  std::atomic<std::uint64_t> breaker_opens_{0};

  /// Circuit-breaker state, under its own lock (pass outcomes are
  /// recorded from flush threads; breaker_state() reads from anywhere).
  mutable support::Mutex breaker_mutex_;
  BreakerState breaker_state_ GUARDED_BY(breaker_mutex_) =
      BreakerState::kClosed;
  /// Recent pass outcomes (true = ok).
  std::deque<bool> breaker_window_ GUARDED_BY(breaker_mutex_);
  std::size_t breaker_failures_ GUARDED_BY(breaker_mutex_) = 0;
  std::chrono::steady_clock::time_point breaker_opened_at_
      GUARDED_BY(breaker_mutex_){};
  /// A half-open probe pass is in flight.
  bool breaker_probing_ GUARDED_BY(breaker_mutex_) = false;

  std::thread flusher_;
};

}  // namespace llm4vv::llm
