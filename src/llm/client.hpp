#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "llm/model.hpp"

namespace llm4vv::llm {

/// Aggregate statistics of an inference endpoint.
struct ClientStats {
  std::uint64_t requests = 0;
  std::uint64_t prompt_tokens = 0;
  std::uint64_t completion_tokens = 0;
  /// Sum of simulated per-call latencies — "GPU seconds" of the modelled
  /// A100 node, the currency the validation pipeline saves by filtering
  /// files before the LLM stage.
  double gpu_seconds = 0.0;
  /// complete_many() submissions (each is one batched forward pass).
  std::uint64_t batches = 0;
  /// Prompts that went through those batched submissions (also counted in
  /// `requests`, which covers both paths).
  std::uint64_t batched_prompts = 0;
  /// Largest single batch submitted so far.
  std::uint64_t max_batch = 0;
};

/// One recorded request/response pair (for the examples and debugging).
struct Transcript {
  std::string prompt;
  Completion completion;
};

/// Thread-safe inference-server facade over a LanguageModel.
///
/// Models the paper's serving setup: one model replica per GPU, so at most
/// `max_concurrency` generate() calls proceed at once (the pipeline's judge
/// stage can be parallelized "if there are enough available GPU
/// resources"); excess callers block. Statistics and an optional bounded
/// transcript log are kept under a separate lock.
///
/// Slot admission is FIFO: every caller (single or batched) takes a ticket
/// and acquires only at the head of the queue. Without the ticket, a
/// steady stream of single-slot callers could starve a complete_many()
/// waiter indefinitely — each release immediately re-consumed by a
/// newcomer before N slots were ever simultaneously free. With it, the
/// wide waiter's wait is bounded by the work already queued ahead of it.
class ModelClient {
 public:
  ModelClient(std::shared_ptr<const LanguageModel> model,
              std::size_t max_concurrency = 1,
              std::size_t transcript_capacity = 0);

  /// Blocking completion call (thread-safe).
  Completion complete(const std::string& prompt,
                      const GenerationParams& params = {});

  /// Blocking batched completion (thread-safe): submits all prompts as one
  /// forward pass via LanguageModel::generate_batch. The batch acquires
  /// min(prompts.size(), max_concurrency) GPU slots atomically — it waits
  /// until that many are free at once instead of trickling in, so two
  /// batched callers can never deadlock each other holding partial slot
  /// sets. Statistics record the pass as one batch plus per-prompt token
  /// counts; completions come back in prompt order.
  std::vector<Completion> complete_many(
      const std::vector<std::string>& prompts,
      const GenerationParams& params = {});

  /// Snapshot of the running statistics.
  ClientStats stats() const;

  /// Callers currently queued for slots (ticket taken, not yet admitted).
  /// A live gauge for monitoring and for deterministic fairness tests.
  std::size_t queue_depth() const;

  /// Recorded transcripts (most recent `transcript_capacity` calls).
  std::vector<Transcript> transcripts() const;

  /// The wrapped model's name.
  std::string model_name() const { return model_->name(); }

 private:
  /// RAII lease on acquired concurrency slots: the destructor returns them
  /// and wakes every waiter (multi-slot complete_many waiters need the
  /// broadcast), so no exit path — normal, throwing model, failed
  /// validation — can leak a slot.
  struct SlotLease {
    ModelClient& client;
    std::size_t slots;
    ~SlotLease();
  };

  /// Take a FIFO ticket and block until at the head of the queue with
  /// `slots` slots free; admits the caller and passes the head on.
  void acquire_slots(std::size_t slots);

  std::shared_ptr<const LanguageModel> model_;
  const std::size_t max_concurrency_;
  const std::size_t transcript_capacity_;

  mutable std::mutex mutex_;
  std::condition_variable slot_free_;
  std::size_t in_flight_ = 0;
  /// FIFO ticket discipline: `next_ticket_` is taken on arrival,
  /// `serving_` advances when the head finishes acquiring. A caller waits
  /// until it *is* the head AND its slots fit — so wide waiters cannot be
  /// overtaken forever, at the price of head-of-line blocking (bounded:
  /// every holder eventually releases).
  std::uint64_t next_ticket_ = 0;
  std::uint64_t serving_ = 0;
  ClientStats stats_;
  std::deque<Transcript> transcripts_;
};

}  // namespace llm4vv::llm
