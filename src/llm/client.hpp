#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "llm/model.hpp"

namespace llm4vv::llm {

/// Aggregate statistics of an inference endpoint.
struct ClientStats {
  std::uint64_t requests = 0;
  std::uint64_t prompt_tokens = 0;
  std::uint64_t completion_tokens = 0;
  /// Sum of simulated per-call latencies — "GPU seconds" of the modelled
  /// A100 node, the currency the validation pipeline saves by filtering
  /// files before the LLM stage.
  double gpu_seconds = 0.0;
};

/// One recorded request/response pair (for the examples and debugging).
struct Transcript {
  std::string prompt;
  Completion completion;
};

/// Thread-safe inference-server facade over a LanguageModel.
///
/// Models the paper's serving setup: one model replica per GPU, so at most
/// `max_concurrency` generate() calls proceed at once (the pipeline's judge
/// stage can be parallelized "if there are enough available GPU
/// resources"); excess callers block. Statistics and an optional bounded
/// transcript log are kept under a separate lock.
class ModelClient {
 public:
  ModelClient(std::shared_ptr<const LanguageModel> model,
              std::size_t max_concurrency = 1,
              std::size_t transcript_capacity = 0);

  /// Blocking completion call (thread-safe).
  Completion complete(const std::string& prompt,
                      const GenerationParams& params = {});

  /// Snapshot of the running statistics.
  ClientStats stats() const;

  /// Recorded transcripts (most recent `transcript_capacity` calls).
  std::vector<Transcript> transcripts() const;

  /// The wrapped model's name.
  std::string model_name() const { return model_->name(); }

 private:
  std::shared_ptr<const LanguageModel> model_;
  const std::size_t max_concurrency_;
  const std::size_t transcript_capacity_;

  mutable std::mutex mutex_;
  std::condition_variable slot_free_;
  std::size_t in_flight_ = 0;
  ClientStats stats_;
  std::deque<Transcript> transcripts_;
};

}  // namespace llm4vv::llm
