#include "llm/profiles.hpp"

namespace llm4vv::llm {

namespace {

using frontend::Flavor;

/// Calibration provenance
/// ----------------------
/// Each profile was fit against one column family of the paper:
///   - direct profiles      -> Table I (OpenACC), Table II (OpenMP)
///   - agent-direct (LLMJ1) -> Table VII / VIII "LLMJ 1" columns
///   - agent-indirect       -> Table VII / VIII "LLMJ 2" columns
/// combined with the mechanical evidence composition our substrate yields
/// per issue class (see DESIGN.md §5): e.g. the OpenACC issue-0 population
/// is ~50% misspelled-directive files (compile-fail + misspell evidence)
/// and ~50% deleted-allocation files (run-fail + uninit-pointer evidence),
/// so Table I's 15% row pins 0.5*q_misspelled + 0.5*q_uninit ~= 0.15.
///
/// The decision rule these parameters feed (coder_model.cpp):
///   no directives present        -> invalid w.p. q_no_directives
///   otherwise                    -> noisy-OR of one tool gate (agent
///                                   styles; corroborated when any code
///                                   evidence fired) and the strongest
///                                   code-evidence gate; if nothing fired,
///                                   invalid w.p. false_invalid_rate.

JudgeProfile acc_direct() {
  JudgeProfile p;
  p.q_no_directives = 0.80;        // Table I, issue 3: 80%
  p.q_misspelled_directive = 0.22; // Table I, issue 0 (15%) swap arm
  p.q_uninit_pointer = 0.08;       // Table I, issue 0 (15%) alloc arm
  p.q_brace_imbalance = 0.14;      // Table I, issue 1: 12%
  p.q_undeclared = 0.15;           // Table I, issue 2: 15%
  p.q_logic_mismatch = 0.12;       // Table I, issue 4: 12%
  p.q_missing_return = 0.12;
  p.false_invalid_rate = 0.12;     // Table I, no issue: 88%
  return p;
}

JudgeProfile omp_direct() {
  JudgeProfile p;
  p.q_no_directives = 0.04;        // Table II, issue 3: the 4% blind spot
  p.q_misspelled_directive = 0.88; // Table II, issue 0: 47% (swap arm)
  p.q_uninit_pointer = 0.17;       //   ... alloc arm
  p.q_brace_imbalance = 0.74;      // Table II, issue 1: 74%
  p.q_undeclared = 0.64;           // Table II, issue 2: 64%
  p.q_logic_mismatch = 0.30;       // Table II, issue 4: 33% (inner arm)
  p.q_missing_return = 0.26;       //   ... function-tail arm
  p.false_invalid_rate = 0.61;     // Table II, no issue: 39%
  return p;
}

JudgeProfile acc_agent_direct() {
  JudgeProfile p;                  // Table VII, LLMJ 1 column
  p.q_no_directives = 0.97;        // issue 3: 97%
  p.q_compile_failed_corroborated = 0.70;
  p.q_compile_failed_alone = 0.08; // valid-but-quirk-rejected files pass
  p.q_run_failed_corroborated = 0.51;
  p.q_run_failed_alone = 0.30;
  p.q_misspelled_directive = 0.10; // issue 0: 67% with tool gates
  p.q_uninit_pointer = 0.20;
  p.q_brace_imbalance = 0.20;      // issue 1: 76%
  p.q_undeclared = 0.40;           // issue 2: 85%
  p.q_logic_mismatch = 0.07;       // issue 4: 15%
  p.q_missing_return = 0.07;
  p.false_invalid_rate = 0.075;    // no issue: 92%
  return p;
}

JudgeProfile acc_agent_indirect() {
  JudgeProfile p;                  // Table VII, LLMJ 2 column
  p.q_no_directives = 1.00;        // issue 3: 100%
  p.q_compile_failed_corroborated = 0.40;
  p.q_compile_failed_alone = 0.15;
  p.q_run_failed_corroborated = 0.70;
  p.q_run_failed_alone = 0.40;
  p.q_misspelled_directive = 0.70; // issue 0: 82%
  p.q_uninit_pointer = 0.40;
  p.q_brace_imbalance = 0.25;      // issue 1: 55%
  p.q_undeclared = 0.72;           // issue 2: 83%
  p.q_logic_mismatch = 0.20;       // issue 4: 27%
  p.q_missing_return = 0.20;
  p.false_invalid_rate = 0.19;     // no issue: 79%
  return p;
}

JudgeProfile omp_agent_direct() {
  JudgeProfile p;                  // Table VIII, LLMJ 1 column
  p.q_no_directives = 0.52;        // issue 3: 65%
  p.q_compile_failed_corroborated = 0.50;
  p.q_compile_failed_alone = 0.10;
  p.q_run_failed_corroborated = 0.35;
  p.q_run_failed_alone = 0.20;
  p.q_misspelled_directive = 0.05; // issue 0: 47%
  p.q_uninit_pointer = 0.10;
  p.q_brace_imbalance = 0.14;      // issue 1: 57%
  p.q_undeclared = 0.38;           // issue 2: 69%
  p.q_logic_mismatch = 0.60;       // issue 4: 72% (inner arm)
  p.q_missing_return = 0.55;       //   ... function-tail arm
  p.false_invalid_rate = 0.065;    // no issue: 93%
  return p;
}

JudgeProfile omp_agent_indirect() {
  JudgeProfile p;                  // Table VIII, LLMJ 2 column
  p.q_no_directives = 0.85;        // issue 3: 85%
  p.q_compile_failed_corroborated = 0.40;
  p.q_compile_failed_alone = 0.20;
  p.q_run_failed_corroborated = 0.44;
  p.q_run_failed_alone = 0.25;
  p.q_misspelled_directive = 0.00; // issue 0: 45%
  p.q_uninit_pointer = 0.10;
  p.q_brace_imbalance = 0.10;      // issue 1: 46%
  p.q_undeclared = 0.30;           // issue 2: 58%
  p.q_logic_mismatch = 0.30;       // issue 4: 48% (inner arm)
  p.q_missing_return = 0.11;       //   ... function-tail arm
  p.false_invalid_rate = 0.035;    // no issue: 96%
  return p;
}

}  // namespace

const JudgeProfile& judge_profile(Flavor flavor, PromptStyle style) {
  static const JudgeProfile kAccDirect = acc_direct();
  static const JudgeProfile kOmpDirect = omp_direct();
  static const JudgeProfile kAccAgent1 = acc_agent_direct();
  static const JudgeProfile kAccAgent2 = acc_agent_indirect();
  static const JudgeProfile kOmpAgent1 = omp_agent_direct();
  static const JudgeProfile kOmpAgent2 = omp_agent_indirect();

  const bool acc = flavor == Flavor::kOpenACC;
  switch (style) {
    case PromptStyle::kDirectAnalysis:
      return acc ? kAccDirect : kOmpDirect;
    case PromptStyle::kAgentDirect:
      return acc ? kAccAgent1 : kOmpAgent1;
    case PromptStyle::kAgentIndirect:
      return acc ? kAccAgent2 : kOmpAgent2;
  }
  return kAccDirect;
}

}  // namespace llm4vv::llm
