#include "llm/tokenizer.hpp"

#include <algorithm>
#include <stdexcept>

namespace llm4vv::llm {

namespace {

/// Fragment vocabulary: frequent substrings of V&V test files, directive
/// text, and judge prompts. Order is irrelevant (matching is by length).
const char* kFragments[] = {
    // whitespace & indentation
    "\n", "  ", "    ", "      ", "\n  ", "\n    ", " = ", " == ", " != ",
    " <= ", " >= ", " < ", " > ", " + ", " - ", " * ", " / ",
    // C structure
    "#include <stdio.h>", "#include <stdlib.h>", "#include <math.h>",
    "#include <openacc.h>", "#include <omp.h>", "#define N ",
    "int main() {", "return", "double", "float", "int ", "long ", "void",
    "for (int i = 0; i < N; i++) {", "for (int i = 0; i < ", "i++) {",
    "if (", "} else {", "};", "();", ");\n", ";\n", "()", "{\n", "}\n",
    "printf(", "malloc(", "free(", "fabs(", "sizeof(double)",
    "sizeof(long)", "(double *)", "(long *)", "err", "expected",
    "[i]", "[0:N]", "0.0", "1.0", "* 2.0", "1e-10", "1e-6",
    "Test PASSED", "Test FAILED with %d errors",
    // directives
    "#pragma acc ", "#pragma omp ", "!$acc ", "!$omp ",
    "parallel loop", "kernels loop", "serial loop", "parallel for",
    "target teams distribute parallel for", "target teams distribute",
    "target data", "target enter data", "target exit data", "target update",
    "enter data", "exit data", "update host(", "update device(",
    "copyin(", "copyout(", "copy(", "create(", "present(", "delete(",
    "map(to: ", "map(from: ", "map(tofrom: ", "map(alloc: ",
    "map(release: ", "reduction(+:", "reduction(max:", "reduction(min:",
    "private(", "firstprivate(", "collapse(", "num_gangs(", "num_teams(",
    "vector_length(", "thread_limit(", "schedule(static)", "nowait",
    "async", "wait", "atomic", "simd", "gang", "vector", "worker",
    // Fortran
    "program ", "end program", "implicit none", "integer", "real(8)",
    "allocatable :: ", "allocate(", "deallocate(", "do i = 1, n",
    "end do", "end if", "then", "call exit(", "print *, ",
    // prompt scaffolding (Listings 1-4)
    "Syntax: ", "Directive Appropriateness: ", "Clause Correctness: ",
    "Memory Management: ", "Compliance: ", "Logic: ",
    "FINAL JUDGEMENT: ", "valid", "invalid", "correct", "incorrect",
    "OpenACC", "OpenMP", "directives and pragmas are syntactically",
    "Compiler return code: ", "Compiler STDERR: ", "Compiler STDOUT: ",
    "Return code: ", "STDERR: ", "STDOUT: ",
    "Here is the code", "evaluate the code", "Think step by step.",
    "compiler test", "the code ", "the test ", " the ", " and ", " that ",
    " is ", " of ", " to ", " a ", "tion", "ing ", "ed ", "error",
};

}  // namespace

Tokenizer::Tokenizer() {
  vocab_.reserve(256 + std::size(kFragments));
  for (int b = 0; b < 256; ++b) {
    vocab_.push_back(std::string(1, static_cast<char>(b)));
  }
  for (const char* fragment : kFragments) {
    vocab_.emplace_back(fragment);
  }

  by_first_byte_.resize(256);
  for (std::size_t id = 0; id < vocab_.size(); ++id) {
    const auto first = static_cast<unsigned char>(vocab_[id][0]);
    by_first_byte_[first].push_back(static_cast<std::int32_t>(id));
  }
  for (auto& bucket : by_first_byte_) {
    std::sort(bucket.begin(), bucket.end(),
              [this](std::int32_t a, std::int32_t b) {
                return vocab_[static_cast<std::size_t>(a)].size() >
                       vocab_[static_cast<std::size_t>(b)].size();
              });
  }
}

std::vector<std::int32_t> Tokenizer::encode(const std::string& text) const {
  std::vector<std::int32_t> ids;
  ids.reserve(text.size() / 3 + 8);
  std::size_t i = 0;
  while (i < text.size()) {
    const auto first = static_cast<unsigned char>(text[i]);
    std::int32_t best = static_cast<std::int32_t>(first);  // byte fallback
    for (const std::int32_t id : by_first_byte_[first]) {
      const std::string& tok = vocab_[static_cast<std::size_t>(id)];
      if (tok.size() <= text.size() - i &&
          text.compare(i, tok.size(), tok) == 0) {
        best = id;
        break;  // buckets are longest-first
      }
    }
    ids.push_back(best);
    i += vocab_[static_cast<std::size_t>(best)].size();
  }
  return ids;
}

std::string Tokenizer::decode(const std::vector<std::int32_t>& ids) const {
  std::string out;
  for (const std::int32_t id : ids) {
    out += token_text(id);
  }
  return out;
}

std::size_t Tokenizer::count_tokens(const std::string& text) const {
  std::size_t count = 0;
  std::size_t i = 0;
  while (i < text.size()) {
    const auto first = static_cast<unsigned char>(text[i]);
    std::size_t advance = 1;
    for (const std::int32_t id : by_first_byte_[first]) {
      const std::string& tok = vocab_[static_cast<std::size_t>(id)];
      if (tok.size() <= text.size() - i &&
          text.compare(i, tok.size(), tok) == 0) {
        advance = tok.size();
        break;
      }
    }
    ++count;
    i += advance;
  }
  return count;
}

const std::string& Tokenizer::token_text(std::int32_t id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= vocab_.size()) {
    throw std::out_of_range("Tokenizer: bad token id");
  }
  return vocab_[static_cast<std::size_t>(id)];
}

const Tokenizer& default_tokenizer() {
  static const Tokenizer tokenizer;
  return tokenizer;
}

}  // namespace llm4vv::llm
