#include "llm/tokenizer.hpp"

#include <algorithm>
#include <stdexcept>

namespace llm4vv::llm {

namespace {

/// Fragment vocabulary: frequent substrings of V&V test files, directive
/// text, and judge prompts. Order is irrelevant (matching is by length).
const char* kFragments[] = {
    // whitespace & indentation
    "\n", "  ", "    ", "      ", "\n  ", "\n    ", " = ", " == ", " != ",
    " <= ", " >= ", " < ", " > ", " + ", " - ", " * ", " / ",
    // C structure
    "#include <stdio.h>", "#include <stdlib.h>", "#include <math.h>",
    "#include <openacc.h>", "#include <omp.h>", "#define N ",
    "int main() {", "return", "double", "float", "int ", "long ", "void",
    "for (int i = 0; i < N; i++) {", "for (int i = 0; i < ", "i++) {",
    "if (", "} else {", "};", "();", ");\n", ";\n", "()", "{\n", "}\n",
    "printf(", "malloc(", "free(", "fabs(", "sizeof(double)",
    "sizeof(long)", "(double *)", "(long *)", "err", "expected",
    "[i]", "[0:N]", "0.0", "1.0", "* 2.0", "1e-10", "1e-6",
    "Test PASSED", "Test FAILED with %d errors",
    // directives
    "#pragma acc ", "#pragma omp ", "!$acc ", "!$omp ",
    "parallel loop", "kernels loop", "serial loop", "parallel for",
    "target teams distribute parallel for", "target teams distribute",
    "target data", "target enter data", "target exit data", "target update",
    "enter data", "exit data", "update host(", "update device(",
    "copyin(", "copyout(", "copy(", "create(", "present(", "delete(",
    "map(to: ", "map(from: ", "map(tofrom: ", "map(alloc: ",
    "map(release: ", "reduction(+:", "reduction(max:", "reduction(min:",
    "private(", "firstprivate(", "collapse(", "num_gangs(", "num_teams(",
    "vector_length(", "thread_limit(", "schedule(static)", "nowait",
    "async", "wait", "atomic", "simd", "gang", "vector", "worker",
    // Fortran
    "program ", "end program", "implicit none", "integer", "real(8)",
    "allocatable :: ", "allocate(", "deallocate(", "do i = 1, n",
    "end do", "end if", "then", "call exit(", "print *, ",
    // prompt scaffolding (Listings 1-4)
    "Syntax: ", "Directive Appropriateness: ", "Clause Correctness: ",
    "Memory Management: ", "Compliance: ", "Logic: ",
    "FINAL JUDGEMENT: ", "valid", "invalid", "correct", "incorrect",
    "OpenACC", "OpenMP", "directives and pragmas are syntactically",
    "Compiler return code: ", "Compiler STDERR: ", "Compiler STDOUT: ",
    "Return code: ", "STDERR: ", "STDOUT: ",
    "Here is the code", "evaluate the code", "Think step by step.",
    "compiler test", "the code ", "the test ", " the ", " and ", " that ",
    " is ", " of ", " to ", " a ", "tion", "ing ", "ed ", "error",
};

}  // namespace

Tokenizer::Tokenizer() {
  vocab_.reserve(256 + std::size(kFragments));
  for (int b = 0; b < 256; ++b) {
    vocab_.push_back(std::string(1, static_cast<char>(b)));
  }
  for (const char* fragment : kFragments) {
    vocab_.emplace_back(fragment);
  }

  by_first_byte_.resize(256);
  for (std::size_t id = 0; id < vocab_.size(); ++id) {
    const auto first = static_cast<unsigned char>(vocab_[id][0]);
    by_first_byte_[first].push_back(static_cast<std::int32_t>(id));
  }
  for (auto& bucket : by_first_byte_) {
    // Longest first; ties broken by id so duplicate vocabulary strings
    // (e.g. "\n" is both byte token 10 and a fragment) deterministically
    // resolve to the lowest id, matching the trie's keep-first rule.
    std::sort(bucket.begin(), bucket.end(),
              [this](std::int32_t a, std::int32_t b) {
                const auto& ta = vocab_[static_cast<std::size_t>(a)];
                const auto& tb = vocab_[static_cast<std::size_t>(b)];
                if (ta.size() != tb.size()) return ta.size() > tb.size();
                return a < b;
              });
  }

  // Compile the trie. Node 0 is the root; the 256 byte tokens guarantee
  // every depth-1 node exists and is terminal, so matching never fails.
  const auto new_node = [this] {
    nodes_.emplace_back();
    std::fill(std::begin(nodes_.back().next), std::end(nodes_.back().next),
              -1);
    nodes_.back().token = -1;
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };
  nodes_.reserve(2048);
  new_node();  // root
  for (std::size_t id = 0; id < vocab_.size(); ++id) {
    std::int32_t node = 0;
    for (const char c : vocab_[id]) {
      const auto byte = static_cast<unsigned char>(c);
      if (nodes_[static_cast<std::size_t>(node)].next[byte] < 0) {
        const std::int32_t child = new_node();
        nodes_[static_cast<std::size_t>(node)].next[byte] = child;
      }
      node = nodes_[static_cast<std::size_t>(node)].next[byte];
    }
    // Keep the first id for duplicate vocabulary strings (see the bucket
    // sort's tie-break above).
    if (nodes_[static_cast<std::size_t>(node)].token < 0) {
      nodes_[static_cast<std::size_t>(node)].token =
          static_cast<std::int32_t>(id);
    }
  }
}

std::vector<std::int32_t> Tokenizer::encode(std::string_view text) const {
  std::vector<std::int32_t> ids;
  encode_into(text, ids);
  return ids;
}

void Tokenizer::encode_into(std::string_view text,
                            std::vector<std::int32_t>& out) const {
  out.clear();
  out.reserve(text.size() / 3 + 8);
  std::size_t i = 0;
  while (i < text.size()) {
    std::size_t length = 0;
    out.push_back(match_longest(text, i, length));
    i += length;
  }
}

std::string Tokenizer::decode(const std::vector<std::int32_t>& ids) const {
  std::string out;
  for (const std::int32_t id : ids) {
    out += token_text(id);
  }
  return out;
}

std::size_t Tokenizer::count_tokens(std::string_view text) const {
  std::size_t count = 0;
  std::size_t i = 0;
  while (i < text.size()) {
    std::size_t length = 0;
    match_longest(text, i, length);
    ++count;
    i += length;
  }
  return count;
}

std::vector<std::int32_t> Tokenizer::encode_reference(
    std::string_view text) const {
  std::vector<std::int32_t> ids;
  ids.reserve(text.size() / 3 + 8);
  std::size_t i = 0;
  while (i < text.size()) {
    const auto first = static_cast<unsigned char>(text[i]);
    std::int32_t best = static_cast<std::int32_t>(first);  // byte fallback
    for (const std::int32_t id : by_first_byte_[first]) {
      const std::string& tok = vocab_[static_cast<std::size_t>(id)];
      if (tok.size() <= text.size() - i &&
          text.compare(i, tok.size(), tok) == 0) {
        best = id;
        break;  // buckets are longest-first
      }
    }
    ids.push_back(best);
    i += vocab_[static_cast<std::size_t>(best)].size();
  }
  return ids;
}

const std::string& Tokenizer::token_text(std::int32_t id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= vocab_.size()) {
    throw std::out_of_range("Tokenizer: bad token id");
  }
  return vocab_[static_cast<std::size_t>(id)];
}

const Tokenizer& default_tokenizer() {
  static const Tokenizer tokenizer;
  return tokenizer;
}

}  // namespace llm4vv::llm
