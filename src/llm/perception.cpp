#include "llm/perception.hpp"

#include <cctype>

#include "directive/validator.hpp"
#include "frontend/fortran.hpp"
#include "frontend/lexer.hpp"
#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "support/strings.hpp"

namespace llm4vv::llm {

namespace {

using frontend::DiagCode;
using frontend::Flavor;

int parse_rc_after(const std::string& prompt, const std::string& marker) {
  const auto at = prompt.find(marker);
  if (at == std::string::npos) return 0;
  std::size_t i = at + marker.size();
  while (i < prompt.size() && (prompt[i] == ' ' || prompt[i] == ':')) ++i;
  bool negative = false;
  if (i < prompt.size() && prompt[i] == '-') {
    negative = true;
    ++i;
  }
  int value = 0;
  while (i < prompt.size() &&
         std::isdigit(static_cast<unsigned char>(prompt[i]))) {
    value = value * 10 + (prompt[i] - '0');
    ++i;
  }
  return negative ? -value : value;
}

bool looks_like_fortran(const std::string& code) {
  return support::contains(code, "implicit none") ||
         support::contains(code, "end program") ||
         support::starts_with(support::trim(code), "program ") ||
         support::starts_with(support::trim(code), "! ");
}

/// Pointer declarations that are never assigned anywhere in the file: the
/// textual shadow of a deleted allocation.
bool find_uninit_pointer(const std::string& code, bool fortran) {
  const auto lines = support::split_lines(code);
  if (fortran) {
    // allocatable arrays with no matching allocate().
    for (const auto& line : lines) {
      const auto trimmed = support::trim(line);
      if (!support::contains(trimmed, "allocatable")) continue;
      const auto names_at = trimmed.find("::");
      if (names_at == std::string::npos) continue;
      for (auto name : support::split(std::string(
               trimmed.substr(names_at + 2)), ',')) {
        std::string bare(support::trim(name));
        const auto paren = bare.find('(');
        if (paren != std::string::npos) bare = bare.substr(0, paren);
        if (bare.empty()) continue;
        if (!support::contains(code, "allocate(" + bare)) return true;
      }
    }
    return false;
  }
  for (const auto& line : lines) {
    const auto trimmed = support::trim(line);
    // Pointer declaration without an initializer: "double *name;".
    if (trimmed.find('*') == std::string::npos) continue;
    if (support::contains(trimmed, "=")) continue;
    if (!support::ends_with(trimmed, ";")) continue;
    const auto star = trimmed.rfind('*');
    std::string name(
        support::trim(trimmed.substr(star + 1,
                                     trimmed.size() - star - 2)));
    if (name.empty() ||
        !std::isalpha(static_cast<unsigned char>(name[0]))) {
      continue;
    }
    if (!support::contains(code, name + " =") &&
        !support::contains(code, name + " =")) {
      return true;
    }
  }
  return false;
}

bool has_return_somewhere(const frontend::Stmt* stmt) {
  if (stmt == nullptr) return false;
  if (stmt->kind == frontend::StmtKind::kReturn) return true;
  for (const auto& child : stmt->body) {
    if (has_return_somewhere(child.get())) return true;
  }
  return has_return_somewhere(stmt->then_branch.get()) ||
         has_return_somewhere(stmt->else_branch.get()) ||
         has_return_somewhere(stmt->init_stmt.get());
}

}  // namespace

void analyze_code(const std::string& code, Flavor flavor,
                  PromptPerception& out) {
  const bool fortran = looks_like_fortran(code);

  const bool has_any_directive =
      support::contains(code, "#pragma acc") ||
      support::contains(code, "#pragma omp") ||
      support::contains(code, "!$acc") || support::contains(code, "!$omp");
  out.no_directives = !has_any_directive;
  if (out.no_directives) return;  // nothing else matters for the verdict

  frontend::DiagnosticEngine diags;
  frontend::ParserOptions popts;
  popts.pragma_takes_statement = directive::pragma_takes_statement;
  frontend::Program program;
  if (fortran) {
    program = frontend::parse_fortran(code, diags, popts);
  } else {
    const auto lexed = frontend::lex(code, diags);
    program = frontend::parse(lexed.tokens, diags, popts);
  }
  const bool parse_broken = diags.has_errors();
  if (!parse_broken) {
    frontend::analyze(program, diags);
    directive::ValidatorOptions vopts;
    vopts.flavor = flavor;
    vopts.supported_version = 99;  // the judge reads specs, not a compiler
    directive::validate_program(program, vopts, diags);
  }

  for (const auto& diag : diags.diagnostics()) {
    if (diag.severity != frontend::Severity::kError) continue;
    switch (diag.code) {
      case DiagCode::kMismatchedBrace:
      case DiagCode::kUnexpectedToken:
      case DiagCode::kUnterminated:
        out.brace_imbalance = true;
        break;
      case DiagCode::kUndeclaredIdentifier:
        out.undeclared_identifier = true;
        break;
      case DiagCode::kBadDirective:
      case DiagCode::kBadClause:
        out.misspelled_directive = true;
        break;
      default:
        break;
    }
  }

  out.uninit_pointer = find_uninit_pointer(code, fortran);

  if (!parse_broken) {
    for (std::size_t i = 0; i < program.functions.size(); ++i) {
      const auto& fn = program.functions[i];
      if (fn.name == "main") continue;
      if (fn.return_type.base == frontend::BaseType::kVoid) continue;
      if (!has_return_somewhere(fn.body.get())) {
        out.missing_return = true;
        break;
      }
    }
  }

  // Report/verify structure: V&V tests print both outcomes; a file missing
  // either looks truncated.
  const bool has_fail = support::icontains(code, "FAILED");
  const bool has_pass = support::icontains(code, "PASSED");
  out.logic_mismatch = !(has_fail && has_pass);
}

PromptPerception perceive(const std::string& prompt) {
  PromptPerception out;

  if (support::contains(prompt, "Describe what the below")) {
    out.style = PromptStyle::kAgentIndirect;
  } else if (support::contains(prompt, "Compiler return code")) {
    out.style = PromptStyle::kAgentDirect;
  } else {
    out.style = PromptStyle::kDirectAnalysis;
  }

  const auto acc_at = prompt.find("OpenACC");
  const auto omp_at = prompt.find("OpenMP");
  if (acc_at == std::string::npos) {
    out.flavor = Flavor::kOpenMP;
  } else if (omp_at == std::string::npos) {
    out.flavor = Flavor::kOpenACC;
  } else {
    out.flavor = acc_at < omp_at ? Flavor::kOpenACC : Flavor::kOpenMP;
  }

  if (out.style != PromptStyle::kDirectAnalysis) {
    out.has_tool_info =
        support::contains(prompt, "Compiler return code");
    out.compiler_rc = parse_rc_after(prompt, "Compiler return code:");
    out.program_rc = parse_rc_after(prompt, "\nReturn code:");
  }

  // The code block follows the "Here is the code" marker in all prompt
  // shapes (Listings 2-4).
  const auto marker = prompt.find("Here is the code");
  if (marker != std::string::npos) {
    const auto colon = prompt.find(':', marker);
    if (colon != std::string::npos) {
      out.code = prompt.substr(colon + 1);
      while (!out.code.empty() &&
             (out.code.front() == '\n' || out.code.front() == ' ')) {
        out.code.erase(0, 1);
      }
    }
  } else {
    out.code = prompt;  // degenerate prompt: treat everything as code
  }

  analyze_code(out.code, out.flavor, out);
  return out;
}

}  // namespace llm4vv::llm
