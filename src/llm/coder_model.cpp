#include "llm/coder_model.hpp"

#include <algorithm>

#include "llm/tokenizer.hpp"
#include "support/rng.hpp"

namespace llm4vv::llm {

namespace {

/// The strongest fired code-evidence gate (priority order mirrors how
/// obvious each class is to a code reader: a missing directive namespace
/// beats a subtle logic cut).
double code_gate(const PromptPerception& view, const JudgeProfile& profile) {
  if (view.misspelled_directive) return profile.q_misspelled_directive;
  if (view.brace_imbalance) return profile.q_brace_imbalance;
  if (view.undeclared_identifier) return profile.q_undeclared;
  if (view.uninit_pointer) return profile.q_uninit_pointer;
  if (view.missing_return) return profile.q_missing_return;
  if (view.logic_mismatch) return profile.q_logic_mismatch;
  return 0.0;
}

/// Renders a few analysis sentences appropriate to the condition so the
/// completion reads like a code review, not a verdict token. The content
/// echoes the perceived evidence; wording varies with the RNG.
std::string render_analysis(const PromptPerception& view, bool invalid,
                            support::Rng& rng) {
  const char* flavor = frontend::flavor_name(view.flavor);
  std::string out;

  if (view.style == PromptStyle::kAgentIndirect) {
    out += "This program ";
    out += view.no_directives
               ? "performs a purely host-side computation"
               : std::string("initializes its data on the host, offloads "
                             "the main loop with ") +
                     flavor + " directives, and validates the results";
    out += ". ";
    if (view.has_tool_info) {
      out += view.compiler_rc == 0
                 ? "The compiler accepted the code without complaint. "
                 : "The compiler reported errors while building it. ";
      if (view.compiler_rc == 0) {
        out += view.program_rc == 0
                   ? "When run, it exits cleanly with code 0. "
                   : "When run, it exits with a non-zero code. ";
      }
    }
  } else {
    out += "Reviewing the code against the criteria. ";
  }

  // One observation sentence per criterion, echoing the evidence.
  out += "Syntax: ";
  if (view.brace_imbalance) {
    out += rng.chance(0.5)
               ? "the block structure does not balance; a brace appears to "
                 "be missing. "
               : "there is a structural problem around one of the compound "
                 "statements. ";
  } else if (view.misspelled_directive) {
    out += std::string("one of the ") + flavor +
           " directives is not a recognized directive name. ";
  } else {
    out += "the directives and pragmas look syntactically well-formed. ";
  }

  out += "Directive appropriateness and clauses: ";
  if (view.no_directives) {
    out += std::string("the file contains no ") + flavor +
           " directives at all, so it cannot exercise the compiler's " +
           flavor + " support. ";
  } else {
    out += "the data and compute clauses match the intended parallel "
           "pattern. ";
  }

  out += "Memory management: ";
  if (view.uninit_pointer) {
    out += "one buffer appears to be used without a visible allocation. ";
  } else {
    out += "host and device data movement looks consistent. ";
  }

  out += "Logic: ";
  if (view.missing_return) {
    out += "the test function does not return its error count, so the "
           "result of the verification cannot reach the harness. ";
  } else if (view.logic_mismatch) {
    out += "the verification/reporting structure looks incomplete compared "
           "to the usual serial-versus-parallel check. ";
  } else {
    out += "the serial reference and the device result are compared "
           "element-wise with a tolerance, which is the expected shape. ";
  }

  if (invalid) {
    out += rng.chance(0.5)
               ? "Overall, the problems above mean this file would not "
                 "serve as a trustworthy compiler test. "
               : "Taken together, these issues make the test unreliable "
                 "for validating a compiler. ";
  } else {
    out += rng.chance(0.5)
               ? "Overall this looks like a complete, well-formed "
                 "functional test. "
               : "I find no disqualifying problem with this test. ";
  }
  return out;
}

}  // namespace

SimulatedCoderModel::SimulatedCoderModel(CoderModelConfig config)
    : config_(config) {}

std::string SimulatedCoderModel::name() const {
  return "deepseek-coder-33b-instruct-sim";
}

double SimulatedCoderModel::invalid_probability(
    const PromptPerception& view) const {
  const JudgeProfile& profile = judge_profile(view.flavor, view.style);

  // A file with no directives is judged on that single, dominant
  // observation (this carries the paper's OpenMP blind spot: the direct
  // judge almost never flags plain C code as a non-OpenMP test).
  if (view.no_directives) return profile.q_no_directives;

  const double q_code = code_gate(view, profile);

  double q_tool = 0.0;
  if (view.style != PromptStyle::kDirectAnalysis && view.has_tool_info) {
    const bool corroborated = view.any_code_evidence();
    if (view.compiler_rc != 0) {
      q_tool = corroborated ? profile.q_compile_failed_corroborated
                            : profile.q_compile_failed_alone;
    } else if (view.program_rc != 0) {
      q_tool = corroborated ? profile.q_run_failed_corroborated
                            : profile.q_run_failed_alone;
    }
  }

  const double p = 1.0 - (1.0 - q_tool) * (1.0 - q_code);
  if (p > 0.0) return p;
  return profile.false_invalid_rate;
}

Completion SimulatedCoderModel::render(const std::string& prompt,
                                       const GenerationParams& params) const {
  const PromptPerception view = perceive(prompt);
  const JudgeProfile& profile = judge_profile(view.flavor, view.style);

  support::Rng rng(support::fnv1a64(prompt) ^ config_.seed ^ params.seed);
  const bool invalid = rng.chance(invalid_probability(view));
  const bool violate_protocol = rng.chance(profile.protocol_violation_rate);

  std::string text = render_analysis(view, invalid, rng);
  if (!violate_protocol) {
    // The Part One protocol uses correct/incorrect; the agent protocols use
    // valid/invalid (Listings 2-4).
    const bool valid_protocol = view.style != PromptStyle::kDirectAnalysis;
    text += "\nFINAL JUDGEMENT: ";
    if (valid_protocol) {
      text += invalid ? "invalid" : "valid";
    } else {
      text += invalid ? "incorrect" : "correct";
    }
    text += "\n";
  } else {
    text += "\nIn conclusion, the assessment above stands.\n";
  }

  Completion completion;
  const Tokenizer& tokenizer = default_tokenizer();
  completion.prompt_tokens =
      std::min(tokenizer.count_tokens(prompt), config_.context_window);
  completion.completion_tokens = tokenizer.count_tokens(text);
  completion.text = std::move(text);
  return completion;
}

double SimulatedCoderModel::sequential_latency(
    const Completion& completion) const {
  return static_cast<double>(completion.prompt_tokens) /
             config_.prefill_tokens_per_second +
         static_cast<double>(completion.completion_tokens) /
             config_.decode_tokens_per_second;
}

FaultKind SimulatedCoderModel::fault_for(const std::string& prompt,
                                         const GenerationParams& params)
    const {
  if (config_.faults == nullptr) return FaultKind::kNone;
  return config_.faults->decide(support::fnv1a64(prompt), params.attempt);
}

Completion SimulatedCoderModel::generate(const std::string& prompt,
                                         const GenerationParams& params)
    const {
  const FaultKind fault = fault_for(prompt, params);
  if (fault == FaultKind::kPermanent) {
    throw PermanentModelError(
        "SimulatedCoderModel: injected permanent fault");
  }
  if (fault == FaultKind::kTransient) {
    throw TransientModelError(
        "SimulatedCoderModel: injected transient fault (attempt " +
        std::to_string(params.attempt) + ")");
  }
  Completion completion = render(prompt, params);
  completion.latency_seconds = sequential_latency(completion);
  if (fault == FaultKind::kSlow) {
    completion.latency_seconds *= config_.faults->config().slow_latency_factor;
  }
  return completion;
}

std::vector<Completion> SimulatedCoderModel::generate_batch(
    const std::vector<std::string>& prompts,
    const GenerationParams& params) const {
  // Fault draws come first: one poisoned prompt fails the whole forward
  // pass (that is what makes failed-batch splitting in the client worth
  // having). A lone permanently-faulted prompt fails permanently so the
  // retry layer can give up on it; any other faulted pass fails
  // transiently — after a split, the healthy prompts' redraws clear.
  std::vector<FaultKind> faults;
  if (config_.faults != nullptr) {
    faults.reserve(prompts.size());
    std::size_t errors = 0;
    bool all_permanent = !prompts.empty();
    for (const std::string& prompt : prompts) {
      const FaultKind fault = fault_for(prompt, params);
      faults.push_back(fault);
      const bool is_error =
          fault == FaultKind::kTransient || fault == FaultKind::kPermanent;
      if (is_error) ++errors;
      all_permanent = all_permanent && fault == FaultKind::kPermanent;
    }
    if (errors > 0) {
      if (all_permanent) {
        throw PermanentModelError(
            "SimulatedCoderModel: injected permanent fault");
      }
      throw TransientModelError(
          "SimulatedCoderModel: injected fault failed a batch of " +
          std::to_string(prompts.size()) + " (" + std::to_string(errors) +
          " faulted, attempt " + std::to_string(params.attempt) + ")");
    }
  }

  std::vector<Completion> completions;
  completions.reserve(prompts.size());
  for (const std::string& prompt : prompts) {
    completions.push_back(render(prompt, params));
  }
  if (completions.empty()) return completions;

  // Pass latency: the largest prompt's prefill is paid in full (it bounds
  // the pass), the other prompts ride the already-streamed weights and only
  // contribute batch_prefill_fraction of their prefill; decode runs the
  // streams in lockstep, so the pass decodes max(completion_tokens) steps.
  std::size_t prompt_token_sum = 0;
  std::size_t prompt_token_max = 0;
  std::size_t completion_token_max = 0;
  double sequential_sum = 0.0;
  for (const Completion& completion : completions) {
    prompt_token_sum += completion.prompt_tokens;
    prompt_token_max = std::max(prompt_token_max, completion.prompt_tokens);
    completion_token_max =
        std::max(completion_token_max, completion.completion_tokens);
    sequential_sum += sequential_latency(completion);
  }
  const double pass_seconds =
      (static_cast<double>(prompt_token_max) +
       config_.batch_prefill_fraction *
           static_cast<double>(prompt_token_sum - prompt_token_max)) /
          config_.prefill_tokens_per_second +
      static_cast<double>(completion_token_max) /
          config_.decode_tokens_per_second;

  // Attribute the pass cost proportionally to each stream's sequential
  // cost: per-completion latencies sum to the pass latency, and a batch of
  // one degenerates to exactly the sequential price.
  for (Completion& completion : completions) {
    const double sequential = sequential_latency(completion);
    completion.latency_seconds =
        sequential_sum > 0.0 ? pass_seconds * sequential / sequential_sum
                             : 0.0;
  }
  // Slow faults trickle their stream's tokens: the affected completion's
  // attributed latency inflates (the batch's other streams keep theirs, so
  // summed latencies exceed the fault-free pass cost — intended: the slow
  // stream really does hold its slot longer).
  if (!faults.empty()) {
    const double factor = config_.faults->config().slow_latency_factor;
    for (std::size_t i = 0; i < completions.size(); ++i) {
      if (faults[i] == FaultKind::kSlow) {
        completions[i].latency_seconds *= factor;
      }
    }
  }
  return completions;
}

}  // namespace llm4vv::llm
