#include "llm/client.hpp"

#include <stdexcept>

namespace llm4vv::llm {

ModelClient::ModelClient(std::shared_ptr<const LanguageModel> model,
                         std::size_t max_concurrency,
                         std::size_t transcript_capacity)
    : model_(std::move(model)),
      max_concurrency_(max_concurrency == 0 ? 1 : max_concurrency),
      transcript_capacity_(transcript_capacity) {
  if (model_ == nullptr) {
    throw std::invalid_argument("ModelClient: model must not be null");
  }
}

Completion ModelClient::complete(const std::string& prompt,
                                 const GenerationParams& params) {
  {
    std::unique_lock lock(mutex_);
    slot_free_.wait(lock, [this] { return in_flight_ < max_concurrency_; });
    ++in_flight_;
  }

  Completion completion = model_->generate(prompt, params);

  {
    std::lock_guard lock(mutex_);
    --in_flight_;
    ++stats_.requests;
    stats_.prompt_tokens += completion.prompt_tokens;
    stats_.completion_tokens += completion.completion_tokens;
    stats_.gpu_seconds += completion.latency_seconds;
    if (transcript_capacity_ > 0) {
      transcripts_.push_back(Transcript{prompt, completion});
      while (transcripts_.size() > transcript_capacity_) {
        transcripts_.pop_front();
      }
    }
  }
  slot_free_.notify_one();
  return completion;
}

ClientStats ModelClient::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::vector<Transcript> ModelClient::transcripts() const {
  std::lock_guard lock(mutex_);
  return std::vector<Transcript>(transcripts_.begin(), transcripts_.end());
}

}  // namespace llm4vv::llm
