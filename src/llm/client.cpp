#include "llm/client.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace llm4vv::llm {

namespace {

/// Only requests with identical sampling parameters may share a forward
/// pass (generate_batch takes a single params set).
bool params_equal(const GenerationParams& a,
                  const GenerationParams& b) noexcept {
  return a.max_tokens == b.max_tokens && a.temperature == b.temperature &&
         a.seed == b.seed;
}

void fail_state(const std::shared_ptr<detail::CompletionState>& state,
                const std::exception_ptr& error) {
  {
    std::lock_guard lock(state->mutex);
    state->error = error;
    state->done = true;
  }
  state->cv.notify_all();
}

}  // namespace

// ---------------------------------------------------------------------------
// ClientStats
// ---------------------------------------------------------------------------

std::size_t ClientStats::occupancy_bucket(std::size_t batch) noexcept {
  if (batch <= 1) return 0;
  if (batch == 2) return 1;
  if (batch <= 4) return 2;
  if (batch <= 8) return 3;
  if (batch <= 16) return 4;
  if (batch <= 32) return 5;
  return 6;
}

const char* ClientStats::occupancy_bucket_label(std::size_t bucket) noexcept {
  switch (bucket) {
    case 0: return "1";
    case 1: return "2";
    case 2: return "3-4";
    case 3: return "5-8";
    case 4: return "9-16";
    case 5: return "17-32";
    case 6: return "33+";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// CompletionFuture
// ---------------------------------------------------------------------------

bool CompletionFuture::ready() const {
  if (state_ == nullptr) return false;
  std::lock_guard lock(state_->mutex);
  return state_->done;
}

void CompletionFuture::wait() const {
  if (state_ == nullptr) {
    throw std::logic_error("CompletionFuture::wait on an empty future");
  }
  std::unique_lock lock(state_->mutex);
  state_->cv.wait(lock, [this] { return state_->done; });
}

Completion CompletionFuture::get() const {
  wait();
  std::lock_guard lock(state_->mutex);
  if (state_->error != nullptr) std::rethrow_exception(state_->error);
  return state_->value;
}

std::size_t CompletionFuture::flush_size() const {
  if (state_ == nullptr) return 0;
  std::lock_guard lock(state_->mutex);
  return state_->flush_size;
}

// ---------------------------------------------------------------------------
// ModelClient
// ---------------------------------------------------------------------------

ModelClient::ModelClient(std::shared_ptr<const LanguageModel> model,
                         std::size_t max_concurrency,
                         std::size_t transcript_capacity,
                         BatcherConfig batcher)
    : model_(std::move(model)),
      max_concurrency_(max_concurrency == 0 ? 1 : max_concurrency),
      transcript_capacity_(transcript_capacity),
      batcher_(batcher) {
  if (model_ == nullptr) {
    throw std::invalid_argument("ModelClient: model must not be null");
  }
  if (batcher_.window_us > 0) {
    flusher_ = std::thread([this] { flusher_main(); });
  }
}

ModelClient::~ModelClient() {
  std::deque<PendingRequest> orphans;
  {
    std::unique_lock lock(batch_mutex_);
    shutting_down_ = true;
    orphans.swap(pending_);
    batch_cv_.notify_all();
    // Wait out flushes running on caller threads: they hold references to
    // the model, the slot state, and the stats, none of which may die
    // under them.
    flush_done_.wait(lock, [this] { return active_flushes_ == 0; });
  }
  if (flusher_.joinable()) flusher_.join();
  if (!orphans.empty()) {
    const auto error = std::make_exception_ptr(std::runtime_error(
        "ModelClient destroyed with " + std::to_string(orphans.size()) +
        " unresolved submission(s)"));
    for (const PendingRequest& request : orphans) {
      fail_state(request.state, error);
    }
  }
}

ModelClient::SlotLease::~SlotLease() {
  {
    std::lock_guard lock(client.mutex_);
    client.in_flight_ -= slots;
  }
  // notify_all, not notify_one: wide flushes need several slots free at
  // once, and a single wake delivered to such a waiter whose predicate is
  // still false would be consumed without releasing anyone — stranding a
  // single-slot waiter that could have run.
  client.slot_free_.notify_all();
}

void ModelClient::acquire_slots(std::size_t slots) {
  std::unique_lock lock(mutex_);
  const std::uint64_t ticket = next_ticket_++;
  slot_free_.wait(lock, [this, ticket, slots] {
    return serving_ == ticket && in_flight_ + slots <= max_concurrency_;
  });
  ++serving_;
  in_flight_ += slots;
  lock.unlock();
  // The next ticket holder may already fit in the remaining slots; the
  // broadcast lets it (and only it — the predicate orders everyone else)
  // proceed without waiting for a release.
  slot_free_.notify_all();
}

std::size_t ModelClient::head_run_locked() const {
  std::size_t run = 0;
  for (const PendingRequest& request : pending_) {
    if (!params_equal(request.params, pending_.front().params)) break;
    ++run;
    if (batcher_.max_batch > 0 && run >= batcher_.max_batch) break;
  }
  return run;
}

std::vector<ModelClient::PendingRequest> ModelClient::collect_group_locked() {
  std::vector<PendingRequest> group;
  if (pending_.empty()) return group;
  const std::size_t cap =
      batcher_.max_batch == 0 ? pending_.size() : batcher_.max_batch;
  group.reserve(std::min(cap, pending_.size()));
  const GenerationParams head_params = pending_.front().params;
  while (!pending_.empty() && group.size() < cap &&
         params_equal(pending_.front().params, head_params)) {
    group.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  return group;
}

void ModelClient::execute_flush(std::vector<PendingRequest>& group,
                                FlushReason reason) {
  if (group.empty()) return;
  std::vector<std::string> prompts;
  prompts.reserve(group.size());
  bool batch_origin = group.size() >= 2;
  for (const PendingRequest& request : group) {
    prompts.push_back(request.prompt);
    batch_origin = batch_origin || request.batch_origin;
  }

  std::vector<Completion> completions;
  try {
    // One model replica serves the whole pass, but the pass keeps up to
    // max_concurrency streams busy; clamping keeps oversized batches from
    // waiting for more slots than exist. The FIFO ticket inside
    // acquire_slots guarantees the multi-slot wait is bounded: single-slot
    // flushes arriving later queue behind this one instead of re-consuming
    // every released slot.
    const std::size_t slots = std::min(group.size(), max_concurrency_);
    acquire_slots(slots);
    SlotLease lease{*this, slots};
    completions = model_->generate_batch(prompts, group.front().params);
    if (completions.size() != prompts.size()) {
      throw std::logic_error(
          "ModelClient: generate_batch returned a mismatched completion "
          "count");
    }
  } catch (...) {
    // Never leaks out of a flush — window flushes run on the flusher
    // thread and full flushes on whichever caller filled the batch, so the
    // failure is delivered through every affected future instead.
    const auto error = std::current_exception();
    for (const PendingRequest& request : group) {
      fail_state(request.state, error);
    }
    return;
  }

  {
    std::lock_guard lock(mutex_);
    stats_.requests += group.size();
    ++stats_.formed_batches;
    switch (reason) {
      case FlushReason::kImmediate: ++stats_.flush_immediate; break;
      case FlushReason::kFull: ++stats_.flush_full; break;
      case FlushReason::kWindow: ++stats_.flush_window; break;
    }
    ++stats_.occupancy_hist[ClientStats::occupancy_bucket(group.size())];
    if (batch_origin) {
      ++stats_.batches;
      stats_.batched_prompts += group.size();
      stats_.max_batch =
          std::max<std::uint64_t>(stats_.max_batch, group.size());
    }
    for (std::size_t i = 0; i < completions.size(); ++i) {
      stats_.prompt_tokens += completions[i].prompt_tokens;
      stats_.completion_tokens += completions[i].completion_tokens;
      stats_.gpu_seconds += completions[i].latency_seconds;
      if (transcript_capacity_ > 0) {
        transcripts_.push_back(Transcript{prompts[i], completions[i]});
        while (transcripts_.size() > transcript_capacity_) {
          transcripts_.pop_front();
        }
      }
    }
  }

  for (std::size_t i = 0; i < group.size(); ++i) {
    const auto& state = group[i].state;
    {
      std::lock_guard lock(state->mutex);
      state->value = std::move(completions[i]);
      state->flush_size = group.size();
      state->done = true;
    }
    state->cv.notify_all();
  }
}

std::vector<CompletionFuture> ModelClient::enqueue(
    std::vector<PendingRequest> requests) {
  std::vector<CompletionFuture> futures;
  futures.reserve(requests.size());
  for (const PendingRequest& request : requests) {
    futures.push_back(CompletionFuture(request.state));
  }

  std::vector<std::vector<PendingRequest>> flushes;
  FlushReason reason = FlushReason::kImmediate;
  {
    std::lock_guard lock(batch_mutex_);
    if (shutting_down_) {
      const auto error = std::make_exception_ptr(std::runtime_error(
          "ModelClient: submit during shutdown"));
      for (const PendingRequest& request : requests) {
        fail_state(request.state, error);
      }
      return futures;
    }
    const auto now = std::chrono::steady_clock::now();
    for (PendingRequest& request : requests) {
      request.enqueued = now;
      pending_.push_back(std::move(request));
    }
    std::size_t high = pending_high_water_.load(std::memory_order_relaxed);
    while (pending_.size() > high &&
           !pending_high_water_.compare_exchange_weak(
               high, pending_.size(), std::memory_order_relaxed)) {
    }
    if (batcher_.window_us == 0) {
      // Paper mode: this submission flushes now, in its entirety. The
      // enqueue + collect runs under one lock acquisition, so nothing from
      // a concurrent caller can ever ride along (sequential pricing stays
      // bit-exact) and nothing is ever left pending.
      reason = FlushReason::kImmediate;
      while (!pending_.empty()) flushes.push_back(collect_group_locked());
    } else {
      reason = FlushReason::kFull;
      // "Full" means the *head equal-params run* reached max_batch — only
      // requests that can actually share the pass count toward fullness.
      // A short head run of other params is never flushed early on the
      // strength of requests queued behind it (FIFO head-of-line: it
      // waits for its own window or for same-params arrivals); so every
      // kFull flush really carries max_batch prompts.
      while (batcher_.max_batch > 0 &&
             head_run_locked() >= batcher_.max_batch) {
        flushes.push_back(collect_group_locked());
      }
      // Whatever remains waits for more arrivals or the window; (re)arm
      // the flusher on the new oldest pending request.
      if (!pending_.empty()) batch_cv_.notify_all();
    }
    active_flushes_ += flushes.size();
  }

  for (auto& group : flushes) {
    execute_flush(group, reason);
    {
      std::lock_guard lock(batch_mutex_);
      --active_flushes_;
    }
    flush_done_.notify_all();
  }
  return futures;
}

void ModelClient::flusher_main() {
  const auto window = std::chrono::microseconds(batcher_.window_us);
  std::unique_lock lock(batch_mutex_);
  for (;;) {
    batch_cv_.wait(lock, [this] {
      return shutting_down_ || !pending_.empty();
    });
    if (shutting_down_) return;
    // Sleep until the oldest pending request's window expires; arrivals
    // and shutdown re-wake us (a full-triggered flush may also empty the
    // queue while we sleep — re-check everything on every wake).
    while (!shutting_down_ && !pending_.empty()) {
      const auto deadline = pending_.front().enqueued + window;
      if (std::chrono::steady_clock::now() >= deadline) break;
      batch_cv_.wait_until(lock, deadline);
    }
    if (shutting_down_) return;
    if (pending_.empty()) continue;
    std::vector<PendingRequest> group = collect_group_locked();
    ++active_flushes_;
    lock.unlock();
    execute_flush(group, FlushReason::kWindow);
    lock.lock();
    --active_flushes_;
    flush_done_.notify_all();
  }
}

CompletionFuture ModelClient::submit(const std::string& prompt,
                                     const GenerationParams& params) {
  std::vector<PendingRequest> requests(1);
  requests[0].prompt = prompt;
  requests[0].params = params;
  requests[0].state = std::make_shared<detail::CompletionState>();
  return enqueue(std::move(requests))[0];
}

std::vector<CompletionFuture> ModelClient::submit_many(
    const std::vector<std::string>& prompts, const GenerationParams& params) {
  if (prompts.empty()) return {};
  std::vector<PendingRequest> requests(prompts.size());
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    requests[i].prompt = prompts[i];
    requests[i].params = params;
    requests[i].state = std::make_shared<detail::CompletionState>();
    requests[i].batch_origin = true;
  }
  return enqueue(std::move(requests));
}

Completion ModelClient::complete(const std::string& prompt,
                                 const GenerationParams& params) {
  return submit(prompt, params).get();
}

std::vector<Completion> ModelClient::complete_many(
    const std::vector<std::string>& prompts, const GenerationParams& params) {
  if (prompts.empty()) return {};
  const auto futures = submit_many(prompts, params);
  std::vector<Completion> completions;
  completions.reserve(futures.size());
  for (const CompletionFuture& future : futures) {
    completions.push_back(future.get());
  }
  return completions;
}

ClientStats ModelClient::stats() const {
  ClientStats snapshot;
  {
    std::lock_guard lock(mutex_);
    snapshot = stats_;
  }
  snapshot.pending_high_water =
      pending_high_water_.load(std::memory_order_relaxed);
  return snapshot;
}

std::size_t ModelClient::queue_depth() const {
  std::lock_guard lock(mutex_);
  return static_cast<std::size_t>(next_ticket_ - serving_);
}

std::size_t ModelClient::pending_depth() const {
  std::lock_guard lock(batch_mutex_);
  return pending_.size();
}

std::vector<Transcript> ModelClient::transcripts() const {
  std::lock_guard lock(mutex_);
  return std::vector<Transcript>(transcripts_.begin(), transcripts_.end());
}

}  // namespace llm4vv::llm
