#include "llm/client.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"

namespace llm4vv::llm {

namespace {

/// Only requests with identical sampling parameters may share a forward
/// pass (generate_batch takes a single params set). The retry ordinal
/// (`attempt`) is deliberately NOT part of the identity: it is an
/// internal annotation of the retry layer, never a sampling knob.
bool params_equal(const GenerationParams& a,
                  const GenerationParams& b) noexcept {
  return a.max_tokens == b.max_tokens && a.temperature == b.temperature &&
         a.seed == b.seed;
}

void fail_state(const std::shared_ptr<detail::CompletionState>& state,
                const std::exception_ptr& error) {
  {
    support::MutexLock lock(state->mutex);
    state->error = error;
    state->done = true;
  }
  state->cv.notify_all();
}

/// Rebuild a failure as a ModelError carrying the attempt count the retry
/// layer actually spent, preserving the original kind and message.
std::exception_ptr wrap_failure(FailureKind kind, const std::string& what,
                                std::uint32_t attempts) {
  switch (kind) {
    case FailureKind::kTransient:
      return std::make_exception_ptr(TransientModelError(what, attempts));
    case FailureKind::kPermanent:
      return std::make_exception_ptr(PermanentModelError(what, attempts));
    case FailureKind::kTimeout:
      return std::make_exception_ptr(RequestTimeoutError(what, attempts));
    case FailureKind::kBreaker:
      return std::make_exception_ptr(CircuitOpenError(what, attempts));
    case FailureKind::kShutdown:
      return std::make_exception_ptr(ClientShutdownError(what, attempts));
    case FailureKind::kOverflow:
      return std::make_exception_ptr(QueueOverflowError(what));
    case FailureKind::kOther: break;
  }
  return std::make_exception_ptr(ModelError(FailureKind::kOther, what,
                                            attempts));
}

std::uint64_t micros_since(std::uint64_t start_us) {
  const std::uint64_t now = support::now_us();
  return now >= start_us ? now - start_us : 0;
}

}  // namespace

/// Per-request result of one flush's resilient resolution.
struct ModelClient::FlushOutcome {
  Completion value;
  std::exception_ptr error;       ///< null = success
  FailureKind kind = FailureKind::kOther;
  std::uint32_t attempts = 0;     ///< forward passes spent on this request
  std::size_t pass_size = 0;      ///< size of the pass that served it
  std::uint64_t resolve_us = 0;   ///< flush start -> resolution, wall time
};

/// Counter deltas one flush accumulates for the stats merge.
struct ModelClient::FlushTally {
  std::uint64_t splits = 0;
  std::uint64_t breaker_rejected = 0;
};

// ---------------------------------------------------------------------------
// ClientStats
// ---------------------------------------------------------------------------

std::size_t ClientStats::occupancy_bucket(std::size_t batch) noexcept {
  if (batch <= 1) return 0;
  if (batch == 2) return 1;
  if (batch <= 4) return 2;
  if (batch <= 8) return 3;
  if (batch <= 16) return 4;
  if (batch <= 32) return 5;
  return 6;
}

const char* ClientStats::occupancy_bucket_label(std::size_t bucket) noexcept {
  switch (bucket) {
    case 0: return "1";
    case 1: return "2";
    case 2: return "3-4";
    case 3: return "5-8";
    case 4: return "9-16";
    case 5: return "17-32";
    case 6: return "33+";
  }
  return "?";
}

std::size_t ClientStats::retry_latency_bucket(std::uint64_t micros) noexcept {
  if (micros < 100) return 0;
  if (micros < 1000) return 1;
  if (micros < 10000) return 2;
  if (micros < 100000) return 3;
  if (micros < 1000000) return 4;
  return 5;
}

const char* ClientStats::retry_latency_bucket_label(
    std::size_t bucket) noexcept {
  switch (bucket) {
    case 0: return "<100us";
    case 1: return "<1ms";
    case 2: return "<10ms";
    case 3: return "<100ms";
    case 4: return "<1s";
    case 5: return ">=1s";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// CompletionFuture
// ---------------------------------------------------------------------------

bool CompletionFuture::ready() const {
  if (state_ == nullptr) return false;
  support::MutexLock lock(state_->mutex);
  return state_->done;
}

void CompletionFuture::wait() const {
  if (state_ == nullptr) {
    throw std::logic_error("CompletionFuture::wait on an empty future");
  }
  support::UniqueLock lock(state_->mutex);
  while (!state_->done) state_->cv.wait(lock);
}

Completion CompletionFuture::get() const {
  wait();
  support::MutexLock lock(state_->mutex);
  if (state_->error != nullptr) std::rethrow_exception(state_->error);
  return state_->value;
}

bool CompletionFuture::failed() const {
  wait();
  support::MutexLock lock(state_->mutex);
  return state_->error != nullptr;
}

std::exception_ptr CompletionFuture::error() const {
  if (state_ == nullptr) return nullptr;
  support::MutexLock lock(state_->mutex);
  return state_->done ? state_->error : nullptr;
}

std::size_t CompletionFuture::flush_size() const {
  if (state_ == nullptr) return 0;
  support::MutexLock lock(state_->mutex);
  return state_->flush_size;
}

// ---------------------------------------------------------------------------
// ModelClient
// ---------------------------------------------------------------------------

ModelClient::ModelClient(std::shared_ptr<const LanguageModel> model,
                         std::size_t max_concurrency,
                         std::size_t transcript_capacity,
                         BatcherConfig batcher, RetryPolicy retry,
                         CircuitBreakerConfig breaker)
    : model_(std::move(model)),
      max_concurrency_(max_concurrency == 0 ? 1 : max_concurrency),
      transcript_capacity_(transcript_capacity),
      batcher_(batcher),
      retry_(retry),
      breaker_config_(breaker) {
  if (model_ == nullptr) {
    throw std::invalid_argument("ModelClient: model must not be null");
  }
  if (batcher_.window_us > 0) {
    flusher_ = std::thread([this] { flusher_main(); });
  }
}

ModelClient::~ModelClient() {
  std::deque<PendingRequest> orphans;
  {
    support::UniqueLock lock(batch_mutex_);
    shutting_down_ = true;
    orphans.swap(pending_);
    // One broadcast wakes everyone parked on the batcher: the window
    // flusher, blocked-overflow submitters, and — the S1 fix — flushes
    // sleeping out a retry backoff, which observe shutting_down_ and
    // CANCEL their remaining attempts instead of running them against a
    // dying client.
    batch_cv_.notify_all();
    room_cv_.notify_all();
    // Wait out flushes running on caller threads: they hold references to
    // the model, the slot state, and the stats, none of which may die
    // under them. Bounded: backoffs were just cancelled, so each flush
    // finishes after at most its current forward pass.
    while (active_flushes_ != 0) flush_done_.wait(lock);
  }
  if (flusher_.joinable()) flusher_.join();
  if (!orphans.empty()) {
    const auto error = std::make_exception_ptr(ClientShutdownError(
        "ModelClient destroyed with " + std::to_string(orphans.size()) +
        " unresolved submission(s)"));
    for (const PendingRequest& request : orphans) {
      fail_state(request.state, error);
    }
  }
}

ModelClient::SlotLease::~SlotLease() {
  {
    support::MutexLock lock(client.mutex_);
    client.in_flight_ -= slots;
  }
  // notify_all, not notify_one: wide flushes need several slots free at
  // once, and a single wake delivered to such a waiter whose predicate is
  // still false would be consumed without releasing anyone — stranding a
  // single-slot waiter that could have run.
  client.slot_free_.notify_all();
}

void ModelClient::acquire_slots(std::size_t slots) {
  support::UniqueLock lock(mutex_);
  const std::uint64_t ticket = next_ticket_++;
  while (!(serving_ == ticket && in_flight_ + slots <= max_concurrency_)) {
    slot_free_.wait(lock);
  }
  ++serving_;
  in_flight_ += slots;
  lock.unlock();
  // The next ticket holder may already fit in the remaining slots; the
  // broadcast lets it (and only it — the predicate orders everyone else)
  // proceed without waiting for a release.
  slot_free_.notify_all();
}

std::size_t ModelClient::head_run_locked() const {
  std::size_t run = 0;
  for (const PendingRequest& request : pending_) {
    if (!params_equal(request.params, pending_.front().params)) break;
    ++run;
    if (batcher_.max_batch > 0 && run >= batcher_.max_batch) break;
  }
  return run;
}

std::vector<ModelClient::PendingRequest> ModelClient::collect_group_locked() {
  std::vector<PendingRequest> group;
  if (pending_.empty()) return group;
  const std::size_t cap =
      batcher_.max_batch == 0 ? pending_.size() : batcher_.max_batch;
  group.reserve(std::min(cap, pending_.size()));
  const GenerationParams head_params = pending_.front().params;
  while (!pending_.empty() && group.size() < cap &&
         params_equal(pending_.front().params, head_params)) {
    group.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  // The queue just shrank: blocked-overflow submitters may fit now.
  if (batcher_.max_pending > 0 &&
      batcher_.overflow == OverflowPolicy::kBlock) {
    room_cv_.notify_all();
  }
  return group;
}

bool ModelClient::breaker_admit() {
  if (!breaker_config_.enabled) return true;
  support::MutexLock lock(breaker_mutex_);
  switch (breaker_state_) {
    case BreakerState::kClosed: return true;
    case BreakerState::kOpen: {
      const auto cooldown =
          std::chrono::microseconds(breaker_config_.cooldown_us);
      if (std::chrono::steady_clock::now() - breaker_opened_at_ < cooldown) {
        return false;
      }
      // Cooldown elapsed: this pass becomes the half-open probe.
      breaker_state_ = BreakerState::kHalfOpen;
      breaker_probing_ = true;
      return true;
    }
    case BreakerState::kHalfOpen:
      // One probe at a time; everyone else keeps failing fast until the
      // probe's verdict is in.
      if (breaker_probing_) return false;
      breaker_probing_ = true;
      return true;
  }
  return true;
}

void ModelClient::breaker_record(bool success) {
  if (!breaker_config_.enabled) return;
  support::MutexLock lock(breaker_mutex_);
  if (breaker_state_ == BreakerState::kHalfOpen) {
    breaker_probing_ = false;
    if (success) {
      // Probe succeeded: close and start from a clean window.
      breaker_state_ = BreakerState::kClosed;
      breaker_window_.clear();
      breaker_failures_ = 0;
    } else {
      breaker_state_ = BreakerState::kOpen;
      breaker_opened_at_ = std::chrono::steady_clock::now();
      breaker_opens_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  if (breaker_state_ == BreakerState::kOpen) return;  // late stragglers
  breaker_window_.push_back(success);
  if (!success) ++breaker_failures_;
  while (breaker_window_.size() > std::max<std::size_t>(
                                      1, breaker_config_.window)) {
    if (!breaker_window_.front()) --breaker_failures_;
    breaker_window_.pop_front();
  }
  if (breaker_window_.size() >= breaker_config_.min_samples &&
      static_cast<double>(breaker_failures_) >=
          breaker_config_.open_failure_rate *
              static_cast<double>(breaker_window_.size())) {
    breaker_state_ = BreakerState::kOpen;
    breaker_opened_at_ = std::chrono::steady_clock::now();
    breaker_opens_.fetch_add(1, std::memory_order_relaxed);
    breaker_window_.clear();
    breaker_failures_ = 0;
  }
}

BreakerState ModelClient::breaker_state() const {
  support::MutexLock lock(breaker_mutex_);
  return breaker_state_;
}

bool ModelClient::backoff_wait(std::uint32_t retry, const std::string& prompt,
                               std::chrono::steady_clock::time_point deadline,
                               bool has_deadline) {
  double backoff = static_cast<double>(retry_.base_backoff_us);
  for (std::uint32_t k = 1; k < retry; ++k) {
    backoff *= retry_.backoff_multiplier;
  }
  backoff = std::min(backoff, static_cast<double>(retry_.max_backoff_us));
  std::uint64_t wait_us = static_cast<std::uint64_t>(backoff);
  if (retry_.jitter_us > 0) {
    // Deterministic jitter: reproducible for a given (prompt, attempt,
    // seed), different across requests so synchronized retry storms
    // de-correlate.
    support::Rng rng(support::hash_mix(
        support::hash_mix(support::fnv1a64(prompt), retry),
        retry_.jitter_seed));
    wait_us += rng.next_below(retry_.jitter_us + 1);
  }
  auto until = std::chrono::steady_clock::now() +
               std::chrono::microseconds(wait_us);
  // Never sleep past the request's deadline: wake at the deadline and let
  // the caller's boundary check convert the expiry into a timeout.
  if (has_deadline && deadline < until) until = deadline;
  support::UniqueLock lock(batch_mutex_);
  while (!shutting_down_) {
    if (batch_cv_.wait_until(lock, until) == std::cv_status::timeout) break;
  }
  return !shutting_down_;
}

void ModelClient::resolve_requests(
    std::vector<PendingRequest>& group, std::vector<std::size_t> indices,
    std::uint32_t attempt, std::uint64_t flush_start_us,
    std::vector<FlushOutcome>& outcomes, FlushTally& tally) {
  const std::uint32_t max_attempts = std::max<std::uint32_t>(
      1, retry_.max_attempts);
  const bool has_deadline = retry_.deadline_us > 0;
  const auto fail_indices = [&](const std::vector<std::size_t>& failed,
                                FailureKind kind, const std::string& what,
                                std::uint32_t attempts) {
    const std::uint64_t now_us = micros_since(flush_start_us);
    for (const std::size_t idx : failed) {
      FlushOutcome& out = outcomes[idx];
      out.error = wrap_failure(kind, what, attempts);
      out.kind = kind;
      out.attempts = attempts;
      out.resolve_us = now_us;
    }
  };

  for (;;) {
    // Deadline check at the attempt boundary. Deadlines are per request
    // and measured from enqueue time, so a group member that queued
    // longer can expire while its pass-mates fight on.
    if (has_deadline) {
      const auto now = std::chrono::steady_clock::now();
      const auto budget = std::chrono::microseconds(retry_.deadline_us);
      std::vector<std::size_t> live;
      live.reserve(indices.size());
      std::vector<std::size_t> expired;
      for (const std::size_t idx : indices) {
        if (now >= group[idx].enqueued + budget) {
          expired.push_back(idx);
        } else {
          live.push_back(idx);
        }
      }
      if (!expired.empty()) {
        fail_indices(expired, FailureKind::kTimeout,
                     "ModelClient: request deadline expired after " +
                         std::to_string(attempt) + " attempt(s)",
                     attempt);
      }
      indices.swap(live);
      if (indices.empty()) return;
    }

    // Attempts beyond a request group's first record client.retry spans
    // (the span ends when this attempt's outcome is known — on success the
    // return below closes it over the whole pass).
    obs::ObsSpan retry_span;
    if (tracer_ != nullptr && attempt > 0) {
      retry_span = obs::ObsSpan(tracer_.get(), obs::SpanKind::kRetry, 0);
      retry_span.set_arg(static_cast<std::int64_t>(attempt) + 1);
    }

    FailureKind kind = FailureKind::kOther;
    std::string what;
    if (!breaker_admit()) {
      tally.breaker_rejected += indices.size();
      kind = FailureKind::kBreaker;
      what = "ModelClient: circuit breaker open";
    } else {
      try {
        std::vector<std::string> prompts;
        prompts.reserve(indices.size());
        for (const std::size_t idx : indices) {
          prompts.push_back(group[idx].prompt);
        }
        GenerationParams params = group[indices.front()].params;
        params.attempt = attempt;
        std::vector<Completion> completions =
            model_->generate_batch(prompts, params);
        if (completions.size() != prompts.size()) {
          throw std::logic_error(
              "ModelClient: generate_batch returned a mismatched "
              "completion count");
        }
        breaker_record(true);
        const std::uint64_t now_us = micros_since(flush_start_us);
        for (std::size_t i = 0; i < indices.size(); ++i) {
          FlushOutcome& out = outcomes[indices[i]];
          out.value = std::move(completions[i]);
          out.value.attempts = attempt + 1;
          out.attempts = attempt + 1;
          out.pass_size = indices.size();
          out.resolve_us = now_us;
        }
        return;
      } catch (const ModelError& e) {
        breaker_record(false);
        kind = e.kind();
        what = e.what();
      } catch (const std::exception& e) {
        breaker_record(false);
        kind = FailureKind::kOther;
        what = e.what();
      } catch (...) {
        breaker_record(false);
        kind = FailureKind::kOther;
        what = "ModelClient: unknown model failure";
      }
    }

    retry_span.end();

    const std::uint32_t attempts_used = attempt + 1;
    if (!retryable(kind) || attempts_used >= max_attempts) {
      fail_indices(indices, kind, what, attempts_used);
      return;
    }
    // Back off before the next attempt (once per consecutive-attempt
    // pair; split children skip straight to their pass). Interruptible:
    // a client shutting down cancels the retry instead of awaiting it.
    obs::ObsSpan backoff_span;
    if (tracer_ != nullptr) {
      backoff_span = obs::ObsSpan(tracer_.get(), obs::SpanKind::kBackoff, 0);
      backoff_span.set_arg(static_cast<std::int64_t>(attempts_used));
    }
    const bool survived =
        backoff_wait(attempts_used, group[indices.front()].prompt,
                     group[indices.front()].enqueued +
                         std::chrono::microseconds(retry_.deadline_us),
                     has_deadline);
    backoff_span.end();
    if (!survived) {
      fail_indices(indices, FailureKind::kShutdown,
                   "ModelClient: shutdown cancelled a retry in backoff",
                   attempts_used);
      return;
    }
    if (indices.size() > 1) {
      // Failed-batch splitting: one poisoned request must not re-fail its
      // healthy pass-mates, and each request's remaining attempt budget
      // is its own. Singletons can't split further, so recursion depth
      // is at most one.
      ++tally.splits;
      for (const std::size_t idx : indices) {
        resolve_requests(group, {idx}, attempt + 1, flush_start_us, outcomes,
                         tally);
      }
      return;
    }
    ++attempt;
  }
}

void ModelClient::execute_flush(std::vector<PendingRequest>& group,
                                FlushReason reason) {
  if (group.empty()) return;
  bool batch_origin = group.size() >= 2;
  for (const PendingRequest& request : group) {
    batch_origin = batch_origin || request.batch_origin;
  }

  // The flush formed — count it (reason + occupancy at the formed size)
  // regardless of how resolution goes; retried/split passes below are
  // extra attempts of this same flush, not new formed batches, so the
  // occupancy histogram keeps summing to formed_batches.
  {
    support::MutexLock lock(mutex_);
    ++stats_.formed_batches;
    switch (reason) {
      case FlushReason::kImmediate: ++stats_.flush_immediate; break;
      case FlushReason::kFull: ++stats_.flush_full; break;
      case FlushReason::kWindow: ++stats_.flush_window; break;
    }
    ++stats_.occupancy_hist[ClientStats::occupancy_bucket(group.size())];
  }

  const std::uint64_t flush_start_us = support::now_us();
  std::vector<FlushOutcome> outcomes(group.size());
  FlushTally tally;
  {
    // One model replica serves the whole pass, but the pass keeps up to
    // max_concurrency streams busy; clamping keeps oversized batches from
    // waiting for more slots than exist. The FIFO ticket inside
    // acquire_slots guarantees the multi-slot wait is bounded: single-slot
    // flushes arriving later queue behind this one instead of re-consuming
    // every released slot. Retries and splits run inside the same lease —
    // a flush's slots are held until its last request resolves.
    const std::size_t slots = std::min(group.size(), max_concurrency_);
    acquire_slots(slots);
    SlotLease lease{*this, slots};
    std::vector<std::size_t> all(group.size());
    std::iota(all.begin(), all.end(), std::size_t{0});
    resolve_requests(group, std::move(all), 0, flush_start_us, outcomes,
                     tally);
  }

  {
    support::MutexLock lock(mutex_);
    stats_.batch_splits += tally.splits;
    stats_.breaker_rejected += tally.breaker_rejected;
    std::size_t served = 0;
    for (std::size_t i = 0; i < group.size(); ++i) {
      const FlushOutcome& out = outcomes[i];
      if (out.attempts > 1) {
        stats_.retries += out.attempts - 1;
        ++stats_.retry_latency_hist[ClientStats::retry_latency_bucket(
            out.resolve_us)];
      }
      if (out.error != nullptr) {
        ++stats_.failed_requests;
        if (out.kind == FailureKind::kTimeout) ++stats_.timeouts;
        continue;
      }
      ++served;
      ++stats_.requests;
      stats_.prompt_tokens += out.value.prompt_tokens;
      stats_.completion_tokens += out.value.completion_tokens;
      stats_.gpu_seconds += out.value.latency_seconds;
      if (transcript_capacity_ > 0) {
        transcripts_.push_back(Transcript{group[i].prompt, out.value});
        while (transcripts_.size() > transcript_capacity_) {
          transcripts_.pop_front();
        }
      }
    }
    if (batch_origin && served > 0) {
      ++stats_.batches;
      stats_.batched_prompts += served;
      stats_.max_batch =
          std::max<std::uint64_t>(stats_.max_batch, group.size());
    }
  }

  // One client.flush span per formed batch. Its span id doubles as the
  // flow id the served completions carry home (Completion::trace_flow), so
  // the exporter can draw batch-to-request arrows.
  std::uint64_t flow = 0;
  if (tracer_ != nullptr) {
    double gpu_seconds = 0.0;
    for (const FlushOutcome& out : outcomes) {
      if (out.error == nullptr) gpu_seconds += out.value.latency_seconds;
    }
    obs::ObsSpan flush_span(tracer_.get(), obs::SpanKind::kFlush, 0);
    flush_span.set_start_us(flush_start_us);
    flush_span.set_arg(static_cast<std::int64_t>(group.size()));
    flush_span.set_gpu_seconds(gpu_seconds);
    flow = flush_span.id();
    flush_span.set_flow(flow);
    flush_span.end();
  }

  for (std::size_t i = 0; i < group.size(); ++i) {
    const auto& state = group[i].state;
    FlushOutcome& out = outcomes[i];
    if (out.error != nullptr) {
      fail_state(state, out.error);
      continue;
    }
    {
      support::MutexLock lock(state->mutex);
      state->value = std::move(out.value);
      state->value.trace_flow = flow;
      state->flush_size = out.pass_size;
      state->done = true;
    }
    state->cv.notify_all();
  }
}

std::vector<CompletionFuture> ModelClient::enqueue(
    std::vector<PendingRequest> requests) {
  std::vector<CompletionFuture> futures;
  futures.reserve(requests.size());
  for (const PendingRequest& request : requests) {
    futures.push_back(CompletionFuture(request.state));
  }

  std::vector<std::vector<PendingRequest>> flushes;
  FlushReason reason = FlushReason::kImmediate;
  {
    support::UniqueLock lock(batch_mutex_);
    if (shutting_down_) {
      const auto error = std::make_exception_ptr(ClientShutdownError(
          "ModelClient: submit during shutdown"));
      for (const PendingRequest& request : requests) {
        fail_state(request.state, error);
      }
      return futures;
    }
    // Bounded pending queue (S2). kShed fails the overflowing tail now.
    // kBlock parks this submitter until the window flusher (or a filling
    // caller) drains the queue below the bound; it needs that external
    // drainer, so it only engages when window_us > 0 — an immediate-flush
    // batcher never leaves anything pending, and blocking for room there
    // could only wait on itself.
    std::size_t admit = requests.size();
    bool pushed = false;
    if (batcher_.max_pending > 0) {
      if (batcher_.overflow == OverflowPolicy::kShed) {
        const std::size_t room = batcher_.max_pending > pending_.size()
                                     ? batcher_.max_pending - pending_.size()
                                     : 0;
        if (admit > room) {
          const auto error = std::make_exception_ptr(QueueOverflowError(
              "ModelClient: pending queue full (max_pending " +
              std::to_string(batcher_.max_pending) + "), request shed"));
          for (std::size_t i = room; i < requests.size(); ++i) {
            fail_state(requests[i].state, error);
          }
          pending_shed_.fetch_add(admit - room, std::memory_order_relaxed);
          admit = room;
        }
      } else if (batcher_.window_us > 0) {
        pushed = true;
        for (std::size_t i = 0; i < requests.size(); ++i) {
          while (!(shutting_down_ ||
                   pending_.size() < batcher_.max_pending)) {
            room_cv_.wait(lock);
          }
          if (shutting_down_) {
            const auto error = std::make_exception_ptr(ClientShutdownError(
                "ModelClient: submit during shutdown"));
            for (std::size_t j = i; j < requests.size(); ++j) {
              fail_state(requests[j].state, error);
            }
            break;
          }
          requests[i].enqueued = std::chrono::steady_clock::now();
          pending_.push_back(std::move(requests[i]));
          // Wake the window flusher per push: this submitter may park on
          // room_cv_ before reaching the post-loop notify, and the flusher
          // is the drainer it is waiting for.
          batch_cv_.notify_all();
        }
      }
    }
    if (!pushed) {
      const auto now = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < admit; ++i) {
        requests[i].enqueued = now;
        pending_.push_back(std::move(requests[i]));
      }
    }
    std::size_t high = pending_high_water_.load(std::memory_order_relaxed);
    while (pending_.size() > high &&
           !pending_high_water_.compare_exchange_weak(
               high, pending_.size(), std::memory_order_relaxed)) {
    }
    if (batcher_.window_us == 0) {
      // Paper mode: this submission flushes now, in its entirety. The
      // enqueue + collect runs under one lock acquisition, so nothing from
      // a concurrent caller can ever ride along (sequential pricing stays
      // bit-exact) and nothing is ever left pending.
      reason = FlushReason::kImmediate;
      while (!pending_.empty()) flushes.push_back(collect_group_locked());
    } else {
      reason = FlushReason::kFull;
      // "Full" means the *head equal-params run* reached max_batch — only
      // requests that can actually share the pass count toward fullness.
      // A short head run of other params is never flushed early on the
      // strength of requests queued behind it (FIFO head-of-line: it
      // waits for its own window or for same-params arrivals); so every
      // kFull flush really carries max_batch prompts.
      while (batcher_.max_batch > 0 &&
             head_run_locked() >= batcher_.max_batch) {
        flushes.push_back(collect_group_locked());
      }
      // Whatever remains waits for more arrivals or the window; (re)arm
      // the flusher on the new oldest pending request.
      if (!pending_.empty()) batch_cv_.notify_all();
    }
    active_flushes_ += flushes.size();
  }

  for (auto& group : flushes) {
    execute_flush(group, reason);
    {
      support::MutexLock lock(batch_mutex_);
      --active_flushes_;
      // Broadcast UNDER the lock, deliberately: the destructor's drain
      // loop wakes on this decrement, and with the broadcast outside the
      // critical section it could observe active_flushes_ == 0 (via its
      // own lock acquisition racing ahead), destroy the client, and free
      // this condition variable while the broadcast was still touching
      // it. Under the lock, the destructor cannot re-acquire until the
      // broadcast has fully left the condvar. Caught by TSan; pinned by
      // AsyncShutdownTest.InFlightFlushDrainsBeforeDestruction and
      // InlineFlushNotifyCannotOutliveClient.
      flush_done_.notify_all();
    }
  }
  return futures;
}

void ModelClient::flusher_main() {
  const auto window = std::chrono::microseconds(batcher_.window_us);
  support::UniqueLock lock(batch_mutex_);
  for (;;) {
    while (!(shutting_down_ || !pending_.empty())) batch_cv_.wait(lock);
    if (shutting_down_) return;
    // Sleep until the oldest pending request's window expires; arrivals
    // and shutdown re-wake us (a full-triggered flush may also empty the
    // queue while we sleep — re-check everything on every wake).
    while (!shutting_down_ && !pending_.empty()) {
      const auto deadline = pending_.front().enqueued + window;
      if (std::chrono::steady_clock::now() >= deadline) break;
      batch_cv_.wait_until(lock, deadline);
    }
    if (shutting_down_) return;
    if (pending_.empty()) continue;
    std::vector<PendingRequest> group = collect_group_locked();
    ++active_flushes_;
    lock.unlock();
    execute_flush(group, FlushReason::kWindow);
    lock.lock();
    --active_flushes_;
    flush_done_.notify_all();
  }
}

CompletionFuture ModelClient::submit(const std::string& prompt,
                                     const GenerationParams& params) {
  std::vector<PendingRequest> requests(1);
  requests[0].prompt = prompt;
  requests[0].params = params;
  requests[0].state = std::make_shared<detail::CompletionState>();
  return enqueue(std::move(requests))[0];
}

std::vector<CompletionFuture> ModelClient::submit_many(
    const std::vector<std::string>& prompts, const GenerationParams& params) {
  if (prompts.empty()) return {};
  std::vector<PendingRequest> requests(prompts.size());
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    requests[i].prompt = prompts[i];
    requests[i].params = params;
    requests[i].state = std::make_shared<detail::CompletionState>();
    requests[i].batch_origin = true;
  }
  return enqueue(std::move(requests));
}

Completion ModelClient::complete(const std::string& prompt,
                                 const GenerationParams& params) {
  return submit(prompt, params).get();
}

std::vector<Completion> ModelClient::complete_many(
    const std::vector<std::string>& prompts, const GenerationParams& params) {
  if (prompts.empty()) return {};
  const auto futures = submit_many(prompts, params);
  std::vector<Completion> completions;
  completions.reserve(futures.size());
  for (const CompletionFuture& future : futures) {
    completions.push_back(future.get());
  }
  return completions;
}

ClientStats ModelClient::stats() const {
  ClientStats snapshot;
  {
    support::MutexLock lock(mutex_);
    snapshot = stats_;
  }
  snapshot.pending_high_water =
      pending_high_water_.load(std::memory_order_relaxed);
  snapshot.pending_shed = pending_shed_.load(std::memory_order_relaxed);
  snapshot.breaker_opens = breaker_opens_.load(std::memory_order_relaxed);
  return snapshot;
}

std::size_t ModelClient::queue_depth() const {
  support::MutexLock lock(mutex_);
  return static_cast<std::size_t>(next_ticket_ - serving_);
}

std::size_t ModelClient::pending_depth() const {
  support::MutexLock lock(batch_mutex_);
  return pending_.size();
}

std::vector<Transcript> ModelClient::transcripts() const {
  support::MutexLock lock(mutex_);
  return std::vector<Transcript>(transcripts_.begin(), transcripts_.end());
}

void ModelClient::register_metrics(obs::Registry& registry,
                                   const std::string& prefix) const {
  // Every probe snapshots stats() at scrape time: the registry reads the
  // same locked copy the legacy accessors hand out, so the two can never
  // drift (asserted by tests/obs_consistency_test.cpp). Scrapes are cold
  // path; the per-field stats() calls are deliberate simplicity.
  const auto probe = [&registry, this, &prefix](
                         const char* name, auto field) {
    registry.register_probe(prefix + "." + name, [this, field] {
      return static_cast<double>(field(stats()));
    });
  };
  probe("requests", [](const ClientStats& s) { return s.requests; });
  probe("prompt_tokens",
        [](const ClientStats& s) { return s.prompt_tokens; });
  probe("completion_tokens",
        [](const ClientStats& s) { return s.completion_tokens; });
  probe("gpu_seconds", [](const ClientStats& s) { return s.gpu_seconds; });
  probe("batches", [](const ClientStats& s) { return s.batches; });
  probe("batched_prompts",
        [](const ClientStats& s) { return s.batched_prompts; });
  probe("max_batch", [](const ClientStats& s) { return s.max_batch; });
  probe("formed_batches",
        [](const ClientStats& s) { return s.formed_batches; });
  probe("flush_immediate",
        [](const ClientStats& s) { return s.flush_immediate; });
  probe("flush_full", [](const ClientStats& s) { return s.flush_full; });
  probe("flush_window", [](const ClientStats& s) { return s.flush_window; });
  probe("pending_high_water",
        [](const ClientStats& s) { return s.pending_high_water; });
  probe("retries", [](const ClientStats& s) { return s.retries; });
  probe("failed_requests",
        [](const ClientStats& s) { return s.failed_requests; });
  probe("timeouts", [](const ClientStats& s) { return s.timeouts; });
  probe("pending_shed", [](const ClientStats& s) { return s.pending_shed; });
  probe("batch_splits", [](const ClientStats& s) { return s.batch_splits; });
  probe("breaker_opens",
        [](const ClientStats& s) { return s.breaker_opens; });
  probe("breaker_rejected",
        [](const ClientStats& s) { return s.breaker_rejected; });
  for (std::size_t i = 0; i < ClientStats::kOccupancyBuckets; ++i) {
    registry.register_probe(
        prefix + ".occupancy", ClientStats::occupancy_bucket_label(i),
        [this, i] { return static_cast<double>(stats().occupancy_hist[i]); });
  }
  for (std::size_t i = 0; i < ClientStats::kRetryLatencyBuckets; ++i) {
    registry.register_probe(
        prefix + ".retry_latency", ClientStats::retry_latency_bucket_label(i),
        [this, i] {
          return static_cast<double>(stats().retry_latency_hist[i]);
        });
  }
}

}  // namespace llm4vv::llm
