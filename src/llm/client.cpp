#include "llm/client.hpp"

#include <algorithm>
#include <stdexcept>

namespace llm4vv::llm {

ModelClient::ModelClient(std::shared_ptr<const LanguageModel> model,
                         std::size_t max_concurrency,
                         std::size_t transcript_capacity)
    : model_(std::move(model)),
      max_concurrency_(max_concurrency == 0 ? 1 : max_concurrency),
      transcript_capacity_(transcript_capacity) {
  if (model_ == nullptr) {
    throw std::invalid_argument("ModelClient: model must not be null");
  }
}

ModelClient::SlotLease::~SlotLease() {
  {
    std::lock_guard lock(client.mutex_);
    client.in_flight_ -= slots;
  }
  // notify_all, not notify_one: complete_many() waiters need several slots
  // free at once, and a single wake delivered to such a waiter whose
  // predicate is still false would be consumed without releasing anyone —
  // stranding a single-slot waiter that could have run.
  client.slot_free_.notify_all();
}

void ModelClient::acquire_slots(std::size_t slots) {
  std::unique_lock lock(mutex_);
  const std::uint64_t ticket = next_ticket_++;
  slot_free_.wait(lock, [this, ticket, slots] {
    return serving_ == ticket && in_flight_ + slots <= max_concurrency_;
  });
  ++serving_;
  in_flight_ += slots;
  lock.unlock();
  // The next ticket holder may already fit in the remaining slots; the
  // broadcast lets it (and only it — the predicate orders everyone else)
  // proceed without waiting for a release.
  slot_free_.notify_all();
}

Completion ModelClient::complete(const std::string& prompt,
                                 const GenerationParams& params) {
  acquire_slots(1);
  SlotLease lease{*this, 1};

  Completion completion = model_->generate(prompt, params);

  {
    std::lock_guard lock(mutex_);
    ++stats_.requests;
    stats_.prompt_tokens += completion.prompt_tokens;
    stats_.completion_tokens += completion.completion_tokens;
    stats_.gpu_seconds += completion.latency_seconds;
    if (transcript_capacity_ > 0) {
      transcripts_.push_back(Transcript{prompt, completion});
      while (transcripts_.size() > transcript_capacity_) {
        transcripts_.pop_front();
      }
    }
  }
  return completion;
}

std::vector<Completion> ModelClient::complete_many(
    const std::vector<std::string>& prompts, const GenerationParams& params) {
  if (prompts.empty()) return {};
  // One model replica serves the whole pass, but the pass keeps up to
  // max_concurrency streams busy; clamping keeps oversized batches from
  // waiting for more slots than exist. The FIFO ticket inside
  // acquire_slots guarantees the N-slot wait is bounded: single-slot
  // callers arriving later queue behind this batch instead of re-consuming
  // every released slot.
  const std::size_t slots = std::min(prompts.size(), max_concurrency_);
  acquire_slots(slots);
  SlotLease lease{*this, slots};

  std::vector<Completion> completions =
      model_->generate_batch(prompts, params);
  if (completions.size() != prompts.size()) {
    throw std::logic_error(
        "ModelClient: generate_batch returned a mismatched completion count");
  }

  {
    std::lock_guard lock(mutex_);
    stats_.requests += prompts.size();
    ++stats_.batches;
    stats_.batched_prompts += prompts.size();
    stats_.max_batch = std::max<std::uint64_t>(stats_.max_batch,
                                               prompts.size());
    for (std::size_t i = 0; i < completions.size(); ++i) {
      stats_.prompt_tokens += completions[i].prompt_tokens;
      stats_.completion_tokens += completions[i].completion_tokens;
      stats_.gpu_seconds += completions[i].latency_seconds;
      if (transcript_capacity_ > 0) {
        transcripts_.push_back(Transcript{prompts[i], completions[i]});
        while (transcripts_.size() > transcript_capacity_) {
          transcripts_.pop_front();
        }
      }
    }
  }
  return completions;
}

ClientStats ModelClient::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::size_t ModelClient::queue_depth() const {
  std::lock_guard lock(mutex_);
  return static_cast<std::size_t>(next_ticket_ - serving_);
}

std::vector<Transcript> ModelClient::transcripts() const {
  std::lock_guard lock(mutex_);
  return std::vector<Transcript>(transcripts_.begin(), transcripts_.end());
}

}  // namespace llm4vv::llm
