#pragma once

#include <cstdint>
#include <memory>

#include "llm/faults.hpp"
#include "llm/model.hpp"
#include "llm/perception.hpp"
#include "llm/profiles.hpp"

namespace llm4vv::llm {

/// Configuration of the simulated inference stack.
struct CoderModelConfig {
  /// Global seed mixed into every judgment draw; changing it re-rolls the
  /// model's stochastic behaviour while keeping per-file determinism.
  std::uint64_t seed = 0xD5C0DE2ULL;
  /// Latency model for one simulated A100 node serving a 33B coder model.
  double prefill_tokens_per_second = 2500.0;
  double decode_tokens_per_second = 30.0;
  /// Context window; longer prompts are (virtually) truncated for the
  /// latency model, matching how the real harness clipped long files.
  std::size_t context_window = 16384;
  /// Batched serving (generate_batch): one forward pass prefills every
  /// prompt of the batch together, so the weight-streaming cost that
  /// dominates single-stream prefill is paid once per pass. Only this
  /// fraction of the non-largest prompts' prefill time still shows up in
  /// the pass latency (1.0 disables the amortization, 0.0 makes the extra
  /// prompts' prefill free). Decode proceeds in lockstep across the batch,
  /// so a pass decodes for max(completion_tokens) steps regardless of
  /// batch size. A batch of one is priced exactly like generate().
  double batch_prefill_fraction = 0.35;
  /// Optional deterministic fault schedule (see llm/faults.hpp). Null (the
  /// default) injects nothing — the model is infallible, exactly as before
  /// the resilience layer existed. When set, every generate()/
  /// generate_batch() call consults the plan per prompt: transient and
  /// permanent faults throw TransientModelError/PermanentModelError, slow
  /// faults inflate the affected completion's simulated latency by
  /// slow_latency_factor. Fault draws never touch the judgment RNG, so
  /// completions that are served stay byte-identical to a fault-free run.
  std::shared_ptr<const FaultPlan> faults;
};

/// Behavioural simulator of deepseek-coder-33b-instruct as a V&V judge.
///
/// generate() is pure and thread-safe: it perceives the prompt (style,
/// flavor, embedded code, quoted tool outputs — see perception.hpp), draws
/// a verdict from the calibrated JudgeProfile for that condition, renders a
/// step-by-step analysis ending in the paper's exact
/// `FINAL JUDGEMENT: ...` protocol (with a small calibrated rate of
/// protocol violations), and prices the call with the A100 latency model.
///
/// Determinism: the judgment RNG is seeded with
/// hash(prompt) ^ config.seed ^ params.seed, so a given file under a given
/// prompt style always receives the same verdict within an experiment —
/// mirroring greedy/low-temperature decoding — while different experiment
/// seeds give fresh draws for error bars.
class SimulatedCoderModel final : public LanguageModel {
 public:
  explicit SimulatedCoderModel(CoderModelConfig config = {});

  std::string name() const override;

  Completion generate(const std::string& prompt,
                      const GenerationParams& params) const override;

  /// Batched completion: per-prompt text and token counts are byte-identical
  /// to generate(), but the pass is priced with the batched latency model
  /// (prefill amortized across the batch, lockstep decode) and that pass
  /// cost is attributed to the completions proportionally to their
  /// sequential cost, so summing latency_seconds over the batch gives the
  /// pass latency.
  std::vector<Completion> generate_batch(
      const std::vector<std::string>& prompts,
      const GenerationParams& params) const override;

  /// The probability this model would judge the perceived prompt invalid
  /// (exposed for calibration tests).
  double invalid_probability(const PromptPerception& perception) const;

 private:
  /// Deterministic completion text + token counts (latency left at zero).
  Completion render(const std::string& prompt,
                    const GenerationParams& params) const;
  /// Sequential latency of one completion: full prefill + own decode.
  double sequential_latency(const Completion& completion) const;
  /// The fault plan's decision for one prompt at params.attempt (kNone
  /// when no plan is configured).
  FaultKind fault_for(const std::string& prompt,
                      const GenerationParams& params) const;

  CoderModelConfig config_;
};

}  // namespace llm4vv::llm
