#pragma once

#include <cstdint>

#include "llm/model.hpp"
#include "llm/perception.hpp"
#include "llm/profiles.hpp"

namespace llm4vv::llm {

/// Configuration of the simulated inference stack.
struct CoderModelConfig {
  /// Global seed mixed into every judgment draw; changing it re-rolls the
  /// model's stochastic behaviour while keeping per-file determinism.
  std::uint64_t seed = 0xD5C0DE2ULL;
  /// Latency model for one simulated A100 node serving a 33B coder model.
  double prefill_tokens_per_second = 2500.0;
  double decode_tokens_per_second = 30.0;
  /// Context window; longer prompts are (virtually) truncated for the
  /// latency model, matching how the real harness clipped long files.
  std::size_t context_window = 16384;
};

/// Behavioural simulator of deepseek-coder-33b-instruct as a V&V judge.
///
/// generate() is pure and thread-safe: it perceives the prompt (style,
/// flavor, embedded code, quoted tool outputs — see perception.hpp), draws
/// a verdict from the calibrated JudgeProfile for that condition, renders a
/// step-by-step analysis ending in the paper's exact
/// `FINAL JUDGEMENT: ...` protocol (with a small calibrated rate of
/// protocol violations), and prices the call with the A100 latency model.
///
/// Determinism: the judgment RNG is seeded with
/// hash(prompt) ^ config.seed ^ params.seed, so a given file under a given
/// prompt style always receives the same verdict within an experiment —
/// mirroring greedy/low-temperature decoding — while different experiment
/// seeds give fresh draws for error bars.
class SimulatedCoderModel final : public LanguageModel {
 public:
  explicit SimulatedCoderModel(CoderModelConfig config = {});

  std::string name() const override;

  Completion generate(const std::string& prompt,
                      const GenerationParams& params) const override;

  /// The probability this model would judge the perceived prompt invalid
  /// (exposed for calibration tests).
  double invalid_probability(const PromptPerception& perception) const;

 private:
  CoderModelConfig config_;
};

}  // namespace llm4vv::llm
