#include "corpus/templates.hpp"

namespace llm4vv::corpus {

namespace {

using support::Rng;

std::string plain_series_sum(Rng& rng) {
  const long n = rng.next_in(50, 400);
  const long k = rng.next_in(2, 9);
  std::string s;
  s += "// Computes a weighted series sum iteratively.\n";
  s += "#include <stdio.h>\n\n";
  s += "int main() {\n";
  s += "  long total = 0;\n";
  s += "  for (int i = 1; i <= " + std::to_string(n) + "; i++) {\n";
  s += "    total = total + i * " + std::to_string(k) + ";\n";
  s += "  }\n";
  s += "  printf(\"series total: %ld\\n\", total);\n";
  s += "  return 0;\n";
  s += "}\n";
  return s;
}

std::string plain_fibonacci(Rng& rng) {
  const long n = rng.next_in(10, 40);
  std::string s;
  s += "// Iterative Fibonacci sequence up to a fixed index.\n";
  s += "#include <stdio.h>\n\n";
  s += "int main() {\n";
  s += "  long a = 0;\n";
  s += "  long b = 1;\n";
  s += "  for (int i = 0; i < " + std::to_string(n) + "; i++) {\n";
  s += "    long next = a + b;\n";
  s += "    a = b;\n";
  s += "    b = next;\n";
  s += "  }\n";
  s += "  printf(\"fib: %ld\\n\", a);\n";
  s += "  return 0;\n";
  s += "}\n";
  return s;
}

std::string plain_prime_count(Rng& rng) {
  const long n = rng.next_in(80, 300);
  std::string s;
  s += "// Counts primes below a bound by trial division.\n";
  s += "#include <stdio.h>\n\n";
  s += "int is_prime(long x) {\n";
  s += "  if (x < 2) {\n";
  s += "    return 0;\n";
  s += "  }\n";
  s += "  for (long d = 2; d * d <= x; d++) {\n";
  s += "    if (x % d == 0) {\n";
  s += "      return 0;\n";
  s += "    }\n";
  s += "  }\n";
  s += "  return 1;\n";
  s += "}\n\n";
  s += "int main() {\n";
  s += "  int count = 0;\n";
  s += "  for (long x = 2; x < " + std::to_string(n) + "; x++) {\n";
  s += "    if (is_prime(x)) {\n";
  s += "      count++;\n";
  s += "    }\n";
  s += "  }\n";
  s += "  printf(\"primes below %d: %d\\n\", " + std::to_string(n) +
       ", count);\n";
  s += "  return 0;\n";
  s += "}\n";
  return s;
}

std::string plain_array_reverse(Rng& rng) {
  const long n = rng.next_in(32, 128);
  std::string s;
  s += "// Reverses an array in place and verifies the result.\n";
  s += "#include <stdio.h>\n";
  s += "#include <stdlib.h>\n\n";
  s += "int main() {\n";
  s += "  int n = " + std::to_string(n) + ";\n";
  s += "  long *v = (long *)malloc(n * sizeof(long));\n";
  s += "  for (int i = 0; i < n; i++) {\n";
  s += "    v[i] = i * 2 + 1;\n";
  s += "  }\n";
  s += "  for (int i = 0; i < n / 2; i++) {\n";
  s += "    long tmp = v[i];\n";
  s += "    v[i] = v[n - 1 - i];\n";
  s += "    v[n - 1 - i] = tmp;\n";
  s += "  }\n";
  s += "  int bad = 0;\n";
  s += "  for (int i = 0; i < n; i++) {\n";
  s += "    if (v[i] != (n - 1 - i) * 2 + 1) {\n";
  s += "      bad++;\n";
  s += "    }\n";
  s += "  }\n";
  s += "  printf(\"reverse check: %d mismatches\\n\", bad);\n";
  s += "  free(v);\n";
  s += "  return 0;\n";
  s += "}\n";
  return s;
}

std::string plain_gcd_table(Rng& rng) {
  const long n = rng.next_in(10, 30);
  std::string s;
  s += "// Sums pairwise greatest common divisors over a small grid.\n";
  s += "#include <stdio.h>\n\n";
  s += "long gcd(long a, long b) {\n";
  s += "  while (b != 0) {\n";
  s += "    long t = a % b;\n";
  s += "    a = b;\n";
  s += "    b = t;\n";
  s += "  }\n";
  s += "  return a;\n";
  s += "}\n\n";
  s += "int main() {\n";
  s += "  long total = 0;\n";
  s += "  for (long i = 1; i <= " + std::to_string(n) + "; i++) {\n";
  s += "    for (long j = 1; j <= " + std::to_string(n) + "; j++) {\n";
  s += "      total = total + gcd(i, j);\n";
  s += "    }\n";
  s += "  }\n";
  s += "  printf(\"gcd grid total: %ld\\n\", total);\n";
  s += "  return 0;\n";
  s += "}\n";
  return s;
}

std::string plain_running_average(Rng& rng) {
  const long n = rng.next_in(64, 256);
  std::string s;
  s += "// Running average of a synthetic signal.\n";
  s += "#include <stdio.h>\n";
  s += "#include <math.h>\n\n";
  s += "int main() {\n";
  s += "  double mean = 0.0;\n";
  s += "  for (int i = 1; i <= " + std::to_string(n) + "; i++) {\n";
  s += "    double sample = (i % 23) * 0.5 + 1.0;\n";
  s += "    mean = mean + (sample - mean) / i;\n";
  s += "  }\n";
  s += "  printf(\"running mean: %f\\n\", mean);\n";
  s += "  return 0;\n";
  s += "}\n";
  return s;
}

}  // namespace

std::string generate_plain_code(support::Rng& rng) {
  switch (rng.next_below(6)) {
    case 0: return plain_series_sum(rng);
    case 1: return plain_fibonacci(rng);
    case 2: return plain_prime_count(rng);
    case 3: return plain_array_reverse(rng);
    case 4: return plain_gcd_table(rng);
    default: return plain_running_average(rng);
  }
}

}  // namespace llm4vv::corpus
