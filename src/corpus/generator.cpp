#include "corpus/generator.hpp"

#include <cstdio>
#include <stdexcept>

#include "corpus/templates.hpp"

namespace llm4vv::corpus {

namespace {

using frontend::Flavor;
using frontend::Language;

bool template_applies(const TestTemplate& tpl, Flavor flavor,
                      int max_version) {
  if (flavor == Flavor::kOpenACC) return tpl.supports_acc;
  return tpl.supports_omp && tpl.min_version_omp <= max_version;
}

std::string make_name(Flavor flavor, const std::string& template_name,
                      std::size_t index, Language language) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s_%s_%04zu%s",
                flavor == Flavor::kOpenACC ? "acc" : "omp",
                template_name.c_str(), index,
                frontend::language_extension(language));
  return buf;
}

}  // namespace

Suite generate_suite(const GeneratorConfig& config) {
  Suite suite;
  suite.flavor = config.flavor;
  support::Rng rng(config.seed);

  std::vector<const TestTemplate*> applicable;
  for (const auto& tpl : test_templates()) {
    if (template_applies(tpl, config.flavor, config.max_version)) {
      applicable.push_back(&tpl);
    }
  }
  if (applicable.empty()) {
    throw std::invalid_argument("generate_suite: no applicable templates");
  }

  suite.cases.reserve(config.count);
  for (std::size_t i = 0; i < config.count; ++i) {
    const TestTemplate* tpl =
        applicable[static_cast<std::size_t>(rng.next_below(
            applicable.size()))];

    Language language = Language::kC;
    if (config.flavor == Flavor::kOpenACC && tpl->supports_fortran &&
        rng.chance(config.fortran_share)) {
      language = Language::kFortran;
    } else if (rng.chance(config.cpp_share)) {
      language = Language::kCpp;
    }

    support::Rng case_rng = rng.fork();
    TemplateContext ctx{case_rng, language, config.flavor};
    TestCase test;
    test.file.name = make_name(config.flavor, tpl->name, i, language);
    test.file.language = language;
    test.file.flavor = config.flavor;
    test.file.content = tpl->generate(ctx);
    test.template_name = tpl->name;
    test.min_version =
        config.flavor == Flavor::kOpenMP ? tpl->min_version_omp : 0;
    suite.cases.push_back(std::move(test));
  }
  return suite;
}

TestCase generate_one(const std::string& template_name, Flavor flavor,
                      Language language, std::uint64_t seed) {
  for (const auto& tpl : test_templates()) {
    if (template_name != tpl.name) continue;
    support::Rng rng(seed);
    TemplateContext ctx{rng, language, flavor};
    TestCase test;
    test.file.name = make_name(flavor, tpl.name, 0, language);
    test.file.language = language;
    test.file.flavor = flavor;
    test.file.content = tpl.generate(ctx);
    test.template_name = tpl.name;
    test.min_version = flavor == Flavor::kOpenMP ? tpl.min_version_omp : 0;
    return test;
  }
  throw std::invalid_argument("generate_one: unknown template '" +
                              template_name + "'");
}

std::vector<std::string> template_names(Flavor flavor, int max_version) {
  std::vector<std::string> names;
  for (const auto& tpl : test_templates()) {
    if (template_applies(tpl, flavor, max_version)) {
      names.emplace_back(tpl.name);
    }
  }
  return names;
}

}  // namespace llm4vv::corpus
