#include "corpus/templates.hpp"

#include <array>
#include <cstdio>

#include "support/strings.hpp"

namespace llm4vv::corpus {

namespace {

using frontend::Flavor;
using frontend::Language;
using support::Rng;

/// Random parameters shared by most templates.
struct Params {
  int n = 128;
  std::string k1, k2;  ///< numeric coefficient literals like "2.5"
  std::string tol = "1e-10";
};

std::string lit(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

Params draw_params(Rng& rng) {
  static const std::array<int, 5> sizes = {64, 96, 128, 192, 256};
  Params p;
  p.n = sizes[static_cast<std::size_t>(rng.next_below(sizes.size()))];
  p.k1 = lit(0.25 * static_cast<double>(rng.next_in(2, 14)));
  p.k2 = lit(0.25 * static_cast<double>(rng.next_in(1, 9)));
  return p;
}

/// Standard file prologue: description comment, includes, problem size.
std::string prologue(const TemplateContext& ctx, const Params& p,
                     const std::string& description) {
  std::string s;
  s += "// " + description + "\n";
  s += "// Generated V&V-style functional test for " +
       std::string(frontend::flavor_name(ctx.flavor)) + ".\n";
  s += "#include <stdio.h>\n";
  s += "#include <stdlib.h>\n";
  s += "#include <math.h>\n";
  s += ctx.flavor == Flavor::kOpenACC ? "#include <openacc.h>\n"
                                      : "#include <omp.h>\n";
  s += "#define N " + std::to_string(p.n) + "\n\n";
  return s;
}

/// Declaration + separate heap allocation for a list of double* arrays.
/// Allocation statements are separate from the declarations on purpose:
/// negative probing's issue 0 ("removed memory allocation") deletes one of
/// these lines, which must leave a compilable file that fails at run time.
std::string alloc_arrays(const std::vector<std::string>& names) {
  std::string s;
  for (const auto& name : names) {
    s += "  double *" + name + ";\n";
  }
  for (const auto& name : names) {
    s += "  " + name + " = (double *)malloc(N * sizeof(double));\n";
  }
  return s;
}

/// Optionally adds a defensive workspace buffer the test never reads
/// (real V&V files carry this kind of slack). NULL-initialized so deleting
/// its allocation is *silent* — the observable share of issue-0 misses.
std::string maybe_scratch_alloc(Rng& rng) {
  if (!rng.chance(0.5)) return "";
  return "  double *workspace = NULL;\n"
         "  workspace = (double *)malloc(N * sizeof(double));\n";
}

std::string maybe_scratch_free(const std::string& alloc_text) {
  if (alloc_text.empty()) return "";
  return "  free(workspace);\n";
}

std::string free_arrays(const std::vector<std::string>& names) {
  std::string s;
  for (const auto& name : names) {
    s += "  free(" + name + ");\n";
  }
  return s;
}

/// The canonical check/report/exit epilogue of V&V tests.
std::string check_epilogue() {
  return
      "  if (err != 0) {\n"
      "    printf(\"Test FAILED with %d errors\\n\", err);\n"
      "  } else {\n"
      "    printf(\"Test PASSED\\n\");\n"
      "  }\n";
}

// ---------------------------------------------------------------------------
// Fortran bodies (OpenACC only; used when ctx.language == kFortran).
// ---------------------------------------------------------------------------

std::string fortran_saxpy(TemplateContext& ctx) {
  const Params p = draw_params(ctx.rng);
  std::string s;
  s += "! Combined parallel loop construct computing y = a*x + y\n";
  s += "! Generated V&V-style functional test for OpenACC (Fortran).\n";
  s += "program acc_saxpy_test\n";
  s += "  implicit none\n";
  s += "  integer, parameter :: n = " + std::to_string(p.n) + "\n";
  s += "  integer :: i, errs\n";
  s += "  real(8), allocatable :: x(:), y(:), expected(:)\n";
  s += "  real(8) :: a\n";
  s += "  allocate(x(n))\n";
  s += "  allocate(y(n))\n";
  s += "  allocate(expected(n))\n";
  s += "  a = " + p.k1 + "\n";
  s += "  errs = 0\n";
  s += "  do i = 1, n\n";
  s += "    x(i) = i * " + p.k2 + "\n";
  s += "    y(i) = i * 0.5\n";
  s += "    expected(i) = a * x(i) + y(i)\n";
  s += "  end do\n";
  s += "  !$acc parallel loop copyin(x(1:n)) copy(y(1:n))\n";
  s += "  do i = 1, n\n";
  s += "    y(i) = a * x(i) + y(i)\n";
  s += "  end do\n";
  s += "  do i = 1, n\n";
  s += "    if (abs(y(i) - expected(i)) > 1e-10) then\n";
  s += "      errs = errs + 1\n";
  s += "    end if\n";
  s += "  end do\n";
  s += "  if (errs /= 0) then\n";
  s += "    print *, 'Test FAILED with', errs, 'errors'\n";
  s += "  else\n";
  s += "    print *, 'Test PASSED'\n";
  s += "  end if\n";
  s += "  deallocate(x)\n";
  s += "  deallocate(y)\n";
  s += "  deallocate(expected)\n";
  s += "  call exit(errs)\n";
  s += "end program acc_saxpy_test\n";
  return s;
}

std::string fortran_reduction(TemplateContext& ctx) {
  const Params p = draw_params(ctx.rng);
  std::string s;
  s += "! Gang-level sum reduction on the device, checked on the host\n";
  s += "! Generated V&V-style functional test for OpenACC (Fortran).\n";
  s += "program acc_reduction_test\n";
  s += "  implicit none\n";
  s += "  integer, parameter :: n = " + std::to_string(p.n) + "\n";
  s += "  integer :: i, errs\n";
  s += "  real(8), allocatable :: a(:)\n";
  s += "  real(8) :: total, expected\n";
  s += "  allocate(a(n))\n";
  s += "  errs = 0\n";
  s += "  expected = 0.0\n";
  s += "  do i = 1, n\n";
  s += "    a(i) = i * " + p.k1 + "\n";
  s += "    expected = expected + a(i)\n";
  s += "  end do\n";
  s += "  total = 0.0\n";
  s += "  !$acc parallel loop reduction(+:total) copyin(a(1:n))\n";
  s += "  do i = 1, n\n";
  s += "    total = total + a(i)\n";
  s += "  end do\n";
  s += "  if (abs(total - expected) > 1e-6) then\n";
  s += "    errs = errs + 1\n";
  s += "  end if\n";
  s += "  if (errs /= 0) then\n";
  s += "    print *, 'Test FAILED'\n";
  s += "  else\n";
  s += "    print *, 'Test PASSED'\n";
  s += "  end if\n";
  s += "  deallocate(a)\n";
  s += "  call exit(errs)\n";
  s += "end program acc_reduction_test\n";
  return s;
}

std::string fortran_dot_product(TemplateContext& ctx) {
  const Params p = draw_params(ctx.rng);
  std::string s;
  s += "! Dot product via reduction with two input vectors\n";
  s += "! Generated V&V-style functional test for OpenACC (Fortran).\n";
  s += "program acc_dot_test\n";
  s += "  implicit none\n";
  s += "  integer, parameter :: n = " + std::to_string(p.n) + "\n";
  s += "  integer :: i, errs\n";
  s += "  real(8), allocatable :: x(:), y(:)\n";
  s += "  real(8) :: dot, expected\n";
  s += "  allocate(x(n))\n";
  s += "  allocate(y(n))\n";
  s += "  errs = 0\n";
  s += "  dot = 0.0\n";
  s += "  expected = 0.0\n";
  s += "  do i = 1, n\n";
  s += "    x(i) = mod(i, 11) * " + p.k1 + "\n";
  s += "    y(i) = mod(i, 7) * " + p.k2 + "\n";
  s += "    expected = expected + x(i) * y(i)\n";
  s += "  end do\n";
  s += "  !$acc parallel loop reduction(+:dot) copyin(x(1:n), y(1:n))\n";
  s += "  do i = 1, n\n";
  s += "    dot = dot + x(i) * y(i)\n";
  s += "  end do\n";
  s += "  if (abs(dot - expected) > 1e-6) then\n";
  s += "    errs = errs + 1\n";
  s += "  end if\n";
  s += "  if (errs /= 0) then\n";
  s += "    print *, 'Test FAILED'\n";
  s += "  else\n";
  s += "    print *, 'Test PASSED'\n";
  s += "  end if\n";
  s += "  deallocate(x)\n";
  s += "  deallocate(y)\n";
  s += "  call exit(errs)\n";
  s += "end program acc_dot_test\n";
  return s;
}

std::string fortran_stencil(TemplateContext& ctx) {
  const Params p = draw_params(ctx.rng);
  std::string s;
  s += "! Three-point 1-D stencil with distinct in/out arrays\n";
  s += "! Generated V&V-style functional test for OpenACC (Fortran).\n";
  s += "program acc_stencil_test\n";
  s += "  implicit none\n";
  s += "  integer, parameter :: n = " + std::to_string(p.n) + "\n";
  s += "  integer :: i, errs\n";
  s += "  real(8), allocatable :: u(:), v(:)\n";
  s += "  real(8) :: want\n";
  s += "  allocate(u(n))\n";
  s += "  allocate(v(n))\n";
  s += "  errs = 0\n";
  s += "  do i = 1, n\n";
  s += "    u(i) = mod(i, 13) * " + p.k1 + "\n";
  s += "    v(i) = 0.0\n";
  s += "  end do\n";
  s += "  !$acc parallel loop copyin(u(1:n)) copy(v(1:n))\n";
  s += "  do i = 2, n - 1\n";
  s += "    v(i) = (u(i - 1) + u(i) + u(i + 1)) / 3.0\n";
  s += "  end do\n";
  s += "  do i = 2, n - 1\n";
  s += "    want = (u(i - 1) + u(i) + u(i + 1)) / 3.0\n";
  s += "    if (abs(v(i) - want) > 1e-10) then\n";
  s += "      errs = errs + 1\n";
  s += "    end if\n";
  s += "  end do\n";
  s += "  if (errs /= 0) then\n";
  s += "    print *, 'Test FAILED with', errs, 'errors'\n";
  s += "  else\n";
  s += "    print *, 'Test PASSED'\n";
  s += "  end if\n";
  s += "  deallocate(u)\n";
  s += "  deallocate(v)\n";
  s += "  call exit(errs)\n";
  s += "end program acc_stencil_test\n";
  return s;
}

std::string fortran_enter_exit(TemplateContext& ctx) {
  const Params p = draw_params(ctx.rng);
  std::string s;
  s += "! Unstructured enter/exit data with a host update in between\n";
  s += "! Generated V&V-style functional test for OpenACC (Fortran).\n";
  s += "program acc_enter_exit_test\n";
  s += "  implicit none\n";
  s += "  integer, parameter :: n = " + std::to_string(p.n) + "\n";
  s += "  integer :: i, errs\n";
  s += "  real(8), allocatable :: a(:)\n";
  s += "  real(8) :: want\n";
  s += "  allocate(a(n))\n";
  s += "  errs = 0\n";
  s += "  do i = 1, n\n";
  s += "    a(i) = i * " + p.k1 + "\n";
  s += "  end do\n";
  s += "  !$acc enter data copyin(a(1:n))\n";
  s += "  !$acc parallel loop present(a(1:n))\n";
  s += "  do i = 1, n\n";
  s += "    a(i) = a(i) + " + p.k2 + "\n";
  s += "  end do\n";
  s += "  !$acc update host(a(1:n))\n";
  s += "  do i = 1, n\n";
  s += "    want = i * " + p.k1 + " + " + p.k2 + "\n";
  s += "    if (abs(a(i) - want) > 1e-10) then\n";
  s += "      errs = errs + 1\n";
  s += "    end if\n";
  s += "  end do\n";
  s += "  !$acc exit data delete(a(1:n))\n";
  s += "  if (errs /= 0) then\n";
  s += "    print *, 'Test FAILED with', errs, 'errors'\n";
  s += "  else\n";
  s += "    print *, 'Test PASSED'\n";
  s += "  end if\n";
  s += "  deallocate(a)\n";
  s += "  call exit(errs)\n";
  s += "end program acc_enter_exit_test\n";
  return s;
}

// ---------------------------------------------------------------------------
// C/C++ template bodies.
// ---------------------------------------------------------------------------

/// OpenMP test files follow the SOLLVE V&V structure: the computation lives
/// in a `test_*` function and `main` reports. OpenACC files follow the
/// OpenACC V&V structure: a single main. This structural difference is real
/// (see the two upstream suites) and matters to negative probing's issue 4.
std::string omp_wrap_test_fn(const std::string& fn_name,
                             const std::string& fn_body,
                             const std::string& prologue_text) {
  std::string s = prologue_text;
  s += "int " + fn_name + "() {\n";
  s += fn_body;
  s += "}\n\n";
  s += "int main() {\n";
  s += "  int errors = " + fn_name + "();\n";
  s += "  if (errors != 0) {\n";
  s += "    printf(\"Test FAILED with %d errors\\n\", errors);\n";
  s += "    return 1;\n";
  s += "  }\n";
  s += "  printf(\"Test PASSED\\n\");\n";
  s += "  return 0;\n";
  s += "}\n";
  return s;
}

std::string tpl_saxpy(TemplateContext& ctx) {
  if (ctx.language == Language::kFortran) return fortran_saxpy(ctx);
  const Params p = draw_params(ctx.rng);
  const bool acc = ctx.flavor == Flavor::kOpenACC;
  const std::string pro = prologue(
      ctx, p, acc ? "Combined parallel loop construct computing y = a*x + y"
                  : "target teams distribute parallel for computing "
                    "y = a*x + y");
  std::string body;
  body += alloc_arrays({"x", "y", "expected"});
  body += "  double a = " + p.k1 + ";\n";
  body += "  int err = 0;\n";
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    x[i] = i * " + p.k2 + " + 1.0;\n";
  body += "    y[i] = i * 0.5;\n";
  body += "    expected[i] = a * x[i] + y[i];\n";
  body += "  }\n";
  if (acc) {
    body += "#pragma acc parallel loop copyin(x[0:N]) copy(y[0:N])\n";
  } else {
    body +=
        "#pragma omp target teams distribute parallel for "
        "map(to: x[0:N]) map(tofrom: y[0:N])\n";
  }
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    y[i] = a * x[i] + y[i];\n";
  body += "  }\n";
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    if (fabs(y[i] - expected[i]) > " + p.tol + ") {\n";
  body += "      err = err + 1;\n";
  body += "    }\n";
  body += "  }\n";
  if (acc) {
    std::string s = pro;
    s += "int main() {\n";
    s += body;
    s += check_epilogue();
    s += free_arrays({"x", "y", "expected"});
    s += "  return err;\n";
    s += "}\n";
    return s;
  }
  body += free_arrays({"x", "y", "expected"});
  body += "  return err;\n";
  return omp_wrap_test_fn("test_target_saxpy", body, pro);
}

std::string tpl_vec_scale(TemplateContext& ctx) {
  const Params p = draw_params(ctx.rng);
  const bool acc = ctx.flavor == Flavor::kOpenACC;
  const std::string pro = prologue(
      ctx, p, acc ? "kernels loop construct scaling a vector element-wise"
                  : "target parallel for scaling a vector element-wise");
  std::string body;
  body += alloc_arrays({"a", "b"});
  const std::string scratch = maybe_scratch_alloc(ctx.rng);
  body += scratch;
  body += "  int err = 0;\n";
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    a[i] = i * " + p.k2 + ";\n";
  body += "    b[i] = 0.0;\n";
  body += "  }\n";
  if (acc) {
    body += "#pragma acc kernels loop copyin(a[0:N]) copyout(b[0:N])\n";
  } else {
    body += "#pragma omp target parallel for map(to: a[0:N]) "
            "map(from: b[0:N])\n";
  }
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    b[i] = a[i] * " + p.k1 + " + " + p.k2 + ";\n";
  body += "  }\n";
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    double want = a[i] * " + p.k1 + " + " + p.k2 + ";\n";
  body += "    if (fabs(b[i] - want) > " + p.tol + ") {\n";
  body += "      err++;\n";
  body += "    }\n";
  body += "  }\n";
  body += maybe_scratch_free(scratch);
  if (acc) {
    std::string s = pro;
    s += "int main() {\n";
    s += body;
    s += check_epilogue();
    s += free_arrays({"a", "b"});
    s += "  return err;\n";
    s += "}\n";
    return s;
  }
  body += free_arrays({"a", "b"});
  body += "  return err;\n";
  return omp_wrap_test_fn("test_target_parallel_for", body, pro);
}

std::string reduction_body(TemplateContext& ctx, const Params& p,
                           const char* op, const char* c_init,
                           const char* update_fmt, const char* host_fmt) {
  const bool acc = ctx.flavor == Flavor::kOpenACC;
  std::string body;
  body += alloc_arrays({"a"});
  body += "  int err = 0;\n";
  body += "  double result = " + std::string(c_init) + ";\n";
  body += "  double expected = " + std::string(c_init) + ";\n";
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    a[i] = (i % 17) * " + p.k1 + " + " + p.k2 + ";\n";
  body += "    " + support::replace_all(host_fmt, "{V}", "expected") + "\n";
  body += "  }\n";
  if (acc) {
    body += "#pragma acc parallel loop reduction(" + std::string(op) +
            ":result) copyin(a[0:N])\n";
  } else {
    body += "#pragma omp target teams distribute parallel for reduction(" +
            std::string(op) + ":result) map(to: a[0:N])\n";
  }
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    " + support::replace_all(update_fmt, "{V}", "result") + "\n";
  body += "  }\n";
  body += "  if (fabs(result - expected) > 1e-6) {\n";
  body += "    err = 1;\n";
  body += "  }\n";
  return body;
}

std::string finish(TemplateContext& ctx, const std::string& pro,
                   std::string body, const std::vector<std::string>& arrays,
                   const char* omp_fn) {
  if (ctx.flavor == Flavor::kOpenACC) {
    std::string s = pro;
    s += "int main() {\n";
    s += body;
    s += check_epilogue();
    s += free_arrays(arrays);
    s += "  return err;\n";
    s += "}\n";
    return s;
  }
  body += free_arrays(arrays);
  body += "  return err;\n";
  return omp_wrap_test_fn(omp_fn, body, pro);
}

std::string tpl_sum_reduction(TemplateContext& ctx) {
  if (ctx.language == Language::kFortran) return fortran_reduction(ctx);
  const Params p = draw_params(ctx.rng);
  const std::string pro =
      prologue(ctx, p, "Sum reduction over a device loop, host-checked");
  std::string body = reduction_body(ctx, p, "+", "0.0",
                                    "{V} = {V} + a[i];", "{V} = {V} + a[i];");
  return finish(ctx, pro, std::move(body), {"a"}, "test_sum_reduction");
}

std::string tpl_max_reduction(TemplateContext& ctx) {
  const Params p = draw_params(ctx.rng);
  const std::string pro =
      prologue(ctx, p, "Max reduction over a device loop, host-checked");
  std::string body = reduction_body(
      ctx, p, "max", "-1.0",
      "if (a[i] > {V}) { {V} = a[i]; }",
      "if (a[i] > {V}) { {V} = a[i]; }");
  return finish(ctx, pro, std::move(body), {"a"}, "test_max_reduction");
}

std::string tpl_min_reduction(TemplateContext& ctx) {
  const Params p = draw_params(ctx.rng);
  const std::string pro =
      prologue(ctx, p, "Min reduction over a device loop, host-checked");
  std::string body = reduction_body(
      ctx, p, "min", "1e30",
      "if (a[i] < {V}) { {V} = a[i]; }",
      "if (a[i] < {V}) { {V} = a[i]; }");
  return finish(ctx, pro, std::move(body), {"a"}, "test_min_reduction");
}

std::string tpl_dot_product(TemplateContext& ctx) {
  if (ctx.language == Language::kFortran) return fortran_dot_product(ctx);
  const Params p = draw_params(ctx.rng);
  const bool acc = ctx.flavor == Flavor::kOpenACC;
  const std::string pro =
      prologue(ctx, p, "Dot product via reduction with two input vectors");
  std::string body;
  body += alloc_arrays({"x", "y"});
  const std::string scratch = maybe_scratch_alloc(ctx.rng);
  body += scratch;
  body += "  int err = 0;\n";
  body += "  double dot = 0.0;\n";
  body += "  double expected = 0.0;\n";
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    x[i] = (i % 11) * " + p.k1 + ";\n";
  body += "    y[i] = (i % 7) * " + p.k2 + ";\n";
  body += "    expected = expected + x[i] * y[i];\n";
  body += "  }\n";
  if (acc) {
    body += "#pragma acc parallel loop reduction(+:dot) "
            "copyin(x[0:N], y[0:N])\n";
  } else {
    body += "#pragma omp target teams distribute parallel for "
            "reduction(+:dot) map(to: x[0:N], y[0:N])\n";
  }
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    dot = dot + x[i] * y[i];\n";
  body += "  }\n";
  body += "  if (fabs(dot - expected) > 1e-6) {\n";
  body += "    err = 1;\n";
  body += "  }\n";
  body += maybe_scratch_free(scratch);
  return finish(ctx, pro, std::move(body), {"x", "y"}, "test_dot_product");
}

std::string tpl_data_region(TemplateContext& ctx) {
  const Params p = draw_params(ctx.rng);
  const bool acc = ctx.flavor == Flavor::kOpenACC;
  const std::string pro = prologue(
      ctx, p, acc ? "Structured data region spanning two compute constructs"
                  : "target data region spanning two target constructs");
  std::string body;
  body += alloc_arrays({"a", "b"});
  body += "  int err = 0;\n";
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    a[i] = i * " + p.k1 + ";\n";
  body += "    b[i] = 0.0;\n";
  body += "  }\n";
  if (acc) {
    body += "#pragma acc data copyin(a[0:N]) copy(b[0:N])\n";
    body += "  {\n";
    body += "#pragma acc parallel loop present(a[0:N], b[0:N])\n";
    body += "    for (int i = 0; i < N; i++) {\n";
    body += "      b[i] = a[i] + 1.0;\n";
    body += "    }\n";
    body += "#pragma acc parallel loop present(b[0:N])\n";
    body += "    for (int i = 0; i < N; i++) {\n";
    body += "      b[i] = b[i] * " + p.k2 + ";\n";
    body += "    }\n";
    body += "  }\n";
  } else {
    body += "#pragma omp target data map(to: a[0:N]) map(tofrom: b[0:N])\n";
    body += "  {\n";
    body += "#pragma omp target teams distribute parallel for "
            "map(to: a[0:N]) map(tofrom: b[0:N])\n";
    body += "    for (int i = 0; i < N; i++) {\n";
    body += "      b[i] = a[i] + 1.0;\n";
    body += "    }\n";
    body += "#pragma omp target teams distribute parallel for "
            "map(tofrom: b[0:N])\n";
    body += "    for (int i = 0; i < N; i++) {\n";
    body += "      b[i] = b[i] * " + p.k2 + ";\n";
    body += "    }\n";
    body += "  }\n";
  }
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    double want = (a[i] + 1.0) * " + p.k2 + ";\n";
  body += "    if (fabs(b[i] - want) > " + p.tol + ") {\n";
  body += "      err++;\n";
  body += "    }\n";
  body += "  }\n";
  return finish(ctx, pro, std::move(body), {"a", "b"}, "test_target_data");
}

std::string tpl_enter_exit_update(TemplateContext& ctx) {
  if (ctx.language == Language::kFortran) return fortran_enter_exit(ctx);
  const Params p = draw_params(ctx.rng);
  const bool acc = ctx.flavor == Flavor::kOpenACC;
  const std::string pro = prologue(
      ctx, p,
      acc ? "Unstructured enter/exit data with a host update in between"
          : "target enter/exit data with a target update in between");
  std::string body;
  body += alloc_arrays({"a"});
  body += "  int err = 0;\n";
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    a[i] = i * " + p.k1 + ";\n";
  body += "  }\n";
  if (acc) {
    body += "#pragma acc enter data copyin(a[0:N])\n";
    body += "#pragma acc parallel loop present(a[0:N])\n";
  } else {
    body += "#pragma omp target enter data map(to: a[0:N])\n";
    body += "#pragma omp target teams distribute parallel for\n";
  }
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    a[i] = a[i] + " + p.k2 + ";\n";
  body += "  }\n";
  if (acc) {
    body += "#pragma acc update host(a[0:N])\n";
  } else {
    body += "#pragma omp target update from(a[0:N])\n";
  }
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    double want = i * " + p.k1 + " + " + p.k2 + ";\n";
  body += "    if (fabs(a[i] - want) > " + p.tol + ") {\n";
  body += "      err++;\n";
  body += "    }\n";
  body += "  }\n";
  if (acc) {
    body += "#pragma acc exit data delete(a[0:N])\n";
  } else {
    body += "#pragma omp target exit data map(release: a[0:N])\n";
  }
  return finish(ctx, pro, std::move(body), {"a"}, "test_enter_exit_data");
}

std::string tpl_global_static(TemplateContext& ctx) {
  const Params p = draw_params(ctx.rng);
  const bool acc = ctx.flavor == Flavor::kOpenACC;
  std::string s = prologue(
      ctx, p, "Statically-sized global arrays offloaded with implicit "
              "data movement");
  s += "double input[N];\n";
  s += "double output[N];\n\n";
  std::string body;
  body += "  int err = 0;\n";
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    input[i] = i * " + p.k1 + ";\n";
  body += "    output[i] = 0.0;\n";
  body += "  }\n";
  if (acc) {
    body += "#pragma acc parallel loop\n";
  } else {
    body += "#pragma omp target teams distribute parallel for "
            "map(to: input) map(from: output)\n";
  }
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    output[i] = input[i] * 2.0 + " + p.k2 + ";\n";
  body += "  }\n";
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    double want = input[i] * 2.0 + " + p.k2 + ";\n";
  body += "    if (fabs(output[i] - want) > " + p.tol + ") {\n";
  body += "      err++;\n";
  body += "    }\n";
  body += "  }\n";
  if (acc) {
    s += "int main() {\n" + body + check_epilogue() + "  return err;\n}\n";
    return s;
  }
  body += "  return err;\n";
  return omp_wrap_test_fn("test_static_arrays", body, s);
}

std::string tpl_stencil(TemplateContext& ctx) {
  if (ctx.language == Language::kFortran) return fortran_stencil(ctx);
  const Params p = draw_params(ctx.rng);
  const bool acc = ctx.flavor == Flavor::kOpenACC;
  const std::string pro =
      prologue(ctx, p, "Three-point 1-D stencil with distinct in/out arrays");
  std::string body;
  body += alloc_arrays({"in", "out"});
  const std::string scratch = maybe_scratch_alloc(ctx.rng);
  body += scratch;
  body += "  int err = 0;\n";
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    in[i] = (i % 13) * " + p.k1 + ";\n";
  body += "    out[i] = 0.0;\n";
  body += "  }\n";
  if (acc) {
    body += "#pragma acc parallel loop copyin(in[0:N]) copyout(out[0:N])\n";
  } else {
    body += "#pragma omp target teams distribute parallel for "
            "map(to: in[0:N]) map(tofrom: out[0:N])\n";
  }
  body += "  for (int i = 1; i < N - 1; i++) {\n";
  body += "    out[i] = (in[i - 1] + in[i] + in[i + 1]) / 3.0;\n";
  body += "  }\n";
  body += "  for (int i = 1; i < N - 1; i++) {\n";
  body += "    double want = (in[i - 1] + in[i] + in[i + 1]) / 3.0;\n";
  body += "    if (fabs(out[i] - want) > " + p.tol + ") {\n";
  body += "      err++;\n";
  body += "    }\n";
  body += "  }\n";
  body += maybe_scratch_free(scratch);
  return finish(ctx, pro, std::move(body), {"in", "out"}, "test_stencil");
}

std::string tpl_private_clause(TemplateContext& ctx) {
  const Params p = draw_params(ctx.rng);
  const bool acc = ctx.flavor == Flavor::kOpenACC;
  const std::string pro = prologue(
      ctx, p, "private() clause: per-iteration scratch scalar on the device");
  std::string body;
  body += alloc_arrays({"a", "b"});
  body += "  int err = 0;\n";
  body += "  double scratch = 0.0;\n";
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    a[i] = i * " + p.k1 + ";\n";
  body += "    b[i] = 0.0;\n";
  body += "  }\n";
  if (acc) {
    body += "#pragma acc parallel loop private(scratch) copyin(a[0:N]) "
            "copyout(b[0:N])\n";
  } else {
    body += "#pragma omp target teams distribute parallel for "
            "private(scratch) map(to: a[0:N]) map(from: b[0:N])\n";
  }
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    scratch = a[i] * " + p.k2 + ";\n";
  body += "    b[i] = scratch + 1.0;\n";
  body += "  }\n";
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    double want = a[i] * " + p.k2 + " + 1.0;\n";
  body += "    if (fabs(b[i] - want) > " + p.tol + ") {\n";
  body += "      err++;\n";
  body += "    }\n";
  body += "  }\n";
  return finish(ctx, pro, std::move(body), {"a", "b"}, "test_private");
}

std::string tpl_firstprivate(TemplateContext& ctx) {
  const Params p = draw_params(ctx.rng);
  const bool acc = ctx.flavor == Flavor::kOpenACC;
  const std::string pro = prologue(
      ctx, p, "firstprivate() clause: initialized per-gang scalar copy");
  std::string body;
  body += alloc_arrays({"a"});
  body += "  int err = 0;\n";
  body += "  double offset = " + p.k2 + ";\n";
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    a[i] = 0.0;\n";
  body += "  }\n";
  if (acc) {
    body += "#pragma acc parallel loop firstprivate(offset) copy(a[0:N])\n";
  } else {
    body += "#pragma omp target teams distribute parallel for "
            "firstprivate(offset) map(tofrom: a[0:N])\n";
  }
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    a[i] = i * " + p.k1 + " + offset;\n";
  body += "  }\n";
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    double want = i * " + p.k1 + " + " + p.k2 + ";\n";
  body += "    if (fabs(a[i] - want) > " + p.tol + ") {\n";
  body += "      err++;\n";
  body += "    }\n";
  body += "  }\n";
  return finish(ctx, pro, std::move(body), {"a"}, "test_firstprivate");
}

std::string tpl_collapse(TemplateContext& ctx) {
  Params p = draw_params(ctx.rng);
  p.n = 32;  // N*N cells
  const bool acc = ctx.flavor == Flavor::kOpenACC;
  const std::string pro = prologue(
      ctx, p, "collapse(2) on a linearized 2-D update");
  std::string body;
  body += "  double *grid;\n";
  body += "  grid = (double *)malloc(N * N * sizeof(double));\n";
  body += "  int err = 0;\n";
  body += "  for (int i = 0; i < N * N; i++) {\n";
  body += "    grid[i] = 0.0;\n";
  body += "  }\n";
  if (acc) {
    body += "#pragma acc parallel loop collapse(2) copy(grid[0:N*N])\n";
  } else {
    body += "#pragma omp target teams distribute parallel for collapse(2) "
            "map(tofrom: grid[0:N*N])\n";
  }
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    for (int j = 0; j < N; j++) {\n";
  body += "      grid[i * N + j] = i * " + p.k1 + " + j * " + p.k2 + ";\n";
  body += "    }\n";
  body += "  }\n";
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    for (int j = 0; j < N; j++) {\n";
  body += "      double want = i * " + p.k1 + " + j * " + p.k2 + ";\n";
  body += "      if (fabs(grid[i * N + j] - want) > " + p.tol + ") {\n";
  body += "        err++;\n";
  body += "      }\n";
  body += "    }\n";
  body += "  }\n";
  return finish(ctx, pro, std::move(body), {"grid"}, "test_collapse");
}

std::string tpl_atomic(TemplateContext& ctx) {
  const Params p = draw_params(ctx.rng);
  const bool acc = ctx.flavor == Flavor::kOpenACC;
  const std::string pro = prologue(
      ctx, p, "atomic update counting elements above a threshold");
  std::string body;
  body += alloc_arrays({"data"});
  body += "  int err = 0;\n";
  body += "  int count = 0;\n";
  body += "  int expected = 0;\n";
  body += "  double threshold = " + p.k1 + ";\n";
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    data[i] = (i % 19) * 0.25;\n";
  body += "    if (data[i] > threshold) {\n";
  body += "      expected++;\n";
  body += "    }\n";
  body += "  }\n";
  if (acc) {
    body += "#pragma acc parallel loop copyin(data[0:N])\n";
  } else {
    body += "#pragma omp parallel for\n";
  }
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    if (data[i] > threshold) {\n";
  body += acc ? "#pragma acc atomic update\n" : "#pragma omp atomic\n";
  body += "      count = count + 1;\n";
  body += "    }\n";
  body += "  }\n";
  body += "  if (count != expected) {\n";
  body += "    err = 1;\n";
  body += "  }\n";
  return finish(ctx, pro, std::move(body), {"data"}, "test_atomic");
}

std::string tpl_host_parallel(TemplateContext& ctx) {
  const Params p = draw_params(ctx.rng);
  const bool acc = ctx.flavor == Flavor::kOpenACC;
  const std::string pro = prologue(
      ctx, p, acc ? "serial construct as a single-gang reference"
                  : "host parallel for with a schedule clause");
  std::string body;
  body += alloc_arrays({"a"});
  body += "  int err = 0;\n";
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    a[i] = 0.0;\n";
  body += "  }\n";
  if (acc) {
    body += "#pragma acc serial loop copy(a[0:N])\n";
  } else {
    body += "#pragma omp parallel for schedule(static)\n";
  }
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    a[i] = i * " + p.k1 + ";\n";
  body += "  }\n";
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    if (fabs(a[i] - i * " + p.k1 + ") > " + p.tol + ") {\n";
  body += "      err++;\n";
  body += "    }\n";
  body += "  }\n";
  return finish(ctx, pro, std::move(body), {"a"}, "test_host_parallel");
}

std::string tpl_gang_vector(TemplateContext& ctx) {
  const Params p = draw_params(ctx.rng);
  const bool acc = ctx.flavor == Flavor::kOpenACC;
  const std::string pro = prologue(
      ctx, p, acc ? "Explicit gang/vector mapping on a parallel loop"
                  : "teams/thread_limit control on a distributed loop");
  std::string body;
  body += alloc_arrays({"a", "b"});
  body += "  int err = 0;\n";
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    a[i] = i * " + p.k2 + ";\n";
  body += "    b[i] = 0.0;\n";
  body += "  }\n";
  if (acc) {
    body += "#pragma acc parallel num_gangs(4) vector_length(32) "
            "copyin(a[0:N]) copyout(b[0:N])\n";
    body += "  {\n";
    body += "#pragma acc loop gang vector\n";
    body += "    for (int i = 0; i < N; i++) {\n";
    body += "      b[i] = a[i] + " + p.k1 + ";\n";
    body += "    }\n";
    body += "  }\n";
  } else {
    body += "#pragma omp target teams distribute parallel for "
            "num_teams(4) thread_limit(32) map(to: a[0:N]) "
            "map(from: b[0:N])\n";
    body += "  for (int i = 0; i < N; i++) {\n";
    body += "    b[i] = a[i] + " + p.k1 + ";\n";
    body += "  }\n";
  }
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    if (fabs(b[i] - (a[i] + " + p.k1 + ")) > " + p.tol + ") {\n";
  body += "      err++;\n";
  body += "    }\n";
  body += "  }\n";
  return finish(ctx, pro, std::move(body), {"a", "b"}, "test_teams_config");
}

std::string tpl_async_wait(TemplateContext& ctx) {
  const Params p = draw_params(ctx.rng);
  const bool acc = ctx.flavor == Flavor::kOpenACC;
  const std::string pro = prologue(
      ctx, p, acc ? "async compute with an explicit wait directive"
                  : "untied task-adjacent pattern: nowait + taskwait");
  std::string body;
  body += alloc_arrays({"a"});
  body += "  int err = 0;\n";
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    a[i] = i * 1.0;\n";
  body += "  }\n";
  if (acc) {
    body += "#pragma acc parallel loop async(1) copy(a[0:N])\n";
  } else {
    body += "#pragma omp target teams distribute parallel for nowait "
            "map(tofrom: a[0:N])\n";
  }
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    a[i] = a[i] * " + p.k1 + ";\n";
  body += "  }\n";
  body += acc ? "#pragma acc wait\n" : "#pragma omp taskwait\n";
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    if (fabs(a[i] - i * " + p.k1 + ") > " + p.tol + ") {\n";
  body += "      err++;\n";
  body += "    }\n";
  body += "  }\n";
  return finish(ctx, pro, std::move(body), {"a"}, "test_async_wait");
}

std::string tpl_if_clause(TemplateContext& ctx) {
  const Params p = draw_params(ctx.rng);
  const bool acc = ctx.flavor == Flavor::kOpenACC;
  const std::string pro = prologue(
      ctx, p, "if() clause forcing the offload decision at run time");
  std::string body;
  body += alloc_arrays({"a"});
  body += "  int err = 0;\n";
  body += "  int use_device = 1;\n";
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    a[i] = 0.0;\n";
  body += "  }\n";
  if (acc) {
    body += "#pragma acc parallel loop if(use_device) copy(a[0:N])\n";
  } else {
    body += "#pragma omp target teams distribute parallel for "
            "if(use_device) map(tofrom: a[0:N])\n";
  }
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    a[i] = i * " + p.k2 + " + " + p.k1 + ";\n";
  body += "  }\n";
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    double want = i * " + p.k2 + " + " + p.k1 + ";\n";
  body += "    if (fabs(a[i] - want) > " + p.tol + ") {\n";
  body += "      err++;\n";
  body += "    }\n";
  body += "  }\n";
  return finish(ctx, pro, std::move(body), {"a"}, "test_if_clause");
}

std::string tpl_multi_kernel(TemplateContext& ctx) {
  const Params p = draw_params(ctx.rng);
  const bool acc = ctx.flavor == Flavor::kOpenACC;
  const std::string pro = prologue(
      ctx, p, "Two dependent compute regions with persistent device data");
  std::string body;
  body += alloc_arrays({"a"});
  body += "  int err = 0;\n";
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    a[i] = 1.0;\n";
  body += "  }\n";
  if (acc) {
    body += "#pragma acc enter data copyin(a[0:N])\n";
    body += "#pragma acc parallel loop present(a[0:N])\n";
  } else {
    body += "#pragma omp target enter data map(to: a[0:N])\n";
    body += "#pragma omp target teams distribute parallel for\n";
  }
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    a[i] = a[i] + " + p.k1 + ";\n";
  body += "  }\n";
  if (acc) {
    body += "#pragma acc parallel loop present(a[0:N])\n";
  } else {
    body += "#pragma omp target teams distribute parallel for\n";
  }
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    a[i] = a[i] * " + p.k2 + ";\n";
  body += "  }\n";
  if (acc) {
    body += "#pragma acc exit data copyout(a[0:N])\n";
  } else {
    body += "#pragma omp target exit data map(from: a[0:N])\n";
  }
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    double want = (1.0 + " + p.k1 + ") * " + p.k2 + ";\n";
  body += "    if (fabs(a[i] - want) > " + p.tol + ") {\n";
  body += "      err++;\n";
  body += "    }\n";
  body += "  }\n";
  return finish(ctx, pro, std::move(body), {"a"}, "test_multi_kernel");
}

std::string tpl_int_arrays(TemplateContext& ctx) {
  const Params p = draw_params(ctx.rng);
  const bool acc = ctx.flavor == Flavor::kOpenACC;
  const std::string pro = prologue(
      ctx, p, "Integer array transform with exact host verification");
  std::string body;
  body += "  long *v;\n";
  body += "  v = (long *)malloc(N * sizeof(long));\n";
  body += "  int err = 0;\n";
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    v[i] = i * 3 + 1;\n";
  body += "  }\n";
  if (acc) {
    body += "#pragma acc parallel loop copy(v[0:N])\n";
  } else {
    body += "#pragma omp target teams distribute parallel for "
            "map(tofrom: v[0:N])\n";
  }
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    v[i] = v[i] * 2 - i;\n";
  body += "  }\n";
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    long want = (i * 3 + 1) * 2 - i;\n";
  body += "    if (v[i] != want) {\n";
  body += "      err++;\n";
  body += "    }\n";
  body += "  }\n";
  return finish(ctx, pro, std::move(body), {"v"}, "test_int_transform");
}

std::string tpl_simd_like(TemplateContext& ctx) {
  const Params p = draw_params(ctx.rng);
  const bool acc = ctx.flavor == Flavor::kOpenACC;
  const std::string pro = prologue(
      ctx, p, acc ? "Vector-level loop parallelism (worker/vector clauses)"
                  : "simd loop with host verification");
  std::string body;
  body += alloc_arrays({"a", "b"});
  body += "  int err = 0;\n";
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    a[i] = (i % 9) * " + p.k1 + ";\n";
  body += "    b[i] = 0.0;\n";
  body += "  }\n";
  if (acc) {
    body += "#pragma acc parallel loop worker vector copyin(a[0:N]) "
            "copyout(b[0:N])\n";
  } else {
    body += "#pragma omp simd\n";
  }
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    b[i] = a[i] * a[i];\n";
  body += "  }\n";
  body += "  for (int i = 0; i < N; i++) {\n";
  body += "    if (fabs(b[i] - a[i] * a[i]) > " + p.tol + ") {\n";
  body += "      err++;\n";
  body += "    }\n";
  body += "  }\n";
  return finish(ctx, pro, std::move(body), {"a", "b"}, "test_simd");
}

constexpr std::array<TestTemplate, 18> kTemplates = {{
    {"saxpy_offload", true, true, true, 40, tpl_saxpy},
    {"vec_scale", true, true, false, 45, tpl_vec_scale},
    {"sum_reduction", true, true, true, 40, tpl_sum_reduction},
    {"max_reduction", true, true, false, 40, tpl_max_reduction},
    {"min_reduction", true, true, false, 40, tpl_min_reduction},
    {"dot_product", true, true, true, 40, tpl_dot_product},
    {"data_region", true, true, false, 40, tpl_data_region},
    {"enter_exit_update", true, true, true, 45, tpl_enter_exit_update},
    {"global_static", true, true, false, 40, tpl_global_static},
    {"stencil", true, true, true, 40, tpl_stencil},
    {"private_clause", true, true, false, 45, tpl_private_clause},
    {"firstprivate", true, true, false, 45, tpl_firstprivate},
    {"collapse2", true, true, false, 40, tpl_collapse},
    {"atomic_update", true, true, false, 10, tpl_atomic},
    {"host_parallel", true, true, false, 10, tpl_host_parallel},
    {"gang_vector", true, true, false, 40, tpl_gang_vector},
    {"async_wait", true, true, false, 45, tpl_async_wait},
    {"if_clause", true, true, false, 45, tpl_if_clause},
}};

constexpr std::array<TestTemplate, 3> kExtraTemplates = {{
    {"multi_kernel", true, true, false, 45, tpl_multi_kernel},
    {"int_transform", true, true, false, 40, tpl_int_arrays},
    {"simd_vector", true, true, false, 40, tpl_simd_like},
}};

std::vector<TestTemplate> build_all() {
  std::vector<TestTemplate> all(kTemplates.begin(), kTemplates.end());
  all.insert(all.end(), kExtraTemplates.begin(), kExtraTemplates.end());
  return all;
}

}  // namespace

std::span<const TestTemplate> test_templates() {
  static const std::vector<TestTemplate> all = build_all();
  return {all.data(), all.size()};
}

}  // namespace llm4vv::corpus
