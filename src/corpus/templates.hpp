#pragma once

#include <span>
#include <string>

#include "frontend/source.hpp"
#include "support/rng.hpp"

namespace llm4vv::corpus {

/// Inputs available to a test template.
struct TemplateContext {
  support::Rng& rng;
  frontend::Language language = frontend::Language::kC;
  frontend::Flavor flavor = frontend::Flavor::kOpenACC;
};

/// One test-shape family (e.g. "saxpy under a combined compute+loop
/// construct"). Templates draw sizes, coefficients, and clause variations
/// from the context RNG, so one template yields many distinct files.
struct TestTemplate {
  const char* name;
  bool supports_acc;
  bool supports_omp;
  bool supports_fortran;
  /// Minimum OpenMP version (tenths) the OpenMP variant requires; 0 for
  /// host-only constructs available since 1.0. The OpenACC variants all fit
  /// OpenACC 2.0+ and are not gated.
  int min_version_omp;
  std::string (*generate)(TemplateContext&);
};

/// The full template catalogue (C/C++ bodies; Fortran where flagged).
std::span<const TestTemplate> test_templates();

/// Generate a file that contains *no* directives at all: plausible plain C
/// that compiles and runs cleanly. Negative probing's issue 3 replaces a
/// test with this ("randomly-generated non-OpenACC/OpenMP code").
std::string generate_plain_code(support::Rng& rng);

}  // namespace llm4vv::corpus
