#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "frontend/source.hpp"

namespace llm4vv::corpus {

/// One generated V&V test plus its provenance.
struct TestCase {
  frontend::SourceFile file;
  std::string template_name;  ///< which generator template produced it
  int min_version = 0;        ///< spec version the test requires (tenths)
};

/// A generated test suite for one programming model.
struct Suite {
  frontend::Flavor flavor = frontend::Flavor::kOpenACC;
  std::vector<TestCase> cases;

  std::size_t size() const noexcept { return cases.size(); }
};

}  // namespace llm4vv::corpus
