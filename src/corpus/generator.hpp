#pragma once

#include <cstdint>

#include "corpus/testcase.hpp"
#include "support/rng.hpp"

namespace llm4vv::corpus {

/// Configuration for suite generation. Defaults mirror the paper's Part Two
/// setup (C/C++ only, OpenMP capped at 4.5 "to ensure that the LLVM OpenMP
/// offloading compiler would be fully-compliant").
struct GeneratorConfig {
  frontend::Flavor flavor = frontend::Flavor::kOpenACC;
  std::size_t count = 100;
  std::uint64_t seed = 0x114a4aULL;  // "llm4vv"-ish; overridden by callers
  /// Templates requiring a newer spec version than this are excluded.
  int max_version = 45;
  /// Fraction of files emitted as .cpp translation units.
  double cpp_share = 0.35;
  /// Fraction of files emitted in Fortran (OpenACC only; the paper's Part
  /// One OpenACC suite had "a small set of Fortran files").
  double fortran_share = 0.0;
};

/// Deterministically generate a suite of *valid* V&V tests: same config ->
/// byte-identical suite. Every generated file compiles cleanly under the
/// matching toolchain persona and exits 0 in the VM (pinned by tests).
Suite generate_suite(const GeneratorConfig& config);

/// Generate one valid test from a specific template (used by examples and
/// focused tests). Throws std::invalid_argument for unknown names.
TestCase generate_one(const std::string& template_name,
                      frontend::Flavor flavor, frontend::Language language,
                      std::uint64_t seed);

/// Names of all templates applicable to a flavor at a version cap.
std::vector<std::string> template_names(frontend::Flavor flavor,
                                        int max_version);

}  // namespace llm4vv::corpus
