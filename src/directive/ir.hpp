#pragma once

#include <string>
#include <vector>

#include "frontend/source.hpp"

namespace llm4vv::directive {

/// One clause as spelled in the source, e.g. name="copyin",
/// argument="a[0:n], b[0:n]" (text between the parentheses, untrimmed of
/// inner structure; empty when the clause has no parenthesized argument).
struct ClauseIR {
  std::string name;
  std::string argument;
  bool has_argument = false;
};

/// A parsed directive line, flavor-tagged, with its (possibly composite)
/// name split into words, e.g. {"target","teams","distribute","parallel",
/// "for"} and its clause list in source order.
struct DirectiveIR {
  frontend::Flavor flavor = frontend::Flavor::kOpenACC;
  std::vector<std::string> name_words;
  std::vector<ClauseIR> clauses;
  std::string raw;      ///< the original pragma line
  bool parse_ok = false;
  std::string parse_error;  ///< set when parse_ok is false
};

/// Parse one pragma line (`#pragma acc ...`, `#pragma omp ...`,
/// `!$acc ...`, `!$omp ...`). `parse_ok` is false when the sentinel is
/// malformed, the flavor word is missing, or clause parentheses do not
/// balance; name/clause *validity* is the validator's job, not the
/// parser's.
DirectiveIR parse_directive(const std::string& pragma_text);

/// Join the name words with spaces ("target teams distribute").
std::string directive_name(const DirectiveIR& dir);

/// Extract the variable names referenced by a clause argument. Handles
/// var-lists with C array sections (`a[0:n]`), Fortran sections (`a(1:n)`),
/// and reduction/map prefixes (`+:sum`, `to: x, y`). Returns base variable
/// identifiers only.
std::vector<std::string> clause_variables(const ClauseIR& clause);

}  // namespace llm4vv::directive
