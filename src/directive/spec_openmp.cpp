#include "directive/spec.hpp"

namespace llm4vv::directive {

namespace {

using A = ArgPolicy;

void append(std::vector<ClauseSpec>& dst, std::vector<ClauseSpec> src) {
  for (auto& c : src) dst.push_back(c);
}

std::vector<ClauseSpec> parallel_clauses() {
  return {
      {"if", A::kRequired, 10},          {"num_threads", A::kRequired, 10},
      {"default", A::kRequired, 10},     {"private", A::kRequired, 10},
      {"firstprivate", A::kRequired, 10},{"shared", A::kRequired, 10},
      {"copyin", A::kRequired, 10},      {"reduction", A::kRequired, 10},
      {"proc_bind", A::kRequired, 40},
  };
}

std::vector<ClauseSpec> for_clauses() {
  return {
      {"private", A::kRequired, 10},     {"firstprivate", A::kRequired, 10},
      {"lastprivate", A::kRequired, 10}, {"linear", A::kRequired, 45},
      {"reduction", A::kRequired, 10},   {"schedule", A::kRequired, 10},
      {"collapse", A::kRequired, 30},    {"ordered", A::kOptional, 10},
      {"nowait", A::kNone, 10},
  };
}

std::vector<ClauseSpec> simd_clauses() {
  return {
      {"safelen", A::kRequired, 40},   {"simdlen", A::kRequired, 45},
      {"linear", A::kRequired, 40},    {"aligned", A::kRequired, 40},
      {"private", A::kRequired, 40},   {"lastprivate", A::kRequired, 40},
      {"reduction", A::kRequired, 40}, {"collapse", A::kRequired, 40},
  };
}

std::vector<ClauseSpec> target_clauses() {
  return {
      {"if", A::kRequired, 40},          {"device", A::kRequired, 40},
      {"map", A::kRequired, 40},         {"private", A::kRequired, 45},
      {"firstprivate", A::kRequired, 45},{"nowait", A::kNone, 45},
      {"depend", A::kRequired, 45},      {"defaultmap", A::kRequired, 45},
      {"is_device_ptr", A::kRequired, 45},
  };
}

std::vector<ClauseSpec> teams_clauses() {
  return {
      {"num_teams", A::kRequired, 40},   {"thread_limit", A::kRequired, 40},
      {"default", A::kRequired, 40},     {"private", A::kRequired, 40},
      {"firstprivate", A::kRequired, 40},{"shared", A::kRequired, 40},
      {"reduction", A::kRequired, 40},
  };
}

std::vector<ClauseSpec> distribute_clauses() {
  return {
      {"private", A::kRequired, 40},     {"firstprivate", A::kRequired, 40},
      {"lastprivate", A::kRequired, 40}, {"collapse", A::kRequired, 40},
      {"dist_schedule", A::kRequired, 40},
  };
}

std::vector<ClauseSpec> task_clauses() {
  return {
      {"if", A::kRequired, 30},          {"final", A::kRequired, 31},
      {"untied", A::kNone, 30},          {"default", A::kRequired, 30},
      {"mergeable", A::kNone, 31},       {"private", A::kRequired, 30},
      {"firstprivate", A::kRequired, 30},{"shared", A::kRequired, 30},
      {"depend", A::kRequired, 40},      {"priority", A::kRequired, 45},
  };
}

std::vector<DirectiveSpec> build_table() {
  std::vector<DirectiveSpec> t;

  const auto combo = [&](std::initializer_list<const char*> words,
                         int version,
                         std::initializer_list<std::vector<ClauseSpec>> parts,
                         bool wants_loop) {
    DirectiveSpec spec;
    for (const char* w : words) spec.name_words.emplace_back(w);
    spec.is_construct = true;
    spec.wants_loop = wants_loop;
    spec.min_version = version;
    for (const auto& part : parts) append(spec.clauses, part);
    t.push_back(std::move(spec));
  };

  // Composite constructs first so longest-prefix matching sees them; the
  // registry sorts internally, but keeping the table organized helps review.
  combo({"target", "teams", "distribute", "parallel", "for", "simd"}, 40,
        {target_clauses(), teams_clauses(), distribute_clauses(),
         parallel_clauses(), for_clauses(), simd_clauses()}, true);
  combo({"target", "teams", "distribute", "parallel", "for"}, 40,
        {target_clauses(), teams_clauses(), distribute_clauses(),
         parallel_clauses(), for_clauses()}, true);
  combo({"target", "teams", "distribute", "simd"}, 40,
        {target_clauses(), teams_clauses(), distribute_clauses(),
         simd_clauses()}, true);
  combo({"target", "teams", "distribute"}, 40,
        {target_clauses(), teams_clauses(), distribute_clauses()}, true);
  combo({"target", "teams", "loop"}, 50,
        {target_clauses(), teams_clauses()}, true);
  combo({"target", "teams"}, 40, {target_clauses(), teams_clauses()}, false);
  combo({"target", "parallel", "for", "simd"}, 45,
        {target_clauses(), parallel_clauses(), for_clauses(),
         simd_clauses()}, true);
  combo({"target", "parallel", "for"}, 45,
        {target_clauses(), parallel_clauses(), for_clauses()}, true);
  combo({"target", "parallel"}, 45,
        {target_clauses(), parallel_clauses()}, false);
  combo({"target", "simd"}, 45, {target_clauses(), simd_clauses()}, true);

  // target data family.
  t.push_back({{"target", "data"},
               true, false, 40,
               {{"if", A::kRequired, 40}, {"device", A::kRequired, 40},
                {"map", A::kRequired, 40},
                {"use_device_ptr", A::kRequired, 45}}});
  t.push_back({{"target", "enter", "data"},
               false, false, 45,
               {{"if", A::kRequired, 45}, {"device", A::kRequired, 45},
                {"map", A::kRequired, 45}, {"depend", A::kRequired, 45},
                {"nowait", A::kNone, 45}}});
  t.push_back({{"target", "exit", "data"},
               false, false, 45,
               {{"if", A::kRequired, 45}, {"device", A::kRequired, 45},
                {"map", A::kRequired, 45}, {"depend", A::kRequired, 45},
                {"nowait", A::kNone, 45}}});
  t.push_back({{"target", "update"},
               false, false, 40,
               {{"to", A::kRequired, 40}, {"from", A::kRequired, 40},
                {"if", A::kRequired, 40}, {"device", A::kRequired, 40},
                {"nowait", A::kNone, 45}, {"depend", A::kRequired, 45}}});
  combo({"target"}, 40, {target_clauses()}, false);

  combo({"teams", "distribute", "parallel", "for", "simd"}, 40,
        {teams_clauses(), distribute_clauses(), parallel_clauses(),
         for_clauses(), simd_clauses()}, true);
  combo({"teams", "distribute", "parallel", "for"}, 40,
        {teams_clauses(), distribute_clauses(), parallel_clauses(),
         for_clauses()}, true);
  combo({"teams", "distribute"}, 40,
        {teams_clauses(), distribute_clauses()}, true);
  combo({"teams", "loop"}, 50, {teams_clauses()}, true);
  combo({"teams"}, 40, {teams_clauses()}, false);
  combo({"distribute", "parallel", "for", "simd"}, 40,
        {distribute_clauses(), parallel_clauses(), for_clauses(),
         simd_clauses()}, true);
  combo({"distribute", "parallel", "for"}, 40,
        {distribute_clauses(), parallel_clauses(), for_clauses()}, true);
  combo({"distribute", "simd"}, 40,
        {distribute_clauses(), simd_clauses()}, true);
  combo({"distribute"}, 40, {distribute_clauses()}, true);

  combo({"parallel", "for", "simd"}, 40,
        {parallel_clauses(), for_clauses(), simd_clauses()}, true);
  combo({"parallel", "for"}, 10, {parallel_clauses(), for_clauses()}, true);
  combo({"parallel", "sections"}, 10, {parallel_clauses()}, false);
  combo({"parallel"}, 10, {parallel_clauses()}, false);
  combo({"for", "simd"}, 40, {for_clauses(), simd_clauses()}, true);
  combo({"for"}, 10, {for_clauses()}, true);
  combo({"simd"}, 40, {simd_clauses()}, true);
  combo({"loop"}, 50, {{{"bind", A::kRequired, 50},
                        {"collapse", A::kRequired, 50},
                        {"private", A::kRequired, 50},
                        {"reduction", A::kRequired, 50}}}, true);

  // Tasking.
  combo({"taskloop", "simd"}, 45, {task_clauses(), simd_clauses()}, true);
  combo({"taskloop"}, 45, {task_clauses(),
                           {{"grainsize", A::kRequired, 45},
                            {"num_tasks", A::kRequired, 45},
                            {"collapse", A::kRequired, 45},
                            {"nogroup", A::kNone, 45}}}, true);
  combo({"task"}, 30, {task_clauses()}, false);

  // Worksharing / synchronization.
  t.push_back({{"sections"},
               true, false, 10,
               {{"private", A::kRequired, 10},
                {"firstprivate", A::kRequired, 10},
                {"lastprivate", A::kRequired, 10},
                {"reduction", A::kRequired, 10}, {"nowait", A::kNone, 10}}});
  t.push_back({{"section"}, true, false, 10, {}});
  t.push_back({{"single"},
               true, false, 10,
               {{"private", A::kRequired, 10},
                {"firstprivate", A::kRequired, 10},
                {"copyprivate", A::kRequired, 10}, {"nowait", A::kNone, 10}}});
  t.push_back({{"master"}, true, false, 10, {}});
  t.push_back({{"masked"}, true, false, 51, {{"filter", A::kRequired, 51}}});
  t.push_back({{"critical"}, true, false, 10, {{"hint", A::kRequired, 45}}});
  t.push_back({{"barrier"}, false, false, 10, {}});
  t.push_back({{"taskwait"},
               false, false, 30,
               {{"depend", A::kRequired, 50}}});
  t.push_back({{"taskyield"}, false, false, 31, {}});
  t.push_back({{"taskgroup"}, true, false, 40, {}});
  t.push_back({{"flush"}, false, false, 10, {}});
  t.push_back({{"ordered"},
               true, false, 10,
               {{"simd", A::kNone, 45}, {"threads", A::kNone, 45},
                {"depend", A::kRequired, 45}}});

  // Atomic with subtype names folded in.
  for (const char* sub : {"read", "write", "update", "capture"}) {
    t.push_back({{"atomic", sub},
                 true, false, 31,
                 {{"seq_cst", A::kNone, 40}, {"hint", A::kRequired, 50}}});
  }
  t.push_back({{"atomic", "compare"}, true, false, 51, {}});
  t.push_back({{"atomic"},
               true, false, 10,
               {{"seq_cst", A::kNone, 40}, {"hint", A::kRequired, 50}}});

  // Declarative and 5.x-only directives (present for version gating).
  t.push_back({{"threadprivate"}, false, false, 10, {}});
  t.push_back({{"declare", "target"}, false, false, 40, {}});
  t.push_back({{"end", "declare", "target"}, false, false, 40, {}});
  t.push_back({{"declare", "simd"}, false, false, 40, {}});
  t.push_back({{"declare", "reduction"}, false, false, 40, {}});
  t.push_back({{"requires"}, false, false, 50,
               {{"unified_shared_memory", A::kNone, 50},
                {"reverse_offload", A::kNone, 50}}});
  t.push_back({{"scan"}, true, false, 50,
               {{"inclusive", A::kRequired, 50},
                {"exclusive", A::kRequired, 50}}});
  t.push_back({{"metadirective"}, false, false, 50,
               {{"when", A::kRequired, 50}, {"default", A::kRequired, 50}}});
  t.push_back({{"error"}, false, false, 51,
               {{"severity", A::kRequired, 51},
                {"message", A::kRequired, 51}}});
  t.push_back({{"tile"}, true, true, 51, {{"sizes", A::kRequired, 51}}});

  return t;
}

}  // namespace

const SpecRegistry& openmp_registry() {
  static const SpecRegistry registry(build_table());
  return registry;
}

}  // namespace llm4vv::directive
