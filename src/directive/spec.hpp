#pragma once

#include <string>
#include <vector>

#include "directive/ir.hpp"

namespace llm4vv::directive {

/// Whether a clause must / may / must-not carry a parenthesized argument.
enum class ArgPolicy { kRequired, kOptional, kNone };

/// Spec entry for one clause on one directive.
struct ClauseSpec {
  const char* name;
  ArgPolicy arg = ArgPolicy::kRequired;
  /// Minimum spec version carrying this clause on this directive, in tenths
  /// (OpenMP 4.5 -> 45; OpenACC 2.7 -> 27). 0 = always available.
  int min_version = 0;
};

/// Spec entry for one directive (possibly a composite like
/// "target teams distribute parallel for").
struct DirectiveSpec {
  std::vector<std::string> name_words;
  /// True when the directive is a construct that owns the statement that
  /// follows (`parallel`, `loop`, ...); false for standalone directives
  /// (`update`, `barrier`, ...).
  bool is_construct = false;
  /// True when the owned statement must be a for/do loop.
  bool wants_loop = false;
  int min_version = 0;  ///< tenths; see ClauseSpec::min_version
  std::vector<ClauseSpec> clauses;
};

/// A flavor's directive table with longest-prefix lookup.
class SpecRegistry {
 public:
  explicit SpecRegistry(std::vector<DirectiveSpec> specs);

  /// Longest-prefix match of `words` against known directive names.
  /// Returns the matched spec and sets `words_consumed`; nullptr when no
  /// prefix (not even one word) matches.
  const DirectiveSpec* match(const std::vector<std::string>& words,
                             std::size_t& words_consumed) const;

  /// Find the clause spec on a directive; nullptr when the clause is not
  /// allowed there.
  static const ClauseSpec* find_clause(const DirectiveSpec& spec,
                                       const std::string& name);

  /// All specs (for tests and for the corpus generator's feature catalog).
  const std::vector<DirectiveSpec>& specs() const noexcept { return specs_; }

 private:
  std::vector<DirectiveSpec> specs_;
};

/// OpenACC 3.x directive/clause table (singleton).
const SpecRegistry& openacc_registry();

/// OpenMP directive/clause table through 5.x, with min_version annotations
/// so a 4.5 compiler persona can reject newer features (singleton).
const SpecRegistry& openmp_registry();

/// Registry for a flavor.
const SpecRegistry& registry_for(frontend::Flavor flavor);

/// True when `op` is a valid reduction operator for the flavor
/// (OpenACC: + * max min & | ^ && ||; OpenMP adds -).
bool is_valid_reduction_op(frontend::Flavor flavor, const std::string& op);

/// True when `map_type` is a valid OpenMP map type
/// (to/from/tofrom/alloc/release/delete).
bool is_valid_map_type(const std::string& map_type);

}  // namespace llm4vv::directive
