#include "directive/validator.hpp"

#include "support/strings.hpp"

namespace llm4vv::directive {

namespace {

using frontend::DiagCode;
using frontend::DiagnosticEngine;

std::string version_string(frontend::Flavor flavor, int tenths) {
  return std::string(frontend::flavor_name(flavor)) + " " +
         std::to_string(tenths / 10) + "." + std::to_string(tenths % 10);
}

/// Validates reduction clause arguments: "op:var[,var...]".
void check_reduction(const ClauseIR& clause, const ValidatorOptions& options,
                     int line, DiagnosticEngine& diags) {
  const auto colon = clause.argument.find(':');
  if (colon == std::string::npos) {
    diags.error(DiagCode::kBadClauseArg, line, 1,
                "reduction clause requires 'operator:variable-list'");
    return;
  }
  const std::string op =
      std::string(support::trim(clause.argument.substr(0, colon)));
  if (!is_valid_reduction_op(options.flavor, op)) {
    diags.error(DiagCode::kBadClauseArg, line, 1,
                "invalid reduction operator '" + op + "'");
  }
}

/// Validates OpenMP map clause arguments: "[maptype:] var-list".
void check_map(const ClauseIR& clause, int line, DiagnosticEngine& diags) {
  const auto colon = clause.argument.find(':');
  if (colon == std::string::npos) return;  // bare list: implicit tofrom
  std::string map_type =
      std::string(support::trim(clause.argument.substr(0, colon)));
  // A section subscript `a[0:n]` without a map type also contains ':';
  // only treat the prefix as a map type when it is a bare word.
  if (map_type.find_first_of("[](), ") != std::string::npos) return;
  // "always, to:" modifier.
  if (support::starts_with(map_type, "always")) {
    const auto comma = map_type.find(',');
    if (comma != std::string::npos) {
      map_type = std::string(support::trim(map_type.substr(comma + 1)));
    } else {
      return;
    }
  }
  if (!is_valid_map_type(map_type)) {
    diags.error(DiagCode::kBadClauseArg, line, 1,
                "invalid map type '" + map_type + "'");
  }
}

void check_variables(const ClauseIR& clause, const ValidatorOptions& options,
                     int line, DiagnosticEngine& diags) {
  if (!options.is_declared) return;
  // Clauses whose argument is not a var-list are skipped.
  static const char* kNonVarClauses[] = {
      "if", "num_threads", "num_gangs", "num_workers", "vector_length",
      "collapse", "schedule", "safelen", "simdlen", "device", "device_num",
      "device_type", "dtype", "default", "defaultmap", "proc_bind", "bind",
      "num_teams", "thread_limit", "dist_schedule", "final", "priority",
      "grainsize", "num_tasks", "hint", "tile", "gang", "worker", "vector",
      "wait", "async", "sizes", "severity", "message", "when", "filter",
      "ordered",
  };
  for (const char* skip : kNonVarClauses) {
    if (clause.name == skip) return;
  }
  for (const auto& var : clause_variables(clause)) {
    if (!options.is_declared(var)) {
      diags.error(DiagCode::kBadClauseArg, line, 1,
                  "variable '" + var + "' in clause '" + clause.name +
                      "' is not declared in the enclosing scope");
    }
  }
}

}  // namespace

DirectiveValidation validate_directive(const DirectiveIR& dir,
                                       const ValidatorOptions& options,
                                       int line, DiagnosticEngine& diags) {
  DirectiveValidation result;

  if (!dir.parse_ok) {
    diags.error(DiagCode::kBadDirective, line, 1,
                "malformed directive: " + dir.parse_error);
    result.ok = false;
    return result;
  }

  if (dir.flavor != options.flavor) {
    // e.g. an `#pragma omp` line compiled as OpenACC. Real compilers ignore
    // unknown pragma namespaces with a warning; we do the same so mixed
    // files do not hard-fail the "wrong" flavor.
    diags.warning(DiagCode::kBadDirective, line, 1,
                  "ignoring " + std::string(flavor_name(dir.flavor)) +
                      " directive in " +
                      std::string(flavor_name(options.flavor)) +
                      " compilation");
    return result;
  }

  const SpecRegistry& registry = registry_for(options.flavor);
  std::size_t consumed = 0;
  const DirectiveSpec* spec = registry.match(dir.name_words, consumed);
  if (spec == nullptr) {
    diags.error(DiagCode::kBadDirective, line, 1,
                "unknown " + std::string(flavor_name(options.flavor)) +
                    " directive '" +
                    (dir.name_words.empty() ? std::string("<none>")
                                            : dir.name_words.front()) +
                    "'");
    result.ok = false;
    return result;
  }
  result.spec = spec;

  if (spec->min_version > options.supported_version) {
    diags.error(DiagCode::kVersionGate, line, 1,
                "directive '" + directive_name(dir) + "' requires " +
                    version_string(options.flavor, spec->min_version) +
                    " (compiling for " +
                    version_string(options.flavor,
                                   options.supported_version) +
                    ")");
    result.ok = false;
  }

  // Words past the matched composite name are argument-less clauses
  // (e.g. `loop gang vector` -> clauses gang, vector).
  std::vector<ClauseIR> clauses;
  for (std::size_t i = consumed; i < dir.name_words.size(); ++i) {
    ClauseIR c;
    c.name = dir.name_words[i];
    clauses.push_back(std::move(c));
  }
  for (const auto& c : dir.clauses) clauses.push_back(c);

  for (const auto& clause : clauses) {
    const ClauseSpec* cs = SpecRegistry::find_clause(*spec, clause.name);
    if (cs == nullptr) {
      diags.error(DiagCode::kBadClause, line, 1,
                  "clause '" + clause.name +
                      "' is not valid on directive '" + directive_name(dir) +
                      "'");
      result.ok = false;
      continue;
    }
    if (cs->min_version > options.supported_version) {
      diags.error(DiagCode::kVersionGate, line, 1,
                  "clause '" + clause.name + "' on '" + directive_name(dir) +
                      "' requires " +
                      version_string(options.flavor, cs->min_version));
      result.ok = false;
      continue;
    }
    if (cs->arg == ArgPolicy::kRequired && !clause.has_argument) {
      diags.error(DiagCode::kBadClauseArg, line, 1,
                  "clause '" + clause.name + "' requires an argument");
      result.ok = false;
      continue;
    }
    if (cs->arg == ArgPolicy::kNone && clause.has_argument) {
      diags.error(DiagCode::kBadClauseArg, line, 1,
                  "clause '" + clause.name + "' does not take an argument");
      result.ok = false;
      continue;
    }
    if (clause.has_argument && clause.argument.empty()) {
      diags.error(DiagCode::kBadClauseArg, line, 1,
                  "clause '" + clause.name + "' has an empty argument");
      result.ok = false;
      continue;
    }
    if (clause.name == "reduction" && clause.has_argument) {
      check_reduction(clause, options, line, diags);
    }
    if (clause.name == "map" && clause.has_argument) {
      check_map(clause, line, diags);
    }
    if (clause.has_argument) {
      check_variables(clause, options, line, diags);
    }
  }

  result.ok = result.ok && !diags.has_errors();
  return result;
}

int validate_program(const frontend::Program& program,
                     const ValidatorOptions& options,
                     frontend::DiagnosticEngine& diags) {
  // Resolve clause variables against the program-wide symbol table. This is
  // coarser than true scope resolution (any declared name anywhere counts)
  // but matches what the mutations can disturb: a deleted declaration
  // removes the name from the table entirely.
  ValidatorOptions opts = options;
  if (!opts.is_declared) {
    opts.is_declared = [&program](const std::string& name) {
      for (const auto& sym : program.symbols) {
        if (sym.name == name) return true;
      }
      return false;
    };
  }

  int failures = 0;
  for (const frontend::Stmt* pragma : program.pragmas) {
    const DirectiveIR dir = parse_directive(pragma->pragma_text);
    const std::size_t errors_before = diags.error_count();
    const auto validation = validate_directive(dir, opts, pragma->line, diags);
    const bool had_new_errors = diags.error_count() > errors_before;
    if (had_new_errors) {
      ++failures;
      continue;
    }
    // Loop directives must own a loop statement.
    if (validation.spec != nullptr && validation.spec->wants_loop &&
        pragma->then_branch != nullptr) {
      const auto kind = pragma->then_branch->kind;
      const bool is_loop = kind == frontend::StmtKind::kFor ||
                           kind == frontend::StmtKind::kWhile ||
                           kind == frontend::StmtKind::kDoWhile ||
                           // A nested construct (e.g. `loop` under
                           // `parallel`) is also acceptable here.
                           kind == frontend::StmtKind::kPragma;
      if (!is_loop) {
        diags.error(frontend::DiagCode::kBadDirective, pragma->line, 1,
                    "directive '" + directive_name(dir) +
                        "' must be followed by a loop");
        ++failures;
      }
    }
  }
  return failures;
}

bool pragma_takes_statement(const std::string& pragma_text) {
  const DirectiveIR dir = parse_directive(pragma_text);
  if (!dir.parse_ok) return false;
  const SpecRegistry& registry = registry_for(dir.flavor);
  std::size_t consumed = 0;
  const DirectiveSpec* spec = registry.match(dir.name_words, consumed);
  return spec != nullptr && spec->is_construct;
}

}  // namespace llm4vv::directive
