#pragma once

#include <functional>
#include <string>

#include "directive/ir.hpp"
#include "directive/spec.hpp"
#include "frontend/ast.hpp"
#include "frontend/diagnostics.hpp"

namespace llm4vv::directive {

/// Validator configuration: which model/version the compiler persona
/// implements and how to resolve variable names in clause arguments.
struct ValidatorOptions {
  frontend::Flavor flavor = frontend::Flavor::kOpenACC;
  /// Supported spec version in tenths (OpenMP 4.5 -> 45, OpenACC 3.3 -> 33).
  /// Newer directives/clauses raise kVersionGate errors — this models the
  /// paper's "compilers do not support all OpenMP features introduced after
  /// version 4.5".
  int supported_version = 45;
  /// Resolves a variable name from a clause var-list; when it returns false
  /// the validator reports kBadClauseArg (matching real compilers, which
  /// resolve data-clause names against the enclosing scope). Null disables
  /// the check.
  std::function<bool(const std::string&)> is_declared;
};

/// Result of validating one directive line.
struct DirectiveValidation {
  bool ok = true;
  const DirectiveSpec* spec = nullptr;  ///< null when the name is unknown
};

/// Validate a parsed directive against the flavor's spec table: name known,
/// flavor matches the file, clauses applicable, clause arguments present /
/// absent / well-formed (reduction operators, map types), version gates, and
/// clause variable resolution. Diagnostics land in `diags` at `line`.
DirectiveValidation validate_directive(const DirectiveIR& dir,
                                       const ValidatorOptions& options,
                                       int line,
                                       frontend::DiagnosticEngine& diags);

/// Validate every pragma in a parsed program (the compile-stage entry
/// point). Returns the number of directives that failed.
int validate_program(const frontend::Program& program,
                     const ValidatorOptions& options,
                     frontend::DiagnosticEngine& diags);

/// True when this pragma line opens a construct that owns the next
/// statement — wired into ParserOptions::pragma_takes_statement by the
/// toolchain.
bool pragma_takes_statement(const std::string& pragma_text);

}  // namespace llm4vv::directive
