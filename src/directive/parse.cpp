#include "directive/ir.hpp"

#include <cctype>

#include "support/strings.hpp"

namespace llm4vv::directive {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

DirectiveIR parse_directive(const std::string& pragma_text) {
  DirectiveIR dir;
  dir.raw = pragma_text;

  std::string_view text = support::trim(pragma_text);

  // Strip the sentinel.
  if (support::starts_with(text, "#pragma")) {
    text = support::trim(text.substr(7));
  } else if (support::starts_with(text, "!$")) {
    text = text.substr(2);
  } else {
    dir.parse_error = "not a directive line";
    return dir;
  }

  // Flavor word.
  std::size_t i = 0;
  while (i < text.size() && ident_char(text[i])) ++i;
  const std::string_view flavor_word = text.substr(0, i);
  if (flavor_word == "acc") {
    dir.flavor = frontend::Flavor::kOpenACC;
  } else if (flavor_word == "omp") {
    dir.flavor = frontend::Flavor::kOpenMP;
  } else {
    dir.parse_error =
        "unknown pragma namespace '" + std::string(flavor_word) + "'";
    return dir;
  }
  text = text.substr(i);

  // Words followed by optional (...) groups. The first run of bare words is
  // the (composite) directive name; as soon as a word carries an argument —
  // or once any clause has been seen — everything is a clause. The split of
  // bare words between "composite name" and "argumentless clauses" is
  // finished by the validator against the spec tables; here we only collect.
  std::vector<std::string> words;
  std::vector<ClauseIR> items;  // word(+arg) sequence in order
  std::size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    if (pos >= text.size()) break;
    if (!ident_start(text[pos])) {
      dir.parse_error = std::string("unexpected character '") + text[pos] +
                        "' in directive";
      return dir;
    }
    std::size_t start = pos;
    while (pos < text.size() && ident_char(text[pos])) ++pos;
    ClauseIR item;
    item.name = std::string(text.substr(start, pos - start));
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    if (pos < text.size() && text[pos] == '(') {
      int depth = 0;
      const std::size_t open = pos;
      for (; pos < text.size(); ++pos) {
        if (text[pos] == '(') ++depth;
        if (text[pos] == ')') {
          --depth;
          if (depth == 0) break;
        }
      }
      if (depth != 0) {
        dir.parse_error = "unbalanced parentheses in directive";
        return dir;
      }
      item.has_argument = true;
      item.argument =
          std::string(support::trim(text.substr(open + 1, pos - open - 1)));
      ++pos;  // consume ')'
    }
    items.push_back(std::move(item));
  }

  // Leading argument-less words form the candidate composite name; the rest
  // are clauses. Words *after* the first argument-carrying item are clauses
  // even when bare (e.g. `loop gang vector` -> name "loop", clauses gang,
  // vector is resolved by the validator; here we take the longest bare
  // prefix as the name candidate).
  std::size_t name_end = 0;
  while (name_end < items.size() && !items[name_end].has_argument) {
    ++name_end;
  }
  for (std::size_t w = 0; w < name_end; ++w) {
    words.push_back(items[w].name);
  }
  for (std::size_t c = name_end; c < items.size(); ++c) {
    dir.clauses.push_back(std::move(items[c]));
  }
  dir.name_words = std::move(words);
  if (dir.name_words.empty() && dir.clauses.empty()) {
    dir.parse_error = "directive has no name";
    return dir;
  }
  dir.parse_ok = true;
  return dir;
}

std::string directive_name(const DirectiveIR& dir) {
  std::string out;
  for (std::size_t i = 0; i < dir.name_words.size(); ++i) {
    if (i) out.push_back(' ');
    out += dir.name_words[i];
  }
  return out;
}

std::vector<std::string> clause_variables(const ClauseIR& clause) {
  std::vector<std::string> vars;
  std::string_view arg = clause.argument;
  // Strip a leading "<modifier>:" prefix (reduction operator, map type).
  const auto colon = arg.find(':');
  const auto paren = arg.find_first_of("([,");
  if (colon != std::string_view::npos &&
      (paren == std::string_view::npos || colon < paren)) {
    arg = arg.substr(colon + 1);
  }
  std::size_t i = 0;
  while (i < arg.size()) {
    while (i < arg.size() && !ident_start(arg[i])) ++i;
    std::size_t start = i;
    while (i < arg.size() && ident_char(arg[i])) ++i;
    if (i > start) {
      vars.emplace_back(arg.substr(start, i - start));
    }
    // Skip any section/subscript so `a[0:n]` contributes only `a`, and skip
    // to the next comma-separated item.
    int depth = 0;
    while (i < arg.size()) {
      const char c = arg[i];
      if (c == '[' || c == '(') ++depth;
      if (c == ']' || c == ')') --depth;
      if (c == ',' && depth == 0) {
        ++i;
        break;
      }
      ++i;
    }
  }
  return vars;
}

}  // namespace llm4vv::directive
