#include "directive/spec.hpp"

namespace llm4vv::directive {

namespace {

using A = ArgPolicy;

/// Data clauses shared by compute constructs and `data`.
std::vector<ClauseSpec> data_clauses() {
  return {
      {"copy", A::kRequired},     {"copyin", A::kRequired},
      {"copyout", A::kRequired},  {"create", A::kRequired},
      {"no_create", A::kRequired},{"present", A::kRequired},
      {"deviceptr", A::kRequired},{"attach", A::kRequired},
      // Legacy pcopy* spellings accepted by nvc.
      {"pcopy", A::kRequired},    {"pcopyin", A::kRequired},
      {"pcopyout", A::kRequired}, {"pcreate", A::kRequired},
  };
}

void append(std::vector<ClauseSpec>& dst, std::vector<ClauseSpec> src) {
  for (auto& c : src) dst.push_back(c);
}

std::vector<ClauseSpec> compute_clauses() {
  std::vector<ClauseSpec> cs = {
      {"async", A::kOptional},        {"wait", A::kOptional},
      {"num_gangs", A::kRequired},    {"num_workers", A::kRequired},
      {"vector_length", A::kRequired},{"device_type", A::kRequired},
      {"dtype", A::kRequired},        {"if", A::kRequired},
      {"self", A::kOptional},         {"reduction", A::kRequired},
      {"private", A::kRequired},      {"firstprivate", A::kRequired},
      {"default", A::kRequired},
  };
  append(cs, data_clauses());
  return cs;
}

std::vector<ClauseSpec> loop_clauses() {
  return {
      {"collapse", A::kRequired}, {"gang", A::kOptional},
      {"worker", A::kOptional},   {"vector", A::kOptional},
      {"seq", A::kNone},          {"auto", A::kNone},
      {"independent", A::kNone},  {"private", A::kRequired},
      {"reduction", A::kRequired},{"tile", A::kRequired},
      {"device_type", A::kRequired},
  };
}

std::vector<ClauseSpec> combined_clauses() {
  auto cs = compute_clauses();
  append(cs, loop_clauses());
  return cs;
}

std::vector<DirectiveSpec> build_table() {
  std::vector<DirectiveSpec> t;

  // Compute constructs.
  t.push_back({{"parallel", "loop"}, true, true, 10, combined_clauses()});
  t.push_back({{"kernels", "loop"}, true, true, 10, combined_clauses()});
  t.push_back({{"serial", "loop"}, true, true, 27, combined_clauses()});
  t.push_back({{"parallel"}, true, false, 10, compute_clauses()});
  t.push_back({{"kernels"}, true, false, 10, compute_clauses()});
  t.push_back({{"serial"}, true, false, 27, compute_clauses()});
  t.push_back({{"loop"}, true, true, 10, loop_clauses()});

  // Data environment.
  {
    std::vector<ClauseSpec> cs = {
        {"if", A::kRequired}, {"async", A::kOptional},
        {"wait", A::kOptional}, {"default", A::kRequired},
    };
    append(cs, data_clauses());
    t.push_back({{"data"}, true, false, 10, cs});
  }
  t.push_back({{"enter", "data"},
               false, false, 20,
               {{"if", A::kRequired}, {"async", A::kOptional},
                {"wait", A::kOptional}, {"copyin", A::kRequired},
                {"create", A::kRequired}, {"attach", A::kRequired}}});
  t.push_back({{"exit", "data"},
               false, false, 20,
               {{"if", A::kRequired}, {"async", A::kOptional},
                {"wait", A::kOptional}, {"copyout", A::kRequired},
                {"delete", A::kRequired}, {"detach", A::kRequired},
                {"finalize", A::kNone}}});
  t.push_back({{"host_data"},
               true, false, 10,
               {{"use_device", A::kRequired}, {"if", A::kRequired, 27},
                {"if_present", A::kNone, 27}}});

  // Atomic (subtype folded into the composite name).
  for (const char* sub : {"read", "write", "update", "capture"}) {
    t.push_back({{"atomic", sub}, true, false, 10, {}});
  }
  t.push_back({{"atomic"}, true, false, 10, {}});

  // Executable standalone directives.
  t.push_back({{"update"},
               false, false, 10,
               {{"async", A::kOptional}, {"wait", A::kOptional},
                {"device_type", A::kRequired}, {"if", A::kRequired},
                {"if_present", A::kNone}, {"self", A::kRequired},
                {"host", A::kRequired}, {"device", A::kRequired}}});
  t.push_back({{"wait"},
               false, false, 10,
               {{"async", A::kOptional}, {"if", A::kRequired, 33}}});
  t.push_back({{"init"},
               false, false, 10,
               {{"device_type", A::kRequired}, {"device_num", A::kRequired},
                {"if", A::kRequired, 33}}});
  t.push_back({{"shutdown"},
               false, false, 10,
               {{"device_type", A::kRequired}, {"device_num", A::kRequired},
                {"if", A::kRequired, 33}}});
  t.push_back({{"set"},
               false, false, 20,
               {{"default_async", A::kRequired}, {"device_num", A::kRequired},
                {"device_type", A::kRequired}, {"if", A::kRequired, 33}}});
  t.push_back({{"cache"}, false, false, 10, {}});

  // Declarative directives.
  {
    std::vector<ClauseSpec> cs = {
        {"device_resident", A::kRequired}, {"link", A::kRequired},
    };
    append(cs, data_clauses());
    t.push_back({{"declare"}, false, false, 10, cs});
  }
  t.push_back({{"routine"},
               false, false, 10,
               {{"gang", A::kOptional}, {"worker", A::kNone},
                {"vector", A::kNone}, {"seq", A::kNone},
                {"bind", A::kRequired}, {"device_type", A::kRequired},
                {"nohost", A::kNone}}});

  return t;
}

}  // namespace

const SpecRegistry& openacc_registry() {
  static const SpecRegistry registry(build_table());
  return registry;
}

}  // namespace llm4vv::directive
