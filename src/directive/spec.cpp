#include "directive/spec.hpp"

#include <algorithm>

namespace llm4vv::directive {

SpecRegistry::SpecRegistry(std::vector<DirectiveSpec> specs)
    : specs_(std::move(specs)) {
  // Longest names first so prefix matching is a simple first-hit scan.
  std::stable_sort(specs_.begin(), specs_.end(),
                   [](const DirectiveSpec& a, const DirectiveSpec& b) {
                     return a.name_words.size() > b.name_words.size();
                   });
}

const DirectiveSpec* SpecRegistry::match(
    const std::vector<std::string>& words, std::size_t& words_consumed) const {
  for (const auto& spec : specs_) {
    if (spec.name_words.size() > words.size()) continue;
    bool ok = true;
    for (std::size_t i = 0; i < spec.name_words.size(); ++i) {
      if (spec.name_words[i] != words[i]) {
        ok = false;
        break;
      }
    }
    if (ok) {
      words_consumed = spec.name_words.size();
      return &spec;
    }
  }
  words_consumed = 0;
  return nullptr;
}

const ClauseSpec* SpecRegistry::find_clause(const DirectiveSpec& spec,
                                            const std::string& name) {
  for (const auto& clause : spec.clauses) {
    if (name == clause.name) return &clause;
  }
  return nullptr;
}

const SpecRegistry& registry_for(frontend::Flavor flavor) {
  return flavor == frontend::Flavor::kOpenACC ? openacc_registry()
                                              : openmp_registry();
}

bool is_valid_reduction_op(frontend::Flavor flavor, const std::string& op) {
  if (op == "+" || op == "*" || op == "max" || op == "min" || op == "&" ||
      op == "|" || op == "^" || op == "&&" || op == "||") {
    return true;
  }
  // OpenMP (pre-5.2) also allows '-'.
  return flavor == frontend::Flavor::kOpenMP && op == "-";
}

bool is_valid_map_type(const std::string& map_type) {
  return map_type == "to" || map_type == "from" || map_type == "tofrom" ||
         map_type == "alloc" || map_type == "release" || map_type == "delete";
}

}  // namespace llm4vv::directive
