#include "probing/mutation.hpp"

#include <cctype>
#include <map>
#include <set>

#include "corpus/templates.hpp"
#include "support/strings.hpp"

namespace llm4vv::probing {

namespace {

using frontend::Flavor;
using frontend::Language;
using support::Rng;

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Misspell a word: drop, double, or transpose one interior letter.
std::string mangle_word(const std::string& word, Rng& rng) {
  if (word.size() < 3) return word + word;
  std::string out = word;
  const std::size_t i =
      1 + static_cast<std::size_t>(rng.next_below(word.size() - 2));
  switch (rng.next_below(3)) {
    case 0: out.erase(i, 1); break;                       // drop
    case 1: out.insert(i, 1, out[i]); break;              // double
    default: std::swap(out[i], out[i + 1]); break;        // transpose
  }
  return out == word ? word.substr(0, word.size() - 1) : out;
}

/// --- Issue 0a: swap a directive for a misspelled one ----------------------

std::optional<std::string> swap_directive(const std::string& source,
                                          Rng& rng) {
  auto lines = support::split_lines(source);
  std::vector<std::size_t> pragma_lines;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto trimmed = support::trim(lines[i]);
    if (support::starts_with(trimmed, "#pragma acc") ||
        support::starts_with(trimmed, "#pragma omp") ||
        support::starts_with(trimmed, "!$acc") ||
        support::starts_with(trimmed, "!$omp")) {
      pragma_lines.push_back(i);
    }
  }
  if (pragma_lines.empty()) return std::nullopt;
  const std::size_t target = pragma_lines[static_cast<std::size_t>(
      rng.next_below(pragma_lines.size()))];
  std::string& line = lines[target];

  // The word right after the sentinel is the directive head; misspell it.
  const std::string sentinels[] = {"#pragma acc", "#pragma omp", "!$acc",
                                   "!$omp"};
  for (const auto& sentinel : sentinels) {
    const auto at = line.find(sentinel);
    if (at == std::string::npos) continue;
    std::size_t i = at + sentinel.size();
    while (i < line.size() && line[i] == ' ') ++i;
    std::size_t end = i;
    while (end < line.size() && ident_char(line[end])) ++end;
    if (end == i) return std::nullopt;
    const std::string head = line.substr(i, end - i);
    line = line.substr(0, i) + mangle_word(head, rng) + line.substr(end);
    std::string out = support::join(lines, "\n");
    out.push_back('\n');
    return out;
  }
  return std::nullopt;
}

/// --- Issue 0b: remove an allocation statement ------------------------------

std::optional<std::string> remove_allocation(const std::string& source,
                                             Language language, Rng& rng) {
  auto lines = support::split_lines(source);
  std::vector<std::size_t> alloc_lines;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto trimmed = support::trim(lines[i]);
    const bool is_alloc =
        language == Language::kFortran
            ? support::starts_with(trimmed, "allocate(")
            : (support::contains(trimmed, "= (double *)malloc") ||
               support::contains(trimmed, "= (long *)malloc") ||
               support::contains(trimmed, "= (int *)malloc") ||
               support::contains(trimmed, "= (float *)malloc") ||
               support::contains(trimmed, "= malloc("));
    if (is_alloc) alloc_lines.push_back(i);
  }
  if (alloc_lines.empty()) return std::nullopt;
  const std::size_t target = alloc_lines[static_cast<std::size_t>(
      rng.next_below(alloc_lines.size()))];
  lines.erase(lines.begin() + static_cast<std::ptrdiff_t>(target));
  std::string out = support::join(lines, "\n");
  out.push_back('\n');
  return out;
}

/// --- Issue 1: remove an opening bracket ------------------------------------

std::optional<std::string> remove_opening_bracket(const std::string& source,
                                                  Language language,
                                                  Rng& rng) {
  if (language == Language::kFortran) {
    // Fortran has no braces; the structural equivalent is deleting a block
    // closer, which unbalances the construct nesting the same way.
    auto lines = support::split_lines(source);
    std::vector<std::size_t> closers;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const auto trimmed = support::trim(lines[i]);
      if (trimmed == "end do" || trimmed == "end if" || trimmed == "enddo" ||
          trimmed == "endif") {
        closers.push_back(i);
      }
    }
    if (closers.empty()) return std::nullopt;
    const std::size_t target = closers[static_cast<std::size_t>(
        rng.next_below(closers.size()))];
    lines.erase(lines.begin() + static_cast<std::ptrdiff_t>(target));
    std::string out = support::join(lines, "\n");
    out.push_back('\n');
    return out;
  }
  std::vector<std::size_t> opens;
  for (std::size_t i = 0; i < source.size(); ++i) {
    if (source[i] == '{') opens.push_back(i);
  }
  if (opens.empty()) return std::nullopt;
  const std::size_t target =
      opens[static_cast<std::size_t>(rng.next_below(opens.size()))];
  std::string out = source;
  out.erase(target, 1);
  return out;
}

/// --- Issue 2: introduce a use of an undeclared variable --------------------

const std::set<std::string>& skip_words() {
  static const std::set<std::string> words = {
      // keywords & common type names
      "int", "long", "float", "double", "char", "void", "bool", "unsigned",
      "signed", "short", "if", "else", "while", "for", "do", "return",
      "break", "continue", "const", "static", "sizeof", "struct", "true",
      "false", "include", "define", "pragma", "acc", "omp", "main",
      // fortran structure words
      "program", "end", "implicit", "none", "integer", "real", "logical",
      "parameter", "allocatable", "allocate", "deallocate", "then", "call",
      "print", "stop", "exit", "cycle", "and", "or", "not",
  };
  return words;
}

struct WordSite {
  std::size_t pos;
  std::size_t len;
  std::string word;
};

std::optional<std::string> use_undeclared_variable(const std::string& source,
                                                   Rng& rng) {
  // Collect identifier occurrences outside of directive lines.
  std::vector<WordSite> sites;
  std::map<std::string, int> occurrence_count;
  bool in_line_comment = false;
  bool in_string = false;
  bool in_pragma = false;
  for (std::size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    if (c == '\n') {
      in_line_comment = false;
      in_string = false;
      in_pragma = false;
      continue;
    }
    if (in_line_comment || in_pragma) continue;
    if (c == '"') {
      in_string = !in_string;
      continue;
    }
    if (in_string) continue;
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
      in_line_comment = true;
      continue;
    }
    if (c == '!') {
      // Fortran comment / directive line.
      in_line_comment = true;
      continue;
    }
    if (c == '#') {
      in_pragma = true;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t end = i;
      while (end < source.size() && ident_char(source[end])) ++end;
      const std::string word = source.substr(i, end - i);
      // Skip calls (next non-space char is '('): the paper's mutation
      // targets variables, and call sites produce a different diagnostic.
      std::size_t next = end;
      while (next < source.size() && source[next] == ' ') ++next;
      const bool is_call = next < source.size() && source[next] == '(';
      if (!skip_words().count(support::to_lower(word)) && !is_call &&
          word.size() <= 12) {
        ++occurrence_count[word];
        if (occurrence_count[word] >= 2) {
          // A repeat occurrence: very likely a *use*, not the declaration.
          sites.push_back(WordSite{i, end - i, word});
        }
      }
      i = end - 1;
    }
  }
  if (sites.empty()) return std::nullopt;
  const WordSite& site =
      sites[static_cast<std::size_t>(rng.next_below(sites.size()))];
  const std::string fresh =
      "undeclared_" + std::to_string(rng.next_in(100, 999));
  std::string out = source;
  out.replace(site.pos, site.len, fresh);
  return out;
}

/// --- Issue 4: remove the last bracketed section ----------------------------

struct BracePair {
  std::size_t open;
  std::size_t close;
  int depth;  ///< 1 = function body, 2+ = inner blocks
};

std::vector<BracePair> find_brace_pairs(const std::string& source) {
  std::vector<BracePair> pairs;
  std::vector<std::size_t> stack;
  bool in_string = false;
  bool in_comment = false;
  for (std::size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    if (c == '\n') {
      in_comment = false;
      in_string = false;
      continue;
    }
    if (in_comment) continue;
    if (c == '"') in_string = !in_string;
    if (in_string) continue;
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
      in_comment = true;
      continue;
    }
    if (c == '{') stack.push_back(i);
    if (c == '}' && !stack.empty()) {
      pairs.push_back(
          BracePair{stack.back(), i, static_cast<int>(stack.size())});
      stack.pop_back();
    }
  }
  return pairs;
}

/// Walks backward from a '{' to the start of the statement introducing it
/// (the `for (...)` / `if (...)` / `else` / `while (...)` header).
std::size_t statement_start(const std::string& source, std::size_t open) {
  std::size_t i = open;
  const auto skip_space_back = [&] {
    while (i > 0 && std::isspace(static_cast<unsigned char>(source[i - 1]))) {
      --i;
    }
  };
  skip_space_back();
  if (i >= 4 && source.compare(i - 4, 4, "else") == 0) {
    return i - 4;
  }
  if (i > 0 && source[i - 1] == ')') {
    int depth = 0;
    while (i > 0) {
      --i;
      if (source[i] == ')') ++depth;
      if (source[i] == '(') {
        --depth;
        if (depth == 0) break;
      }
    }
    skip_space_back();
    std::size_t word_end = i;
    while (i > 0 && ident_char(source[i - 1])) --i;
    const std::string keyword = source.substr(i, word_end - i);
    if (keyword == "for" || keyword == "if" || keyword == "while" ||
        keyword == "switch") {
      // `else if (...)` pulls the else in too.
      std::size_t j = i;
      while (j > 0 &&
             std::isspace(static_cast<unsigned char>(source[j - 1]))) {
        --j;
      }
      if (j >= 4 && source.compare(j - 4, 4, "else") == 0) return j - 4;
      return i;
    }
    return open;
  }
  return open;
}

std::optional<std::string> remove_last_block_fortran(
    const std::string& source) {
  // Remove the final block if-construct (the PASS/FAIL report block).
  auto lines = support::split_lines(source);
  int end_if_line = -1;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto t = support::trim(lines[i]);
    if (t == "end if" || t == "endif") end_if_line = static_cast<int>(i);
  }
  if (end_if_line < 0) return std::nullopt;
  int if_line = -1;
  int depth = 0;
  for (int i = end_if_line - 1; i >= 0; --i) {
    const auto t = support::trim(lines[static_cast<std::size_t>(i)]);
    if (t == "end if" || t == "endif") ++depth;
    if (support::starts_with(t, "if ") && support::ends_with(t, "then")) {
      if (depth == 0) {
        if_line = i;
        break;
      }
      --depth;
    }
  }
  if (if_line < 0) return std::nullopt;
  lines.erase(lines.begin() + if_line, lines.begin() + end_if_line + 1);
  std::string out = support::join(lines, "\n");
  out.push_back('\n');
  return out;
}

std::optional<std::string> remove_last_block(const std::string& source,
                                             Language language,
                                             const MutationConfig& config,
                                             Rng& rng) {
  if (language == Language::kFortran) {
    return remove_last_block_fortran(source);
  }
  const auto pairs = find_brace_pairs(source);
  const BracePair* last_inner = nullptr;
  for (const auto& pair : pairs) {
    if (pair.depth >= 2 &&
        (last_inner == nullptr || pair.open > last_inner->open)) {
      last_inner = &pair;
    }
  }
  if (last_inner == nullptr) return std::nullopt;

  if (rng.chance(config.issue4_function_tail_share)) {
    // "Function tail" reading: the removal greedily extends from the first
    // function's last inner block to the end of that function's body (the
    // shape SOLLVE-style files induce). Target the first function body.
    const BracePair* first_fn = nullptr;
    for (const auto& pair : pairs) {
      if (pair.depth == 1 &&
          (first_fn == nullptr || pair.open < first_fn->open)) {
        first_fn = &pair;
      }
    }
    if (first_fn != nullptr) {
      // Only direct children of the function body qualify: removing one of
      // those through the end of the body keeps braces balanced while
      // dropping every trailing statement (including the return).
      const BracePair* tail_block = nullptr;
      for (const auto& pair : pairs) {
        if (pair.depth == 2 && pair.open > first_fn->open &&
            pair.close < first_fn->close &&
            (tail_block == nullptr || pair.open > tail_block->open)) {
          tail_block = &pair;
        }
      }
      if (tail_block != nullptr) {
        const std::size_t start = statement_start(source, tail_block->open);
        std::string out = source.substr(0, start);
        out += source.substr(first_fn->close);  // keep the fn's closing '}'
        return out;
      }
    }
    // No inner block in the first function: fall through to the inner-
    // trailing reading below.
  }

  // "Inner trailing" reading: delete the last self-contained inner block
  // together with its header; braces stay balanced and the file usually
  // still compiles and passes (the paper's hardest category).
  const std::size_t start = statement_start(source, last_inner->open);
  std::string out = source.substr(0, start);
  out += source.substr(last_inner->close + 1);
  return out;
}

}  // namespace

const char* issue_name(IssueType issue) noexcept {
  switch (issue) {
    case IssueType::kRemovedAllocOrSwappedDirective: return "alloc/directive";
    case IssueType::kRemovedOpeningBracket: return "open-bracket";
    case IssueType::kUndeclaredVariable: return "undeclared-var";
    case IssueType::kReplacedWithPlainCode: return "plain-code";
    case IssueType::kRemovedLastBracketedSection: return "last-block";
    case IssueType::kNoIssue: return "no-issue";
  }
  return "?";
}

std::string issue_row_label(IssueType issue, frontend::Flavor flavor) {
  const std::string model =
      flavor == frontend::Flavor::kOpenACC ? "ACC" : "OMP";
  const std::string full =
      flavor == frontend::Flavor::kOpenACC ? "OpenACC" : "OpenMP";
  switch (issue) {
    case IssueType::kRemovedAllocOrSwappedDirective:
      return "Removed " + model + " memory allocation / swapped " + model +
             " directive";
    case IssueType::kRemovedOpeningBracket:
      return "Removed an opening bracket";
    case IssueType::kUndeclaredVariable:
      return "Added use of undeclared variable";
    case IssueType::kReplacedWithPlainCode:
      return "Replaced file with randomly-generated non-" + full + " code";
    case IssueType::kRemovedLastBracketedSection:
      return "Removed last bracketed section of code";
    case IssueType::kNoIssue:
      return "No issue";
  }
  return "?";
}

std::optional<std::string> apply_mutation(const std::string& source,
                                          Language language, IssueType issue,
                                          const MutationConfig& config,
                                          Rng& rng) {
  switch (issue) {
    case IssueType::kRemovedAllocOrSwappedDirective:
      if (rng.chance(config.swap_directive_share)) {
        if (auto out = swap_directive(source, rng)) return out;
        return remove_allocation(source, language, rng);
      }
      if (auto out = remove_allocation(source, language, rng)) return out;
      return swap_directive(source, rng);
    case IssueType::kRemovedOpeningBracket:
      return remove_opening_bracket(source, language, rng);
    case IssueType::kUndeclaredVariable:
      return use_undeclared_variable(source, rng);
    case IssueType::kReplacedWithPlainCode:
      return corpus::generate_plain_code(rng);
    case IssueType::kRemovedLastBracketedSection:
      return remove_last_block(source, language, config, rng);
    case IssueType::kNoIssue:
      return source;
  }
  return std::nullopt;
}

}  // namespace llm4vv::probing
