#include "probing/candidates.hpp"

namespace llm4vv::probing {

std::vector<Candidate> generate_candidates(const CandidateConfig& config) {
  // Base pool of valid tests; oversized so defect-inapplicable draws can
  // fall through to another file.
  corpus::GeneratorConfig gen;
  gen.flavor = config.flavor;
  gen.count = config.count + config.count / 4 + 16;
  gen.seed = config.seed;
  const corpus::Suite suite = corpus::generate_suite(gen);

  support::Rng rng(config.seed ^ 0xCA9D1DA7E5ULL);

  double total_weight = 0.0;
  for (const double w : config.defect_weights) total_weight += w;
  if (total_weight <= 0.0) total_weight = 1.0;

  const auto draw_defect = [&]() {
    double x = rng.next_double() * total_weight;
    for (std::size_t id = 0; id < 5; ++id) {
      x -= config.defect_weights[id];
      if (x <= 0.0) return static_cast<IssueType>(id);
    }
    return IssueType::kRemovedLastBracketedSection;
  };

  std::vector<Candidate> candidates;
  candidates.reserve(config.count);
  std::size_t next = 0;
  while (candidates.size() < config.count && next < suite.cases.size()) {
    const corpus::TestCase& base = suite.cases[next++];
    Candidate candidate;
    candidate.file = base.file;
    if (rng.chance(config.defect_rate)) {
      const IssueType defect = draw_defect();
      support::Rng file_rng = rng.fork();
      const auto mutated =
          apply_mutation(base.file.content, base.file.language, defect,
                         config.mutation, file_rng);
      if (!mutated.has_value()) continue;  // defect inapplicable: skip file
      candidate.file.content = *mutated;
      candidate.truly_valid = false;
      candidate.defect = defect;
      if (defect == IssueType::kReplacedWithPlainCode) {
        candidate.file.language = frontend::Language::kC;
      }
    }
    candidates.push_back(std::move(candidate));
  }
  if (candidates.size() < config.count) {
    throw std::runtime_error(
        "generate_candidates: base pool exhausted before reaching count");
  }
  return candidates;
}

}  // namespace llm4vv::probing
